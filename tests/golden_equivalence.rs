//! Property tests: the cycle-level FPGA simulator is functionally
//! bit-identical to the golden software model, for both the serial and
//! data-parallel datapaths, and pruning never changes results.

use proptest::prelude::*;

use ir_system::core::{IndelRealigner, PruningMode};
use ir_system::fpga::unit::simulate_target;
use ir_system::fpga::FpgaParams;
use ir_system::genome::{Base, Qual, Read, RealignmentTarget, Sequence};

fn base_strategy() -> impl Strategy<Value = Base> {
    prop_oneof![
        4 => Just(Base::A),
        4 => Just(Base::C),
        4 => Just(Base::G),
        4 => Just(Base::T),
        1 => Just(Base::N),
    ]
}

fn sequence_strategy(len: std::ops::RangeInclusive<usize>) -> impl Strategy<Value = Sequence> {
    prop::collection::vec(base_strategy(), len).prop_map(Sequence::new)
}

fn read_strategy(max_len: usize) -> impl Strategy<Value = Read> {
    (4usize..=max_len)
        .prop_flat_map(|n| {
            (
                prop::collection::vec(base_strategy(), n),
                prop::collection::vec(0u8..=60, n),
                0u64..100,
            )
        })
        .prop_map(|(bases, quals, start)| {
            Read::new(
                "prop",
                Sequence::new(bases),
                Qual::from_raw_scores(&quals).expect("scores ≤ 60"),
                start,
            )
            .expect("non-empty read with matching quals")
        })
}

prop_compose! {
    fn target_strategy()(
        reference in sequence_strategy(16..=64),
        alts in prop::collection::vec(sequence_strategy(16..=64), 0..4),
        reads in prop::collection::vec(read_strategy(12), 1..6),
        start in 0u64..1_000_000,
    ) -> RealignmentTarget {
        RealignmentTarget::builder(start)
            .reference(reference)
            .consensuses(alts)
            .reads(reads)
            .build()
            .expect("generated dimensions respect the limits")
    }
}

proptest! {
    // Local default trimmed to keep tier-1 wall-clock flat; CI's
    // kernel-parity job soaks this suite in release at
    // IR_PROPTEST_CASES=256 (see README, "Test suite knobs").
    #![proptest_config(ProptestConfig::with_cases_env(64))]

    #[test]
    fn serial_simulator_matches_golden(target in target_strategy()) {
        let golden = IndelRealigner::new().realign(&target);
        let run = simulate_target(&target, &FpgaParams::serial());
        prop_assert_eq!(&run.grid, golden.grid());
        prop_assert_eq!(run.scores.as_slice(), golden.scores());
        prop_assert_eq!(run.best, golden.best_consensus());
        prop_assert_eq!(run.outcomes.as_slice(), golden.outcomes());
    }

    #[test]
    fn data_parallel_simulator_matches_golden(target in target_strategy()) {
        let golden = IndelRealigner::new().realign(&target);
        let run = simulate_target(&target, &FpgaParams::iracc());
        prop_assert_eq!(&run.grid, golden.grid());
        prop_assert_eq!(run.best, golden.best_consensus());
        prop_assert_eq!(run.outcomes.as_slice(), golden.outcomes());
    }

    #[test]
    fn pruning_is_exact(target in target_strategy()) {
        let pruned = IndelRealigner::with_pruning(PruningMode::On).realign(&target);
        let naive = IndelRealigner::with_pruning(PruningMode::Off).realign(&target);
        prop_assert_eq!(pruned.grid(), naive.grid());
        prop_assert_eq!(pruned.scores(), naive.scores());
        prop_assert_eq!(pruned.best_consensus(), naive.best_consensus());
        prop_assert_eq!(pruned.outcomes(), naive.outcomes());
        // Pruning only removes work, never adds it.
        prop_assert!(pruned.ops().base_comparisons <= naive.ops().base_comparisons);
        prop_assert_eq!(pruned.ops().naive_comparisons(), naive.ops().base_comparisons);
    }

    #[test]
    fn data_parallel_is_never_slower(target in target_strategy()) {
        let serial = simulate_target(&target, &FpgaParams::serial());
        let parallel = simulate_target(&target, &FpgaParams::iracc());
        // The 32-lane calculator can execute *more comparisons* (block
        // granularity + prune latency) but never more cycles.
        prop_assert!(parallel.cycles.hdc <= serial.cycles.hdc);
        prop_assert!(parallel.comparisons >= serial.comparisons);
    }

    #[test]
    fn realignment_offsets_are_within_the_target(target in target_strategy()) {
        let result = IndelRealigner::new().realign(&target);
        let best = result.best_consensus();
        let cons_len = target.consensus(best).len();
        for (j, outcome) in result.outcomes().iter().enumerate() {
            if let Some(offset) = outcome.new_offset() {
                prop_assert!(offset + target.read(j).len() <= cons_len);
                prop_assert_eq!(
                    outcome.new_pos().expect("realigned"),
                    offset as u64 + target.start_pos()
                );
            }
        }
    }

    #[test]
    fn steppable_fsm_matches_closed_form_model(target in target_strategy()) {
        use ir_system::fpga::fsm::HdcFsm;
        use ir_system::fpga::hdc::{run_pair, HdcConfig};
        for cfg in [HdcConfig::serial(), HdcConfig::data_parallel()] {
            for i in 0..target.num_consensuses() {
                for j in 0..target.num_reads() {
                    let cons = target.consensus(i);
                    let read = target.read(j);
                    let expected = run_pair(cons, read.bases(), read.quals(), cfg);
                    let mut fsm = HdcFsm::new(cons, read.bases(), read.quals(), cfg);
                    while fsm.step() {}
                    prop_assert_eq!(fsm.result(), Some(expected.min));
                    prop_assert_eq!(fsm.cycles(), expected.cycles);
                    prop_assert_eq!(fsm.comparisons(), expected.comparisons);
                }
            }
        }
    }

    #[test]
    fn naive_work_matches_shape_formula(target in target_strategy()) {
        let naive = IndelRealigner::with_pruning(PruningMode::Off).realign(&target);
        prop_assert_eq!(
            naive.ops().base_comparisons,
            target.shape().worst_case_comparisons()
        );
    }
}
