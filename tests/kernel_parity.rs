//! Differential proptests pinning the packed fast HDC path bitwise
//! against the scalar reference (`run_pair`) under plain `cargo test` —
//! for the ambient dispatched kernel *and* every [`KernelKind`] the host
//! CPU can run, forced explicitly through the `_with` APIs. (The CI
//! `kernel-dispatch` matrix additionally forces each kind process-wide
//! via `IR_KERNEL`, which the ambient calls here pick up.)
//!
//! The fast kernel has four execution shapes, selected by the config and
//! the read geometry:
//!
//! 1. serial immediate-prune (`lanes == 1 && prune_latency_blocks == 0`),
//! 2. dense fold when the drain swallows the whole read
//!    (`nblocks <= prune_latency_blocks + 1`),
//! 3. closed-form unpruned fold (`pruning == false`),
//! 4. the block-granular fallback for everything else.
//!
//! Every case exercises a curated config set that covers all shapes
//! (both presets, pruning on/off, lane counts that straddle the block
//! boundaries) plus one randomized config, over random sequence pairs
//! including `N` bases — the full `PairRun` (min WHD, offset, cycles,
//! comparisons, pruned-offset count) must be identical.
//!
//! The batch proptests additionally pin the structure-of-arrays sweep
//! ([`run_read_sweep`]) element-wise against per-pair scans across ragged
//! candidate sets (mixed lengths and counts) and zero-length reads.
//!
//! Case counts are gated on `IR_PROPTEST_CASES` (see README).

use ir_system::core::batch::{CandidateBlock, SweepRead};
use ir_system::core::KernelKind;
use ir_system::fpga::hdc::{
    run_pair, run_pair_fast_packed, run_pair_fast_packed_with, run_read_sweep, HdcConfig,
};
use ir_system::genome::{Base, PackedSequence, Qual, Sequence};
use proptest::prelude::*;

/// Maps a byte to a base, all five symbols reachable.
fn base(code: u8) -> Base {
    match code % 5 {
        0 => Base::A,
        1 => Base::C,
        2 => Base::G,
        3 => Base::T,
        _ => Base::N,
    }
}

/// Configs covering every execution shape of the fast kernel. With reads
/// of 1..=96 bases, `lanes` values below straddle `nblocks <=
/// prune_latency_blocks + 1` both ways (e.g. a 3-base read at 32 lanes is
/// one block — drain-swallowed at latency 2 — while a 96-base read is
/// not).
fn shape_covering_configs() -> Vec<HdcConfig> {
    vec![
        // Shape 1: serial immediate prune (the base design).
        HdcConfig::serial(),
        // Shape 3: serial without pruning.
        HdcConfig {
            pruning: false,
            ..HdcConfig::serial()
        },
        // Shapes 2 and 4 by read length: the Figure 8 data-parallel design.
        HdcConfig::data_parallel(),
        HdcConfig {
            pruning: false,
            ..HdcConfig::data_parallel()
        },
        // Deep prune latency: drain swallows up to 4 blocks.
        HdcConfig {
            lanes: 8,
            pruning: true,
            pair_overhead_cycles: 0,
            prune_latency_blocks: 3,
        },
        // Multi-lane with immediate prune verdict (shape 4, latency 0).
        HdcConfig {
            lanes: 32,
            pruning: true,
            pair_overhead_cycles: 2,
            prune_latency_blocks: 0,
        },
        // Odd lane count that never divides the read length evenly.
        HdcConfig {
            lanes: 3,
            pruning: true,
            pair_overhead_cycles: 1,
            prune_latency_blocks: 1,
        },
    ]
}

prop_compose! {
    /// A random (consensus, read, quals) triple with `read.len() <=
    /// consensus.len()`, all symbols (including `N`) and the full
    /// Phred-score range.
    fn pair_inputs()(
        read_len in 1usize..=96,
        extra in 0usize..=64,
        cons_codes in prop::collection::vec(any::<u8>(), 160),
        read_codes in prop::collection::vec(any::<u8>(), 96),
        qual_scores in prop::collection::vec(0u8..=60, 96)
    ) -> (Sequence, Sequence, Qual) {
        let cons: Sequence = cons_codes[..read_len + extra].iter().map(|&c| base(c)).collect();
        let read: Sequence = read_codes[..read_len].iter().map(|&c| base(c)).collect();
        let quals = Qual::from_raw_scores(&qual_scores[..read_len]).expect("valid Phred range");
        (cons, read, quals)
    }
}

prop_compose! {
    /// A randomized config within the hardware-plausible envelope.
    fn random_config()(
        lanes in 1usize..=48,
        pruning in any::<bool>(),
        pair_overhead_cycles in 0u64..=4,
        prune_latency_blocks in 0u64..=3
    ) -> HdcConfig {
        HdcConfig { lanes, pruning, pair_overhead_cycles, prune_latency_blocks }
    }
}

prop_compose! {
    /// A ragged candidate set (1..=5 candidates of unequal lengths, all
    /// long enough to admit the read) plus a read that may be empty.
    fn batch_inputs()(
        read_len in 0usize..=64,
        extras in prop::collection::vec(0usize..=48, 1..=5),
        codes in prop::collection::vec(any::<u8>(), 5 * (64 + 48)),
        read_codes in prop::collection::vec(any::<u8>(), 64),
        qual_scores in prop::collection::vec(0u8..=60, 64)
    ) -> (Vec<Sequence>, Sequence, Qual) {
        let mut offset = 0;
        let cands: Vec<Sequence> = extras
            .iter()
            .map(|&extra| {
                let len = read_len + extra;
                let s: Sequence = codes[offset..offset + len].iter().map(|&c| base(c)).collect();
                offset += len;
                s
            })
            .collect();
        let read: Sequence = read_codes[..read_len].iter().map(|&c| base(c)).collect();
        let quals = Qual::from_raw_scores(&qual_scores[..read_len]).expect("valid Phred range");
        (cands, read, quals)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(96))]

    /// The packed kernel reproduces the scalar reference exactly — min
    /// WHD, winning offset, cycle count, comparison count and pruned
    /// offsets — for every covered config and a fresh random config, on
    /// the ambient dispatched kernel and on every [`KernelKind`] the CPU
    /// supports.
    #[test]
    fn packed_kernel_matches_scalar_reference(
        (cons, read, quals) in pair_inputs(),
        extra_cfg in random_config()
    ) {
        let packed_cons = PackedSequence::from(&cons);
        let packed_read = PackedSequence::from(&read);
        let mut configs = shape_covering_configs();
        configs.push(extra_cfg);
        for cfg in configs {
            let scalar = run_pair(&cons, &read, &quals, cfg);
            let fast = run_pair_fast_packed(&packed_cons, &packed_read, &quals, cfg);
            prop_assert_eq!(
                scalar, fast,
                "dispatched kernel, config {:?} on read_len {} cons_len {}",
                cfg, read.len(), cons.len()
            );
            for kind in KernelKind::available() {
                let forced =
                    run_pair_fast_packed_with(&packed_cons, &packed_read, &quals, kind, cfg);
                prop_assert_eq!(
                    scalar, forced,
                    "kernel {} config {:?} on read_len {} cons_len {}",
                    kind, cfg, read.len(), cons.len()
                );
            }
        }
    }

    /// The structure-of-arrays batch sweep equals per-pair scans
    /// element-wise — ragged candidate counts and lengths, zero-length
    /// reads included — on every available kernel.
    #[test]
    fn batch_sweep_matches_per_pair(
        (cands, read, quals) in batch_inputs(),
        extra_cfg in random_config()
    ) {
        let rows: Vec<&[Base]> = cands.iter().map(|c| c.bases()).collect();
        let block = CandidateBlock::from_bases_rows(&rows);
        let sweep_read = SweepRead::new(read.bases(), &quals);
        let mut configs = vec![HdcConfig::serial(), HdcConfig::data_parallel()];
        configs.push(extra_cfg);
        for cfg in configs {
            let want: Vec<_> = cands
                .iter()
                .map(|c| run_pair(c, &read, &quals, cfg))
                .collect();
            for kind in KernelKind::available() {
                let got = run_read_sweep(&block, &sweep_read, kind, cfg);
                prop_assert_eq!(
                    &got, &want,
                    "kernel {} config {:?}, {} candidates, read_len {}",
                    kind, cfg, cands.len(), read.len()
                );
            }
        }
    }
}

/// The worked Figure 4 example through every covered config — a fixed
/// anchor independent of the random corpus.
#[test]
fn figure4_example_is_shape_invariant() {
    let cons: Sequence = "ACCTGAA".parse().unwrap();
    let read: Sequence = "TGAA".parse().unwrap();
    let quals = Qual::from_raw_scores(&[10, 20, 45, 10]).unwrap();
    let packed_cons = PackedSequence::from(&cons);
    let packed_read = PackedSequence::from(&read);
    for cfg in shape_covering_configs() {
        let scalar = run_pair(&cons, &read, &quals, cfg);
        let fast = run_pair_fast_packed(&packed_cons, &packed_read, &quals, cfg);
        assert_eq!(scalar, fast, "config {cfg:?}");
        for kind in KernelKind::available() {
            let forced = run_pair_fast_packed_with(&packed_cons, &packed_read, &quals, kind, cfg);
            assert_eq!(scalar, forced, "kernel {kind} config {cfg:?}");
        }
        // "TGAA" matches "ACCTGAA" exactly at offset 3 — the sweep's
        // minimum is an exact hit regardless of kernel shape.
        assert_eq!(scalar.min.whd, 0, "Figure 4 sweep minimum WHD");
        assert_eq!(scalar.min.offset, 3, "Figure 4 winning offset");
    }
}

/// A zero-length read sweeps every candidate cleanly on every kernel:
/// one completed scan per offset, zero comparisons, min WHD 0 at offset 0.
#[test]
fn zero_length_read_batch_parity() {
    let cands: Vec<Sequence> = ["ACGTACGT", "TTT", "GGGGGACGTACGTACGTACGT"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let rows: Vec<&[Base]> = cands.iter().map(|c| c.bases()).collect();
    let block = CandidateBlock::from_bases_rows(&rows);
    let quals = Qual::uniform(0, 0).unwrap();
    let empty: Sequence = "".parse().unwrap();
    let sweep_read = SweepRead::new(empty.bases(), &quals);
    for cfg in [HdcConfig::serial(), HdcConfig::data_parallel()] {
        let want: Vec<_> = cands
            .iter()
            .map(|c| run_pair(c, &empty, &quals, cfg))
            .collect();
        for kind in KernelKind::available() {
            let got = run_read_sweep(&block, &sweep_read, kind, cfg);
            assert_eq!(got, want, "kernel {kind} config {cfg:?}");
            for pair in &got {
                assert_eq!(pair.comparisons, 0, "empty read compares nothing");
                assert_eq!(pair.min.whd, 0);
                assert_eq!(pair.min.offset, 0);
            }
        }
    }
}
