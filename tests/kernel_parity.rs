//! Differential proptest pinning the packed SWAR HDC kernel
//! (`run_pair_fast_packed`) bitwise against the scalar reference
//! (`run_pair`) under plain `cargo test`.
//!
//! The fast kernel has three execution shapes, selected by the config and
//! the read geometry:
//!
//! 1. serial immediate-prune (`lanes == 1 && prune_latency_blocks == 0`),
//! 2. dense byte-fold when the drain swallows the whole read
//!    (`nblocks <= prune_latency_blocks + 1`),
//! 3. the block-granular SWAR fallback for everything else.
//!
//! Every case exercises a curated config set that covers all three shapes
//! (both presets, pruning on/off, lane counts that straddle the block
//! boundaries) plus one randomized config, over random sequence pairs
//! including `N` bases — the full `PairRun` (min WHD, offset, cycles,
//! comparisons, pruned-offset count) must be identical.
//!
//! Case counts are gated on `IR_PROPTEST_CASES` (see README).

use ir_system::fpga::hdc::{run_pair, run_pair_fast_packed, HdcConfig};
use ir_system::genome::{Base, PackedSequence, Qual, Sequence};
use proptest::prelude::*;

/// Maps a byte to a base, all five symbols reachable.
fn base(code: u8) -> Base {
    match code % 5 {
        0 => Base::A,
        1 => Base::C,
        2 => Base::G,
        3 => Base::T,
        _ => Base::N,
    }
}

/// Configs covering every execution shape of the fast kernel. With reads
/// of 1..=96 bases, `lanes` values below straddle `nblocks <=
/// prune_latency_blocks + 1` both ways (e.g. a 3-base read at 32 lanes is
/// one block — drain-swallowed at latency 2 — while a 96-base read is
/// not).
fn shape_covering_configs() -> Vec<HdcConfig> {
    vec![
        // Shape 1: serial immediate prune (the base design).
        HdcConfig::serial(),
        // Shape 1 without pruning.
        HdcConfig {
            pruning: false,
            ..HdcConfig::serial()
        },
        // Shapes 2 and 3 by read length: the Figure 8 data-parallel design.
        HdcConfig::data_parallel(),
        HdcConfig {
            pruning: false,
            ..HdcConfig::data_parallel()
        },
        // Deep prune latency: drain swallows up to 4 blocks.
        HdcConfig {
            lanes: 8,
            pruning: true,
            pair_overhead_cycles: 0,
            prune_latency_blocks: 3,
        },
        // Multi-lane with immediate prune verdict (shape 3, latency 0).
        HdcConfig {
            lanes: 32,
            pruning: true,
            pair_overhead_cycles: 2,
            prune_latency_blocks: 0,
        },
        // Odd lane count that never divides the read length evenly.
        HdcConfig {
            lanes: 3,
            pruning: true,
            pair_overhead_cycles: 1,
            prune_latency_blocks: 1,
        },
    ]
}

prop_compose! {
    /// A random (consensus, read, quals) triple with `read.len() <=
    /// consensus.len()`, all symbols (including `N`) and the full
    /// Phred-score range.
    fn pair_inputs()(
        read_len in 1usize..=96,
        extra in 0usize..=64,
        cons_codes in prop::collection::vec(any::<u8>(), 160),
        read_codes in prop::collection::vec(any::<u8>(), 96),
        qual_scores in prop::collection::vec(0u8..=60, 96)
    ) -> (Sequence, Sequence, Qual) {
        let cons: Sequence = cons_codes[..read_len + extra].iter().map(|&c| base(c)).collect();
        let read: Sequence = read_codes[..read_len].iter().map(|&c| base(c)).collect();
        let quals = Qual::from_raw_scores(&qual_scores[..read_len]).expect("valid Phred range");
        (cons, read, quals)
    }
}

prop_compose! {
    /// A randomized config within the hardware-plausible envelope.
    fn random_config()(
        lanes in 1usize..=48,
        pruning in any::<bool>(),
        pair_overhead_cycles in 0u64..=4,
        prune_latency_blocks in 0u64..=3
    ) -> HdcConfig {
        HdcConfig { lanes, pruning, pair_overhead_cycles, prune_latency_blocks }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(96))]

    /// The packed kernel reproduces the scalar reference exactly — min
    /// WHD, winning offset, cycle count, comparison count and pruned
    /// offsets — for every covered config and a fresh random config.
    #[test]
    fn packed_kernel_matches_scalar_reference(
        (cons, read, quals) in pair_inputs(),
        extra_cfg in random_config()
    ) {
        let packed_cons = PackedSequence::from(&cons);
        let packed_read = PackedSequence::from(&read);
        let mut configs = shape_covering_configs();
        configs.push(extra_cfg);
        for cfg in configs {
            let scalar = run_pair(&cons, &read, &quals, cfg);
            let fast = run_pair_fast_packed(&packed_cons, &packed_read, &quals, cfg);
            prop_assert_eq!(
                scalar, fast,
                "config {:?} on read_len {} cons_len {}",
                cfg, read.len(), cons.len()
            );
        }
    }
}

/// The worked Figure 4 example through every covered config — a fixed
/// anchor independent of the random corpus.
#[test]
fn figure4_example_is_shape_invariant() {
    let cons: Sequence = "ACCTGAA".parse().unwrap();
    let read: Sequence = "TGAA".parse().unwrap();
    let quals = Qual::from_raw_scores(&[10, 20, 45, 10]).unwrap();
    let packed_cons = PackedSequence::from(&cons);
    let packed_read = PackedSequence::from(&read);
    for cfg in shape_covering_configs() {
        let scalar = run_pair(&cons, &read, &quals, cfg);
        let fast = run_pair_fast_packed(&packed_cons, &packed_read, &quals, cfg);
        assert_eq!(scalar, fast, "config {cfg:?}");
        // "TGAA" matches "ACCTGAA" exactly at offset 3 — the sweep's
        // minimum is an exact hit regardless of kernel shape.
        assert_eq!(scalar.min.whd, 0, "Figure 4 sweep minimum WHD");
        assert_eq!(scalar.min.offset, 3, "Figure 4 winning offset");
    }
}
