//! Telemetry integration tests: counter invariants on seeded runs and
//! the zero-overhead guarantee.
//!
//! The two structural invariants the telemetry layer promises:
//!
//! 1. **Cycle conservation** — for every unit,
//!    `busy + stall + quarantined + idle == total` cycles, where `total`
//!    is the run's wall time in unit clocks;
//! 2. **Arbiter/DDR consistency** — every beat the 32:1 arbiter grants is
//!    a beat the DDR channel serves (`arbiter32/grants == ddr/beats`),
//!    and the 5:1 grants equal them too (every beat first passes the
//!    intra-unit arbiter).
//!
//! Plus the contract that makes telemetry safe to leave on: an enabled
//! run reports exactly the same timing and functional results as a
//! disabled one.

use ir_system::fpga::{AcceleratedSystem, FpgaParams, Scheduling};
use ir_system::genome::RealignmentTarget;
use ir_system::telemetry::json::validate_json;
use ir_system::workloads::{WorkloadConfig, WorkloadGenerator};

fn workload(count: usize) -> Vec<RealignmentTarget> {
    WorkloadGenerator::new(WorkloadConfig {
        scale: 1e-4,
        read_len: 62,
        min_consensus_len: 80,
        max_consensus_len: 510,
        ..WorkloadConfig::default()
    })
    .targets(count, 0x7E1E)
}

fn all_configs() -> Vec<(FpgaParams, Scheduling)> {
    vec![
        (FpgaParams::serial(), Scheduling::Synchronous),
        (FpgaParams::serial(), Scheduling::Asynchronous),
        (FpgaParams::iracc(), Scheduling::Asynchronous),
    ]
}

#[test]
fn per_unit_cycles_are_conserved() {
    let targets = workload(64);
    for (params, scheduling) in all_configs() {
        let system = AcceleratedSystem::new(params, scheduling)
            .expect("paper configs fit")
            .with_telemetry(true);
        let run = system.run(&targets);
        let tele = run.telemetry.as_ref().expect("telemetry enabled");
        for u in 0..params.num_units {
            let busy = tele.counter(&format!("unit/{u:02}/busy_cycles"));
            let stall = tele.counter(&format!("unit/{u:02}/stall_cycles"));
            let quarantined = tele.counter(&format!("unit/{u:02}/quarantined_cycles"));
            let idle = tele.counter(&format!("unit/{u:02}/idle_cycles"));
            let total = tele.counter(&format!("unit/{u:02}/total_cycles"));
            assert_eq!(
                busy + stall + quarantined + idle,
                total,
                "unit {u} cycle conservation under {scheduling:?}"
            );
            assert!(total > 0, "unit {u} saw a nonzero wall");
        }
        // The sum of per-unit target counts covers the whole workload.
        let dispatched: u64 = (0..params.num_units)
            .map(|u| tele.counter(&format!("unit/{u:02}/targets")))
            .sum();
        assert_eq!(dispatched, targets.len() as u64);
    }
}

#[test]
fn arbiter_grants_match_ddr_beats_served() {
    let targets = workload(48);
    for (params, scheduling) in all_configs() {
        let system = AcceleratedSystem::new(params, scheduling)
            .expect("paper configs fit")
            .with_telemetry(true);
        let run = system.run(&targets);
        let tele = run.telemetry.as_ref().expect("telemetry enabled");
        let grants5 = tele.counter("arbiter5/grants");
        let grants32 = tele.counter("arbiter32/grants");
        let beats = tele.counter("ddr/beats");
        assert!(beats > 0, "the workload moves data");
        assert_eq!(
            grants32, beats,
            "every 32:1 grant is a DDR beat served ({scheduling:?})"
        );
        assert_eq!(
            grants5, beats,
            "every beat first passes the intra-unit 5:1 arbiter"
        );
        assert!(
            tele.counter("ddr/row_hits") <= beats,
            "row hits are a subset of beats"
        );
    }
}

#[test]
fn telemetry_enabled_run_is_cycle_identical_to_disabled() {
    let targets = workload(48);
    for (params, scheduling) in all_configs() {
        let system = AcceleratedSystem::new(params, scheduling).expect("paper configs fit");
        let plain = system.run(&targets);
        let instrumented = system.clone().with_telemetry(true).run(&targets);
        assert!(plain.telemetry.is_none());
        assert!(instrumented.telemetry.is_some());
        assert_eq!(
            plain.wall_time_s.to_bits(),
            instrumented.wall_time_s.to_bits(),
            "wall time must be bit-identical under {scheduling:?}"
        );
        assert_eq!(plain.compute_cycles, instrumented.compute_cycles);
        assert_eq!(plain.comparisons, instrumented.comparisons);
        assert_eq!(plain.command_s.to_bits(), instrumented.command_s.to_bits());
        assert_eq!(
            plain.dma_busy_s.to_bits(),
            instrumented.dma_busy_s.to_bits()
        );
        for (a, b) in plain.unit_busy_s.iter().zip(&instrumented.unit_busy_s) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(plain.results, instrumented.results);
    }
}

#[test]
fn hdc_counters_match_run_totals() {
    let targets = workload(32);
    let system = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Asynchronous)
        .expect("iracc fits")
        .with_telemetry(true);
    let run = system.run(&targets);
    let tele = run.telemetry.as_ref().expect("telemetry enabled");
    assert_eq!(tele.counter("hdc/comparisons"), run.comparisons);
    let pruned: u64 = run.results.iter().map(|r| r.offsets_pruned).sum();
    assert_eq!(tele.counter("hdc/pruned_offsets"), pruned);
    assert_eq!(tele.counter("system/targets"), targets.len() as u64);
    assert_eq!(tele.counter("sched/dispatches"), targets.len() as u64);
}

#[test]
fn chrome_trace_is_valid_json_with_spans() {
    let targets = workload(16);
    let system = AcceleratedSystem::new(FpgaParams::serial(), Scheduling::Synchronous)
        .expect("serial fits")
        .with_telemetry(true);
    let run = system.run(&targets);
    let tele = run.telemetry.as_ref().expect("telemetry enabled");
    let json = tele.chrome_trace_json();
    validate_json(&json).expect("trace must be well-formed JSON");
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"ph\":\"X\""), "complete events present");
    assert!(json.contains("\"ph\":\"M\""), "track metadata present");
    // One transfer and one compute span per target survive into the
    // derived timeline (the tracer itself holds more, e.g. stalls).
    assert_eq!(run.timeline.len(), 2 * targets.len());
}

#[test]
fn run_telemetry_still_produces_the_timeline() {
    // `run_telemetry` forces telemetry on and derives the legacy
    // timeline from the tracer; it must keep its original shape.
    let targets = workload(12);
    let system = AcceleratedSystem::new(FpgaParams::serial(), Scheduling::Asynchronous)
        .expect("serial fits");
    let run = system.run_telemetry(&targets);
    assert_eq!(run.timeline.len(), 2 * targets.len());
    assert!(run.telemetry.is_some(), "traced runs carry the snapshot");
}

#[test]
fn csv_report_round_trips_counters() {
    let targets = workload(12);
    let system = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Asynchronous)
        .expect("iracc fits")
        .with_telemetry(true);
    let run = system.run(&targets);
    let tele = run.telemetry.as_ref().expect("telemetry enabled");
    let csv = tele.to_csv();
    assert!(csv.starts_with("kind,key,value\n"));
    let line = format!("counter,ddr/beats,{}\n", tele.counter("ddr/beats"));
    assert!(csv.contains(&line), "csv carries the exact counter values");
    validate_json(&tele.to_json()).expect("json report must be well-formed");
}

#[test]
fn resilience_counters_mirror_the_report() {
    use ir_system::fpga::fault::{FaultPlan, FaultRates};
    use ir_system::fpga::ResiliencePolicy;

    let targets = workload(48);
    let system = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Asynchronous)
        .expect("iracc fits")
        .with_telemetry(true);
    let mut plan = FaultPlan::seeded(11, FaultRates::uniform(1e-3));
    let policy = ResiliencePolicy {
        watchdog_cycles: 1 << 20,
        ..ResiliencePolicy::default()
    };
    let run = system.run_resilient(&targets, &mut plan, &policy);
    let report = run.resilience.as_ref().expect("resilient run reports");
    let tele = run.telemetry.as_ref().expect("telemetry enabled");
    assert_eq!(tele.counter("resilience/retries"), report.retries);
    assert_eq!(tele.counter("resilience/fallbacks"), report.fallbacks);
    assert_eq!(
        tele.counter("resilience/quarantined_units"),
        report.quarantined_units.len() as u64
    );
    assert_eq!(tele.counter("resilience/lost_cycles"), report.lost_cycles);
    assert_eq!(
        tele.counter("resilience/injected_total"),
        report.faults.total()
    );
}
