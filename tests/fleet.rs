//! Fleet-level differential test suite.
//!
//! Pins the two contracts that make the multi-node fleet trustworthy:
//!
//! 1. **Single-pool parity** — a 1-node fleet with zero hop latency, no
//!    autoscaler and no spot faults is *byte-identical* to the plain
//!    [`RealignService`] on the same seed: responses, rejections,
//!    counters, makespan bits and the JSON export all match. The fleet
//!    layer adds routing, scaling and fault machinery without perturbing
//!    a single event on the degenerate topology.
//! 2. **Determinism** — at 2, 4 and 8 nodes, same-seed runs are
//!    byte-identical, and the oracle pre-warm thread count
//!    (`ServeConfig::threads`, the knob `IR_THREADS` maps to) changes
//!    nothing. Routing is also conservative: every offered request is
//!    accounted for (completed + rejected) at every node count, and the
//!    response *payloads* (consensus, realigned count) for a given
//!    request id are topology-invariant.

use std::sync::OnceLock;

use ir_system::fpga::FaultRates;
use ir_system::serve::{
    FaultInjection, FleetConfig, FleetReport, FleetService, RealignService, Request, ServeConfig,
    ServiceReport,
};
use ir_system::workloads::{ArrivalProcess, WorkloadConfig, WorkloadGenerator};

const WORKLOAD_SEED: u64 = 77;
const ARRIVAL_SEED: u64 = 13;
const FAULT_SEED: u64 = 5;
const REQUESTS: usize = 24;
const RATE_RPS: f64 = 20_000.0;

fn requests() -> Vec<Request> {
    let targets = WorkloadGenerator::new(WorkloadConfig {
        seed: WORKLOAD_SEED,
        scale: 1e-4,
        ..WorkloadConfig::default()
    })
    .targets(REQUESTS, WORKLOAD_SEED);
    let times = ArrivalProcess::poisson(ARRIVAL_SEED, RATE_RPS).times(targets.len());
    targets
        .into_iter()
        .zip(times)
        .enumerate()
        .map(|(i, (t, at))| Request::new(i as u64, at, t))
        .collect()
}

fn node_config(threads: usize) -> ServeConfig {
    ServeConfig {
        threads,
        // Faults on: parity must hold with the full resilience layer and
        // per-shard fault RNGs engaged, not just on the clean path.
        faults: Some(FaultInjection {
            seed: FAULT_SEED,
            rates: FaultRates::uniform(0.05),
        }),
        ..ServeConfig::default()
    }
}

fn run_single(threads: usize) -> ServiceReport {
    RealignService::new(node_config(threads))
        .expect("valid config")
        .run(requests())
        .expect("single-pool run succeeds")
}

fn run_fleet(nodes: usize, threads: usize) -> FleetReport {
    let mut fleet = FleetService::new(FleetConfig {
        nodes,
        node: node_config(threads),
        ..FleetConfig::default()
    })
    .expect("valid fleet config");
    fleet.run(requests()).expect("fleet run succeeds")
}

fn baseline_single() -> &'static ServiceReport {
    static BASELINE: OnceLock<ServiceReport> = OnceLock::new();
    BASELINE.get_or_init(|| run_single(1))
}

/// Contract 1: the 1-node fleet replays the single-pool event sequence
/// exactly — node 0's report is byte-identical to `RealignService::run`.
#[test]
fn one_node_fleet_matches_single_pool_bitwise() {
    let single = baseline_single();
    let fleet = run_fleet(1, 1);
    assert_eq!(fleet.node_reports.len(), 1);
    let node = &fleet.node_reports[0];

    assert_eq!(node.responses, single.responses, "responses diverge");
    assert_eq!(node.rejections, single.rejections, "rejections diverge");
    assert_eq!(
        node.makespan_s.to_bits(),
        single.makespan_s.to_bits(),
        "makespan bits diverge"
    );
    assert_eq!(node.batches, single.batches);

    let fleet_counters: Vec<_> = node.counters.counters().collect();
    let single_counters: Vec<_> = single.counters.counters().collect();
    assert_eq!(fleet_counters, single_counters, "counters diverge");
    let fleet_gauges: Vec<_> = node.counters.gauges().collect();
    let single_gauges: Vec<_> = single.counters.gauges().collect();
    assert_eq!(fleet_gauges, single_gauges, "gauges diverge");

    assert_eq!(
        node.to_json(),
        single.to_json(),
        "per-node JSON export diverges from the single pool"
    );

    // No fleet machinery fired on the degenerate topology.
    for key in [
        "fleet/rerouted",
        "fleet/drained",
        "fleet/lost_work_ms",
        "fleet/interruptions",
        "fleet/scale_ups",
        "fleet/scale_downs",
        "fleet/hops",
    ] {
        assert_eq!(fleet.counters.counter(key), 0, "{key} fired in parity run");
    }
    assert_eq!(fleet.completed(), single.completed());
    assert_eq!(fleet.makespan_s.to_bits(), single.makespan_s.to_bits());
}

/// Contract 2a: same-seed fleet runs are byte-identical at every node
/// count, including the JSON export.
#[test]
fn same_seed_fleet_runs_are_identical_at_2_4_8_nodes() {
    for nodes in [2, 4, 8] {
        let a = run_fleet(nodes, 1);
        let b = run_fleet(nodes, 1);
        for (ra, rb) in a.node_reports.iter().zip(&b.node_reports) {
            assert_eq!(ra.responses, rb.responses, "{nodes}-node responses");
            assert_eq!(ra.rejections, rb.rejections, "{nodes}-node rejections");
        }
        let ca: Vec<_> = a.counters.counters().collect();
        let cb: Vec<_> = b.counters.counters().collect();
        assert_eq!(ca, cb, "{nodes}-node fleet counters");
        assert_eq!(a.to_json(), b.to_json(), "{nodes}-node fleet JSON");
    }
}

/// Contract 2b: the oracle pre-warm thread count is invisible to the
/// fleet, exactly as it is to the single pool.
#[test]
fn thread_count_does_not_change_fleet_responses() {
    for nodes in [2, 4] {
        let single_threaded = run_fleet(nodes, 1);
        let multi_threaded = run_fleet(nodes, 4);
        for (ra, rb) in single_threaded
            .node_reports
            .iter()
            .zip(&multi_threaded.node_reports)
        {
            assert_eq!(ra.responses, rb.responses, "{nodes}-node thread variance");
            assert_eq!(ra.rejections, rb.rejections);
        }
        assert_eq!(single_threaded.to_json(), multi_threaded.to_json());
    }
}

/// Routing conservation and payload invariance: every offered request is
/// accounted for at every node count, ids are served exactly once, and a
/// given request's realignment result does not depend on which node
/// served it.
#[test]
fn routing_conserves_requests_and_payloads_across_topologies() {
    let single = baseline_single();
    for nodes in [2, 4, 8] {
        let fleet = run_fleet(nodes, 1);
        assert_eq!(
            fleet.offered() as usize,
            REQUESTS,
            "{nodes}-node fleet lost or duplicated requests"
        );
        let by_id = fleet.responses_by_id();
        let mut ids: Vec<u64> = by_id.iter().map(|r| r.id).collect();
        ids.dedup();
        assert_eq!(
            ids.len(),
            by_id.len(),
            "{nodes}-node duplicate response ids"
        );
        for resp in by_id {
            let golden = single
                .responses
                .iter()
                .find(|r| r.id == resp.id)
                .expect("id served by the single pool");
            assert_eq!(
                resp.best_consensus, golden.best_consensus,
                "request {} consensus depends on topology",
                resp.id
            );
            assert_eq!(
                resp.realigned, golden.realigned,
                "request {} realigned count depends on topology",
                resp.id
            );
        }
        // The fleet spread work across nodes (the router is not a
        // constant function) once there is more than one node.
        let serving_nodes = fleet
            .node_reports
            .iter()
            .filter(|r| !r.responses.is_empty())
            .count();
        assert!(
            serving_nodes > 1,
            "{nodes}-node fleet routed everything to one node"
        );
    }
}

/// The fleet JSON export carries the cost model and parses as JSON.
#[test]
fn fleet_json_export_carries_cost_model() {
    let fleet = run_fleet(2, 1);
    let json = fleet.to_json();
    let doc = ir_system::telemetry::json::parse_json(&json).expect("fleet JSON parses");
    for key in [
        "nodes",
        "peak_nodes",
        "completed",
        "throughput_rps",
        "latency_p99_us",
        "slo_attainment",
        "node_seconds",
        "cost_usd",
        "cost_per_million_targets_usd",
        "counters",
        "per_node",
    ] {
        assert!(doc.get(key).is_some(), "fleet JSON misses {key}");
    }
    assert!(fleet.cost_usd() > 0.0, "nodes billed zero seconds");
    assert!(
        fleet.cost_per_million_targets_usd() > 0.0,
        "cost per million targets must be positive for a non-empty run"
    );
    let per_node_cost = fleet.node_seconds();
    assert!(
        (per_node_cost - fleet.node_active_s.iter().sum::<f64>()).abs() < 1e-12,
        "node_seconds disagrees with the per-node breakdown"
    );
}
