//! Shape-family workload contracts: every family generates through the
//! same [`ir_system::workloads::WorkloadProfile`] API, stays inside its
//! declared shape envelope, generates deterministically, and round-trips
//! through the per-shape accelerator derivation in `ir-fpga` — including
//! the rejection paths for shapes no unit configuration can hold.

use ir_system::fpga::{derive_shape_config, BufferGeometry, FpgaError, FpgaParams};
use ir_system::genome::TargetLimits;
use ir_system::workloads::{ShapeFamily, WorkloadProfile};

const SCALE: f64 = 1e-4;
const SEED: u64 = 0xFA111E5;

/// Family target counts kept small: long-read and deep-panel targets are
/// orders of magnitude heavier than short-read ones, and these tests only
/// assert shape properties, never run the datapath.
const COUNT: usize = 12;

#[test]
fn every_family_generates_through_the_profile_api() {
    for &family in ShapeFamily::ALL.iter() {
        let profile = WorkloadProfile::of(family);
        assert_eq!(profile.family(), family);
        let targets = profile.generator(SCALE).targets(COUNT, SEED);
        assert_eq!(targets.len(), COUNT, "{family}");
        assert_eq!(family.name().parse::<ShapeFamily>().unwrap(), family);
    }
}

#[test]
fn generated_targets_stay_inside_the_family_envelope() {
    for &family in ShapeFamily::ALL.iter() {
        let profile = family.profile();
        let limits = profile.limits();
        let geometry = BufferGeometry::from_limits(&limits);
        for t in profile.generator(SCALE).targets(COUNT, SEED) {
            let shape = t.shape();
            assert!(
                shape.num_consensuses <= limits.max_consensuses
                    && shape.num_reads <= limits.max_reads
                    && shape
                        .consensus_lens
                        .iter()
                        .all(|&l| l <= limits.max_consensus_len)
                    && shape.read_lens.iter().all(|&l| l <= limits.max_read_len),
                "{family} target escapes its envelope: {shape:?}"
            );
            assert!(
                geometry.holds(&shape),
                "{family} geometry rejects its own target"
            );
        }
    }
}

#[test]
fn family_stats_match_their_sequencing_regime() {
    // Worst-case comparisons per read scale with (consensus − read) ×
    // read length, so each family's stats must reflect its regime:
    // long reads are kilobases, deep panels pile hundreds of short reads
    // on one locus, metagenomic targets are thin.
    let stats = |family: ShapeFamily| {
        let targets = family.profile().generator(SCALE).targets(COUNT, SEED);
        let reads: u64 = targets.iter().map(|t| t.shape().num_reads as u64).sum();
        let max_read_len = targets
            .iter()
            .flat_map(|t| t.shape().read_lens)
            .max()
            .unwrap_or(0);
        (reads as f64 / COUNT as f64, max_read_len)
    };

    let (short_reads, short_len) = stats(ShapeFamily::ShortReadGermline);
    let (long_reads, long_len) = stats(ShapeFamily::LongRead);
    let (panel_reads, panel_len) = stats(ShapeFamily::DeepPanel);
    let (meta_reads, meta_len) = stats(ShapeFamily::Metagenomic);

    assert!(long_len > 4 * short_len, "long reads are kilobase-scale");
    assert!(long_reads <= 8.0, "long-read targets hold few reads");
    assert!(
        panel_reads > 4.0 * short_reads,
        "deep panels stack coverage: {panel_reads} vs {short_reads}"
    );
    assert!(panel_len < short_len, "panel reads are short amplicons");
    assert!(meta_reads < short_reads, "metagenomic coverage is thin");
    assert!(meta_len < short_len);
}

#[test]
fn same_seed_generation_is_bitwise_deterministic() {
    for &family in ShapeFamily::ALL.iter() {
        let profile = family.profile();
        let a = profile.generator(SCALE).targets(COUNT, SEED);
        let b = profile.generator(SCALE).targets(COUNT, SEED);
        assert_eq!(a, b, "{family} generation depends on hidden state");
        let c = profile.generator(SCALE).targets(COUNT, SEED + 1);
        assert_ne!(a, c, "{family} ignores its seed");
    }
}

#[test]
fn every_family_derives_a_valid_unit_configuration() {
    for &family in ShapeFamily::ALL.iter() {
        let cfg = derive_shape_config(&family.profile().limits(), &FpgaParams::iracc())
            .unwrap_or_else(|e| panic!("{family} must derive: {e}"));
        assert!(cfg.params.num_units >= 1);
        assert!(cfg.params.num_units <= cfg.max_units);
        assert!(cfg.resources.fits, "{family} derived config must route");
        assert_eq!(
            cfg.geometry,
            BufferGeometry::from_limits(&family.profile().limits())
        );
    }

    // The deployed hardware's envelope reproduces the paper's 32-unit
    // fabric; the deep-panel envelope costs units (its read buffers
    // dominate BRAM); the metagenomic envelope frees BRAM headroom.
    let units = |family: ShapeFamily| {
        derive_shape_config(&family.profile().limits(), &FpgaParams::iracc())
            .unwrap()
            .params
            .num_units
    };
    assert_eq!(units(ShapeFamily::ShortReadGermline), 32);
    assert!(units(ShapeFamily::DeepPanel) < 32);
    assert_eq!(units(ShapeFamily::Metagenomic), 32);
}

#[test]
fn derivation_rejects_shapes_no_config_can_hold() {
    // ISA field overflow: consensus length beyond ir_set_len's u16.
    let err = derive_shape_config(
        &TargetLimits {
            max_consensus_len: 70_000,
            ..TargetLimits::HARDWARE
        },
        &FpgaParams::iracc(),
    )
    .unwrap_err();
    assert!(matches!(err, FpgaError::ShapeUnsupported { .. }), "{err}");

    // Geometry that passes every ISA width but exceeds the VU9P's BRAM
    // at even a single unit.
    let err = derive_shape_config(
        &TargetLimits {
            max_consensuses: 255,
            max_reads: 50_000,
            max_consensus_len: 4_096,
            max_read_len: 256,
        },
        &FpgaParams::iracc(),
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            FpgaError::ShapeUnsupported {
                what: "per-unit BRAM36 blocks",
                ..
            }
        ),
        "{err}"
    );
}
