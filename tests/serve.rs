//! Deterministic end-to-end test of the batched realignment service.
//!
//! Runs a seeded workload through [`ir_system::serve::RealignService`]
//! with fault injection ON and pins the three contracts the serving
//! layer makes:
//!
//! 1. **Functional parity** — every response carries exactly the result
//!    the direct [`AcceleratedSystem`] path produces for the same target
//!    (the resilience layer recovers injected faults to the golden
//!    answer; batching and sharding are invisible to correctness).
//! 2. **Determinism** — two same-config same-seed runs produce equal
//!    reports, and the oracle pre-warm thread count does not change a
//!    single response.
//! 3. **Observability** — the `resilience/*` counters in the report
//!    mirror [`ResilienceReport::record_into`] of the aggregated report,
//!    and the `serve/*` counters agree with the report's own tallies.
//!
//! Case counts here are fixed (not proptest): the workload is one seeded
//! stream, sized to span multiple batches on every shard. The baseline
//! report is computed once and shared across tests (cycle-level runs are
//! the dominant cost under the dev profile).

use std::sync::OnceLock;

use ir_system::fpga::{AcceleratedSystem, FaultRates};
use ir_system::serve::{FaultInjection, RealignService, Request, ServeConfig, ServiceReport};
use ir_system::telemetry::PerfCounters;
use ir_system::workloads::{ArrivalProcess, WorkloadConfig, WorkloadGenerator};

const WORKLOAD_SEED: u64 = 77;
const ARRIVAL_SEED: u64 = 13;
const FAULT_SEED: u64 = 5;
const REQUESTS: usize = 24;

fn workload() -> Vec<ir_system::genome::RealignmentTarget> {
    let generator = WorkloadGenerator::new(WorkloadConfig {
        seed: WORKLOAD_SEED,
        scale: 1e-4,
        ..WorkloadConfig::default()
    });
    generator.targets(REQUESTS, WORKLOAD_SEED)
}

fn faulty_config(threads: usize) -> ServeConfig {
    ServeConfig {
        threads,
        // Well above the default 1e-3: a short stream must reliably
        // exercise the retry/fallback machinery, not just ride clean.
        faults: Some(FaultInjection {
            seed: FAULT_SEED,
            rates: FaultRates::uniform(0.05),
        }),
        ..ServeConfig::default()
    }
}

fn requests(targets: &[ir_system::genome::RealignmentTarget], rate_rps: f64) -> Vec<Request> {
    let times = ArrivalProcess::poisson(ARRIVAL_SEED, rate_rps).times(targets.len());
    targets
        .iter()
        .zip(times)
        .enumerate()
        .map(|(i, (t, at))| Request::new(i as u64, at, t.clone()))
        .collect()
}

fn run_service(config: ServeConfig, rate_rps: f64) -> ServiceReport {
    let targets = workload();
    let mut service = RealignService::new(config).expect("valid config");
    service
        .run(requests(&targets, rate_rps))
        .expect("service run succeeds")
}

/// The canonical faulty single-thread run, shared across tests.
fn baseline() -> &'static ServiceReport {
    static BASELINE: OnceLock<ServiceReport> = OnceLock::new();
    BASELINE.get_or_init(|| run_service(faulty_config(1), 20_000.0))
}

/// Contract 1: with fault injection on, every served response matches the
/// direct accelerator path bitwise (best consensus and realigned count).
#[test]
fn faulty_service_matches_direct_system_path() {
    let targets = workload();
    let config = faulty_config(1);
    let direct = AcceleratedSystem::new(config.params, config.scheduling)
        .expect("valid params")
        .run(&targets);

    let report = baseline();
    assert_eq!(
        report.completed() as usize,
        targets.len(),
        "watermark must admit the whole stream at this rate"
    );
    assert!(
        report.resilience.faults.total() > 0,
        "5% uniform fault rates over {REQUESTS} targets must inject something"
    );
    for response in report.responses_by_id() {
        let golden = &direct.results[response.id as usize];
        assert_eq!(
            response.best_consensus,
            golden.best_consensus(),
            "request {} consensus diverged from the direct path",
            response.id
        );
        assert_eq!(
            response.realigned,
            golden.realigned_count(),
            "request {} realigned-count diverged from the direct path",
            response.id
        );
    }
}

/// Contract 2a: same config + same seed ⇒ byte-equal responses,
/// rejections and counters.
#[test]
fn same_seed_runs_are_identical() {
    let a = baseline();
    let b = run_service(faulty_config(1), 20_000.0);
    assert_eq!(a.responses, b.responses);
    assert_eq!(a.rejections, b.rejections);
    assert_eq!(a.makespan_s.to_bits(), b.makespan_s.to_bits());
    assert_eq!(a.batches, b.batches);
    let counters_a: Vec<_> = a.counters.counters().collect();
    let counters_b: Vec<_> = b.counters.counters().collect();
    assert_eq!(counters_a, counters_b);
}

/// Contract 2b: the oracle pre-warm thread count is invisible — the only
/// threading in the serving path merges in deterministic index order.
#[test]
fn thread_count_does_not_change_responses() {
    let single = baseline();
    let multi = run_service(faulty_config(4), 20_000.0);
    assert_eq!(single.responses, multi.responses);
    assert_eq!(single.rejections, multi.rejections);
    assert_eq!(single.batches, multi.batches);
}

/// Contract 3: the report's `resilience/*` counters are exactly what
/// `record_into` of the aggregated report writes, and the `serve/*`
/// counters agree with the report tallies.
#[test]
fn counters_mirror_reports() {
    let report = baseline();

    let mut mirrored = PerfCounters::default();
    report.resilience.record_into(&mut mirrored);
    let expected: Vec<(String, u64)> = mirrored
        .counters_with_prefix("resilience/")
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    assert!(!expected.is_empty(), "record_into writes resilience keys");
    let actual: Vec<(String, u64)> = report
        .counters
        .counters_with_prefix("resilience/")
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    assert_eq!(
        actual, expected,
        "resilience counters must mirror the report"
    );

    assert_eq!(
        report.counters.counter("serve/completed"),
        report.completed()
    );
    assert_eq!(
        report.counters.counter("serve/rejected"),
        report.rejections.len() as u64
    );
    assert_eq!(report.counters.counter("serve/batches"), report.batches);
    assert_eq!(
        report.counters.counter("serve/accepted"),
        report.completed(),
        "every accepted request completes (no shutdown drops)"
    );
}

/// Request-level tracing: every response's span breakdown tiles its
/// end-to-end latency, the `serve/span_*_us` histograms cover every
/// completion, and the SLO counters partition the completed set.
#[test]
fn span_breakdown_tiles_latency_and_feeds_histograms() {
    let report = baseline();
    for r in &report.responses {
        assert!(
            r.arrival_s <= r.ready_s,
            "request {} ready before arrival",
            r.id
        );
        assert!(
            r.ready_s <= r.dispatch_s,
            "request {} dispatched before ready",
            r.id
        );
        assert!(
            r.dispatch_s < r.completion_s,
            "request {} empty execution",
            r.id
        );
        let spans = r.admission_wait_s() + r.batch_wait_s() + r.shard_wait_s() + r.service_s();
        assert!(
            (spans - r.latency_s()).abs() < 1e-12,
            "request {} spans do not tile its latency",
            r.id
        );
    }
    for key in [
        "serve/span_admission_us",
        "serve/span_batch_wait_us",
        "serve/span_shard_wait_us",
        "serve/span_exec_us",
        "serve/span_total_us",
    ] {
        let h = report.counters.histogram(key).unwrap_or_else(|| {
            panic!("missing histogram {key}");
        });
        assert_eq!(h.count, report.completed(), "{key} misses completions");
        assert!(h.percentile(99.0).is_some());
    }
    let met = report.counters.counter("serve/slo_met");
    let missed = report.counters.counter("serve/slo_missed");
    assert_eq!(
        met + missed,
        report.completed(),
        "SLO counters must partition"
    );
    let attainment = report.slo_attainment();
    assert!((0.0..=1.0).contains(&attainment));
    assert!(
        (attainment - met as f64 / report.completed() as f64).abs() < 1e-12,
        "slo_attainment disagrees with the counters"
    );
}

/// The per-shard Perfetto trace carries one compute span per dispatched
/// batch, on shard tracks, and serializes to valid Chrome trace JSON.
/// The structured JSON report export parses too, and both artifacts are
/// byte-identical across same-seed runs.
#[test]
fn trace_and_json_exports_are_valid_and_deterministic() {
    let report = baseline();
    assert_eq!(
        report.trace.events.len() as u64,
        report.batches,
        "one span per dispatched batch"
    );
    for e in &report.trace.events {
        assert!(
            matches!(e.track, ir_system::telemetry::Track::Shard(_)),
            "serve spans belong on shard tracks"
        );
    }
    let chrome = report.trace.to_chrome_json();
    ir_system::telemetry::json::validate_json(&chrome).expect("chrome trace parses");
    assert!(chrome.contains("\"shard 0\""));

    let json = report.to_json();
    let doc = ir_system::telemetry::json::parse_json(&json).expect("report JSON parses");
    for key in [
        "completed",
        "throughput_rps",
        "latency_p99_us",
        "slo_attainment",
        "counters",
        "histograms",
    ] {
        assert!(doc.get(key).is_some(), "report JSON misses {key}");
    }
    assert_eq!(
        doc.get("completed").and_then(|v| v.as_f64()),
        Some(report.completed() as f64)
    );

    let again = run_service(faulty_config(1), 20_000.0);
    assert_eq!(again.to_json(), json, "report JSON must be seed-stable");
    assert_eq!(
        again.trace.to_chrome_json(),
        chrome,
        "chrome trace must be seed-stable"
    );
}

/// Admission control: a tiny watermark at an overwhelming offered rate
/// rejects with a positive retry-after hint, and completed + rejected
/// still accounts for every offered request.
#[test]
fn overload_rejects_with_retry_after() {
    let config = ServeConfig {
        admission_watermark: 4,
        ..faulty_config(1)
    };
    let report = run_service(config, 5_000_000.0);
    assert_eq!(report.offered() as usize, REQUESTS);
    assert!(
        !report.rejections.is_empty(),
        "4-deep watermark at 5M req/s must shed load"
    );
    for rejection in &report.rejections {
        assert!(
            rejection.retry_after_s > 0.0,
            "rejection {} carries no backpressure hint",
            rejection.id
        );
    }
    // Shed load is observable in the counters too.
    assert_eq!(
        report.counters.counter("serve/rejected"),
        report.rejections.len() as u64
    );
}
