//! End-to-end integration tests: synthetic workloads through the full
//! accelerated system, checked against the golden model and the paper's
//! qualitative claims.

use ir_system::baselines::adam::AdamModel;
use ir_system::baselines::gatk::GatkModel;
use ir_system::core::IndelRealigner;
use ir_system::fpga::hls::hls_system;
use ir_system::fpga::{AcceleratedSystem, FpgaParams, Scheduling};
use ir_system::genome::Chromosome;
use ir_system::workloads::{scheduling_toy_targets, WorkloadConfig, WorkloadGenerator};

fn test_workload() -> Vec<ir_system::genome::RealignmentTarget> {
    let generator = WorkloadGenerator::new(WorkloadConfig {
        scale: 1e-5,
        read_len: 40,
        min_consensus_len: 56,
        max_consensus_len: 320,
        ..WorkloadConfig::default()
    });
    generator.targets(48, 0xe2e)
}

#[test]
fn accelerated_system_is_functionally_identical_to_software() {
    let targets = test_workload();
    let golden = IndelRealigner::new();
    for scheduling in [Scheduling::Synchronous, Scheduling::Asynchronous] {
        for params in [FpgaParams::serial(), FpgaParams::iracc()] {
            let system = AcceleratedSystem::new(params, scheduling).expect("fits");
            let run = system.run(&targets);
            for (result, target) in run.results.iter().zip(&targets) {
                let want = golden.realign(target);
                assert_eq!(result.best, want.best_consensus());
                assert_eq!(result.outcomes, want.outcomes());
                assert_eq!(&result.grid, want.grid());
            }
        }
    }
}

#[test]
fn timing_invariants_hold() {
    let targets = test_workload();
    for scheduling in [Scheduling::Synchronous, Scheduling::Asynchronous] {
        let system = AcceleratedSystem::new(FpgaParams::iracc(), scheduling).expect("fits");
        let run = system.run(&targets);
        assert!(run.wall_time_s > 0.0);
        assert!(run.utilization() > 0.0 && run.utilization() <= 1.0 + 1e-9);
        assert!(run.dma_fraction() >= 0.0 && run.dma_fraction() < 1.0);
        // No unit can be busier than the wall clock.
        for &busy in &run.unit_busy_s {
            assert!(busy <= run.wall_time_s + 1e-12);
        }
        // The wall clock cannot beat perfectly parallel compute.
        let total_busy: f64 = run.unit_busy_s.iter().sum();
        assert!(run.wall_time_s >= total_busy / run.unit_busy_s.len() as f64 - 1e-12);
    }
}

#[test]
fn async_wins_on_real_workloads() {
    let targets = test_workload();
    let sync = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Synchronous)
        .expect("fits")
        .run(&targets);
    let asynchronous = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Asynchronous)
        .expect("fits")
        .run(&targets);
    assert!(
        asynchronous.wall_time_s <= sync.wall_time_s * 1.001,
        "async {} vs sync {}",
        asynchronous.wall_time_s,
        sync.wall_time_s
    );
}

#[test]
fn figure7_toy_shows_the_scheduling_gap() {
    let targets = scheduling_toy_targets();
    let params = FpgaParams {
        num_units: 4,
        ..FpgaParams::serial()
    };
    let sync = AcceleratedSystem::new(params, Scheduling::Synchronous)
        .expect("fits")
        .run(&targets);
    let asynchronous = AcceleratedSystem::new(params, Scheduling::Asynchronous)
        .expect("fits")
        .run(&targets);
    // The paper's toy: async finishes strictly earlier and keeps units busier.
    assert!(asynchronous.wall_time_s < sync.wall_time_s * 0.95);
    assert!(asynchronous.utilization() > sync.utilization());
}

#[test]
fn speedup_ordering_matches_figure9() {
    // GATK3 (slowest software) < ADAM < HLS < serial async < IRACC.
    let targets = test_workload();
    let shapes: Vec<_> = targets.iter().map(|t| t.shape()).collect();

    let gatk_s = GatkModel::default().run_shapes(&shapes).wall_time_s;
    let adam_s = AdamModel::default()
        .without_startup()
        .run_shapes(&shapes)
        .wall_time_s;
    let hls_s = hls_system().expect("fits").run(&targets).wall_time_s;
    let serial_s = AcceleratedSystem::new(FpgaParams::serial(), Scheduling::Asynchronous)
        .expect("fits")
        .run(&targets)
        .wall_time_s;
    let iracc_s = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Asynchronous)
        .expect("fits")
        .run(&targets)
        .wall_time_s;

    assert!(adam_s < gatk_s, "ADAM beats GATK3");
    assert!(hls_s < gatk_s, "even the HLS build beats GATK3");
    // serial-vs-HLS is genuinely close at this tiny scale (48 targets do
    // not keep 32 units busy); the bench harness checks that ordering at
    // realistic target counts.
    assert!(iracc_s < serial_s, "data parallelism wins");
    assert!(iracc_s < hls_s, "the Chisel datapath crushes the HLS build");
}

#[test]
fn per_chromosome_workloads_scale_with_chromosome_size() {
    let generator = WorkloadGenerator::new(WorkloadConfig {
        scale: 1e-4,
        read_len: 40,
        min_consensus_len: 56,
        max_consensus_len: 320,
        ..WorkloadConfig::default()
    });
    let ch2 = generator.chromosome(Chromosome::Autosome(2));
    let ch21 = generator.chromosome(Chromosome::Autosome(21));
    assert!(ch2.targets.len() > 5 * ch21.targets.len());
}

#[test]
fn traced_timeline_is_consistent_with_wall_time() {
    let targets = scheduling_toy_targets();
    let params = FpgaParams {
        num_units: 4,
        ..FpgaParams::serial()
    };
    let run = AcceleratedSystem::new(params, Scheduling::Asynchronous)
        .expect("fits")
        .run_telemetry(&targets);
    assert!(!run.timeline.is_empty());
    let latest = run.timeline.iter().map(|e| e.end_s).fold(0.0f64, f64::max);
    assert!(latest <= run.wall_time_s + 1e-9);
    // Compute intervals on one unit never overlap.
    for unit in 0..4 {
        let mut events: Vec<_> = run
            .timeline
            .iter()
            .filter(|e| e.unit == unit && e.phase == ir_system::fpga::TimelinePhase::Compute)
            .collect();
        events.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
        for pair in events.windows(2) {
            assert!(pair[0].end_s <= pair[1].start_s + 1e-12);
        }
    }
}
