//! Integration tests pinning the paper's published numbers that the
//! reproduction must preserve exactly (worked example, complexity
//! arithmetic, resource fit, pricing) — the cheap anchors; the statistical
//! anchors (Figure 9) live in the bench harness.

use ir_system::cloud::{
    cost_efficiency_ratio, gpu_speedup_needed, run_cost_usd, CostedRun, Instance,
};
use ir_system::core::complexity;
use ir_system::core::IndelRealigner;
use ir_system::fpga::resources;
use ir_system::fpga::{ClockRecipe, FpgaParams};
use ir_system::workloads::figure4_target;

#[test]
fn figure4_worked_example_is_reproduced_exactly() {
    let result = IndelRealigner::new().realign(&figure4_target());
    // Grid row for the reference (Figure 4 steps 1–3).
    assert_eq!(result.grid().get(0, 0).whd, 30);
    assert_eq!(result.grid().get(0, 1).whd, 20);
    assert_eq!(result.grid().get(1, 0).whd, 0);
    assert_eq!(result.grid().get(1, 1).whd, 20);
    assert_eq!(result.grid().get(2, 0).whd, 55);
    assert_eq!(result.grid().get(2, 1).whd, 30);
    // Scores and selection (step 4): REF vs cons1 = 30, vs cons2 = 35.
    assert_eq!(result.scores(), &[0, 30, 35]);
    assert_eq!(result.best_consensus(), 1);
    // Realignment (step 5): read 0 updates, read 1 does not.
    assert_eq!(result.read_outcome(0).new_pos(), Some(23));
    assert!(!result.read_outcome(1).realigned());
}

#[test]
fn section2c_worst_case_comparisons() {
    assert_eq!(complexity::paper_worst_case(), 3_684_352_000);
}

#[test]
fn abstract_peak_throughput() {
    assert_eq!(
        FpgaParams::serial().peak_comparisons_per_second(),
        4_000_000_000
    );
}

#[test]
fn section3a_resource_fit() {
    // 32 units fit at the published utilizations; 33 do not.
    let report = resources::report(32, 32);
    assert!(report.fits);
    assert!((report.bram_utilization - 0.876).abs() < 0.01);
    assert!((report.lut_utilization - 0.325).abs() < 0.01);
    assert_eq!(resources::max_units(32), 32);
}

#[test]
fn section4_frequency_conclusion() {
    assert!(resources::timing_slack_ns(ClockRecipe::Mhz125, 32) > 0.0);
    assert!(resources::timing_slack_ns(ClockRecipe::Mhz250, 32) < 0.0);
    assert!(resources::routing_fraction(32) > 0.9);
}

#[test]
fn figure9_right_costs() {
    // 42 h of GATK3 on the r3.2xlarge ≈ $28; 31.5 min of IRACC ≈ 87¢.
    let gatk = CostedRun::new("GATK3", Instance::r3_2xlarge(), 42.0 * 3600.0);
    let iracc = CostedRun::new("IR ACC", Instance::f1_2xlarge(), 31.5 * 60.0);
    assert!((gatk.cost_usd() - 27.9).abs() < 0.2);
    assert!(iracc.cost_usd() < 1.0);
    let ratio = cost_efficiency_ratio(&gatk, &iracc);
    assert!((28.0..=36.0).contains(&ratio), "cost efficiency {ratio}");
}

#[test]
fn section5b_gpu_bar() {
    // At the paper's 80×, a $3.06/h GPU must hit 148.36× to break even.
    assert!((gpu_speedup_needed(80.0) - 148.36).abs() < 0.05);
}

#[test]
fn table2_pricing() {
    assert!((run_cost_usd(&Instance::r3_2xlarge(), 3600.0) - 0.665).abs() < 1e-9);
    assert!((run_cost_usd(&Instance::f1_2xlarge(), 3600.0) - 1.65).abs() < 1e-9);
}

#[test]
fn hardware_limits_match_the_appendix() {
    use ir_system::genome::TargetLimits;
    let limits = TargetLimits::HARDWARE;
    assert_eq!(limits.max_consensuses, 32); // "up to 32 consensuses per target"
    assert_eq!(limits.max_reads, 256); // "a maximum of 256 reads per target"
    assert_eq!(limits.max_consensus_len, 2048); // "a maximum of 2048 base pairs"
    assert_eq!(limits.max_read_len, 256);
}
