//! Resilience-layer integration tests: fault-free runs are bit-identical
//! to the plain entry points, faulted runs always complete under the
//! default policy, and — the central differential property — a resilient
//! run under *any* seeded fault plan either fails with an explicit error
//! or produces output byte-identical to the fault-free golden run. There
//! is no third outcome: silent corruption cannot survive full read-back
//! verification.

use proptest::prelude::*;

use ir_system::core::IndelRealigner;
use ir_system::fpga::driver::{HostDriver, ResiliencePolicy};
use ir_system::fpga::fault::{FaultPlan, FaultRates};
use ir_system::fpga::layout::encode_outputs;
use ir_system::fpga::{AcceleratedSystem, FpgaParams, Scheduling};
use ir_system::genome::{Base, Qual, Read, RealignmentTarget, Sequence};
use ir_system::workloads::{WorkloadConfig, WorkloadGenerator};

fn workload(count: usize) -> Vec<RealignmentTarget> {
    WorkloadGenerator::new(WorkloadConfig {
        scale: 1e-4,
        read_len: 62,
        min_consensus_len: 80,
        max_consensus_len: 510,
        ..WorkloadConfig::default()
    })
    .targets(count, 0xC0FFEE)
}

/// The acceptance-criterion regression: `run_resilient` with an inert
/// plan must be bit-identical to `run` — same wall clock, same cycles,
/// same outcomes, same per-unit busy times — with a clean report.
#[test]
fn inert_plan_system_run_is_bit_identical() {
    let targets = workload(48);
    for sched in [Scheduling::Synchronous, Scheduling::Asynchronous] {
        let system = AcceleratedSystem::new(FpgaParams::iracc(), sched).expect("iracc fits");
        let plain = system.run(&targets);
        let mut plan = FaultPlan::none();
        let resilient = system.run_resilient(&targets, &mut plan, &ResiliencePolicy::default());

        assert_eq!(resilient.wall_time_s, plain.wall_time_s);
        assert_eq!(resilient.dma_busy_s, plain.dma_busy_s);
        assert_eq!(resilient.command_s, plain.command_s);
        assert_eq!(resilient.compute_cycles, plain.compute_cycles);
        assert_eq!(resilient.comparisons, plain.comparisons);
        assert_eq!(resilient.unit_busy_s, plain.unit_busy_s);
        assert_eq!(resilient.results.len(), plain.results.len());
        for (a, b) in resilient.results.iter().zip(plain.results.iter()) {
            assert_eq!(a.outcomes, b.outcomes);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.best, b.best);
        }
        let report = resilient
            .resilience
            .expect("resilient run attaches a report");
        assert!(report.is_clean(), "inert plan must leave a clean report");
        assert_eq!(plan.counts().total(), 0, "inert plan draws nothing");
    }
}

/// Same regression at the driver level: an inert plan through the
/// resilient path matches the plain `run_target` byte for byte.
#[test]
fn inert_plan_driver_run_matches_plain() {
    let targets = workload(12);
    let mut plain_driver = HostDriver::new(FpgaParams::iracc()).expect("fits");
    let mut resilient_driver = HostDriver::new(FpgaParams::iracc()).expect("fits");
    let mut plan = FaultPlan::none();
    let (runs, report) = resilient_driver
        .run_batch_resilient(&targets, &mut plan, &ResiliencePolicy::default())
        .expect("fault-free batch succeeds");
    assert!(report.is_clean());
    for (i, (target, resilient)) in targets.iter().zip(&runs).enumerate() {
        let plain = plain_driver
            .run_target(i % plain_driver.num_units(), target)
            .expect("plain run succeeds");
        assert_eq!(resilient.outcomes, plain.outcomes);
        assert_eq!(resilient.cycles, plain.cycles);
        assert!(!resilient.via_fallback);
    }
}

/// With faults at the default study rates and the default policy, every
/// target still completes and every shipped outcome is golden.
#[test]
fn default_rate_faults_every_target_completes() {
    let targets = workload(64);
    let golden = IndelRealigner::new();
    for sched in [Scheduling::Synchronous, Scheduling::Asynchronous] {
        let system = AcceleratedSystem::new(FpgaParams::iracc(), sched).expect("iracc fits");
        let mut plan = FaultPlan::with_default_rates(1234);
        let run = system.run_resilient(&targets, &mut plan, &ResiliencePolicy::default());
        assert_eq!(run.results.len(), targets.len());
        for (target, result) in targets.iter().zip(&run.results) {
            assert_eq!(
                encode_outputs(&result.outcomes, target.start_pos()),
                encode_outputs(&golden.realign_outcomes(target), target.start_pos()),
                "verify_rate 1.0 must not ship corruption"
            );
        }
        let report = run.resilience.expect("report attached");
        assert_eq!(report.faults, plan.counts());
    }
}

/// `run_resilient_with_oracle` is bitwise-identical to `run_resilient`:
/// the oracle memoizes only the fault-free datapath result, and every
/// injected fault mutates the per-attempt clone, never the cached entry —
/// whether the oracle starts cold, pre-warmed, or reused across seeds.
#[test]
fn resilient_with_oracle_matches_plain_resilient() {
    use ir_system::fpga::FunctionalOracle;
    let targets = workload(48);
    for sched in [Scheduling::Synchronous, Scheduling::Asynchronous] {
        let system = AcceleratedSystem::new(FpgaParams::iracc(), sched).expect("iracc fits");
        let mut warm = FunctionalOracle::new();
        warm.precompute(&targets, &FpgaParams::iracc(), 2);
        let mut cold = FunctionalOracle::new();
        for seed in [7u64, 1234] {
            let mut plan_a = FaultPlan::with_default_rates(seed);
            let plain = system.run_resilient(&targets, &mut plan_a, &ResiliencePolicy::default());
            for oracle in [&mut warm, &mut cold] {
                let mut plan_b = FaultPlan::with_default_rates(seed);
                let via = system.run_resilient_with_oracle(
                    &targets,
                    &mut plan_b,
                    &ResiliencePolicy::default(),
                    oracle,
                );
                assert_eq!(plain.wall_time_s.to_bits(), via.wall_time_s.to_bits());
                assert_eq!(plain.compute_cycles, via.compute_cycles);
                assert_eq!(plain.comparisons, via.comparisons);
                assert_eq!(plain.resilience, via.resilience);
                for (a, b) in plain.results.iter().zip(&via.results) {
                    assert_eq!(a.outcomes, b.outcomes);
                    assert_eq!(a.cycles, b.cycles);
                    assert_eq!(a.best, b.best);
                }
            }
        }
    }
}

/// The driver's batch path also always completes at default rates.
#[test]
fn default_rate_faults_driver_batch_completes() {
    let targets = workload(32);
    let golden = IndelRealigner::new();
    let mut driver = HostDriver::new(FpgaParams::iracc()).expect("fits");
    let mut plan = FaultPlan::with_default_rates(99);
    let (runs, _report) = driver
        .run_batch_resilient(&targets, &mut plan, &ResiliencePolicy::default())
        .expect("default-rate batch completes");
    assert_eq!(runs.len(), targets.len());
    for (target, run) in targets.iter().zip(&runs) {
        assert_eq!(
            encode_outputs(&run.outcomes, target.start_pos()),
            encode_outputs(&golden.realign_outcomes(target), target.start_pos())
        );
    }
}

fn base_strategy() -> impl Strategy<Value = Base> {
    prop_oneof![
        4 => Just(Base::A),
        4 => Just(Base::C),
        4 => Just(Base::G),
        4 => Just(Base::T),
        1 => Just(Base::N),
    ]
}

fn sequence_strategy(len: std::ops::RangeInclusive<usize>) -> impl Strategy<Value = Sequence> {
    prop::collection::vec(base_strategy(), len).prop_map(Sequence::new)
}

fn read_strategy(max_len: usize) -> impl Strategy<Value = Read> {
    (4usize..=max_len)
        .prop_flat_map(|n| {
            (
                prop::collection::vec(base_strategy(), n),
                prop::collection::vec(0u8..=60, n),
                0u64..100,
            )
        })
        .prop_map(|(bases, quals, start)| {
            Read::new(
                "prop",
                Sequence::new(bases),
                Qual::from_raw_scores(&quals).expect("scores ≤ 60"),
                start,
            )
            .expect("non-empty read with matching quals")
        })
}

prop_compose! {
    fn target_strategy()(
        reference in sequence_strategy(16..=64),
        alts in prop::collection::vec(sequence_strategy(16..=64), 0..4),
        reads in prop::collection::vec(read_strategy(12), 1..6),
        start in 0u64..1_000_000,
    ) -> RealignmentTarget {
        RealignmentTarget::builder(start)
            .reference(reference)
            .consensuses(alts)
            .reads(reads)
            .build()
            .expect("generated dimensions respect the limits")
    }
}

proptest! {
    // Local default trimmed to keep tier-1 wall-clock flat; CI's
    // kernel-parity job soaks this suite in release at
    // IR_PROPTEST_CASES=256 (see README, "Test suite knobs").
    #![proptest_config(ProptestConfig::with_cases_env(64))]

    /// The differential property from the issue: for any seeded fault
    /// plan and rate mix, a resilient run under the default policy
    /// (full read-back verification, fallback on or off) either returns
    /// an explicit error or its encoded output images are byte-identical
    /// to the fault-free golden run. Silent corruption never ships.
    #[test]
    fn any_seeded_fault_plan_errs_or_matches_golden(
        targets in prop::collection::vec(target_strategy(), 1..5),
        seed in any::<u64>(),
        rate in 0.0f64..=0.4,
        fallback in any::<bool>(),
    ) {
        let golden = IndelRealigner::new();
        let mut driver = HostDriver::new(FpgaParams::iracc()).expect("fits");
        let mut plan = FaultPlan::seeded(seed, FaultRates::uniform(rate));
        let policy = ResiliencePolicy {
            software_fallback: fallback,
            ..ResiliencePolicy::default()
        };
        match driver.run_batch_resilient(&targets, &mut plan, &policy) {
            Err(_) => {
                // Explicit failure is an allowed outcome (only reachable
                // with fallback off); silence is not.
                prop_assert!(!fallback, "fallback-on runs must complete");
            }
            Ok((runs, _report)) => {
                prop_assert_eq!(runs.len(), targets.len());
                for (target, run) in targets.iter().zip(&runs) {
                    prop_assert_eq!(
                        encode_outputs(&run.outcomes, target.start_pos()),
                        encode_outputs(
                            &golden.realign_outcomes(target),
                            target.start_pos()
                        ),
                        "fault plan seed {} rate {} shipped corrupt output",
                        seed,
                        rate
                    );
                }
            }
        }
    }
}
