//! Schema/golden test for `results/bench_summary.json`, the
//! machine-readable wall-clock summary `scripts/run_all_figures.sh`
//! regenerates on every full evaluation run.
//!
//! The checked-in document must:
//!
//! - parse under the strict RFC 8259 validator from `ir-telemetry`
//!   (which rejects trailing commas, trailing content and non-finite
//!   numbers — exactly the failure modes of the shell-side printf
//!   emitter),
//! - carry the four required top-level keys (`ir_scale`, `threads`,
//!   `kernel`, `wall_ms`),
//! - record one wall-clock entry per benchmark binary in
//!   `crates/ir-bench/src/bin/` — enumerated from the filesystem, so a
//!   new binary that isn't wired into the figures script fails here.

use std::path::Path;

use ir_system::telemetry::json::validate_json;
use ir_system::telemetry::BenchSnapshot;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn summary_text() -> String {
    let path = repo_root().join("results/bench_summary.json");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// Every `.rs` file under `crates/ir-bench/src/bin/`, without extension.
fn bench_binaries() -> Vec<String> {
    let dir = repo_root().join("crates/ir-bench/src/bin");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("listing {}: {e}", dir.display()))
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "rs"))
        .map(|p| {
            p.file_stem()
                .expect("file stem")
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    names.sort();
    assert!(
        names.len() >= 20,
        "expected the full benchmark suite, found {names:?}"
    );
    names
}

#[test]
fn summary_is_strictly_valid_json() {
    let text = summary_text();
    validate_json(&text).expect("bench_summary.json must satisfy the strict validator");
}

#[test]
fn summary_has_required_top_level_keys() {
    let text = summary_text();
    for key in ["\"ir_scale\"", "\"threads\"", "\"kernel\"", "\"wall_ms\""] {
        assert!(text.contains(key), "missing required key {key}");
    }
}

#[test]
fn every_bench_binary_has_a_wall_clock_entry() {
    let text = summary_text();
    let wall_ms_at = text.find("\"wall_ms\"").expect("wall_ms section");
    let section = &text[wall_ms_at..];
    for name in bench_binaries() {
        let entry = format!("\"{name}\":");
        assert!(
            section.contains(&entry),
            "benchmark binary {name} has no wall_ms entry — \
             wire it into scripts/run_all_figures.sh and refresh the summary"
        );
    }
}

/// The checked-in perf-trajectory snapshot (`BENCH_10.json`, emitted by
/// `ir-cli bench-snapshot` at the end of `scripts/run_all_figures.sh`)
/// must parse under the versioned schema and carry one `wall_ms/<name>`
/// metric per benchmark binary plus the serve and speedup families the
/// CI regression gate diffs.
#[test]
fn checked_in_snapshot_parses_and_covers_the_suite() {
    let path = repo_root().join("BENCH_10.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    validate_json(&text).expect("BENCH_10.json must satisfy the strict validator");
    let snapshot = BenchSnapshot::from_json(&text).expect("BENCH_10.json parses as a snapshot");
    assert!(
        !snapshot.git_rev.is_empty(),
        "snapshot must record a git rev"
    );
    assert!(snapshot.ir_scale > 0.0);
    assert!(snapshot.ir_threads >= 1);
    assert_ne!(
        snapshot.kernel, "unknown",
        "snapshot must record the dispatched WHD kernel"
    );
    for name in bench_binaries() {
        let key = format!("wall_ms/{name}");
        assert!(
            snapshot.metrics.contains_key(&key),
            "snapshot misses {key} — regenerate with scripts/run_all_figures.sh"
        );
    }
    for family in [
        "serve/throughput_rps",
        "serve/p99_us",
        "serve/slo_attainment",
        "fleet/throughput_rps",
        "fleet/p99_us",
        "fleet/slo_attainment",
        "fleet/cost_per_mtargets_usd",
    ] {
        assert!(
            snapshot.metrics.contains_key(family),
            "snapshot misses the serve/fleet metric {family}"
        );
    }
    assert!(
        snapshot.metrics.keys().any(|k| k.starts_with("speedup/")),
        "snapshot misses the speedup/* gmean family"
    );
    for (key, value) in &snapshot.metrics {
        assert!(value.is_finite(), "non-finite metric {key}");
        assert!(*value >= 0.0, "negative metric {key}");
    }
}

/// A snapshot diffed against itself reports zero regressions — the
/// degenerate case the CI gate relies on.
#[test]
fn checked_in_snapshot_self_diff_is_clean() {
    let text = std::fs::read_to_string(repo_root().join("BENCH_10.json")).expect("snapshot");
    let snapshot = BenchSnapshot::from_json(&text).expect("snapshot parses");
    let diff = snapshot.diff(&snapshot);
    assert!(
        !diff.has_regressions(),
        "self-diff regressed:\n{}",
        diff.render()
    );
}

#[test]
fn wall_clock_entries_are_positive_integers() {
    let text = summary_text();
    let wall_ms_at = text.find("\"wall_ms\"").expect("wall_ms section");
    // Entries look like `"name": 1234` — check every value in the section.
    for line in text[wall_ms_at..].lines().skip(1) {
        let line = line.trim().trim_end_matches([',', '}']);
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if value.is_empty() {
            continue;
        }
        let ms: u64 = value
            .parse()
            .unwrap_or_else(|e| panic!("non-integer wall_ms for {key}: {value:?} ({e})"));
        assert!(ms > 0, "implausible zero wall-clock for {key}");
    }
}
