//! Property tests of the target interchange format and the host buffer
//! layout: serialization is lossless and the output-buffer codec agrees
//! with the realigner.

use proptest::prelude::*;

use ir_system::core::IndelRealigner;
use ir_system::fpga::layout::{decode_outputs, encode_outputs, HostBuffers};
use ir_system::genome::{tio, Qual, Read, RealignmentTarget, Sequence};
use ir_system::workloads::{WorkloadConfig, WorkloadGenerator};

fn small_targets(seed: u64, count: usize) -> Vec<RealignmentTarget> {
    WorkloadGenerator::new(WorkloadConfig {
        scale: 1e-5,
        read_len: 30,
        min_consensus_len: 40,
        max_consensus_len: 200,
        seed,
        ..WorkloadConfig::default()
    })
    .targets(count, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(32))]

    #[test]
    fn tio_round_trips_generated_workloads(seed in 0u64..10_000) {
        let targets = small_targets(seed, 3);
        let mut buffer = Vec::new();
        tio::write_targets(&mut buffer, &targets).expect("write to memory");
        let restored = tio::read_targets(buffer.as_slice()).expect("parse back");
        prop_assert_eq!(restored, targets);
    }

    #[test]
    fn output_codec_round_trips(seed in 0u64..10_000) {
        let targets = small_targets(seed, 2);
        let realigner = IndelRealigner::new();
        for target in &targets {
            let result = realigner.realign(target);
            let (flags, positions) = encode_outputs(result.outcomes(), target.start_pos());
            prop_assert_eq!(flags.len(), target.num_reads());
            prop_assert_eq!(positions.len(), 4 * target.num_reads());
            let decoded =
                decode_outputs(&flags, &positions, target.num_reads(), target.start_pos())
                    .expect("well-formed buffers decode");
            for (got, want) in decoded.iter().zip(result.outcomes()) {
                prop_assert_eq!(got.realigned(), want.realigned());
                prop_assert_eq!(got.new_pos(), want.new_pos());
            }
        }
    }

    #[test]
    fn host_buffers_are_faithful_images(seed in 0u64..10_000) {
        let targets = small_targets(seed, 2);
        for target in &targets {
            let buffers = HostBuffers::from_target(target);
            buffers.check_fit().expect("generated targets fit the unit");
            prop_assert_eq!(buffers.payload_bytes(), target.shape().input_bytes());
            // Spot-check every consensus and read lands at its slot.
            for (i, cons) in target.consensuses().iter().enumerate() {
                let slot = &buffers.consensus()[i * 2048..][..cons.len()];
                prop_assert_eq!(slot, cons.as_bytes());
            }
            for (j, read) in target.reads().iter().enumerate() {
                let slot = &buffers.read_bases()[j * 256..][..read.len()];
                prop_assert_eq!(slot, read.bases().as_bytes());
                let quals = &buffers.read_quals()[j * 256..][..read.len()];
                prop_assert_eq!(quals, read.quals().scores());
            }
        }
    }
}

#[test]
fn tio_handles_the_hardware_maximum_target() {
    // One maximal target: 32 consensuses × 2048 bp, 256 reads × 256 bp.
    let reference: Sequence = "ACGT".repeat(512).parse().unwrap();
    let mut builder = RealignmentTarget::builder(7).reference(reference.clone());
    for _ in 0..31 {
        builder = builder.consensus(reference.clone());
    }
    for j in 0..256 {
        let read = Read::new(
            format!("r{j}"),
            reference.slice(j, j + 256),
            Qual::uniform(40, 256).unwrap(),
            j as u64,
        )
        .unwrap();
        builder = builder.read(read);
    }
    let target = builder.build().unwrap();

    let mut buffer = Vec::new();
    tio::write_targets(&mut buffer, std::slice::from_ref(&target)).unwrap();
    let restored = tio::read_targets(buffer.as_slice()).unwrap();
    assert_eq!(restored, vec![target]);
}
