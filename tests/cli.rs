//! End-to-end smoke tests of the `ir-cli` binary: generate → realign →
//! simulate through real process invocations.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ir-cli"))
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ir_cli_test_{name}_{}.tio", std::process::id()))
}

#[test]
fn gen_realign_simulate_pipeline() {
    let path = temp_path("pipeline");

    let out = cli()
        .args([
            "gen",
            "--chromosome",
            "21",
            "--scale",
            "2e-5",
            "--seed",
            "9",
        ])
        .args(["--out", path.to_str().unwrap()])
        .output()
        .expect("gen runs");
    assert!(
        out.status.success(),
        "gen failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote"));

    let out = cli()
        .args([
            "realign",
            path.to_str().unwrap(),
            "--rule",
            "gatk",
            "--threads",
            "2",
        ])
        .output()
        .expect("realign runs");
    assert!(
        out.status.success(),
        "realign failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("base comparisons"), "{text}");

    let out = cli()
        .args([
            "simulate",
            path.to_str().unwrap(),
            "--units",
            "8",
            "--lanes",
            "32",
        ])
        .args(["--sched", "async"])
        .output()
        .expect("simulate runs");
    assert!(
        out.status.success(),
        "simulate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("bit-identical to software"), "{text}");

    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = cli().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = cli()
        .args(["realign", "/nonexistent/definitely_missing.tio"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(err.contains("opening"), "{err}");
}

#[test]
fn bad_flag_values_are_reported() {
    let out = cli()
        .args(["gen", "--chromosome", "21", "--scale", "banana"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --scale"));
}
