//! End-to-end smoke tests of the `ir-cli` binary: generate → realign →
//! simulate through real process invocations.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ir-cli"))
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ir_cli_test_{name}_{}.tio", std::process::id()))
}

#[test]
fn gen_realign_simulate_pipeline() {
    let path = temp_path("pipeline");

    let out = cli()
        .args([
            "gen",
            "--chromosome",
            "21",
            "--scale",
            "2e-5",
            "--seed",
            "9",
        ])
        .args(["--out", path.to_str().unwrap()])
        .output()
        .expect("gen runs");
    assert!(
        out.status.success(),
        "gen failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote"));

    let out = cli()
        .args([
            "realign",
            path.to_str().unwrap(),
            "--rule",
            "gatk",
            "--threads",
            "2",
        ])
        .output()
        .expect("realign runs");
    assert!(
        out.status.success(),
        "realign failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("base comparisons"), "{text}");

    let out = cli()
        .args([
            "simulate",
            path.to_str().unwrap(),
            "--units",
            "8",
            "--lanes",
            "32",
        ])
        .args(["--sched", "async"])
        .output()
        .expect("simulate runs");
    assert!(
        out.status.success(),
        "simulate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("bit-identical to software"), "{text}");

    std::fs::remove_file(&path).ok();
}

/// `serve --json/--trace` write parseable artifacts, and the
/// bench-snapshot → bench-diff pipeline gates on a synthetic regression:
/// a snapshot diffs clean against itself and nonzero once a wall-clock
/// metric is inflated past its tolerance band.
#[test]
fn serve_exports_and_bench_diff_gates_regressions() {
    let dir = std::env::temp_dir().join(format!("ir_cli_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp results dir");
    let targets = temp_path("serve_bench");
    let out = cli()
        .args([
            "gen",
            "--chromosome",
            "21",
            "--scale",
            "2e-5",
            "--seed",
            "9",
        ])
        .args(["--out", targets.to_str().unwrap()])
        .output()
        .expect("gen runs");
    assert!(out.status.success());

    let json_path = dir.join("serve_report.json");
    let trace_path = dir.join("serve.trace.json");
    let out = cli()
        .args(["serve", targets.to_str().unwrap(), "--rate", "20000"])
        .args(["--slo-ms", "5", "--json", json_path.to_str().unwrap()])
        .args(["--trace", trace_path.to_str().unwrap()])
        .output()
        .expect("serve runs");
    assert!(
        out.status.success(),
        "serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("SLO attainment"), "{text}");
    let report = std::fs::read_to_string(&json_path).expect("report written");
    ir_system::telemetry::json::validate_json(&report).expect("report JSON parses");
    assert!(report.contains("\"slo_attainment\""));
    let trace = std::fs::read_to_string(&trace_path).expect("trace written");
    ir_system::telemetry::json::validate_json(&trace).expect("trace JSON parses");
    assert!(trace.contains("\"shard 0\""));

    // A minimal results directory: wall clocks plus the serve report.
    std::fs::write(
        dir.join("bench_summary.json"),
        "{\n  \"ir_scale\": 2e-5,\n  \"threads\": 1,\n  \"wall_ms\": {\n    \"serve_load\": 120\n  }\n}\n",
    )
    .expect("summary written");
    let snap = dir.join("BENCH_TEST.json");
    let out = cli()
        .args(["bench-snapshot", "--results", dir.to_str().unwrap()])
        .args(["--rev", "test0000", "--out", snap.to_str().unwrap()])
        .output()
        .expect("bench-snapshot runs");
    assert!(
        out.status.success(),
        "bench-snapshot failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let clean = cli()
        .args(["bench-diff", snap.to_str().unwrap(), snap.to_str().unwrap()])
        .output()
        .expect("bench-diff runs");
    assert!(clean.status.success(), "self-diff must pass");

    let regressed = dir.join("BENCH_REGRESSED.json");
    let inflated = std::fs::read_to_string(&snap)
        .expect("snapshot readable")
        .replace("\"wall_ms/serve_load\": 120", "\"wall_ms/serve_load\": 999");
    std::fs::write(&regressed, inflated).expect("regressed snapshot written");
    let gate = cli()
        .args([
            "bench-diff",
            snap.to_str().unwrap(),
            regressed.to_str().unwrap(),
        ])
        .output()
        .expect("bench-diff runs");
    assert!(!gate.status.success(), "inflated wall clock must gate");
    assert!(String::from_utf8_lossy(&gate.stdout).contains("REGRESSED"));

    std::fs::remove_file(&targets).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = cli().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = cli()
        .args(["realign", "/nonexistent/definitely_missing.tio"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(err.contains("opening"), "{err}");
}

#[test]
fn bad_flag_values_are_reported() {
    let out = cli()
        .args(["gen", "--chromosome", "21", "--scale", "banana"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --scale"));
}
