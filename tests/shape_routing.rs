//! Heterogeneous shard pools and multi-tenant admission: a mixed-tenant
//! trace spanning all four shape families routes across a pool whose
//! shards each advertise one family, every response echoes its request's
//! family and tenant, per-tenant QoS counters add up, and the whole run
//! is deterministic. Target sizes are scaled down (full-size long-read
//! and deep-panel targets cost ~1e9 comparisons each); routing and
//! admission only read the family tag and the tenant index, never the
//! target's byte size.

use ir_system::genome::RealignmentTarget;
use ir_system::serve::{RealignService, Request, ServeConfig, ServeError, ShardSpec, TenantQuota};
use ir_system::workloads::{ShapeFamily, WorkloadConfig, WorkloadGenerator};

const TENANTS: usize = 3;
const PER_FAMILY: usize = 6;

/// A family-flavored but miniature workload config: same profile knobs,
/// target dimensions shrunk so the datapath work stays test-sized.
fn mini_targets(family: ShapeFamily, count: usize, seed: u64) -> Vec<RealignmentTarget> {
    let base = family.profile().config(1e-5);
    let config = match family {
        ShapeFamily::ShortReadGermline => WorkloadConfig {
            read_len: 24,
            min_consensus_len: 32,
            max_consensus_len: 96,
            min_reads: 2,
            max_reads: 8,
            ..base
        },
        ShapeFamily::LongRead => WorkloadConfig {
            read_len: 48,
            min_consensus_len: 64,
            max_consensus_len: 160,
            min_reads: 2,
            max_reads: 4,
            ..base
        },
        ShapeFamily::DeepPanel => WorkloadConfig {
            read_len: 12,
            min_consensus_len: 24,
            max_consensus_len: 64,
            min_reads: 8,
            max_reads: 24,
            ..base
        },
        ShapeFamily::Metagenomic => WorkloadConfig {
            read_len: 12,
            min_consensus_len: 16,
            max_consensus_len: 64,
            min_reads: 2,
            max_reads: 12,
            ..base
        },
    };
    WorkloadGenerator::new(config).targets(count, seed)
}

/// One shard per family, in declaration order, each with its re-derived
/// per-shape buffer geometry.
fn hetero_config() -> ServeConfig {
    let base = ServeConfig::default();
    let pool: Vec<ShardSpec> = ShapeFamily::ALL
        .iter()
        .map(|&f| ShardSpec::for_families(&[f], &base.params, base.scheduling).unwrap())
        .collect();
    ServeConfig {
        shards: pool.len(),
        pool: Some(pool),
        tenants: Some(vec![TenantQuota { max_queued: 64 }; TENANTS]),
        ..base
    }
}

/// Interleaved trace: families cycle per request, tenants cycle on a
/// different stride, arrivals spaced so nothing is shed.
fn mixed_requests() -> Vec<Request> {
    let per_family: Vec<Vec<RealignmentTarget>> = ShapeFamily::ALL
        .iter()
        .map(|&f| mini_targets(f, PER_FAMILY, 0xB0B + f.index() as u64))
        .collect();
    let mut requests = Vec::new();
    for slot in 0..PER_FAMILY {
        for (family, targets) in ShapeFamily::ALL.iter().copied().zip(&per_family) {
            let i = requests.len();
            requests.push(
                Request::new(i as u64, i as f64 * 120e-6, targets[slot].clone())
                    .with_family(family)
                    .with_tenant(i % TENANTS),
            );
        }
    }
    requests
}

#[test]
fn mixed_tenant_trace_routes_across_the_heterogeneous_pool() {
    let requests = mixed_requests();
    let offered = requests.len();
    let mut service = RealignService::new(hetero_config()).unwrap();
    let report = service.run(requests).unwrap();

    assert_eq!(
        report.completed(),
        offered as u64,
        "nothing is shed at this rate"
    );
    assert!(report.rejections.is_empty());
    assert_eq!(report.counters.counter("serve/unroutable"), 0);

    // Every shard advertises exactly one family, so each must have run
    // batches for its quarter of the trace — family-pure batching means
    // no shard can sit idle while another serves a foreign family.
    for shard in 0..ShapeFamily::ALL.len() {
        assert!(
            report
                .counters
                .counter(&format!("serve/{shard:02}/batches"))
                > 0,
            "shard {shard} never ran a batch"
        );
        assert_eq!(
            report
                .counters
                .counter(&format!("serve/{shard:02}/requests")),
            PER_FAMILY as u64,
            "shard {shard} served a foreign family's requests"
        );
    }

    // Responses echo the request's family and tenant verbatim.
    for r in &report.responses {
        assert_eq!(
            r.family,
            ShapeFamily::ALL[r.id as usize % ShapeFamily::ALL.len()]
        );
        assert_eq!(r.tenant, r.id as usize % TENANTS);
    }

    // Per-tenant counters partition the totals exactly.
    let mut accepted = 0;
    let mut completed = 0;
    for t in 0..TENANTS {
        accepted += report
            .counters
            .counter(&format!("serve/tenant{t}/accepted"));
        completed += report
            .counters
            .counter(&format!("serve/tenant{t}/completed"));
        assert_eq!(
            report
                .counters
                .counter(&format!("serve/tenant{t}/rejected")),
            0
        );
    }
    assert_eq!(accepted, offered as u64);
    assert_eq!(completed, offered as u64);
}

#[test]
fn heterogeneous_runs_are_deterministic() {
    let run = || {
        let mut service = RealignService::new(hetero_config()).unwrap();
        service.run(mixed_requests()).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn families_without_a_shard_are_rejected_as_unroutable() {
    let base = ServeConfig::default();
    // Pool holds only a short-read shard: long-read requests have nowhere
    // to go and must be shed with a retry-after, not queued forever.
    let config = ServeConfig {
        shards: 1,
        pool: Some(vec![ShardSpec::for_families(
            &[ShapeFamily::ShortReadGermline],
            &base.params,
            base.scheduling,
        )
        .unwrap()]),
        ..base
    };
    let targets = mini_targets(ShapeFamily::LongRead, 4, 3);
    let requests: Vec<Request> = targets
        .into_iter()
        .enumerate()
        .map(|(i, t)| {
            Request::new(i as u64, i as f64 * 100e-6, t).with_family(ShapeFamily::LongRead)
        })
        .collect();
    let mut service = RealignService::new(config).unwrap();
    let report = service.run(requests).unwrap();
    assert_eq!(report.completed(), 0);
    assert_eq!(report.rejections.len(), 4);
    assert_eq!(report.counters.counter("serve/unroutable"), 4);
    assert!(report.rejections.iter().all(|r| r.retry_after_s > 0.0));
}

#[test]
fn over_quota_tenants_are_shed_at_admission() {
    let config = ServeConfig {
        tenants: Some(vec![TenantQuota { max_queued: 1 }]),
        ..ServeConfig::default()
    };
    // A same-instant burst from one tenant with a single-slot quota:
    // the first request is admitted, the rest shed before any completes.
    let targets = mini_targets(ShapeFamily::ShortReadGermline, 5, 11);
    let requests: Vec<Request> = targets
        .into_iter()
        .enumerate()
        .map(|(i, t)| Request::new(i as u64, 0.0, t))
        .collect();
    let mut service = RealignService::new(config).unwrap();
    let report = service.run(requests).unwrap();
    assert_eq!(report.completed(), 1);
    assert_eq!(report.rejections.len(), 4);
    assert_eq!(report.counters.counter("serve/tenant0/accepted"), 1);
    assert_eq!(report.counters.counter("serve/tenant0/rejected"), 4);
    assert_eq!(report.counters.counter("serve/tenant0/completed"), 1);
}

#[test]
fn out_of_range_tenants_are_a_typed_error() {
    let config = ServeConfig {
        tenants: Some(vec![TenantQuota { max_queued: 8 }; 2]),
        ..ServeConfig::default()
    };
    let target = mini_targets(ShapeFamily::ShortReadGermline, 1, 21).remove(0);
    let requests = vec![Request::new(0, 0.0, target).with_tenant(5)];
    let mut service = RealignService::new(config).unwrap();
    match service.run(requests) {
        Err(ServeError::UnknownTenant { tenant, tenants }) => {
            assert_eq!(tenant, 5);
            assert_eq!(tenants, 2);
        }
        other => panic!("expected UnknownTenant, got {other:?}"),
    }
}
