//! Differential tests pinning the discrete-event engine to the legacy
//! cycle-stepping schedulers: for any workload, scheduling policy, unit
//! configuration, telemetry setting and seeded fault plan, the two
//! [`SimBackend`]s must produce **bitwise-identical** [`SystemRun`]s —
//! the same f64 bits for every accumulated second, the same cycle and
//! comparison counts, the same timeline, the same telemetry snapshot and
//! the same resilience report. The engine earns its wall-clock win only
//! if nothing else about the simulation changes.

use proptest::prelude::*;

use ir_system::fpga::driver::ResiliencePolicy;
use ir_system::fpga::fault::{FaultPlan, FaultRates};
use ir_system::fpga::{
    AcceleratedSystem, FpgaParams, FunctionalOracle, Scheduling, SimBackend, SystemRun,
};
use ir_system::genome::RealignmentTarget;
use ir_system::workloads::{WorkloadConfig, WorkloadGenerator};

const ALL_SCHEDULINGS: [Scheduling; 4] = [
    Scheduling::Synchronous,
    Scheduling::SynchronousUnsorted,
    Scheduling::SynchronousByWorstCase,
    Scheduling::Asynchronous,
];

fn workload(count: usize, seed: u64) -> Vec<RealignmentTarget> {
    WorkloadGenerator::new(WorkloadConfig {
        scale: 1e-4,
        read_len: 62,
        min_consensus_len: 80,
        max_consensus_len: 510,
        ..WorkloadConfig::default()
    })
    .targets(count, seed)
}

/// Bitwise comparison of two runs: f64s by bit pattern, everything else
/// by structural equality.
fn assert_runs_bitwise_equal(engine: &SystemRun, legacy: &SystemRun, context: &str) {
    assert_eq!(
        engine.wall_time_s.to_bits(),
        legacy.wall_time_s.to_bits(),
        "wall_time_s diverged ({context})"
    );
    assert_eq!(
        engine.dma_busy_s.to_bits(),
        legacy.dma_busy_s.to_bits(),
        "dma_busy_s diverged ({context})"
    );
    assert_eq!(
        engine.command_s.to_bits(),
        legacy.command_s.to_bits(),
        "command_s diverged ({context})"
    );
    assert_eq!(
        engine.compute_cycles, legacy.compute_cycles,
        "compute_cycles diverged ({context})"
    );
    assert_eq!(
        engine.comparisons, legacy.comparisons,
        "comparisons diverged ({context})"
    );
    assert_eq!(
        engine.unit_busy_s.len(),
        legacy.unit_busy_s.len(),
        "unit count diverged ({context})"
    );
    for (u, (a, b)) in engine
        .unit_busy_s
        .iter()
        .zip(legacy.unit_busy_s.iter())
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "unit_busy_s[{u}] diverged ({context})"
        );
    }
    assert_eq!(
        engine.results.len(),
        legacy.results.len(),
        "result count diverged ({context})"
    );
    for (i, (a, b)) in engine.results.iter().zip(legacy.results.iter()).enumerate() {
        assert_eq!(a.outcomes, b.outcomes, "results[{i}].outcomes ({context})");
        assert_eq!(a.cycles, b.cycles, "results[{i}].cycles ({context})");
        assert_eq!(a.best, b.best, "results[{i}].best ({context})");
    }
    assert_eq!(
        engine.timeline, legacy.timeline,
        "timeline diverged ({context})"
    );
    assert_eq!(
        engine.resilience, legacy.resilience,
        "resilience report diverged ({context})"
    );
    match (&engine.telemetry, &legacy.telemetry) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert!(a.bitwise_eq(b), "telemetry snapshot diverged ({context})");
        }
        _ => panic!("telemetry presence diverged ({context})"),
    }
}

fn system(
    params: FpgaParams,
    sched: Scheduling,
    backend: SimBackend,
    telemetry: bool,
) -> AcceleratedSystem {
    AcceleratedSystem::new(params, sched)
        .expect("paper configurations fit the VU9P")
        .with_telemetry(telemetry)
        .with_backend(backend)
}

/// Fault-free parity across every scheduling × both paper configurations,
/// with telemetry enabled so the snapshot comparison is exercised too.
#[test]
fn engine_matches_legacy_fault_free() {
    let targets = workload(48, 0xFACADE);
    for params in [FpgaParams::serial(), FpgaParams::iracc()] {
        for sched in ALL_SCHEDULINGS {
            let engine = system(params, sched, SimBackend::EventDriven, true).run(&targets);
            let legacy = system(params, sched, SimBackend::LegacyStepper, true).run(&targets);
            assert_runs_bitwise_equal(
                &engine,
                &legacy,
                &format!("{sched:?}, {} units", params.num_units),
            );
        }
    }
}

/// Parity under injected faults: identically seeded plans must draw the
/// same faults in the same order on both backends, so the reports and
/// the repaired outputs agree bit for bit.
#[test]
fn engine_matches_legacy_under_faults() {
    let targets = workload(48, 0xBAD5EED);
    let policy = ResiliencePolicy::default();
    for sched in [Scheduling::Synchronous, Scheduling::Asynchronous] {
        let mut engine_plan = FaultPlan::with_default_rates(2024);
        let mut legacy_plan = FaultPlan::with_default_rates(2024);
        let engine = system(FpgaParams::iracc(), sched, SimBackend::EventDriven, false)
            .run_resilient(&targets, &mut engine_plan, &policy);
        let legacy = system(FpgaParams::iracc(), sched, SimBackend::LegacyStepper, false)
            .run_resilient(&targets, &mut legacy_plan, &policy);
        assert_runs_bitwise_equal(&engine, &legacy, &format!("faulted, {sched:?}"));
        assert_eq!(
            engine_plan.counts(),
            legacy_plan.counts(),
            "fault plans must draw identically ({sched:?})"
        );
    }
}

/// An empty workload is a legal run on both backends and still agrees.
#[test]
fn engine_matches_legacy_on_empty_workload() {
    for sched in ALL_SCHEDULINGS {
        let engine = system(FpgaParams::serial(), sched, SimBackend::EventDriven, true).run(&[]);
        let legacy = system(FpgaParams::serial(), sched, SimBackend::LegacyStepper, true).run(&[]);
        assert_runs_bitwise_equal(&engine, &legacy, &format!("empty, {sched:?}"));
    }
}

/// Warming the functional oracle across host threads must be invisible to
/// the simulation: a run over an oracle precomputed with 1, 2 or 4 worker
/// threads is bitwise identical — results, timeline, telemetry — to a run
/// over a cold oracle (and therefore to the legacy single-threaded path
/// already pinned above). This is the determinism contract of
/// `FunctionalOracle::precompute`.
#[test]
fn threaded_oracle_warmup_is_bitwise_invisible() {
    let targets = workload(48, 0x04AC1E);
    for params in [FpgaParams::serial(), FpgaParams::iracc()] {
        for sched in [Scheduling::Synchronous, Scheduling::Asynchronous] {
            let sys = |oracle: &mut FunctionalOracle| {
                system(params, sched, SimBackend::EventDriven, true)
                    .run_with_oracle(&targets, oracle)
            };
            let mut cold = FunctionalOracle::new();
            let baseline = sys(&mut cold);
            for threads in [1usize, 2, 4] {
                let mut warm = FunctionalOracle::new();
                warm.precompute(&targets, &params, threads);
                let run = sys(&mut warm);
                assert_runs_bitwise_equal(
                    &run,
                    &baseline,
                    &format!(
                        "{threads}-thread warmup, {sched:?}, {} units",
                        params.num_units
                    ),
                );
            }
        }
    }
}

fn scheduling_strategy() -> impl Strategy<Value = Scheduling> {
    prop_oneof![
        Just(Scheduling::Synchronous),
        Just(Scheduling::SynchronousUnsorted),
        Just(Scheduling::SynchronousByWorstCase),
        Just(Scheduling::Asynchronous),
    ]
}

proptest! {
    // Each case replays full systems under 4 schedulings × 2 backends, so
    // the local default is small to keep tier-1 wall-clock flat; CI's
    // kernel-parity job soaks this suite in release at
    // IR_PROPTEST_CASES=256 (see README, "Test suite knobs").
    #![proptest_config(ProptestConfig::with_cases_env(8))]

    /// The differential property behind the backend swap: any seeded
    /// workload, any scheduling, either paper configuration, telemetry
    /// on or off, faults on or off — the event-driven engine and the
    /// legacy stepper are observationally indistinguishable.
    #[test]
    fn any_seeded_run_is_backend_invariant(
        workload_seed in any::<u64>(),
        count in 1usize..40,
        sched in scheduling_strategy(),
        iracc in any::<bool>(),
        telemetry in any::<bool>(),
        fault_seed in prop_oneof![Just(None), (any::<u64>(), 0.0f64..=0.2).prop_map(Some)],
    ) {
        let targets = workload(count, workload_seed);
        let params = if iracc { FpgaParams::iracc() } else { FpgaParams::serial() };
        let engine_sys = system(params, sched, SimBackend::EventDriven, telemetry);
        let legacy_sys = system(params, sched, SimBackend::LegacyStepper, telemetry);
        let (engine, legacy) = match fault_seed {
            None => (engine_sys.run(&targets), legacy_sys.run(&targets)),
            Some((seed, rate)) => {
                let policy = ResiliencePolicy::default();
                let mut engine_plan = FaultPlan::seeded(seed, FaultRates::uniform(rate));
                let mut legacy_plan = FaultPlan::seeded(seed, FaultRates::uniform(rate));
                (
                    engine_sys.run_resilient(&targets, &mut engine_plan, &policy),
                    legacy_sys.run_resilient(&targets, &mut legacy_plan, &policy),
                )
            }
        };
        assert_runs_bitwise_equal(
            &engine,
            &legacy,
            &format!("seed {workload_seed:#x}, {count} targets, {sched:?}"),
        );
    }
}
