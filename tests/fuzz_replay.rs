//! Replays the checked-in fuzz corpus as a regression suite.
//!
//! Every case under `fuzz/corpus/seeds/` and `fuzz/corpus/discovered/`
//! runs through the full differential executor. Seeds are expected to be
//! divergence-free; a discovered case is a minimized reproducer of a bug
//! that has since been fixed, so it must be divergence-free too — if a
//! regression resurrects the divergence, this test names the exact case
//! file and signature.

use ir_system::fuzz::corpus::{load_dir, DISCOVERED_DIR, SEEDS_DIR};
use ir_system::fuzz::{execute, FuzzInput};
use std::path::Path;

fn corpus_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fuzz/corpus")
}

#[test]
fn seed_corpus_is_present() {
    let seeds = load_dir(&corpus_root().join(SEEDS_DIR)).expect("seeds load");
    assert!(
        seeds.len() >= 5,
        "expected at least 5 checked-in seed cases, found {}",
        seeds.len()
    );
}

#[test]
fn corpus_encoding_roundtrips() {
    for sub in [SEEDS_DIR, DISCOVERED_DIR] {
        for (name, input) in load_dir(&corpus_root().join(sub)).expect("corpus load") {
            let reencoded = input.encode();
            let redecoded = FuzzInput::decode(&reencoded)
                .unwrap_or_else(|e| panic!("{sub}/{name}: re-decode failed: {e}"));
            assert_eq!(
                redecoded.encode(),
                reencoded,
                "{sub}/{name}: encode/decode is not a fixpoint"
            );
        }
    }
}

#[test]
fn corpus_replays_divergence_free() {
    let mut replayed = 0usize;
    for sub in [SEEDS_DIR, DISCOVERED_DIR] {
        for (name, input) in load_dir(&corpus_root().join(sub)).expect("corpus load") {
            let outcome = execute(&input);
            assert!(
                outcome.is_clean(),
                "{sub}/{name} diverged: {:?}",
                outcome
                    .mismatches
                    .iter()
                    .map(|m| (&m.signature, &m.detail))
                    .collect::<Vec<_>>()
            );
            replayed += 1;
        }
    }
    assert!(replayed >= 5, "replayed only {replayed} cases");
}

#[test]
fn corpus_replay_is_deterministic() {
    for (name, input) in load_dir(&corpus_root().join(SEEDS_DIR)).expect("seeds load") {
        let a = execute(&input);
        let b = execute(&input);
        assert_eq!(
            a.fingerprint, b.fingerprint,
            "{name}: outcome fingerprint varies between identical replays"
        );
    }
}
