//! Property tests for the 4-bit packed sequence representation
//! (`ir_genome::PackedSequence`) and the packed WHD kernel built on it.
//!
//! Pins the invariants every downstream consumer (the SWAR kernel, the
//! DMA model, the serving layer) relies on:
//!
//! - encode → decode roundtrips exactly, including odd lengths that
//!   leave a partially-filled word, the empty sequence, and `N` bases;
//! - random point access (`get`) agrees with the unpacked view;
//! - padding nibbles beyond `len` are zero in every word, so XOR-based
//!   windows never see stale symbols;
//! - `calc_whd_packed` equals the scalar `calc_whd` at every legal
//!   offset of the same corpus.
//!
//! Case counts are gated on `IR_PROPTEST_CASES` (see README).

use ir_system::core::{calc_whd, calc_whd_packed};
use ir_system::genome::{Base, PackedSequence, Qual, Sequence, BASES_PER_WORD};
use proptest::prelude::*;

/// Maps a byte to a base, all five symbols (including `N`) reachable.
fn base(code: u8) -> Base {
    match code % 5 {
        0 => Base::A,
        1 => Base::C,
        2 => Base::G,
        3 => Base::T,
        _ => Base::N,
    }
}

fn sequence_from_codes(codes: &[u8]) -> Sequence {
    codes.iter().map(|&c| base(c)).collect()
}

prop_compose! {
    /// A random sequence of 0..=131 bases — lengths straddle one, two and
    /// many 16-base words, hitting every partial-fill remainder.
    fn any_sequence()(
        len in 0usize..=131,
        codes in prop::collection::vec(any::<u8>(), 131)
    ) -> Sequence {
        sequence_from_codes(&codes[..len])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(128))]

    /// Encode → decode is the identity, for every length class.
    #[test]
    fn roundtrip_is_identity(seq in any_sequence()) {
        let packed = PackedSequence::from_sequence(&seq);
        prop_assert_eq!(packed.len(), seq.len());
        prop_assert_eq!(packed.is_empty(), seq.is_empty());
        prop_assert_eq!(packed.to_sequence(), seq.clone());
        // The From impls agree with the named constructors.
        prop_assert_eq!(Sequence::from(&PackedSequence::from(&seq)), seq);
    }

    /// Point access agrees with the decoded view at every index.
    #[test]
    fn get_matches_unpacked(seq in any_sequence()) {
        let packed = PackedSequence::from_sequence(&seq);
        let decoded = packed.to_sequence();
        for (i, &b) in decoded.bases().iter().enumerate() {
            prop_assert_eq!(packed.get(i), b, "index {}", i);
        }
    }

    /// Every nibble beyond `len` is the zero pad code, and the word count
    /// is exactly `ceil(len / 16)` — no stale tail data survives packing.
    #[test]
    fn padding_nibbles_are_zero(seq in any_sequence()) {
        let packed = PackedSequence::from_sequence(&seq);
        prop_assert_eq!(packed.words().len(), seq.len().div_ceil(BASES_PER_WORD));
        let codes = packed.unpack_codes();
        prop_assert_eq!(codes.len(), seq.len());
        for (i, &code) in codes.iter().enumerate() {
            prop_assert!((1..=5).contains(&code), "live nibble {} = {}", i, code);
        }
        // Raw inspection of the last word: nibbles past `len` must be the
        // zero pad code so XOR windows never see stale symbols.
        if let Some(&last) = packed.words().last() {
            let live = seq.len() - (packed.words().len() - 1) * BASES_PER_WORD;
            for lane in live..BASES_PER_WORD {
                prop_assert_eq!((last >> (4 * lane)) & 0xF, 0, "pad lane {}", lane);
            }
        }
    }

    /// The packed WHD kernel equals the scalar reference at every legal
    /// offset of the same (consensus, read, quals) corpus.
    #[test]
    fn packed_whd_matches_scalar(
        read_len in 1usize..=72,
        extra in 0usize..=40,
        cons_codes in prop::collection::vec(any::<u8>(), 112),
        read_codes in prop::collection::vec(any::<u8>(), 72),
        qual_scores in prop::collection::vec(0u8..=60, 72)
    ) {
        let cons = sequence_from_codes(&cons_codes[..read_len + extra]);
        let read = sequence_from_codes(&read_codes[..read_len]);
        let quals = Qual::from_raw_scores(&qual_scores[..read_len]).expect("valid Phred range");
        let packed_cons = PackedSequence::from(&cons);
        let packed_read = PackedSequence::from(&read);
        for k in 0..=extra {
            prop_assert_eq!(
                calc_whd_packed(&packed_cons, &packed_read, &quals, k),
                calc_whd(&cons, &read, &quals, k),
                "offset {}",
                k
            );
        }
    }
}

/// The explicit edge cases spelled out in the issue: empty sequences,
/// odd lengths around the word boundary, and all-`N` content.
#[test]
fn explicit_edge_cases_roundtrip() {
    let cases: Vec<Sequence> = vec![
        Sequence::default(),
        "A".parse().unwrap(),
        "NNNNN".parse().unwrap(),
        "ACGTN".repeat(3).parse().unwrap(), // 15: one base short of a word
        "ACGTNACGTNACGTNA".parse().unwrap(), // 16: exactly one word
        "ACGTNACGTNACGTNAC".parse().unwrap(), // 17: one base into word two
        "N".repeat(33).parse().unwrap(),    // odd length, three words, all N
    ];
    for seq in cases {
        let packed = PackedSequence::from_sequence(&seq);
        assert_eq!(packed.to_sequence(), seq, "roundtrip for len {}", seq.len());
    }
}
