//! Fleet fault machinery: spot-interruption drain and the SLO autoscaler.
//!
//! The drain tests pin the exactly-once contract under interruptions:
//! every offered request either completes once or is shed with a typed
//! rejection — never lost, never duplicated — and the `fleet/*` counters
//! account for the drain traffic. The autoscaler tests drive
//! [`Autoscaler::observe`] directly as the pure state machine it is:
//! scaling is monotone under sustained load, bounded by min/max, gated by
//! cooldown, and never triggered by a single-sample spike.

use ir_system::serve::{
    Autoscaler, AutoscalerConfig, FleetConfig, FleetReport, FleetService, Request, ScaleDecision,
    ServeConfig, SpotProfile,
};
use ir_system::workloads::{ArrivalProcess, WorkloadConfig, WorkloadGenerator};
use proptest::prelude::*;

const WORKLOAD_SEED: u64 = 31;
const ARRIVAL_SEED: u64 = 17;
const REQUESTS: usize = 48;
const RATE_RPS: f64 = 40_000.0;

fn requests() -> Vec<Request> {
    let targets = WorkloadGenerator::new(WorkloadConfig {
        seed: WORKLOAD_SEED,
        scale: 1e-4,
        ..WorkloadConfig::default()
    })
    .targets(REQUESTS, WORKLOAD_SEED);
    let times = ArrivalProcess::poisson(ARRIVAL_SEED, RATE_RPS).times(targets.len());
    targets
        .into_iter()
        .zip(times)
        .enumerate()
        .map(|(i, (t, at))| Request::new(i as u64, at, t))
        .collect()
}

/// A 3-node fleet under an aggressive spot market: the mean interruption
/// gap (~1 virtual millisecond) sits inside the run's makespan, so
/// interruptions reliably fire mid-traffic.
fn spot_config() -> FleetConfig {
    FleetConfig {
        nodes: 3,
        node: ServeConfig::default(),
        hop_latency_s: 2e-6,
        spot: Some(SpotProfile {
            seed: 9,
            interruptions_per_hour: 3.6e6,
            drain_grace_s: 300e-6,
        }),
        ..FleetConfig::default()
    }
}

fn run_spot_fleet() -> FleetReport {
    FleetService::new(spot_config())
        .expect("valid fleet config")
        .run(requests())
        .expect("spot fleet run succeeds")
}

/// Exactly-once under interruptions: every offered request completes once
/// or is rejected once — no request is lost with a node and none is
/// duplicated by the reroute path.
#[test]
fn spot_drain_serves_every_request_exactly_once() {
    let report = run_spot_fleet();
    assert!(
        report.counters.counter("fleet/interruptions") >= 1,
        "the aggressive spot market must interrupt at least one node"
    );

    let mut served: Vec<u64> = report.responses_by_id().iter().map(|r| r.id).collect();
    let mut shed: Vec<u64> = report
        .node_reports
        .iter()
        .flat_map(|r| r.rejections.iter().map(|x| x.id))
        .collect();
    let served_count = served.len();
    served.dedup();
    assert_eq!(served.len(), served_count, "duplicate response ids");
    shed.sort_unstable();
    let shed_count = shed.len();
    shed.dedup();
    assert_eq!(shed.len(), shed_count, "duplicate rejection ids");

    let mut all: Vec<u64> = served.iter().chain(shed.iter()).copied().collect();
    all.sort_unstable();
    let expected: Vec<u64> = (0..REQUESTS as u64).collect();
    assert_eq!(
        all, expected,
        "served + shed must partition the offered stream exactly"
    );
}

/// The drain counters account for the interruption traffic: interrupted
/// nodes rerouted or drained their work, the drained node count never
/// exceeds total completions, and lost work only appears when a batch
/// was actually cancelled (which also reroutes its requests).
#[test]
fn drain_counters_partition_interruption_traffic() {
    let report = run_spot_fleet();
    let interruptions = report.counters.counter("fleet/interruptions");
    let rerouted = report.counters.counter("fleet/rerouted");
    let drained = report.counters.counter("fleet/drained");
    assert!(interruptions >= 1, "no interruption fired");
    assert!(
        rerouted + drained >= 1,
        "interruptions mid-traffic must move or finish some work"
    );
    assert!(
        drained <= report.completed(),
        "drained responses are a subset of completions"
    );
    if report.counters.counter("fleet/lost_work_ms") > 0 {
        assert!(
            rerouted > 0,
            "cancelled batches must reroute their requests"
        );
    }
    // Dead nodes stopped billing: at least one node's active time is
    // strictly shorter than the fleet makespan.
    assert!(
        report.node_active_s.iter().any(|&s| s < report.makespan_s),
        "an interrupted node must stop accruing node-seconds"
    );
}

/// Spot-fleet runs remain byte-deterministic: the interruption stream is
/// seeded, so two same-config runs agree bitwise.
#[test]
fn spot_fleet_runs_are_deterministic() {
    let a = run_spot_fleet();
    let b = run_spot_fleet();
    assert_eq!(a.to_json(), b.to_json());
    for (ra, rb) in a.node_reports.iter().zip(&b.node_reports) {
        assert_eq!(ra.responses, rb.responses);
        assert_eq!(ra.rejections, rb.rejections);
    }
}

fn scaler_config() -> AutoscalerConfig {
    AutoscalerConfig {
        min_nodes: 1,
        max_nodes: 4,
        p99_slo_s: 10e-3,
        eval_period_s: 50e-3,
        cooldown_s: 100e-3,
        breach_windows: 2,
        clear_windows: 3,
        scale_down_fraction: 0.4,
    }
}

/// Sustained overload scales up monotonically to `max_nodes` and never
/// beyond; a single breach window never scales.
#[test]
fn autoscaler_is_monotone_under_sustained_load_and_respects_max() {
    let cfg = scaler_config();
    let mut scaler = Autoscaler::new(cfg);
    let mut nodes = 1usize;
    let breach = Some(cfg.p99_slo_s * 2.0);

    // One spike then recovery: no scale action.
    assert_eq!(scaler.observe(0.05, breach, nodes), ScaleDecision::Hold);
    assert_eq!(
        scaler.observe(0.10, Some(cfg.p99_slo_s * 0.9), nodes),
        ScaleDecision::Hold,
        "a single-sample spike must never scale"
    );

    // Sustained breach: node count climbs, never decreases, caps at max.
    let mut history = vec![nodes];
    for i in 0..60 {
        let now = 0.15 + i as f64 * cfg.eval_period_s;
        match scaler.observe(now, breach, nodes) {
            ScaleDecision::Up => nodes += 1,
            ScaleDecision::Down => panic!("scaled down under sustained overload"),
            ScaleDecision::Hold => {}
        }
        history.push(nodes);
    }
    assert!(
        history.windows(2).all(|w| w[1] >= w[0]),
        "node count must be monotone under sustained load"
    );
    assert_eq!(nodes, cfg.max_nodes, "sustained overload must reach max");
}

/// Sustained idle shrinks to `min_nodes` and never below; cooldown spaces
/// consecutive actions by at least `cooldown_s`.
#[test]
fn autoscaler_respects_min_and_cooldown() {
    let cfg = scaler_config();
    let mut scaler = Autoscaler::new(cfg);
    let mut nodes = 4usize;
    let mut action_times: Vec<f64> = Vec::new();
    for i in 0..80 {
        let now = i as f64 * cfg.eval_period_s;
        // Idle windows (no completions) count as clear.
        match scaler.observe(now, None, nodes) {
            ScaleDecision::Down => {
                nodes -= 1;
                action_times.push(now);
            }
            ScaleDecision::Up => panic!("scaled up while idle"),
            ScaleDecision::Hold => {}
        }
        assert!(nodes >= cfg.min_nodes, "shrank below min_nodes");
    }
    assert_eq!(nodes, cfg.min_nodes, "sustained idle must reach min");
    assert!(
        action_times
            .windows(2)
            .all(|w| w[1] - w[0] >= cfg.cooldown_s - 1e-12),
        "consecutive actions inside the cooldown window: {action_times:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For ANY window sequence, the machine keeps its invariants: node
    /// count stays in [min, max], actions are spaced by the cooldown,
    /// and an Up is only ever issued after `breach_windows` breaching
    /// windows uninterrupted by a measured-healthy one (empty windows
    /// carry no recovery evidence and do not reset the streak).
    #[test]
    fn autoscaler_invariants_hold_on_arbitrary_metric_sequences(
        windows in prop::collection::vec(
            prop_oneof![
                Just(None),                       // idle window
                (0.1f64..0.9).prop_map(Some),     // clear (fraction of SLO applied below)
                (1.1f64..10.0).prop_map(Some),    // breach (multiple of SLO)
            ],
            1..120,
        )
    ) {
        let cfg = scaler_config();
        let mut scaler = Autoscaler::new(cfg);
        let mut nodes = cfg.min_nodes;
        let mut last_action: Option<f64> = None;
        let mut breach_run = 0u32;
        for (i, w) in windows.iter().enumerate() {
            let now = (i + 1) as f64 * cfg.eval_period_s;
            let p99 = w.map(|m| m * cfg.p99_slo_s);
            let breaching = p99.is_some_and(|p| p > cfg.p99_slo_s);
            breach_run = if breaching {
                breach_run + 1
            } else if p99.is_none() {
                breach_run
            } else {
                0
            };
            let decision = scaler.observe(now, p99, nodes);
            match decision {
                ScaleDecision::Up => {
                    prop_assert!(nodes < cfg.max_nodes, "Up at max");
                    prop_assert!(
                        breach_run >= cfg.breach_windows,
                        "Up after only {} consecutive breaches", breach_run
                    );
                    nodes += 1;
                }
                ScaleDecision::Down => {
                    prop_assert!(nodes > cfg.min_nodes, "Down at min");
                    prop_assert!(!breaching, "Down on a breaching window");
                    nodes -= 1;
                }
                ScaleDecision::Hold => {}
            }
            if decision != ScaleDecision::Hold {
                if let Some(t) = last_action {
                    prop_assert!(
                        now - t >= cfg.cooldown_s - 1e-12,
                        "action at {now} inside cooldown of action at {t}"
                    );
                }
                last_action = Some(now);
                breach_run = 0;
            }
            prop_assert!((cfg.min_nodes..=cfg.max_nodes).contains(&nodes));
        }
    }
}

/// End-to-end: a diurnal wave over an undersized fleet triggers at least
/// one scale-up at the peak, the fleet stays deterministic, and every
/// request is still accounted for.
#[test]
fn autoscaling_fleet_grows_under_diurnal_load_deterministically() {
    let targets = WorkloadGenerator::new(WorkloadConfig {
        seed: WORKLOAD_SEED,
        scale: 1e-4,
        ..WorkloadConfig::default()
    })
    .targets(96, WORKLOAD_SEED);
    // A slow trough ramping to a hard peak: the peak overloads one node.
    let times = ArrivalProcess::diurnal(ARRIVAL_SEED, 2_000.0, 120_000.0, 0.4).times(targets.len());
    let reqs: Vec<Request> = targets
        .into_iter()
        .zip(times)
        .enumerate()
        .map(|(i, (t, at))| Request::new(i as u64, at, t))
        .collect();
    let config = FleetConfig {
        nodes: 1,
        node: ServeConfig {
            // A large watermark keeps the peak queued instead of shed, so
            // latency (not rejections) carries the overload signal.
            admission_watermark: 4096,
            ..ServeConfig::default()
        },
        autoscale: Some(AutoscalerConfig {
            max_nodes: 4,
            p99_slo_s: 2e-3,
            eval_period_s: 10e-3,
            cooldown_s: 20e-3,
            breach_windows: 2,
            clear_windows: 4,
            scale_down_fraction: 0.4,
            ..AutoscalerConfig::default()
        }),
        ..FleetConfig::default()
    };
    let run = |mut cfg_requests: Vec<Request>| {
        cfg_requests.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
        FleetService::new(config.clone())
            .expect("valid fleet config")
            .run(cfg_requests)
            .expect("autoscaled run succeeds")
    };
    let a = run(reqs.clone());
    assert!(
        a.counters.counter("fleet/scale_ups") >= 1,
        "the diurnal peak must trigger a scale-up"
    );
    assert!(a.peak_nodes > 1, "peak node count must reflect the growth");
    assert_eq!(
        a.offered() as usize,
        reqs.len(),
        "requests lost or duplicated"
    );
    let b = run(reqs);
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "autoscaled runs must be seed-stable"
    );
}
