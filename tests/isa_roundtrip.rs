//! Property tests of the RoCC instruction format and the IR command ISA:
//! every encodable value round-trips through the wire format.

use proptest::prelude::*;

use ir_system::fpga::{BufferIndex, IrCommand, RoccInstruction};

fn command_strategy() -> impl Strategy<Value = IrCommand> {
    prop_oneof![
        (0usize..5, any::<u64>()).prop_map(|(b, addr)| IrCommand::SetAddr {
            buffer: BufferIndex::ALL[b],
            addr,
        }),
        any::<u64>().prop_map(|start_pos| IrCommand::SetTarget { start_pos }),
        (1u8..=32, 1u16..=256)
            .prop_map(|(consensuses, reads)| IrCommand::SetSize { consensuses, reads }),
        (0u8..32, 1u16..=2048)
            .prop_map(|(consensus_id, len)| IrCommand::SetLen { consensus_id, len }),
        (0u8..32).prop_map(|unit_id| IrCommand::Start { unit_id }),
    ]
}

proptest! {
    #[test]
    fn rocc_words_round_trip(
        funct in 0u8..=0x7f,
        rs1 in 0u8..=0x1f,
        rs2 in 0u8..=0x1f,
        xd: bool,
        xs1: bool,
        xs2: bool,
        rd in 0u8..=0x1f,
    ) {
        let instr = RoccInstruction::new(funct, rs1, rs2, xd, xs1, xs2, rd)
            .expect("fields in range");
        let decoded = RoccInstruction::decode(instr.encode()).expect("valid opcode");
        prop_assert_eq!(decoded, instr);
        prop_assert_eq!(decoded.funct(), funct);
        prop_assert_eq!(decoded.rs1(), rs1);
        prop_assert_eq!(decoded.rs2(), rs2);
        prop_assert_eq!(decoded.rd(), rd);
    }

    #[test]
    fn ir_commands_round_trip(cmd in command_strategy()) {
        prop_assert_eq!(IrCommand::decode(cmd.encode()).expect("decodes"), cmd);
    }

    #[test]
    fn distinct_commands_encode_distinctly(a in command_strategy(), b in command_strategy()) {
        if a != b {
            prop_assert_ne!(a.encode(), b.encode());
        }
    }

    #[test]
    fn foreign_opcodes_never_decode(word: u32) {
        // Only words carrying the custom-0 opcode may decode.
        if word & 0x7f != 0b000_1011 {
            prop_assert!(RoccInstruction::decode(word).is_err());
        }
    }
}
