//! Offline stand-in for `serde`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` (no serializer
//! backend such as `serde_json` is in the dependency tree), so marker
//! traits are all that is required for the derives to compile and for
//! `T: Serialize` bounds to be satisfiable. The real crate can be swapped
//! back in unchanged once the build environment has registry access.

/// Marker for types that declare themselves serializable.
pub trait Serialize {}

/// Marker for types that declare themselves deserializable.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
impl_markers!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, String
);

impl Serialize for str {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}

macro_rules! impl_tuple_markers {
    ($(($($n:ident),+)),+) => {$(
        impl<$($n: Serialize),+> Serialize for ($($n,)+) {}
        impl<'de, $($n: Deserialize<'de>),+> Deserialize<'de> for ($($n,)+) {}
    )+};
}
impl_tuple_markers!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
