//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates.io cache, so
//! the workspace vendors the *exact* API surface it uses: [`Rng`]
//! (`random`, `random_bool`, `random_range`), [`SeedableRng`] and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! splitmix64 — deterministic, fast, and statistically strong enough for
//! the synthetic workload generators and property tests in this repo.
//!
//! This is **not** a cryptographic RNG and makes no attempt to match the
//! real `rand` crate's value streams; all in-repo consumers are either
//! differential (golden model vs simulator) or statistical, so only
//! determinism and distribution quality matter.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample(self) < p
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via splitmix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable from their "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded via splitmix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.random::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.random::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.random_range(-50..=50);
            assert!((-50..=50).contains(&y));
            let f: f64 = rng.random_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            // Matches the zipf sampler's `R: Rng + ?Sized` usage pattern.
            super::Standard::sample(rng)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0.0..1.0).contains(&draw(&mut rng)));
    }
}
