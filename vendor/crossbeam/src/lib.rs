//! Offline stand-in for `crossbeam`.
//!
//! The workspace only uses `crossbeam::thread::scope` + `Scope::spawn`,
//! which std has provided natively since 1.63. This shim adapts
//! [`std::thread::scope`] to crossbeam's signatures: the scope closure
//! and each spawned closure receive a `&Scope` (crossbeam passes the
//! scope to children so they can spawn siblings), and `scope` returns a
//! `Result` (always `Ok` here — a panicking child propagates its panic at
//! scope exit exactly like upstream's default `.expect` usage).

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;
    use std::thread as std_thread;

    /// The error type `scope` reports when a child panics (upstream
    /// crossbeam); this shim never constructs it — child panics propagate
    /// at scope exit instead, which callers treat identically.
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// A scope handle that can spawn threads borrowing from the caller.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result.
        ///
        /// # Errors
        ///
        /// Returns the child's panic payload if it panicked.
        pub fn join(self) -> Result<T, ScopeError> {
            self.inner.join().map_err(|e| e as ScopeError)
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope; the closure receives the
        /// scope so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope whose spawned threads all join before
    /// `scope` returns.
    ///
    /// # Errors
    ///
    /// Never errors in this shim (see module docs).
    #[allow(clippy::missing_errors_doc)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let data = [1usize, 2, 3, 4];
        thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    counter.fetch_add(chunk.iter().sum::<usize>(), Ordering::Relaxed);
                });
            }
        })
        .expect("scope joins");
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn join_handles_return_values() {
        let r = thread::scope(|s| {
            let h = s.spawn(|_| 7usize);
            h.join().expect("no panic")
        })
        .expect("scope joins");
        assert_eq!(r, 7);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicUsize::new(0);
        thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .expect("scope joins");
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
