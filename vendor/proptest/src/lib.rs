//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses —
//! [`Strategy`] with `prop_map`/`prop_flat_map`/`boxed`, range and tuple
//! strategies, `any`, `Just`, weighted `prop_oneof!`, `prop::collection::vec`,
//! `prop_compose!`, `proptest!` and the `prop_assert*` macros — on top of
//! a deterministic seeded RNG. There is **no shrinking**: a failing case
//! reports its case index and seed so it can be replayed, which is enough
//! for the differential and round-trip properties in this repo.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Runner configuration: how many seeded cases each property executes.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// A config whose case count defaults to `default_cases` but can be
    /// overridden through the `IR_PROPTEST_CASES` environment variable.
    ///
    /// The heavy differential suites in this workspace use this so local
    /// `cargo test` stays fast (the defaults are sized for the tier-1
    /// wall-clock budget) while CI exports `IR_PROPTEST_CASES` to run the
    /// full counts. Zero or unparsable values fall back to the default.
    pub fn with_cases_env(default_cases: u32) -> Self {
        let cases = std::env::var("IR_PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse::<u32>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(default_cases);
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Matches upstream proptest's default.
        ProptestConfig { cases: 256 }
    }
}

/// Derives the per-case RNG. Deterministic in (test name, case index) so
/// failures are replayable, independent across cases and tests.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case))
}

/// A generator of values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discards values failing `pred` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe generation, used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 straight values: {}", self.whence);
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among boxed strategies (what `prop_oneof!` builds).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union; weights must sum to a positive value.
    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = options.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof needs at least one positive weight");
        Union { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.random_range(0..self.total);
        for (w, s) in &self.options {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights cover the sampled index")
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    fn arbitrary() -> ArbitraryStrategy<Self>;
}

/// Strategy returned by [`any`].
pub struct ArbitraryStrategy<T>(PhantomData<T>);

macro_rules! impl_arbitrary_uniform {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> ArbitraryStrategy<$t> {
                ArbitraryStrategy(PhantomData)
            }
        }
        impl Strategy for ArbitraryStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random::<$t>()
            }
        }
    )*};
}
impl_arbitrary_uniform!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// The full range (or `[0,1)` for floats) of `T`.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    T::arbitrary()
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident $idx:tt),+)),+) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A 0),
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4),
    (A 0, B 1, C 2, D 3, E 4, F 5)
);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Acceptable size arguments for [`vec`].
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy for `Vec`s of values from `element`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Vectors whose length is drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec` paths resolve.
pub mod prop {
    pub use super::collection;
}

/// The glob-import surface tests use.
pub mod prelude {
    pub use super::{
        any, case_rng, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose,
        prop_oneof, proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
        Union,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Weighted or unweighted choice among strategies yielding one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Binds one parameter list entry (`pat in strategy` or `name: type`)
/// then recurses; the remaining parameters ride inside a bracket group so
/// the repetition has a hard delimiter. Internal to `proptest!` and
/// `prop_compose!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_bind {
    ($rng:expr; [] $body:block) => { $body };
    ($rng:expr; [$pat:pat in $strategy:expr] $body:block) => {
        {
            let $pat = $crate::Strategy::generate(&($strategy), $rng);
            $body
        }
    };
    ($rng:expr; [$pat:pat in $strategy:expr, $($rest:tt)*] $body:block) => {
        {
            let $pat = $crate::Strategy::generate(&($strategy), $rng);
            $crate::__prop_bind!($rng; [$($rest)*] $body)
        }
    };
    ($rng:expr; [$name:ident: $ty:ty] $body:block) => {
        {
            let $name: $ty = $crate::Strategy::generate(&$crate::any::<$ty>(), $rng);
            $body
        }
    };
    ($rng:expr; [$name:ident: $ty:ty, $($rest:tt)*] $body:block) => {
        {
            let $name: $ty = $crate::Strategy::generate(&$crate::any::<$ty>(), $rng);
            $crate::__prop_bind!($rng; [$($rest)*] $body)
        }
    };
}

/// Defines seeded-case property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[doc = $doc:expr])*
        #[test]
        fn $name:ident($($params:tt)*) $body:block
    )*) => {$(
        $(#[doc = $doc])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(stringify!($name), case);
                $crate::__prop_bind!(&mut rng; [$($params)*] $body)
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Composes named strategies out of parameter bindings (the subset of
/// upstream `prop_compose!` with an empty outer parameter list).
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[doc = $doc:expr])*
        $vis:vis fn $name:ident()($($params:tt)*) -> $out:ty $body:block
    ) => {
        $(#[doc = $doc])*
        $vis fn $name() -> impl $crate::Strategy<Value = $out> {
            $crate::FnStrategy(move |rng: &mut $crate::TestRng| {
                $crate::__prop_bind!(&mut *rng; [$($params)*] $body)
            })
        }
    };
}

/// A strategy backed by a closure over the RNG (used by `prop_compose!`).
pub struct FnStrategy<F>(pub F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_any_generate_in_bounds() {
        let mut rng = case_rng("unit", 0);
        for _ in 0..100 {
            let x = (3u64..10).generate(&mut rng);
            assert!((3..10).contains(&x));
            let b: bool = any::<bool>().generate(&mut rng);
            let _ = b;
        }
    }

    #[test]
    fn with_cases_env_falls_back_to_default() {
        // Only asserts the fallback path: mutating the process environment
        // would race with other tests reading the same variable.
        if std::env::var("IR_PROPTEST_CASES").is_err() {
            assert_eq!(ProptestConfig::with_cases_env(42).cases, 42);
        }
    }

    #[test]
    fn oneof_honors_weights() {
        let s = prop_oneof![9 => Just(1u8), 1 => Just(0u8)];
        let mut rng = case_rng("weights", 1);
        let ones: u32 = (0..1000).map(|_| u32::from(s.generate(&mut rng))).sum();
        assert!((820..980).contains(&ones), "ones {ones}");
    }

    #[test]
    fn vec_map_flat_map_compose() {
        let s = collection::vec(0u8..4, 2..6)
            .prop_flat_map(|v| (Just(v), 0usize..3))
            .prop_map(|(v, k)| (v.len(), k));
        let mut rng = case_rng("compose", 2);
        for _ in 0..50 {
            let (len, k) = s.generate(&mut rng);
            assert!((2..6).contains(&len));
            assert!(k < 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_both_forms(x in 1u32..5, flag: bool, (a, b) in (0u8..3, 0u8..3)) {
            prop_assert!((1..5).contains(&x));
            let _ = flag;
            prop_assert!(a < 3 && b < 3);
        }
    }

    prop_compose! {
        fn pair()(x in 0u8..10, y in 0u8..10) -> (u8, u8) {
            (x, y)
        }
    }

    proptest! {
        #[test]
        fn composed_strategy_works((x, y) in pair()) {
            prop_assert!(x < 10 && y < 10);
        }
    }
}
