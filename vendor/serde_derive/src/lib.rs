//! Offline stand-in for `serde_derive`.
//!
//! The vendored `serde` traits are empty markers, so the derives only
//! need the type's name to emit an empty impl. The name is read straight
//! from the token stream — no `syn`/`quote`, keeping the stub
//! dependency-free. Generic types and `#[serde(...)]` attributes are not
//! supported; no type in this workspace uses either.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum` keyword.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        if matches!(tokens.next(), Some(TokenTree::Punct(p)) if p.as_char() == '<')
                        {
                            panic!("vendored serde_derive does not support generic type `{name}`");
                        }
                        return name.to_string();
                    }
                    other => panic!("no type name after {kw}: {other:?}"),
                }
            }
        }
    }
    panic!("derive input is neither a struct nor an enum");
}

/// Derives the vendored `serde::Serialize` marker.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derives the vendored `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
