//! Offline stand-in for `criterion`.
//!
//! Provides the API the workspace's benches use — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`Throughput`], `b.iter(..)`, and
//! the `criterion_group!`/`criterion_main!` macros — measured with plain
//! wall-clock timing: a short warm-up, then a fixed measurement window,
//! reporting mean time per iteration (and throughput when declared). No
//! statistics, plots, or baselines; results print to stdout.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Declared work per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the measured closure; `iter` runs and times the payload.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f` over a warm-up pass plus a fixed measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until ~50 ms have passed (at least once).
        let warmup_end = Instant::now() + Duration::from_millis(50);
        let mut warmup_iters: u64 = 0;
        while Instant::now() < warmup_end || warmup_iters == 0 {
            std_black_box(f());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        // Measurement: a fixed window, timed in batches sized from the
        // warm-up estimate to keep clock overhead negligible.
        let batch = (warmup_iters / 10).max(1);
        let window = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < window {
            for _ in 0..batch {
                std_black_box(f());
            }
            iters += batch;
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    if bencher.iters == 0 {
        println!("{name:<50} (no iterations)");
        return;
    }
    let per_iter = bencher.total.as_secs_f64() / bencher.iters as f64;
    let time = if per_iter < 1e-6 {
        format!("{:.1} ns", per_iter * 1e9)
    } else if per_iter < 1e-3 {
        format!("{:.2} µs", per_iter * 1e6)
    } else {
        format!("{:.3} ms", per_iter * 1e3)
    };
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:.1} Melem/s", n as f64 / per_iter / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:.1} MiB/s", n as f64 / per_iter / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!("{name:<50} {time:>12}/iter{thrpt}");
}

/// A named group of related benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for upstream API parity; the fixed measurement window
    /// ignores the requested sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
    }

    /// Ends the group (no-op; parity with upstream).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(name, &b, None);
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
