//! Probe: how cold oracle compute time splits between the serial and
//! IRACC timing keys (the two datapath families fig9_speedup computes).

use std::time::Instant;

use ir_bench::{bench_workload, scale_from_env};
use ir_fpga::oracle::FunctionalOracle;
use ir_fpga::FpgaParams;
use ir_genome::Chromosome;

fn main() {
    let generator = bench_workload(scale_from_env());
    let chromosomes: Vec<Chromosome> = Chromosome::autosomes().collect();
    let mut serial_s = 0.0f64;
    let mut iracc_s = 0.0f64;
    for &chromosome in &chromosomes {
        let workload = generator.chromosome(chromosome);
        let t = Instant::now();
        let mut o = FunctionalOracle::new();
        o.precompute(&workload.targets, &FpgaParams::serial(), 1);
        serial_s += t.elapsed().as_secs_f64();
        let t = Instant::now();
        let mut o = FunctionalOracle::new();
        o.precompute(&workload.targets, &FpgaParams::iracc(), 1);
        iracc_s += t.elapsed().as_secs_f64();
    }
    println!("serial oracle: {serial_s:.2} s");
    println!("iracc  oracle: {iracc_s:.2} s");
}
