//! Cross-binary [`FunctionalOracle`] disk cache, keyed by workload
//! content and timing-relevant parameters.
//!
//! Several figure binaries evaluate the *same* deterministic workload
//! under the *same* timing key — `fig9_speedup`, `fig9_cost`,
//! `headline_claims` and `resilience_study` all fold the full Ch1–22
//! bench workload through the IRACC configuration, for example — so
//! within one `run_all_figures.sh` invocation most datapath work after
//! the first binary is re-derivable. This module persists the oracle's
//! memoized [`ir_fpga::unit::UnitRun`]s (an exact, all-integer encoding;
//! see `FunctionalOracle::export_entries`) into the directory named by
//! `IR_ORACLE_CACHE`, so later binaries jump straight to scheduling.
//!
//! Safety properties:
//!
//! - **Opt-in**: without `IR_ORACLE_CACHE` in the environment the cache
//!   is inert and every binary behaves exactly as before. The tier-1
//!   test suite and the parity CI jobs never set it.
//! - **Content-addressed**: each file embeds an FNV-1a fingerprint of
//!   the canonical `tio` serialization of the target set, and the
//!   snapshot payload embeds the timing key; any mismatch (different
//!   scale, different workload shape, stale build writing different
//!   targets) falls back to recomputation and rewrites the entry.
//! - **Bitwise-transparent**: an imported entry reconstructs the exact
//!   `UnitRun` a cold evaluation would produce (pinned by the round-trip
//!   tests in `ir-fpga::oracle` and the integration test below), so
//!   every emitted table and trace is byte-identical with the cache hot,
//!   cold, or disabled. `run_all_figures.sh` wipes the directory at
//!   suite start, so all writers within one run are the same build.

use std::fs;
use std::path::PathBuf;

use ir_fpga::{FpgaParams, FunctionalOracle};
use ir_genome::{tio, RealignmentTarget};

/// Magic bytes opening every cache file (the embedded oracle snapshot
/// carries its own magic + version).
const FILE_MAGIC: &[u8] = b"IRBCACHE";

/// A handle on the shared oracle cache directory (or an inert stub when
/// `IR_ORACLE_CACHE` is unset).
#[derive(Debug, Clone)]
pub struct OracleCache {
    dir: Option<PathBuf>,
}

impl OracleCache {
    /// Binds to the directory named by `IR_ORACLE_CACHE`, creating it if
    /// needed; inert when the variable is unset or empty.
    pub fn from_env() -> Self {
        let dir = std::env::var("IR_ORACLE_CACHE")
            .ok()
            .filter(|d| !d.is_empty())
            .map(PathBuf::from);
        if let Some(d) = &dir {
            let _ = fs::create_dir_all(d);
        }
        OracleCache { dir }
    }

    /// An always-inert cache (every lookup computes).
    pub fn disabled() -> Self {
        OracleCache { dir: None }
    }

    /// Whether a cache directory is bound.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// An oracle fully warmed for `targets` under `params`: loaded from
    /// the cache when a matching entry exists, otherwise precomputed on
    /// `threads` workers and persisted for the next binary in the run.
    ///
    /// `id` names the workload for humans (it becomes part of the file
    /// name); correctness never depends on it — the content fingerprint
    /// and the embedded timing key are what gate a load.
    pub fn load_or_compute(
        &self,
        id: &str,
        targets: &[RealignmentTarget],
        params: &FpgaParams,
        threads: usize,
    ) -> FunctionalOracle {
        let Some(dir) = &self.dir else {
            let mut oracle = FunctionalOracle::new();
            oracle.precompute(targets, params, threads);
            return oracle;
        };
        let content_fp = content_fingerprint(targets);
        let path = dir.join(format!(
            "{}-{:016x}-{:016x}.oracle",
            sanitize(id),
            content_fp,
            params_fingerprint(params),
        ));

        if let Ok(bytes) = fs::read(&path) {
            if let Some(oracle) = decode_file(&bytes, content_fp, params) {
                return oracle;
            }
        }

        let mut oracle = FunctionalOracle::new();
        oracle.precompute(targets, params, threads);
        if let Some(snapshot) = oracle.export_entries(params, targets.len()) {
            let mut file = Vec::with_capacity(FILE_MAGIC.len() + 8 + snapshot.len());
            file.extend_from_slice(FILE_MAGIC);
            file.extend_from_slice(&content_fp.to_le_bytes());
            file.extend_from_slice(&snapshot);
            // Write-to-temp + rename so a concurrent reader never sees a
            // half-written entry; failures only cost the next run a miss.
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            if fs::write(&tmp, &file)
                .and_then(|()| fs::rename(&tmp, &path))
                .is_err()
            {
                let _ = fs::remove_file(&tmp);
            }
        }
        oracle
    }
}

/// Validates a cache file against the expected content fingerprint and
/// timing key; any mismatch or decode failure is a miss.
fn decode_file(bytes: &[u8], content_fp: u64, params: &FpgaParams) -> Option<FunctionalOracle> {
    let payload = bytes.strip_prefix(FILE_MAGIC)?;
    let (fp_bytes, snapshot) = payload.split_first_chunk::<8>()?;
    if u64::from_le_bytes(*fp_bytes) != content_fp {
        return None;
    }
    let mut oracle = FunctionalOracle::new();
    oracle.import_entries(params, snapshot).ok()?;
    Some(oracle)
}

/// FNV-1a over the canonical `tio` serialization of the target set.
fn content_fingerprint(targets: &[RealignmentTarget]) -> u64 {
    let mut bytes = Vec::new();
    tio::write_targets(&mut bytes, targets).expect("Vec<u8> writer cannot fail");
    fnv1a(&bytes)
}

/// FNV-1a over the timing-relevant [`FpgaParams`] fields — the same five
/// fields the oracle keys on (the snapshot embeds and re-verifies them;
/// this fingerprint only keeps distinct configurations in distinct
/// files).
fn params_fingerprint(params: &FpgaParams) -> u64 {
    let mut bytes = Vec::with_capacity(40);
    bytes.extend_from_slice(&(params.lanes as u64).to_le_bytes());
    bytes.extend_from_slice(&u64::from(params.pruning).to_le_bytes());
    bytes.extend_from_slice(&params.pair_overhead_cycles.to_le_bytes());
    bytes.extend_from_slice(&params.bus_bytes.to_le_bytes());
    bytes.extend_from_slice(&params.compute_overhead.to_bits().to_le_bytes());
    fnv1a(&bytes)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Keeps file names portable: alphanumerics, `-`, `_`, `.`; everything
/// else becomes `_`.
fn sanitize(id: &str) -> String {
    id.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_workload;
    use ir_fpga::{AcceleratedSystem, Scheduling};

    fn targets() -> Vec<RealignmentTarget> {
        bench_workload(2e-4)
            .chromosome(ir_genome::Chromosome::Autosome(20))
            .targets
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ir-oracle-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp cache dir");
        dir
    }

    fn cache_at(dir: &std::path::Path) -> OracleCache {
        OracleCache {
            dir: Some(dir.to_path_buf()),
        }
    }

    #[test]
    fn disabled_cache_is_inert_and_correct() {
        let targets = targets();
        let cache = OracleCache::disabled();
        assert!(!cache.is_enabled());
        let params = FpgaParams::iracc();
        let mut oracle = cache.load_or_compute("t", &targets, &params, 1);
        assert_eq!(oracle.len(), targets.len());
        let sys = AcceleratedSystem::new(params, Scheduling::Asynchronous).expect("fits");
        let via = sys.run_with_oracle(&targets, &mut oracle);
        let direct = sys.run(&targets);
        assert_eq!(via.wall_time_s.to_bits(), direct.wall_time_s.to_bits());
    }

    #[test]
    fn cache_round_trip_is_bitwise_transparent() {
        let targets = targets();
        let dir = tempdir("roundtrip");
        let cache = cache_at(&dir);
        let params = FpgaParams::iracc();
        let sys = AcceleratedSystem::new(params, Scheduling::Asynchronous).expect("fits");
        let direct = sys.run(&targets);

        // Cold: computes and persists.
        let mut cold = cache.load_or_compute("chr20", &targets, &params, 1);
        let entries: Vec<_> = fs::read_dir(&dir).unwrap().collect();
        assert_eq!(entries.len(), 1, "one persisted entry");
        let cold_run = sys.run_with_oracle(&targets, &mut cold);

        // Hot: loads the persisted entry — same bits end to end.
        let mut hot = cache.load_or_compute("chr20", &targets, &params, 1);
        assert_eq!(hot.len(), targets.len());
        let hot_run = sys.run_with_oracle(&targets, &mut hot);
        for run in [&cold_run, &hot_run] {
            assert_eq!(run.wall_time_s.to_bits(), direct.wall_time_s.to_bits());
            assert_eq!(run.comparisons, direct.comparisons);
            assert_eq!(run.compute_cycles, direct.compute_cycles);
            for (a, b) in run.results.iter().zip(&direct.results) {
                assert_eq!(a, b);
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn content_or_params_change_misses() {
        let targets = targets();
        let dir = tempdir("miss");
        let cache = cache_at(&dir);
        let params = FpgaParams::iracc();
        let _ = cache.load_or_compute("w", &targets, &params, 1);
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);

        // Different timing key → distinct file, both valid.
        let _ = cache.load_or_compute("w", &targets, &FpgaParams::serial(), 1);
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 2);

        // Different content under the same id → distinct file again.
        let fewer = &targets[..targets.len() - 1];
        let _ = cache.load_or_compute("w", fewer, &params, 1);
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_falls_back_to_recompute() {
        let targets = targets();
        let dir = tempdir("corrupt");
        let cache = cache_at(&dir);
        let params = FpgaParams::iracc();
        let _ = cache.load_or_compute("w", &targets, &params, 1);
        let entry = fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        let mut bytes = fs::read(&entry).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&entry, &bytes).unwrap();

        let mut oracle = cache.load_or_compute("w", &targets, &params, 1);
        assert_eq!(oracle.len(), targets.len());
        let sys = AcceleratedSystem::new(params, Scheduling::Asynchronous).expect("fits");
        let via = sys.run_with_oracle(&targets, &mut oracle);
        let direct = sys.run(&targets);
        assert_eq!(via.wall_time_s.to_bits(), direct.wall_time_s.to_bits());
        let _ = fs::remove_dir_all(&dir);
    }
}
