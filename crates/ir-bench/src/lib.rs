//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see `DESIGN.md` for the index). They share:
//!
//! - [`scale_from_env`] — the `IR_SCALE` knob mapping the paper's
//!   full-genome workload down to laptop scale (default `1e-4`, i.e.
//!   ~0.01% of NA12878's IR targets, preserving shape statistics);
//! - [`threads_from_env`] / [`parallel_sweep`] — the `IR_THREADS` knob
//!   and the shared worker pool the sweep binaries run their independent
//!   configuration points on;
//! - [`default_workload`] — the standard synthetic workload generator;
//! - [`Table`] — aligned text tables, also written as CSV into
//!   `results/`;
//! - [`gmean`] — the geometric mean the paper reports for Figure 9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use ir_workloads::{WorkloadConfig, WorkloadGenerator};

pub mod oracle_cache;

pub use oracle_cache::OracleCache;

/// Reads the workload scale from `IR_SCALE` (default `1e-4`).
///
/// Scale 1.0 is the paper's full NA12878 run (~2.8 M IR targets across
/// Ch1–22); `1e-4` keeps every shape distribution intact at ~280 targets.
pub fn scale_from_env() -> f64 {
    std::env::var("IR_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0 && s <= 1.0)
        .unwrap_or(1e-4)
}

/// Reads the sweep-harness worker count from `IR_THREADS` (≥ 1), falling
/// back to the machine's available parallelism.
///
/// Every figure binary runs its independent sweep points through
/// [`parallel_sweep`] on this many OS threads. The emitted tables and
/// CSVs are **byte-identical for any thread count**: sweep points share
/// no mutable state, host wall-clock is only ever printed to stdout, and
/// results are collected in input order. CI pins this by byte-diffing a
/// 2-thread run against a 1-thread run.
pub fn threads_from_env() -> usize {
    std::env::var("IR_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Runs `f` over every input on `threads` scoped worker threads (dynamic
/// work-stealing distribution) and returns the outputs **in input
/// order** — so callers can compute derived rows (e.g. speedup vs the
/// first sweep point) exactly as the old serial loops did.
///
/// Results travel back over an index-stamped channel into disjoint
/// slots; with `threads == 1` or a single input the closure runs inline
/// on the calling thread, keeping small sweeps allocation-cheap.
///
/// # Panics
///
/// Panics if `threads` is zero or a worker thread panics.
///
/// # Example
///
/// ```
/// use ir_bench::parallel_sweep;
///
/// let squares = parallel_sweep(&[1u64, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_sweep<I, O, F>(inputs: &[I], threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    assert!(threads > 0, "at least one thread required");
    if threads == 1 || inputs.len() <= 1 {
        return inputs.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, O)>();
    let mut slots: Vec<Option<O>> = (0..inputs.len()).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        let (next, f) = (&next, &f);
        for _ in 0..threads.min(inputs.len()) {
            let tx = tx.clone();
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(input) = inputs.get(i) else {
                    break;
                };
                tx.send((i, f(input))).expect("collector outlives workers");
            });
        }
        drop(tx);
        for (i, out) in rx {
            debug_assert!(slots[i].is_none(), "each sweep point runs once");
            slots[i] = Some(out);
        }
    })
    .expect("sweep worker threads join");
    slots
        .into_iter()
        .map(|s| s.expect("every sweep point completed"))
        .collect()
}

/// The standard workload generator the figure binaries share: paper-shaped
/// targets (250 bp reads, 320–2048 bp consensuses, Zipf coverage) at the
/// given scale.
pub fn default_workload(scale: f64) -> WorkloadGenerator {
    WorkloadGenerator::new(WorkloadConfig {
        scale,
        ..WorkloadConfig::default()
    })
}

/// The *bench-profile* workload: geometry scaled down ~4× (62 bp reads,
/// 80–510 bp consensuses) so per-target simulation is ~20× cheaper and the
/// figure binaries can afford enough targets per chromosome (hundreds to
/// thousands) for the scheduling effects of Figures 7 and 9 to be
/// statistically meaningful.
///
/// The scaling preserves the ratios that drive accelerator behaviour:
/// `m/n` spans the same 1.3–8.2 band as the paper's geometry, and a 62 bp
/// read wastes 3.1% of the 32-lane calculator's last block — matching the
/// 2.3% waste of a 250 bp read. `scale` remains the fraction of the
/// paper's per-chromosome target counts.
pub fn bench_workload(scale: f64) -> WorkloadGenerator {
    WorkloadGenerator::new(WorkloadConfig {
        scale,
        read_len: 62,
        min_consensus_len: 80,
        max_consensus_len: 510,
        ..WorkloadConfig::default()
    })
}

/// Geometric mean of strictly positive values (the Figure 9 aggregate).
///
/// # Panics
///
/// Panics if `values` is empty or any value is non-positive.
pub fn gmean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "gmean of an empty slice");
    assert!(
        values.iter().all(|&v| v > 0.0),
        "gmean requires positive values"
    );
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Directory the binaries drop CSV outputs into.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("IR_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let path = PathBuf::from(dir);
    let _ = fs::create_dir_all(&path);
    path
}

/// A simple aligned text table that can also serialize itself to CSV.
///
/// # Example
///
/// ```
/// use ir_bench::Table;
///
/// let mut t = Table::new(vec!["chromosome", "speedup"]);
/// t.row(vec!["chr21".to_string(), "81.3".to_string()]);
/// let text = t.render();
/// assert!(text.contains("chr21"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<&'static str>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&'static str>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            for w in &widths {
                let _ = write!(out, "+{:-<1$}", "", w + 2);
            }
            out.push_str("+\n");
        };
        sep(&mut out);
        for (w, h) in widths.iter().zip(&self.headers) {
            let _ = write!(out, "| {h:w$} ");
        }
        out.push_str("|\n");
        sep(&mut out);
        for row in &self.rows {
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(out, "| {cell:>w$} ");
            }
            out.push_str("|\n");
        }
        sep(&mut out);
        out
    }

    /// Writes the table as `results/<name>.csv` and returns the path.
    pub fn write_csv(&self, name: &str) -> PathBuf {
        let path = results_dir().join(format!("{name}.csv"));
        let mut csv = self.headers.join(",");
        csv.push('\n');
        for row in &self.rows {
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        if let Err(e) = fs::write(&path, csv) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
        path
    }

    /// Writes the rendered text table as `results/<name>.txt` and returns
    /// the path.
    pub fn write_txt(&self, name: &str) -> PathBuf {
        let path = results_dir().join(format!("{name}.txt"));
        if let Err(e) = fs::write(&path, self.render()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
        path
    }

    /// Prints the table and writes the matching `<name>.csv` +
    /// `<name>.txt` pair under `results/`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        let path = self.write_csv(name);
        println!("[csv] {}", path.display());
        let path = self.write_txt(name);
        println!("[txt] {}", path.display());
    }
}

/// Formats seconds human-readably (µs/ms/s/min/h).
pub fn fmt_duration(seconds: f64) -> String {
    if seconds < 1e-3 {
        format!("{:.1} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else if seconds < 120.0 {
        format!("{seconds:.2} s")
    } else if seconds < 7200.0 {
        format!("{:.1} min", seconds / 60.0)
    } else {
        format!("{:.1} h", seconds / 3600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_of_constants() {
        assert!((gmean(&[4.0, 4.0, 4.0]) - 4.0).abs() < 1e-12);
        assert!((gmean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gmean_rejects_zero() {
        let _ = gmean(&[1.0, 0.0]);
    }

    #[test]
    fn table_renders_and_aligns() {
        let mut t = Table::new(vec!["a", "long header"]);
        t.row(vec!["1".into(), "2".into()]);
        let text = t.render();
        assert!(text.contains("long header"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(5e-7), "0.5 µs");
        assert_eq!(fmt_duration(0.25), "250.00 ms");
        assert_eq!(fmt_duration(30.0), "30.00 s");
        assert_eq!(fmt_duration(1800.0), "30.0 min");
        assert_eq!(fmt_duration(42.0 * 3600.0), "42.0 h");
    }

    #[test]
    fn default_scale_is_small() {
        // Without the env var set the default must be laptop-scale.
        if std::env::var("IR_SCALE").is_err() {
            assert!((scale_from_env() - 1e-4).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_sweep_keeps_input_order() {
        let inputs: Vec<usize> = (0..97).collect();
        for threads in [1, 2, 3, 8] {
            let out = parallel_sweep(&inputs, threads, |&x| x * 3);
            assert_eq!(out, inputs.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_sweep_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_sweep(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_sweep(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn parallel_sweep_zero_threads_panics() {
        let _ = parallel_sweep(&[1u8], 0, |&x| x);
    }

    #[test]
    fn threads_from_env_is_at_least_one() {
        assert!(threads_from_env() >= 1);
    }
}
