//! §III-A / §IV ablation: computation pruning.
//!
//! Paper anchor: "Computation pruning eliminates > 50% of the computations
//! from the input data set we used", bought with "a small register ... and
//! some relatively trivial control logic".

use ir_bench::{default_workload, gmean, scale_from_env, Table};
use ir_core::{IndelRealigner, PruningMode};
use ir_genome::Chromosome;

fn main() {
    // Paper-geometry targets, with the scale capped so the unpruned-
    // equivalent work stays affordable.
    let scale = scale_from_env().min(2e-4);
    let generator = default_workload(scale);
    println!("Computation-pruning ablation (workload scale {scale})\n");

    let pruned_realigner = IndelRealigner::with_pruning(PruningMode::On);
    let mut table = Table::new(vec![
        "chromosome",
        "naive comparisons",
        "pruned comparisons",
        "eliminated",
    ]);
    let mut fractions = Vec::new();
    for chromosome in Chromosome::autosomes().take(6) {
        let workload = generator.chromosome(chromosome);
        let (_, ops) = pruned_realigner.realign_all(&workload.targets);
        let eliminated = ops.pruned_fraction();
        fractions.push(eliminated);
        table.row(vec![
            chromosome.to_string(),
            ops.naive_comparisons().to_string(),
            ops.base_comparisons.to_string(),
            format!("{:.1}%", eliminated * 100.0),
        ]);
    }
    table.emit("pruning_ablation");

    println!("\npaper anchor: pruning eliminates > 50% of computations");
    println!(
        "measured     : {:.1}% eliminated (gmean across chromosomes), hardware cost ≈ one register + comparator",
        gmean(&fractions) * 100.0
    );
    println!("\npruning is exact: grids, consensus picks and realignments are unchanged\n(verified continuously by the `pruning_invariance` property tests)");
}
