//! `serve_load` — open-loop load generator for the `ir-serve` batched
//! realignment service.
//!
//! Replays a seeded bench-profile workload as Poisson traffic against two
//! service configurations sharing the same arrival stream:
//!
//! - **batch1** — `max_batch = 1`: every request is dispatched alone (no
//!   coalescing), so each batch occupies one of the backend's 32 units
//!   and pays the full DMA-chain + command overhead by itself.
//! - **adaptive** — `max_batch = 32` with a flush deadline: the batcher
//!   fills the sea of units when traffic allows and flushes partial
//!   batches when the oldest request's deadline expires.
//!
//! The offered rate is calibrated from a deterministic full-batch probe
//! (no host clock is involved anywhere), so the emitted table is
//! byte-identical across runs, machines and `IR_THREADS` settings — the
//! property the CI `serve-smoke` job diffs.
//!
//! Knobs: `IR_SCALE` (workload size), `IR_THREADS` (oracle pre-warm
//! workers; results unchanged), `IR_RESULTS_DIR` (artifact directory).

use std::time::Instant;

use ir_bench::{bench_workload, fmt_duration, scale_from_env, threads_from_env, Table};
use ir_serve::{RealignService, Request, ServeConfig, ServiceReport};
use ir_workloads::ArrivalProcess;

/// Workload / arrival seeds (arbitrary but fixed).
const WORKLOAD_SEED: u64 = 2026;
const ARRIVAL_SEED: u64 = 41;

/// Offered load as a fraction of the calibrated adaptive-batch capacity.
const LOAD_FACTOR: f64 = 0.8;

fn service_config(max_batch: usize, threads: usize) -> ServeConfig {
    ServeConfig {
        max_batch,
        threads,
        ..ServeConfig::default()
    }
}

fn run_mode(
    label: &str,
    max_batch: usize,
    threads: usize,
    targets: &[ir_genome::RealignmentTarget],
    rate_rps: f64,
) -> (String, ServiceReport) {
    let times = ArrivalProcess::poisson(ARRIVAL_SEED, rate_rps).times(targets.len());
    let requests: Vec<Request> = targets
        .iter()
        .zip(&times)
        .enumerate()
        .map(|(i, (t, &at))| Request::new(i as u64, at, t.clone()))
        .collect();
    let mut service =
        RealignService::new(service_config(max_batch, threads)).expect("valid service config");
    let host_start = Instant::now();
    let report = service.run(requests).expect("service run succeeds");
    println!(
        "{label}: served {}/{} requests in {} of host time",
        report.completed(),
        report.offered(),
        fmt_duration(host_start.elapsed().as_secs_f64())
    );
    (label.to_string(), report)
}

fn main() {
    let scale = scale_from_env();
    let threads = threads_from_env();
    let count = ((48_000.0 * scale).ceil() as usize).max(64);
    println!("serve_load: {count} requests at scale {scale:.0e}, {threads} oracle thread(s)\n");
    let targets = bench_workload(scale).targets(count, WORKLOAD_SEED);

    // Calibrate capacity: one shard executing full batches back to back.
    let probe_config = service_config(32, threads);
    let mut probe = ir_serve::Shard::new(0, &probe_config).expect("probe shard");
    for chunk in targets.chunks(probe_config.max_batch) {
        let _ = probe.run_batch(chunk).expect("probe batch");
    }
    let capacity_rps = probe_config.shards as f64 * targets.len() as f64 / probe.busy_s();
    let rate_rps = LOAD_FACTOR * capacity_rps;
    println!(
        "calibrated adaptive capacity {:.0} req/s; offering {:.0} req/s ({}% load)\n",
        capacity_rps,
        rate_rps,
        (LOAD_FACTOR * 100.0) as u64
    );

    let modes = [("batch1", 1usize), ("adaptive", 32usize)];
    let mut table = Table::new(vec![
        "mode",
        "offered_rps",
        "completed",
        "rejected",
        "throughput_rps",
        "p50_ms",
        "p95_ms",
        "p99_ms",
        "batch_occupancy",
        "queue_depth_hwm",
    ]);
    let mut throughputs = Vec::new();
    let mut p99s = Vec::new();
    let mut adaptive_report = None;
    for (label, max_batch) in modes {
        let (label, report) = run_mode(label, max_batch, threads, &targets, rate_rps);
        let is_adaptive = label == "adaptive";
        let pctl = |p| report.latency_percentile_s(p).expect("responses completed");
        throughputs.push(report.throughput_rps());
        p99s.push(pctl(99.0));
        table.row(vec![
            label,
            format!("{rate_rps:.0}"),
            format!("{}", report.completed()),
            format!("{}", report.rejections.len()),
            format!("{:.0}", report.throughput_rps()),
            format!("{:.3}", pctl(50.0) * 1e3),
            format!("{:.3}", pctl(95.0) * 1e3),
            format!("{:.3}", pctl(99.0) * 1e3),
            format!("{:.2}", report.mean_batch_occupancy()),
            format!("{}", report.counters.gauge("serve/queue_depth_hwm")),
        ]);
        if is_adaptive {
            adaptive_report = Some(report);
        }
    }
    println!();
    table.emit("serve_load");
    // The adaptive mode's structured report feeds the perf-trajectory
    // snapshot (`ir-cli bench-snapshot` reads serve_report.json).
    if let Some(report) = adaptive_report {
        let path = ir_bench::results_dir().join("serve_report.json");
        match std::fs::write(&path, report.to_json()) {
            Ok(()) => println!("[json] {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
        println!(
            "adaptive SLO attainment: {:.4} (deadline {:.1} ms)",
            report.slo_attainment(),
            report.slo_deadline_s * 1e3
        );
    }
    println!(
        "adaptive batching: {:.2}x throughput vs batch-size-1, p99 {:.3} ms vs {:.3} ms",
        throughputs[1] / throughputs[0],
        p99s[1] * 1e3,
        p99s[0] * 1e3
    );
}
