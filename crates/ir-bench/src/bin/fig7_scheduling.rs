//! Figure 7: synchronous-parallel vs asynchronous-parallel scheduling on
//! the paper's toy experiment — 8 same-sized targets (2 consensuses × 8
//! reads, stripped down from Ch22) on 4 IR units.
//!
//! Paper anchors: under the synchronous scheme one target computes ~8× as
//! long as another of identical size (pruning is data-dependent), so "3
//! out of 4 units idle for a majority of the total runtime"; the
//! asynchronous scheme launches a target the moment a unit frees.

use ir_bench::{parallel_sweep, threads_from_env, Table};
use ir_fpga::{AcceleratedSystem, FpgaParams, Scheduling, SystemRun, TimelinePhase};
use ir_workloads::scheduling_toy_targets;

fn gantt(run: &SystemRun, units: usize, label: &str) {
    println!(
        "{label}  (wall {:.2} ms, utilization {:.0}%)",
        run.wall_time_s * 1e3,
        run.utilization() * 100.0
    );
    let width = 64usize;
    let scale = width as f64 / run.wall_time_s;
    for unit in 0..units {
        let mut lane = vec![' '; width];
        for e in run
            .timeline
            .iter()
            .filter(|e| e.unit == unit && e.phase == TimelinePhase::Compute)
        {
            let start = (e.start_s * scale) as usize;
            let end = ((e.end_s * scale) as usize).min(width);
            let glyph = char::from_digit(e.target_index as u32 % 36, 36).unwrap_or('#');
            for cell in lane.iter_mut().take(end).skip(start) {
                *cell = glyph;
            }
        }
        println!("  unit {unit} |{}|", lane.iter().collect::<String>());
    }
    println!();
}

fn main() {
    let threads = threads_from_env();
    println!(
        "Figure 7: scheduling the IR units — synchronous vs asynchronous ({threads} host threads)\n"
    );
    let targets = scheduling_toy_targets();
    let params = FpgaParams {
        num_units: 4,
        ..FpgaParams::serial()
    };

    // The two schedules are independent replays of the same toy workload;
    // input-order collection keeps [sync, async] stable for the report.
    let schedules = [Scheduling::Synchronous, Scheduling::Asynchronous];
    let mut runs = parallel_sweep(&schedules, threads, |&scheduling| {
        AcceleratedSystem::new(params, scheduling)
            .expect("4-unit config fits")
            .run_telemetry(&targets)
    })
    .into_iter();
    let (sync, asynchronous) = (
        runs.next().expect("synchronous run"),
        runs.next().expect("asynchronous run"),
    );

    // Per-target compute times: same-sized targets, very different work.
    let mut table = Table::new(vec![
        "target",
        "worst-case cmp",
        "compute cycles",
        "vs fastest",
    ]);
    let cycles: Vec<u64> = sync.results.iter().map(|r| r.cycles.total()).collect();
    let fastest = *cycles.iter().min().expect("eight targets") as f64;
    for (i, (t, c)) in targets.iter().zip(&cycles).enumerate() {
        table.row(vec![
            format!("{i}"),
            t.shape().worst_case_comparisons().to_string(),
            c.to_string(),
            format!("{:.1}×", *c as f64 / fastest),
        ]);
    }
    table.emit("fig7_scheduling");

    gantt(&sync, 4, "SYNCHRONOUS-PARALLEL (batch, flush, repeat)");
    gantt(
        &asynchronous,
        4,
        "ASYNCHRONOUS-PARALLEL (dispatch on response)",
    );

    let max_ratio = *cycles.iter().max().unwrap() as f64 / fastest;
    println!("paper anchors: same-sized targets differ ~8× in compute; async keeps all units busy");
    println!(
        "measured     : slowest/fastest same-sized target = {max_ratio:.1}×; \
         sync wall {:.2} ms @ {:.0}% util vs async wall {:.2} ms @ {:.0}% util ({:.2}× faster)",
        sync.wall_time_s * 1e3,
        sync.utilization() * 100.0,
        asynchronous.wall_time_s * 1e3,
        asynchronous.utilization() * 100.0,
        sync.wall_time_s / asynchronous.wall_time_s
    );
}
