//! Figure 9 (left): per-chromosome speedup of the accelerated IR system
//! over GATK3, for the three accelerator configurations —
//! `IRAcc-TaskP` (32 serial units, synchronous flush),
//! `IRAcc-TaskP-Async` (asynchronous dispatch) and
//! `IR ACC` (asynchronous + 32-lane data parallelism) — plus the ADAM
//! comparison of §V-B.
//!
//! Paper anchors: IRACC 66.7×–115.4× over GATK3 (gmean 81.3×); TaskP
//! 0.7×–1.3×; Async ≈ 6.2× over TaskP; ADAM speedup 30.2×–69.1×
//! (avg 41.4×).
//!
//! Run with `IR_SCALE` (default 1e-4) to trade accuracy for time.

use crossbeam::thread;

use ir_baselines::{adam::AdamModel, gatk::GatkModel};
use ir_bench::{bench_workload, fmt_duration, gmean, scale_from_env, Table};
use ir_fpga::{AcceleratedSystem, FpgaParams, Scheduling};
use ir_genome::Chromosome;

struct ChromosomeRow {
    chromosome: Chromosome,
    gatk_s: f64,
    adam_s: f64,
    taskp_s: f64,
    async_s: f64,
    iracc_s: f64,
}

fn main() {
    let scale = scale_from_env();
    let generator = bench_workload(scale);
    println!("Figure 9 (left): hardware-accelerated INDEL realignment vs software");
    println!("workload scale: {scale} of the paper's NA12878 run\n");

    let chromosomes: Vec<Chromosome> = Chromosome::autosomes().collect();
    let rows: Vec<Option<ChromosomeRow>> = (0..chromosomes.len()).map(|_| None).collect();

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(11);
    let chunks: Vec<(usize, Chromosome)> = chromosomes.iter().copied().enumerate().collect();
    let rows_mutex = std::sync::Mutex::new(rows);
    let next = std::sync::atomic::AtomicUsize::new(0);
    thread::scope(|scope| {
        let (chunks, rows, next, generator) = (&chunks, &rows_mutex, &next, &generator);
        for _ in 0..workers {
            scope.spawn(move |_| {
                let taskp = AcceleratedSystem::new(FpgaParams::serial(), Scheduling::Synchronous)
                    .expect("serial config fits");
                let taskp_async =
                    AcceleratedSystem::new(FpgaParams::serial(), Scheduling::Asynchronous)
                        .expect("serial config fits");
                let iracc = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Asynchronous)
                    .expect("iracc config fits");
                let gatk = GatkModel::default();
                let adam = AdamModel::default().without_startup();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    if i >= chunks.len() {
                        break;
                    }
                    let (idx, chromosome) = chunks[i];
                    let workload = generator.chromosome(chromosome);
                    let shapes: Vec<_> = workload.targets.iter().map(|t| t.shape()).collect();
                    let row = ChromosomeRow {
                        chromosome,
                        gatk_s: gatk.run_shapes(&shapes).wall_time_s,
                        adam_s: adam.run_shapes(&shapes).wall_time_s,
                        taskp_s: taskp.run(&workload.targets).wall_time_s,
                        async_s: taskp_async.run(&workload.targets).wall_time_s,
                        iracc_s: iracc.run(&workload.targets).wall_time_s,
                    };
                    rows.lock().unwrap()[idx] = Some(row);
                }
            });
        }
    })
    .expect("worker threads join");

    let rows: Vec<ChromosomeRow> = rows_mutex
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|r| r.expect("all rows filled"))
        .collect();

    let mut table = Table::new(vec![
        "chromosome",
        "IRAcc-TaskP ×",
        "IRAcc-TaskP-Async ×",
        "IR ACC ×",
        "IR ACC vs ADAM ×",
    ]);
    let mut taskp_x = Vec::new();
    let mut async_x = Vec::new();
    let mut iracc_x = Vec::new();
    let mut adam_x = Vec::new();
    for r in &rows {
        let tp = r.gatk_s / r.taskp_s;
        let ta = r.gatk_s / r.async_s;
        let ir = r.gatk_s / r.iracc_s;
        let ad = r.adam_s / r.iracc_s;
        taskp_x.push(tp);
        async_x.push(ta);
        iracc_x.push(ir);
        adam_x.push(ad);
        table.row(vec![
            r.chromosome.to_string(),
            format!("{tp:.2}"),
            format!("{ta:.1}"),
            format!("{ir:.1}"),
            format!("{ad:.1}"),
        ]);
    }
    table.row(vec![
        "GMEAN".to_string(),
        format!("{:.2}", gmean(&taskp_x)),
        format!("{:.1}", gmean(&async_x)),
        format!("{:.1}", gmean(&iracc_x)),
        format!("{:.1}", gmean(&adam_x)),
    ]);
    table.emit("fig9_speedup");

    let total_gatk: f64 = rows.iter().map(|r| r.gatk_s).sum();
    let total_iracc: f64 = rows.iter().map(|r| r.iracc_s).sum();
    println!("\nextrapolated full-genome (Ch1–22) wall times at scale 1.0:");
    println!("  GATK3  : {}", fmt_duration(total_gatk / scale));
    println!("  IR ACC : {}", fmt_duration(total_iracc / scale));
    println!(
        "\npaper anchors: IRACC 66.7–115.4× (gmean 81.3×); TaskP 0.7–1.3×; \
         Async gain ≈ 6.2×; vs ADAM 30.2–69.1× (avg 41.4×)"
    );
    println!(
        "measured     : IRACC {:.1}–{:.1}× (gmean {:.1}×); TaskP gmean {:.2}×; \
         Async gain {:.1}×; vs ADAM {:.1}–{:.1}× (gmean {:.1}×)",
        iracc_x.iter().cloned().fold(f64::INFINITY, f64::min),
        iracc_x.iter().cloned().fold(0.0, f64::max),
        gmean(&iracc_x),
        gmean(&taskp_x),
        gmean(&async_x) / gmean(&taskp_x),
        adam_x.iter().cloned().fold(f64::INFINITY, f64::min),
        adam_x.iter().cloned().fold(0.0, f64::max),
        gmean(&adam_x),
    );
}
