//! Figure 9 (left): per-chromosome speedup of the accelerated IR system
//! over GATK3, for the three accelerator configurations —
//! `IRAcc-TaskP` (32 serial units, synchronous flush),
//! `IRAcc-TaskP-Async` (asynchronous dispatch) and
//! `IR ACC` (asynchronous + 32-lane data parallelism) — plus the ADAM
//! comparison of §V-B.
//!
//! Paper anchors: IRACC 66.7×–115.4× over GATK3 (gmean 81.3×); TaskP
//! 0.7×–1.3×; Async ≈ 6.2× over TaskP; ADAM speedup 30.2×–69.1×
//! (avg 41.4×).
//!
//! Run with `IR_SCALE` (default 1e-4) to trade accuracy for time.
//! `IR_THREADS` sets the sweep worker count; `IR_ORACLE_CACHE` shares
//! the memoized datapath evaluations with the other figure binaries.
//! Neither changes a single emitted byte.
//!
//! The TaskP and TaskP-Async columns share one functional oracle (the
//! datapath result depends only on the serial timing key, not on the
//! flush discipline), so each chromosome's serial datapath is evaluated
//! once instead of twice; the IRACC column keys separately.

use ir_baselines::{adam::AdamModel, gatk::GatkModel};
use ir_bench::{
    bench_workload, fmt_duration, gmean, parallel_sweep, scale_from_env, threads_from_env,
    OracleCache, Table,
};
use ir_fpga::{AcceleratedSystem, FpgaParams, Scheduling};
use ir_genome::Chromosome;

struct ChromosomeRow {
    chromosome: Chromosome,
    gatk_s: f64,
    adam_s: f64,
    taskp_s: f64,
    async_s: f64,
    iracc_s: f64,
}

fn main() {
    let scale = scale_from_env();
    let generator = bench_workload(scale);
    let cache = OracleCache::from_env();
    println!("Figure 9 (left): hardware-accelerated INDEL realignment vs software");
    println!("workload scale: {scale} of the paper's NA12878 run\n");

    let chromosomes: Vec<Chromosome> = Chromosome::autosomes().collect();
    let rows: Vec<ChromosomeRow> =
        parallel_sweep(&chromosomes, threads_from_env(), |&chromosome| {
            let taskp = AcceleratedSystem::new(FpgaParams::serial(), Scheduling::Synchronous)
                .expect("serial config fits");
            let taskp_async =
                AcceleratedSystem::new(FpgaParams::serial(), Scheduling::Asynchronous)
                    .expect("serial config fits");
            let iracc = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Asynchronous)
                .expect("iracc config fits");
            let gatk = GatkModel::default();
            let adam = AdamModel::default().without_startup();

            let workload = generator.chromosome(chromosome);
            let shapes: Vec<_> = workload.targets.iter().map(|t| t.shape()).collect();
            let mut serial_oracle = cache.load_or_compute(
                &format!("bench-{chromosome}-serial"),
                &workload.targets,
                &FpgaParams::serial(),
                1,
            );
            let mut iracc_oracle = cache.load_or_compute(
                &format!("bench-{chromosome}-iracc"),
                &workload.targets,
                &FpgaParams::iracc(),
                1,
            );
            ChromosomeRow {
                chromosome,
                gatk_s: gatk.run_shapes(&shapes).wall_time_s,
                adam_s: adam.run_shapes(&shapes).wall_time_s,
                taskp_s: taskp
                    .run_with_oracle(&workload.targets, &mut serial_oracle)
                    .wall_time_s,
                async_s: taskp_async
                    .run_with_oracle(&workload.targets, &mut serial_oracle)
                    .wall_time_s,
                iracc_s: iracc
                    .run_with_oracle(&workload.targets, &mut iracc_oracle)
                    .wall_time_s,
            }
        });

    let mut table = Table::new(vec![
        "chromosome",
        "IRAcc-TaskP ×",
        "IRAcc-TaskP-Async ×",
        "IR ACC ×",
        "IR ACC vs ADAM ×",
    ]);
    let mut taskp_x = Vec::new();
    let mut async_x = Vec::new();
    let mut iracc_x = Vec::new();
    let mut adam_x = Vec::new();
    for r in &rows {
        let tp = r.gatk_s / r.taskp_s;
        let ta = r.gatk_s / r.async_s;
        let ir = r.gatk_s / r.iracc_s;
        let ad = r.adam_s / r.iracc_s;
        taskp_x.push(tp);
        async_x.push(ta);
        iracc_x.push(ir);
        adam_x.push(ad);
        table.row(vec![
            r.chromosome.to_string(),
            format!("{tp:.2}"),
            format!("{ta:.1}"),
            format!("{ir:.1}"),
            format!("{ad:.1}"),
        ]);
    }
    table.row(vec![
        "GMEAN".to_string(),
        format!("{:.2}", gmean(&taskp_x)),
        format!("{:.1}", gmean(&async_x)),
        format!("{:.1}", gmean(&iracc_x)),
        format!("{:.1}", gmean(&adam_x)),
    ]);
    table.emit("fig9_speedup");

    let total_gatk: f64 = rows.iter().map(|r| r.gatk_s).sum();
    let total_iracc: f64 = rows.iter().map(|r| r.iracc_s).sum();
    println!("\nextrapolated full-genome (Ch1–22) wall times at scale 1.0:");
    println!("  GATK3  : {}", fmt_duration(total_gatk / scale));
    println!("  IR ACC : {}", fmt_duration(total_iracc / scale));
    println!(
        "\npaper anchors: IRACC 66.7–115.4× (gmean 81.3×); TaskP 0.7–1.3×; \
         Async gain ≈ 6.2×; vs ADAM 30.2–69.1× (avg 41.4×)"
    );
    println!(
        "measured     : IRACC {:.1}–{:.1}× (gmean {:.1}×); TaskP gmean {:.2}×; \
         Async gain {:.1}×; vs ADAM {:.1}–{:.1}× (gmean {:.1}×)",
        iracc_x.iter().cloned().fold(f64::INFINITY, f64::min),
        iracc_x.iter().cloned().fold(0.0, f64::max),
        gmean(&iracc_x),
        gmean(&taskp_x),
        gmean(&async_x) / gmean(&taskp_x),
        adam_x.iter().cloned().fold(f64::INFINITY, f64::min),
        adam_x.iter().cloned().fold(0.0, f64::max),
        gmean(&adam_x),
    );
}
