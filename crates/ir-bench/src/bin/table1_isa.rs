//! Table I: the INDEL realignment accelerator's five-command ISA and the
//! RoCC instruction format, demonstrated by encoding the full command
//! sequence for the paper's Figure 4 example target.

use ir_bench::Table;
use ir_fpga::{IrCommand, IrUnit};
use ir_workloads::figure4_target;

fn describe(cmd: &IrCommand) -> String {
    match cmd {
        IrCommand::SetAddr { buffer, addr } => format!("ir_set_addr {:?} 0x{addr:x}", buffer),
        IrCommand::SetTarget { start_pos } => format!("ir_set_target {start_pos}"),
        IrCommand::SetSize { consensuses, reads } => format!("ir_set_size {consensuses} {reads}"),
        IrCommand::SetLen { consensus_id, len } => format!("ir_set_len {consensus_id} {len}"),
        IrCommand::Start { unit_id } => format!("ir_start {unit_id}"),
    }
}

fn main() {
    println!("Table I: IR accelerator instructions in the RoCC format\n");
    println!("RoCC word layout: funct[31:25] src2[24:20] src1[19:15] xd[14] xs1[13] xs2[12] rd[11:7] opcode[6:0]\n");

    let target = figure4_target();
    let cmds = IrUnit::command_sequence(&target, 0);

    let mut table = Table::new(vec![
        "command",
        "RoCC word",
        "funct",
        "rs1 value",
        "rs2 value",
    ]);
    for cmd in &cmds {
        let wire = cmd.encode();
        table.row(vec![
            describe(cmd),
            format!("0x{:08x}", wire.instruction.encode()),
            wire.instruction.funct().to_string(),
            format!("0x{:x}", wire.rs1_value),
            format!("0x{:x}", wire.rs2_value),
        ]);
    }
    table.emit("table1_isa");

    println!(
        "\n{} commands configure and launch one {}-consensus target \
         (5 × set_addr + set_target + set_size + {} × set_len + start)",
        cmds.len(),
        target.num_consensuses(),
        target.num_consensuses()
    );
    // Round-trip check: every encoded word must decode to its source.
    for cmd in &cmds {
        assert_eq!(&IrCommand::decode(cmd.encode()).expect("decodes"), cmd);
    }
    println!(
        "round-trip: all {} wire commands decode back to their source ✓",
        cmds.len()
    );
}
