//! §IV ablation: how much of the synchronous scheduler's penalty can
//! sorting recover, and how much only asynchrony can?
//!
//! The paper sorts synchronous batches "by read and consensus sizes" and
//! still measures a 6.2× gain from going asynchronous, because
//! computation pruning makes same-shaped targets differ widely in
//! runtime. This sweep compares four dispatch policies on one
//! chromosome's workload.

use ir_bench::{bench_workload, scale_from_env, OracleCache, Table};
use ir_fpga::{AcceleratedSystem, FpgaParams, Scheduling};
use ir_genome::Chromosome;

fn main() {
    let scale = scale_from_env();
    let generator = bench_workload(scale);
    let workload = generator.chromosome(Chromosome::Autosome(3));
    println!(
        "Scheduling-policy ablation (scale {scale}, {} on {} targets, serial units)\n",
        workload.chromosome,
        workload.targets.len()
    );

    let policies = [
        ("sync, unsorted", Scheduling::SynchronousUnsorted),
        (
            "sync, sorted by (reads, consensuses) — the paper",
            Scheduling::Synchronous,
        ),
        (
            "sync, sorted by exact worst-case work",
            Scheduling::SynchronousByWorstCase,
        ),
        ("asynchronous — the paper's fix", Scheduling::Asynchronous),
    ];

    // All four policies replay the same workload under the same serial
    // timing key — one warmed oracle serves the whole ablation.
    let mut oracle = OracleCache::from_env().load_or_compute(
        &format!("bench-{}-serial", workload.chromosome),
        &workload.targets,
        &FpgaParams::serial(),
        1,
    );

    let mut table = Table::new(vec!["policy", "wall s", "unit utilization", "vs unsorted"]);
    let mut baseline = 0.0f64;
    for (name, scheduling) in policies {
        let run = AcceleratedSystem::new(FpgaParams::serial(), scheduling)
            .expect("serial config fits")
            .run_with_oracle(&workload.targets, &mut oracle);
        if baseline == 0.0 {
            baseline = run.wall_time_s;
        }
        table.row(vec![
            name.to_string(),
            format!("{:.4}", run.wall_time_s),
            format!("{:.0}%", run.utilization() * 100.0),
            format!("{:.2}×", baseline / run.wall_time_s),
        ]);
    }
    table.emit("ablation_scheduling");

    println!(
        "\npaper's lesson: batch-uniformity sorting cannot see data-dependent pruning\n\
         variance — only dispatch-on-response can absorb it. Even sorting by the exact\n\
         worst-case comparison count (information the host has) leaves most of the\n\
         asynchronous gain on the table."
    );
}
