//! The abstract's headline claims, measured end to end:
//!
//! 1. a sea of 32 IR accelerators processes **up to 4 billion base-pair
//!    comparisons per second** (serial units; the data-parallel design
//!    peaks at 128 G/s);
//! 2. IR for chromosomes 1–22 takes **a little more than 31 minutes and
//!    costs less than $1** on an F1 instance, vs **more than 42 hours and
//!    $28** for GATK3;
//! 3. **81× speedup** over 8-thread software at **32× lower cost**.
//!
//! Methodology as in `fig9_cost`: software baselines priced analytically
//! on paper-geometry shapes; the accelerator's sustained throughput
//! measured by simulation at `IR_SCALE` and applied to the same work.

use ir_baselines::gatk::GatkModel;
use ir_bench::{
    bench_workload, default_workload, fmt_duration, parallel_sweep, scale_from_env,
    threads_from_env, OracleCache, Table,
};
use ir_cloud::{run_cost_usd, Instance};
use ir_fpga::{AcceleratedSystem, FpgaParams, Scheduling};

fn main() {
    let scale = scale_from_env();
    println!("Headline claims (accelerator measured at scale {scale})\n");

    println!("claim 1 — peak comparison throughput:");
    println!(
        "  32 serial units × 125 MHz            = {:.1e} comparisons/s (paper: 'up to 4 billion')",
        FpgaParams::serial().peak_comparisons_per_second() as f64
    );
    println!(
        "  32 × 32-lane units × 125 MHz         = {:.1e} comparisons/s peak",
        FpgaParams::iracc().peak_comparisons_per_second() as f64
    );

    // Paper-geometry full-genome work.
    let shape_scale = scale.min(5e-4);
    let paper_gen = default_workload(shape_scale);
    let mut paper_shapes = Vec::new();
    for workload in paper_gen.autosomes() {
        paper_shapes.extend(workload.targets.iter().map(|t| t.shape()));
    }
    let upscale = 1.0 / shape_scale;
    let paper_naive: u64 = paper_shapes
        .iter()
        .map(|s| s.worst_case_comparisons())
        .sum();
    let gatk_full = GatkModel::default().run_shapes(&paper_shapes).wall_time_s * upscale;

    // Accelerator throughput from the simulated bench workload; the
    // per-chromosome IRACC evaluations share the oracle cache with
    // fig9_speedup / fig9_cost (same workload, same timing key).
    let bench_gen = bench_workload(scale);
    let cache = OracleCache::from_env();
    let workloads = bench_gen.autosomes();
    let per_chromosome: Vec<(u64, u64, f64)> =
        parallel_sweep(&workloads, threads_from_env(), |workload| {
            let iracc = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Asynchronous)
                .expect("iracc fits");
            let mut oracle = cache.load_or_compute(
                &format!("bench-{}-iracc", workload.chromosome),
                &workload.targets,
                &FpgaParams::iracc(),
                1,
            );
            let run = iracc.run_with_oracle(&workload.targets, &mut oracle);
            (
                workload
                    .targets
                    .iter()
                    .map(|t| t.shape().worst_case_comparisons())
                    .sum::<u64>(),
                run.comparisons,
                run.wall_time_s,
            )
        });
    let bench_naive: u64 = per_chromosome.iter().map(|&(n, _, _)| n).sum();
    let bench_executed: u64 = per_chromosome.iter().map(|&(_, e, _)| e).sum();
    let bench_wall: f64 = per_chromosome.iter().map(|&(_, _, w)| w).sum();
    let throughput = bench_naive as f64 / bench_wall;
    let iracc_full = paper_naive as f64 * upscale / throughput;

    let gatk_cost = run_cost_usd(&Instance::r3_2xlarge(), gatk_full);
    let iracc_cost = run_cost_usd(&Instance::f1_2xlarge(), iracc_full);

    println!("\nclaim 2 — Ch1–22 INDEL realignment, full-genome extrapolation:");
    println!(
        "  IR ACC : {}  costing ${iracc_cost:.2}  (paper: ~31 min, <$1)",
        fmt_duration(iracc_full)
    );
    println!(
        "  GATK3  : {}  costing ${gatk_cost:.2}  (paper: >42 h, $28)",
        fmt_duration(gatk_full)
    );

    println!("\nclaim 3 — speedup and cost efficiency:");
    println!(
        "  speedup      : {:.1}× (paper: 81×)   cost efficiency: {:.0}× (paper: 32×)",
        gatk_full / iracc_full,
        gatk_cost / iracc_cost
    );
    println!(
        "\nsustained fabric rates during the measured run: {:.2e} executed cmp/s, \
         {throughput:.2e} naive-equivalent cmp/s",
        bench_executed as f64 / bench_wall
    );

    let mut table = Table::new(vec!["claim", "measured", "paper"]);
    table.row(vec![
        "peak comparisons/s (serial fabric)".into(),
        format!(
            "{:.1e}",
            FpgaParams::serial().peak_comparisons_per_second() as f64
        ),
        "4e9".into(),
    ]);
    table.row(vec![
        "IR ACC Ch1-22 wall".into(),
        fmt_duration(iracc_full),
        "~31 min".into(),
    ]);
    table.row(vec![
        "IR ACC Ch1-22 cost USD".into(),
        format!("{iracc_cost:.2}"),
        "<1".into(),
    ]);
    table.row(vec![
        "GATK3 Ch1-22 wall".into(),
        fmt_duration(gatk_full),
        ">42 h".into(),
    ]);
    table.row(vec![
        "GATK3 Ch1-22 cost USD".into(),
        format!("{gatk_cost:.2}"),
        "28".into(),
    ]);
    table.row(vec![
        "speedup".into(),
        format!("{:.1}x", gatk_full / iracc_full),
        "81x".into(),
    ]);
    table.row(vec![
        "cost efficiency".into(),
        format!("{:.0}x", gatk_cost / iracc_cost),
        "32x".into(),
    ]);
    println!();
    table.emit("headline_claims");
}
