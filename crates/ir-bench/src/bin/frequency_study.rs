//! §IV "Frequency": why the design ships at 125 MHz rather than the
//! 250 MHz F1 clock recipe.
//!
//! Paper anchors: at 250 MHz "the critical timing path is over 95% routing
//! delay resulting in violated paths within the AXI4 memory system";
//! even at 125 MHz over 90% of the critical path is routing delay — so
//! the paper adds combinational logic (the 32-lane calculator) instead of
//! chasing frequency.

use ir_bench::{parallel_sweep, threads_from_env, Table};
use ir_fpga::resources::{critical_path_ns, routing_fraction, timing_slack_ns};
use ir_fpga::ClockRecipe;

fn main() {
    let threads = threads_from_env();
    println!("Clock-recipe study: timing closure vs unit count ({threads} host threads)\n");
    let mut table = Table::new(vec![
        "units",
        "critical path ns",
        "routing %",
        "slack @125 MHz ns",
        "slack @250 MHz ns",
        "250 MHz closes?",
    ]);
    let unit_counts = [4usize, 8, 16, 24, 32];
    let slacks = parallel_sweep(&unit_counts, threads, |&units| {
        (
            timing_slack_ns(ClockRecipe::Mhz125, units),
            timing_slack_ns(ClockRecipe::Mhz250, units),
        )
    });
    for (&units, &(slack_125, slack_250)) in unit_counts.iter().zip(&slacks) {
        table.row(vec![
            units.to_string(),
            format!("{:.2}", critical_path_ns(units)),
            format!("{:.1}%", routing_fraction(units) * 100.0),
            format!("{slack_125:+.2}"),
            format!("{slack_250:+.2}"),
            if slack_250 >= 0.0 {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    table.emit("frequency_study");

    println!("\npaper anchors: 32 units close timing at 125 MHz but not 250 MHz;");
    println!("routing delay dominates (>90% at 125 MHz, >95% of the failing 250 MHz path)");
    println!(
        "measured     : 32 units → path {:.2} ns ({:.0}% routing), slack {:+.2} ns @125 MHz, {:+.2} ns @250 MHz",
        critical_path_ns(32),
        routing_fraction(32) * 100.0,
        timing_slack_ns(ClockRecipe::Mhz125, 32),
        timing_slack_ns(ClockRecipe::Mhz250, 32)
    );
    println!(
        "\nconclusion (as in the paper): spend the headroom on combinational logic —\nthe 32-lane data-parallel calculator — rather than on clock frequency"
    );
}
