//! Figure 3: INDEL realignment's share of the alignment-refinement
//! pipeline, per chromosome.
//!
//! Paper anchor: IR consumes 53%–67% of refinement execution time on
//! GATK3, averaging 58%. Here the IR time comes from the GATK cost model
//! on each chromosome's synthetic workload and the other stages (sort,
//! duplicate marking, BQSR) are priced per read.

use ir_baselines::pipeline::refinement_breakdown;
use ir_bench::{default_workload, scale_from_env, Table};
use ir_genome::Chromosome;

fn main() {
    let scale = scale_from_env();
    let generator = default_workload(scale);
    println!("Figure 3: IR fraction of the alignment refinement pipeline");
    println!("workload scale: {scale}\n");

    let mut table = Table::new(vec!["chromosome", "targets", "IR s", "other s", "IR %"]);
    let mut fractions = Vec::new();
    for chromosome in Chromosome::autosomes() {
        let workload = generator.chromosome(chromosome);
        let shapes: Vec<_> = workload.targets.iter().map(|t| t.shape()).collect();
        let b = refinement_breakdown(&shapes);
        fractions.push(b.ir_fraction());
        table.row(vec![
            chromosome.to_string(),
            workload.targets.len().to_string(),
            format!("{:.2}", b.ir_s),
            format!("{:.2}", b.other_s),
            format!("{:.1}%", b.ir_fraction() * 100.0),
        ]);
    }
    let avg = fractions.iter().sum::<f64>() / fractions.len() as f64;
    let min = fractions.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = fractions.iter().cloned().fold(0.0f64, f64::max);
    table.row(vec![
        "AVG".to_string(),
        "".to_string(),
        "".to_string(),
        "".to_string(),
        format!("{:.1}%", avg * 100.0),
    ]);
    table.emit("fig3_ir_fraction");

    println!("\npaper anchors: IR share 53%–67% per chromosome, average 58%");
    println!(
        "measured     : IR share {:.0}%–{:.0}% per chromosome, average {:.0}%",
        min * 100.0,
        max * 100.0,
        avg * 100.0
    );
}
