//! Per-kernel WHD throughput rows for the perf-trajectory snapshot.
//!
//! Times the weighted-Hamming-distance sweep on the scalar reference, the
//! portable SWAR kernel and the widest explicit-SIMD kernel the host CPU
//! offers (`simd` — the one [`ir_core::kernel::active`] dispatches to,
//! unless `IR_KERNEL` overrides it), in both execution modes:
//!
//! - **pair**  — one `run_pair_fast_packed_with` call per (consensus,
//!   read) pair, the pre-batching hot path;
//! - **batch** — one `run_read_sweep` over a structure-of-arrays
//!   [`CandidateBlock`] holding all candidates, the deployed hot path.
//!
//! The fixture is the adversarial dense shape (unrelated read, every lane
//! accumulates) with pruning off, so every kernel does the identical,
//! closed-form amount of work and the Gbase/s column measures raw fold
//! throughput. Row keys are stable across hosts (`scalar`, `swar`,
//! `simd`); the `isa` column records which ISA `simd` resolved to, and
//! the snapshot records the same name as its `kernel` config field so
//! `bench-diff` never compares Gbase/s across ISAs.

use std::time::Instant;

use ir_bench::Table;
use ir_core::batch::{CandidateBlock, SweepRead};
use ir_core::kernel;
use ir_core::KernelKind;
use ir_fpga::hdc::{run_pair_fast_packed_with, run_read_sweep, HdcConfig};
use ir_genome::{Base, PackedSequence, Qual, Sequence};

fn sequence(len: usize, salt: usize) -> Sequence {
    (0..len)
        .map(|i| Base::from_index((i * 7 + salt).wrapping_mul(2654435761) >> 8 & 3))
        .collect()
}

/// Times `f` adaptively: doubles the iteration count until the batch
/// takes ≥ 20 ms, then reports ns per call from the final batch.
fn time_ns(mut f: impl FnMut()) -> f64 {
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 20 || iters >= 1 << 22 {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        iters *= 2;
    }
}

fn main() {
    let active = kernel::active();
    println!("WHD kernel microbenchmark (dense shape, pruning off)");
    println!("active kernel: {active}");
    if let Some(diag) = kernel::active_diagnostic() {
        println!("dispatch diagnostic: {diag}");
    }
    println!();

    // Dense fixture: unrelated read, every lane accumulates. Pruning off
    // keeps the work closed-form and identical across kernels.
    let (m, n, candidates) = (698usize, 250usize, 8usize);
    let cfg = HdcConfig {
        pruning: false,
        ..HdcConfig::data_parallel()
    };
    let cons: Vec<Sequence> = (0..candidates).map(|i| sequence(m, i + 1)).collect();
    let read = sequence(n, 77);
    let quals = Qual::uniform(35, n).unwrap();
    let packed_cons: Vec<PackedSequence> = cons.iter().map(PackedSequence::from).collect();
    let packed_read = PackedSequence::from(&read);
    let block = CandidateBlock::from_packed_rows(&packed_cons);
    let sweep_read = SweepRead::from_packed(&packed_read, &quals);
    // Bases compared per full sweep of one read against all candidates.
    let bases = (candidates * (m - n + 1) * n) as f64;

    let rows: Vec<(&str, KernelKind)> = vec![
        ("scalar", KernelKind::Scalar),
        ("swar", KernelKind::Swar),
        ("simd", active),
    ];
    let mut table = Table::new(vec!["row", "isa", "mode", "ns_per_sweep", "gbase_per_s"]);
    let mut swar_batch_ns = None;
    let mut simd_batch_ns = None;
    for (row, kind) in rows {
        let pair_ns = time_ns(|| {
            for pc in &packed_cons {
                std::hint::black_box(run_pair_fast_packed_with(
                    pc,
                    &packed_read,
                    &quals,
                    kind,
                    cfg,
                ));
            }
        });
        let batch_ns = time_ns(|| {
            std::hint::black_box(run_read_sweep(&block, &sweep_read, kind, cfg));
        });
        if row == "swar" {
            swar_batch_ns = Some(batch_ns);
        }
        if row == "simd" {
            simd_batch_ns = Some(batch_ns);
        }
        for (mode, ns) in [("pair", pair_ns), ("batch", batch_ns)] {
            table.row(vec![
                row.to_string(),
                kind.name().to_string(),
                mode.to_string(),
                format!("{ns:.0}"),
                format!("{:.3}", bases / ns),
            ]);
        }
    }
    table.emit("kernel_microbench");

    if let (Some(swar), Some(simd)) = (swar_batch_ns, simd_batch_ns) {
        println!(
            "\nsimd ({active}) batch sweep is {:.2}x the SWAR kernel on the dense shape",
            swar / simd
        );
    }
}
