//! Telemetry report: per-block perf counters, Chrome/Perfetto traces and
//! a bottleneck table for the three deployment configurations the paper
//! evaluates.
//!
//! Runs the same workload through:
//!
//! - `TaskP`        — serial units, synchronous-flush scheduling;
//! - `TaskP-Async`  — serial units, asynchronous scheduling;
//! - `IRACC`        — 32-lane data-parallel units, asynchronous.
//!
//! For each configuration it writes `results/telemetry_<name>.csv` (the
//! full counter dump) and `results/telemetry_<name>.trace.json` (a Chrome
//! trace-event file loadable at <https://ui.perfetto.dev>), validates the
//! emitted JSON, and prints the bottleneck report derived from the
//! per-unit cycle accounting.
//!
//! By default the runs go through the discrete-event engine with a shared
//! [`FunctionalOracle`], so the three configurations reuse each other's
//! memoized unit results where their datapath parameters coincide. Pass
//! `--legacy-stepper` to force the original cycle-stepping schedulers —
//! the outputs are bitwise identical (CI diffs the trace files across the
//! two backends byte for byte); only the wall clock differs.
//!
//! The cross-check at the end measures the paper's Figure 7 claim: the
//! asynchronous scheduler removes the worst-case idle time that
//! synchronous batch flushes leave on the slowest-matched units.

use std::fs;
use std::time::Instant;

use ir_bench::{bench_workload, results_dir, scale_from_env, threads_from_env, Table};
use ir_fpga::{AcceleratedSystem, FpgaParams, FunctionalOracle, Scheduling, SimBackend};
use ir_telemetry::json::validate_json;

/// Target count floor so per-unit statistics are meaningful even at the
/// default laptop scale; above it the count tracks `IR_SCALE` so the
/// report exercises the simulator at the scale the user asked for.
fn report_targets(scale: f64) -> usize {
    ((51_200.0 * scale).round() as usize).max(64)
}

fn main() {
    let legacy = std::env::args().any(|a| a == "--legacy-stepper");
    let backend = if legacy {
        SimBackend::LegacyStepper
    } else {
        SimBackend::EventDriven
    };
    let scale = scale_from_env();
    let threads = threads_from_env();
    let targets = bench_workload(scale).targets(report_targets(scale), 0x7E1E);
    println!(
        "Telemetry report ({} targets, bench-profile workload at scale {scale}, {backend:?} backend, {threads} host threads)\n",
        targets.len()
    );

    let configs: [(&str, FpgaParams, Scheduling); 3] = [
        ("taskp", FpgaParams::serial(), Scheduling::Synchronous),
        (
            "taskp_async",
            FpgaParams::serial(),
            Scheduling::Asynchronous,
        ),
        ("iracc", FpgaParams::iracc(), Scheduling::Asynchronous),
    ];

    // Host wall-clock is printed to stdout only: every emitted artifact
    // (counter CSVs, traces, this summary table) stays deterministic and
    // byte-identical across backends and repeat runs.
    let mut summary = Table::new(vec![
        "config",
        "wall ms",
        "mean busy %",
        "worst idle %",
        "dma stall Mcycles",
        "arb5 conflict Mcycles",
        "ddr row hit %",
        "trace events",
    ]);
    let mut worst_idle = Vec::new();
    let mut oracle = FunctionalOracle::new();

    for (name, params, scheduling) in configs {
        let system = AcceleratedSystem::new(params, scheduling)
            .expect("paper configurations fit the VU9P")
            .with_telemetry(true)
            .with_backend(backend);
        let host_start = Instant::now();
        let run = if legacy {
            system.run(&targets)
        } else {
            // Warm the oracle across host threads first: the datapath
            // results are a pure function of (target, timing key), so the
            // event loop that follows replays them from cache and stays
            // bitwise identical to a cold single-threaded run.
            oracle.precompute(&targets, &params, threads);
            system.run_with_oracle(&targets, &mut oracle)
        };
        let host_s = host_start.elapsed().as_secs_f64();
        let snapshot = run.telemetry.as_ref().expect("telemetry enabled");

        let csv_path = results_dir().join(format!("telemetry_{name}.csv"));
        if let Err(e) = fs::write(&csv_path, snapshot.to_csv()) {
            eprintln!("warning: could not write {}: {e}", csv_path.display());
        }
        let trace = snapshot.chrome_trace_json();
        validate_json(&trace).expect("emitted Chrome trace must be valid JSON");
        let trace_path = results_dir().join(format!("telemetry_{name}.trace.json"));
        if let Err(e) = fs::write(&trace_path, &trace) {
            eprintln!("warning: could not write {}: {e}", trace_path.display());
        }

        let report = snapshot.bottleneck_report();
        println!(
            "=== {name} ({scheduling:?}, {} units) ===",
            params.num_units
        );
        println!("{}", report.render());
        println!(
            "[csv] {}\n[trace] {}\n[host] {:.1} ms on the {backend:?} backend\n",
            csv_path.display(),
            trace_path.display(),
            host_s * 1e3
        );

        let max_idle = report
            .units
            .iter()
            .map(|u| {
                if u.total_cycles == 0 {
                    0.0
                } else {
                    u.idle_cycles as f64 / u.total_cycles as f64
                }
            })
            .fold(0.0f64, f64::max);
        worst_idle.push((name, max_idle));

        let beats = snapshot.counter("ddr/beats");
        let row_hits = snapshot.counter("ddr/row_hits");
        summary.row(vec![
            name.to_string(),
            format!("{:.3}", run.wall_time_s * 1e3),
            format!("{:.1}", report.mean_busy_fraction() * 100.0),
            format!("{:.1}", max_idle * 100.0),
            format!("{:.2}", snapshot.counter("dma/stall_cycles") as f64 / 1e6),
            format!(
                "{:.2}",
                snapshot.counter("arbiter5/conflict_cycles") as f64 / 1e6
            ),
            if beats == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", row_hits as f64 / beats as f64 * 100.0)
            },
            snapshot.trace.events.len().to_string(),
        ]);
    }

    summary.emit("telemetry_report");

    // Figure 7 cross-check: synchronous flushes strand the fastest units
    // until the slowest in the batch finishes; asynchronous dispatch is
    // supposed to remove that worst-case idle time.
    let sync_idle = worst_idle[0].1;
    let async_idle = worst_idle[1].1;
    println!(
        "\nfigure 7 cross-check: worst per-unit idle fraction {:.1}% (sync) vs {:.1}% (async)",
        sync_idle * 100.0,
        async_idle * 100.0
    );
    if async_idle < sync_idle {
        println!("  -> asynchronous scheduling removes the synchronous worst-case idle time ✔");
    } else {
        println!("  -> WARNING: async did not reduce worst-case idle on this workload");
    }
}
