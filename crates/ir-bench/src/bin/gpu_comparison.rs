//! §V-B "Comparison with GPU-based Systems": the SIMT divergence
//! argument, quantified.
//!
//! Paper anchors: to match the F1 system's cost-performance, a $3.06/h
//! GPU instance would need 148.36× over GATK3; comparable genomics GPU
//! ports achieve 1.4–14.6×, and GPUs rarely exceed 20× over optimized
//! CPUs. The Zipf-like read imbalance triggers thread divergence.

use ir_baselines::gpu::GpuModel;
use ir_bench::{bench_workload, scale_from_env, Table};
use ir_cloud::gpu_speedup_needed;
use ir_genome::Chromosome;

fn main() {
    let scale = scale_from_env();
    let generator = bench_workload(scale);
    println!("GPU what-if: SIMT divergence on the IR workload (scale {scale})\n");

    let gpu = GpuModel::default();
    let mut table = Table::new(vec![
        "chromosome",
        "SIMT efficiency",
        "modeled GPU × vs GATK3",
    ]);
    let mut speedups = Vec::new();
    for chromosome in Chromosome::autosomes().take(8) {
        let workload = generator.chromosome(chromosome);
        let shapes: Vec<_> = workload.targets.iter().map(|t| t.shape()).collect();
        let eff = gpu.simt_efficiency(&shapes);
        let speedup = gpu.speedup_over_gatk(&shapes);
        speedups.push(speedup);
        table.row(vec![
            chromosome.to_string(),
            format!("{:.2}", eff),
            format!("{speedup:.1}"),
        ]);
    }
    table.emit("gpu_comparison");

    let needed = gpu_speedup_needed(80.0); // the paper quotes the bar at 80×
    let max = speedups.iter().cloned().fold(0.0f64, f64::max);
    println!("\npaper anchors: GPU needs {needed:.1}× over GATK3 to match F1 cost-performance;");
    println!("comparable GPU genomics ports deliver 1.4–14.6×, rarely >20×");
    println!(
        "measured     : modeled GPU reaches at most {max:.1}× — {:.0}× short of the {needed:.0}× bar",
        needed / max
    );
}
