//! §IV measurement: PCIe DMA's share of end-to-end runtime.
//!
//! Paper anchor: "using PCIe DMA to transfer target input data from the
//! host to the FPGA accounts for only 0.01% of the total runtime."

use ir_bench::{default_workload, scale_from_env, Table};
use ir_fpga::{AcceleratedSystem, FpgaParams, Scheduling};
use ir_genome::Chromosome;

fn main() {
    // Paper-geometry targets (250 bp reads) carry the real compute/byte
    // ratio; capped scale keeps the simulation affordable.
    let scale = scale_from_env().min(2e-4);
    let generator = default_workload(scale);
    println!("PCIe DMA overhead in the end-to-end accelerated run (scale {scale})\n");

    let mut table = Table::new(vec![
        "config",
        "wall s",
        "DMA busy s",
        "DMA % of wall",
        "host cmd % of wall",
    ]);
    let workload = generator.chromosome(Chromosome::Autosome(2));
    let mut iracc_fraction = 0.0;
    let mut serial_fraction = 0.0;
    for (name, params) in [
        ("IRAcc serial", FpgaParams::serial()),
        ("IR ACC", FpgaParams::iracc()),
    ] {
        let run = AcceleratedSystem::new(params, Scheduling::Asynchronous)
            .expect("config fits")
            .run(&workload.targets);
        if name == "IR ACC" {
            iracc_fraction = run.dma_fraction();
        } else {
            serial_fraction = run.dma_fraction() * 100.0;
        }
        table.row(vec![
            name.to_string(),
            format!("{:.4}", run.wall_time_s),
            format!("{:.6}", run.dma_busy_s),
            format!("{:.3}%", run.dma_fraction() * 100.0),
            format!("{:.3}%", run.command_s / run.wall_time_s * 100.0),
        ]);
    }
    table.emit("dma_overhead");

    println!("\npaper anchor: DMA ≈ 0.01% of total runtime");
    println!(
        "measured     : DMA {serial_fraction:.3}% of the serial-unit wall time, {:.3}% of IR ACC",
        iracc_fraction * 100.0
    );
    println!(
        "\n(the data-parallel fabric computes ~15× faster over the same bytes, so its\nDMA share is correspondingly larger; both shrink further at full scale as\nper-batch descriptor latency amortizes)"
    );
}
