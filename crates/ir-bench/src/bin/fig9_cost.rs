//! Figure 9 (right): dollar cost of running INDEL realignment for all
//! chromosomes on GATK3, ADAM and the accelerated system.
//!
//! Paper anchors: GATK3 ≈ $28 (42 h on an r3.2xlarge at 66.5¢/h), ADAM ≈
//! $14.5, IR ACC ≈ 90¢ (31 min on an f1.2xlarge at $1.65/h); IRACC is 32×
//! more cost-efficient than GATK3 and 17× more than ADAM.
//!
//! Methodology: the software baselines are analytic in the target shapes,
//! so they are priced directly on **paper-geometry** shapes (250 bp
//! reads). The accelerator's sustained throughput (naive-equivalent
//! comparisons per second) is measured by simulation on the bench-profile
//! workload at `IR_SCALE` and then applied to the same paper-geometry
//! work.

use ir_baselines::{adam::AdamModel, gatk::GatkModel};
use ir_bench::{
    bench_workload, default_workload, fmt_duration, parallel_sweep, scale_from_env,
    threads_from_env, OracleCache, Table,
};
use ir_cloud::{cost_efficiency_ratio, CostedRun, Instance};
use ir_fpga::{AcceleratedSystem, FpgaParams, Scheduling};

fn main() {
    let scale = scale_from_env();
    println!("Figure 9 (right): cost to perform INDEL realignment (Ch1–22)");
    println!("accelerator measured at scale {scale}, costs extrapolated to the full genome\n");

    // Paper-geometry work, full genome (shapes are cheap to sample).
    let shape_scale = scale.min(5e-4);
    let paper_gen = default_workload(shape_scale);
    let mut paper_shapes = Vec::new();
    for workload in paper_gen.autosomes() {
        paper_shapes.extend(workload.targets.iter().map(|t| t.shape()));
    }
    let upscale = 1.0 / shape_scale;
    let paper_naive: u64 = paper_shapes
        .iter()
        .map(|s| s.worst_case_comparisons())
        .sum();

    // Software baselines: analytic on the paper-geometry shapes.
    let gatk_full = GatkModel::default().run_shapes(&paper_shapes).wall_time_s * upscale;
    let adam_full = AdamModel::default()
        .without_startup()
        .run_shapes(&paper_shapes)
        .wall_time_s
        * upscale
        + 12.0;

    // Accelerator: measured sustained throughput on the bench workload.
    // The per-chromosome IRACC evaluations share the oracle cache with
    // fig9_speedup / headline_claims (same workload, same timing key).
    let bench_gen = bench_workload(scale);
    let cache = OracleCache::from_env();
    let workloads = bench_gen.autosomes();
    let per_chromosome: Vec<(u64, f64)> =
        parallel_sweep(&workloads, threads_from_env(), |workload| {
            let iracc = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Asynchronous)
                .expect("iracc fits");
            let mut oracle = cache.load_or_compute(
                &format!("bench-{}-iracc", workload.chromosome),
                &workload.targets,
                &FpgaParams::iracc(),
                1,
            );
            (
                workload
                    .targets
                    .iter()
                    .map(|t| t.shape().worst_case_comparisons())
                    .sum::<u64>(),
                iracc
                    .run_with_oracle(&workload.targets, &mut oracle)
                    .wall_time_s,
            )
        });
    let bench_naive: u64 = per_chromosome.iter().map(|&(n, _)| n).sum();
    let bench_wall: f64 = per_chromosome.iter().map(|&(_, w)| w).sum();
    let throughput = bench_naive as f64 / bench_wall; // naive-equivalent cmp/s
    let iracc_full = paper_naive as f64 * upscale / throughput;

    let runs = [
        CostedRun::new("GATK3", Instance::r3_2xlarge(), gatk_full),
        CostedRun::new("ADAM", Instance::r3_2xlarge(), adam_full),
        CostedRun::new("IR ACC", Instance::f1_2xlarge(), iracc_full),
    ];

    let mut table = Table::new(vec!["system", "instance", "$/hour", "wall time", "cost $"]);
    for run in &runs {
        table.row(vec![
            run.system.clone(),
            run.instance.name.to_string(),
            format!("{:.3}", run.instance.price_per_hour_usd),
            fmt_duration(run.wall_time_s),
            format!("{:.2}", run.cost_usd()),
        ]);
    }
    table.emit("fig9_cost");

    println!(
        "\npaper anchors: GATK3 $28 (42 h), ADAM $14.5, IR ACC <$1 (~31 min); \
         cost efficiency 32× vs GATK3, 17× vs ADAM"
    );
    println!(
        "measured     : GATK3 ${:.2} ({}), ADAM ${:.2}, IR ACC ${:.2} ({}); \
         cost efficiency {:.0}× vs GATK3, {:.0}× vs ADAM",
        runs[0].cost_usd(),
        fmt_duration(gatk_full),
        runs[1].cost_usd(),
        runs[2].cost_usd(),
        fmt_duration(iracc_full),
        cost_efficiency_ratio(&runs[0], &runs[2]),
        cost_efficiency_ratio(&runs[1], &runs[2]),
    );
    println!(
        "\n(sustained fabric throughput: {throughput:.2e} naive-equivalent comparisons/s; \
         absolute hours track the\nsynthetic workload's total work — per-target sizes are \
         calibrated to published shape statistics, not\nto NA12878's exact totals — while \
         the cost-efficiency ratios are geometry-independent)"
    );
}
