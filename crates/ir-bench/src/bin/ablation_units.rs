//! §IV ablation: task-parallel scaling with unit count.
//!
//! Paper anchor: "the available parallelism trivially scales up with the
//! volume of hardware … the computation time scales (almost) linearly
//! with the number of units available", until the 32-unit block-RAM
//! ceiling.

use ir_bench::{
    bench_workload, parallel_sweep, scale_from_env, threads_from_env, OracleCache, Table,
};
use ir_fpga::resources::max_units;
use ir_fpga::{AcceleratedSystem, FpgaParams, Scheduling};
use ir_genome::Chromosome;

fn main() {
    let scale = scale_from_env();
    let threads = threads_from_env();
    let generator = bench_workload(scale);
    let workload = generator.chromosome(Chromosome::Autosome(20));
    println!(
        "Unit-count scaling (scale {scale}, Ch20, async, data-parallel units, {threads} host threads)\n"
    );

    // The unit count only moves work around in time — it is not part of
    // the oracle's timing key — so all six sweep points replay one warmed
    // set of datapath evaluations (shared on disk with the other figure
    // binaries' Ch20 IRACC runs when `IR_ORACLE_CACHE` is set).
    let pool_oracle = OracleCache::from_env().load_or_compute(
        &format!("bench-{}-iracc", workload.chromosome),
        &workload.targets,
        &FpgaParams::iracc(),
        threads,
    );
    let all_indices: Vec<usize> = (0..workload.targets.len()).collect();

    // Each unit count is an independent simulation of the same targets;
    // results come back in input order, so the 1-unit baseline for the
    // speedup column is runs[0] exactly as in a serial sweep.
    let unit_counts = [1usize, 2, 4, 8, 16, 32];
    let runs = parallel_sweep(&unit_counts, threads, |&units| {
        let params = FpgaParams {
            num_units: units,
            ..FpgaParams::iracc()
        };
        let mut oracle = pool_oracle.subset(&params, &all_indices);
        AcceleratedSystem::new(params, Scheduling::Asynchronous)
            .expect("fits")
            .run_with_oracle(&workload.targets, &mut oracle)
    });

    let mut table = Table::new(vec![
        "units",
        "wall s",
        "speedup vs 1 unit",
        "scaling efficiency",
    ]);
    let one_unit_wall = runs[0].wall_time_s;
    for (&units, run) in unit_counts.iter().zip(&runs) {
        let speedup = one_unit_wall / run.wall_time_s;
        table.row(vec![
            units.to_string(),
            format!("{:.4}", run.wall_time_s),
            format!("{speedup:.1}×"),
            format!("{:.0}%", speedup / units as f64 * 100.0),
        ]);
    }
    table.emit("ablation_units");

    println!("\npaper anchor: near-linear scaling up to the BRAM-limited 32 units");
    println!(
        "floorplan ceiling: {} units (routability bound)",
        max_units(32)
    );
}
