//! §IV ablation: task-parallel scaling with unit count.
//!
//! Paper anchor: "the available parallelism trivially scales up with the
//! volume of hardware … the computation time scales (almost) linearly
//! with the number of units available", until the 32-unit block-RAM
//! ceiling.

use ir_bench::{bench_workload, scale_from_env, Table};
use ir_fpga::resources::max_units;
use ir_fpga::{AcceleratedSystem, FpgaParams, Scheduling};
use ir_genome::Chromosome;

fn main() {
    let scale = scale_from_env();
    let generator = bench_workload(scale);
    let workload = generator.chromosome(Chromosome::Autosome(20));
    println!("Unit-count scaling (scale {scale}, Ch20, async, data-parallel units)\n");

    let mut table = Table::new(vec![
        "units",
        "wall s",
        "speedup vs 1 unit",
        "scaling efficiency",
    ]);
    let mut one_unit_wall = 0.0;
    for units in [1usize, 2, 4, 8, 16, 32] {
        let params = FpgaParams {
            num_units: units,
            ..FpgaParams::iracc()
        };
        let run = AcceleratedSystem::new(params, Scheduling::Asynchronous)
            .expect("fits")
            .run(&workload.targets);
        if units == 1 {
            one_unit_wall = run.wall_time_s;
        }
        let speedup = one_unit_wall / run.wall_time_s;
        table.row(vec![
            units.to_string(),
            format!("{:.4}", run.wall_time_s),
            format!("{speedup:.1}×"),
            format!("{:.0}%", speedup / units as f64 * 100.0),
        ]);
    }
    table.emit("ablation_units");

    println!("\npaper anchor: near-linear scaling up to the BRAM-limited 32 units");
    println!(
        "floorplan ceiling: {} units (routability bound)",
        max_units(32)
    );
}
