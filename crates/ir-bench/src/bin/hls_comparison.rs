//! §V-B "Comparison with HLS": the SDAccel build vs the hand-written
//! Chisel design.
//!
//! Paper anchor: the HLS version achieves only 1.3×–3.1× over GATK3,
//! because Xilinx OpenCL caps asynchronously-scheduled compute units at
//! 16 and HLS fails to extract the coarse-grained parallelism and pruning
//! of the hand-written datapath.

use ir_baselines::gatk::GatkModel;
use ir_bench::{
    bench_workload, gmean, parallel_sweep, scale_from_env, threads_from_env, OracleCache, Table,
};
use ir_fpga::hls::{hls_params, hls_system};
use ir_fpga::{AcceleratedSystem, FpgaParams, Scheduling};
use ir_genome::Chromosome;

fn main() {
    let scale = scale_from_env();
    let generator = bench_workload(scale);
    let cache = OracleCache::from_env();
    println!("HLS (SDAccel/OpenCL) build vs the Chisel IR ACC (scale {scale})\n");

    let chromosomes: Vec<Chromosome> = Chromosome::autosomes().take(6).collect();
    let rows: Vec<(Chromosome, f64, f64, f64)> =
        parallel_sweep(&chromosomes, threads_from_env(), |&chromosome| {
            let gatk = GatkModel::default();
            let hls = hls_system().expect("16-unit HLS design fits");
            let iracc = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Asynchronous)
                .expect("fits");
            let workload = generator.chromosome(chromosome);
            let shapes: Vec<_> = workload.targets.iter().map(|t| t.shape()).collect();
            let mut hls_oracle = cache.load_or_compute(
                &format!("bench-{chromosome}-hls"),
                &workload.targets,
                &hls_params(),
                1,
            );
            let mut iracc_oracle = cache.load_or_compute(
                &format!("bench-{chromosome}-iracc"),
                &workload.targets,
                &FpgaParams::iracc(),
                1,
            );
            (
                chromosome,
                gatk.run_shapes(&shapes).wall_time_s,
                hls.run_with_oracle(&workload.targets, &mut hls_oracle)
                    .wall_time_s,
                iracc
                    .run_with_oracle(&workload.targets, &mut iracc_oracle)
                    .wall_time_s,
            )
        });

    let mut table = Table::new(vec!["chromosome", "HLS × vs GATK3", "IR ACC × vs GATK3"]);
    let mut hls_x = Vec::new();
    for &(chromosome, gatk_s, hls_s, iracc_s) in &rows {
        hls_x.push(gatk_s / hls_s);
        table.row(vec![
            chromosome.to_string(),
            format!("{:.1}", gatk_s / hls_s),
            format!("{:.1}", gatk_s / iracc_s),
        ]);
    }
    table.emit("hls_comparison");

    println!("\npaper anchor: HLS only 1.3–3.1× over GATK3 (16-CU OpenCL limit, no pruning,");
    println!("no coarse-grained parallelism extracted, hard-to-debug generated RTL)");
    println!(
        "measured     : HLS {:.1}–{:.1}× (gmean {:.1}×)",
        hls_x.iter().cloned().fold(f64::INFINITY, f64::min),
        hls_x.iter().cloned().fold(0.0, f64::max),
        gmean(&hls_x)
    );
}
