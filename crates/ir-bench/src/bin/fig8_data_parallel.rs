//! Figure 8: the data-parallel Hamming distance calculator — lane-count
//! sweep of HDC cycles on a representative workload.
//!
//! Paper anchor: adding the 32-lane calculator to the asynchronous
//! task-parallel system "provided another 15× speedup" (§V-B). The gain is
//! below the ideal 32× because pruning coarsens from per-byte to
//! per-block granularity and the prune verdict lags the adder tree.

use ir_bench::{bench_workload, parallel_sweep, threads_from_env, Table};
use ir_fpga::hdc::{run_pair_fast_packed, HdcConfig};
use ir_genome::{PackedSequence, Qual};

fn main() {
    let threads = threads_from_env();
    println!(
        "Figure 8: data-parallel Hamming distance calculator — lane sweep ({threads} host threads)\n"
    );
    let generator = bench_workload(1.0); // scale unused for direct target sampling
    let targets = generator.targets(64, 0xf18);

    // Pack every (consensus, read) pair once; all six lane configurations
    // scan the same packed words through the SWAR kernel, which produces
    // the identical PairRun to the cycle-stepped reference.
    let pairs: Vec<(PackedSequence, PackedSequence, &Qual)> = targets
        .iter()
        .flat_map(|target| {
            (0..target.num_consensuses()).flat_map(move |i| {
                (0..target.num_reads()).map(move |j| {
                    (
                        PackedSequence::from(target.consensus(i)),
                        PackedSequence::from(target.read(j).bases()),
                        target.read(j).quals(),
                    )
                })
            })
        })
        .collect();

    let lane_counts = [1usize, 2, 4, 8, 16, 32];
    let totals = parallel_sweep(&lane_counts, threads, |&lanes| {
        let cfg = HdcConfig {
            lanes,
            prune_latency_blocks: if lanes > 1 { 2 } else { 0 },
            ..HdcConfig::serial()
        };
        let mut cycles = 0u64;
        let mut comparisons = 0u64;
        for (cons, read, quals) in &pairs {
            let run = run_pair_fast_packed(cons, read, quals, cfg);
            cycles += run.cycles;
            comparisons += run.comparisons;
        }
        (cycles, comparisons)
    });

    let mut table = Table::new(vec![
        "lanes",
        "HDC cycles",
        "speedup vs serial",
        "executed comparisons",
    ]);
    let serial_cycles = totals[0].0;
    for (&lanes, &(cycles, comparisons)) in lane_counts.iter().zip(&totals) {
        table.row(vec![
            lanes.to_string(),
            cycles.to_string(),
            format!("{:.1}×", serial_cycles as f64 / cycles as f64),
            comparisons.to_string(),
        ]);
    }
    table.emit("fig8_data_parallel");

    println!("\npaper anchor: the 32-lane calculator buys ≈ 15× over the serial unit");
    println!("(ideal 32× eroded by block-granular pruning and the 2-block prune latency)");
}
