//! Figure 8: the data-parallel Hamming distance calculator — lane-count
//! sweep of HDC cycles on a representative workload.
//!
//! Paper anchor: adding the 32-lane calculator to the asynchronous
//! task-parallel system "provided another 15× speedup" (§V-B). The gain is
//! below the ideal 32× because pruning coarsens from per-byte to
//! per-block granularity and the prune verdict lags the adder tree.

use ir_bench::{bench_workload, Table};
use ir_fpga::hdc::{run_pair, HdcConfig};

fn main() {
    println!("Figure 8: data-parallel Hamming distance calculator — lane sweep\n");
    let generator = bench_workload(1.0); // scale unused for direct target sampling
    let targets = generator.targets(64, 0xf18);

    let mut table = Table::new(vec![
        "lanes",
        "HDC cycles",
        "speedup vs serial",
        "executed comparisons",
    ]);
    let mut serial_cycles = 0u64;
    for lanes in [1usize, 2, 4, 8, 16, 32] {
        let cfg = HdcConfig {
            lanes,
            prune_latency_blocks: if lanes > 1 { 2 } else { 0 },
            ..HdcConfig::serial()
        };
        let mut cycles = 0u64;
        let mut comparisons = 0u64;
        for target in &targets {
            for i in 0..target.num_consensuses() {
                for j in 0..target.num_reads() {
                    let run = run_pair(
                        target.consensus(i),
                        target.read(j).bases(),
                        target.read(j).quals(),
                        cfg,
                    );
                    cycles += run.cycles;
                    comparisons += run.comparisons;
                }
            }
        }
        if lanes == 1 {
            serial_cycles = cycles;
        }
        table.row(vec![
            lanes.to_string(),
            cycles.to_string(),
            format!("{:.1}×", serial_cycles as f64 / cycles as f64),
            comparisons.to_string(),
        ]);
    }
    table.emit("fig8_data_parallel");

    println!("\npaper anchor: the 32-lane calculator buys ≈ 15× over the serial unit");
    println!("(ideal 32× eroded by block-granular pruning and the 2-block prune latency)");
}
