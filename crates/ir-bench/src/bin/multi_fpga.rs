//! Extension experiment: scaling the sea of accelerators across the
//! f1.16xlarge's eight FPGAs.
//!
//! The paper deploys one VU9P (f1.2xlarge); AWS also offered an 8-FPGA
//! f1.16xlarge at exactly 8× the price. This harness shards one
//! chromosome's targets across 1–8 simulated FPGAs (longest-processing-
//! time on worst-case work) and reports scaling efficiency and cost per
//! unit of work — quantifying whether the "sea of seas" pays.

use ir_bench::{
    bench_workload, parallel_sweep, scale_from_env, threads_from_env, OracleCache, Table,
};
use ir_cloud::{run_cost_usd, schedule_jobs, Instance};
use ir_fpga::{AcceleratedSystem, FpgaParams, Scheduling};

fn main() {
    // Each FPGA-count point re-runs the whole pool, so cap the scale to
    // keep the four-point sweep affordable.
    let scale = scale_from_env().min(2e-3);
    let threads = threads_from_env();
    let generator = bench_workload(scale);
    // Whole-genome target pool: sharding granularity matters only when
    // each shard still holds enough targets to amortize stragglers.
    let mut targets = Vec::new();
    for workload in generator.autosomes() {
        targets.extend(workload.targets);
    }
    let total_work: f64 = targets
        .iter()
        .map(|t| t.shape().worst_case_comparisons() as f64)
        .sum();
    println!(
        "Multi-FPGA sharding (scale {scale}, Ch1–22 pool of {} targets, {threads} host threads)\n",
        targets.len()
    );

    let system =
        AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Asynchronous).expect("iracc fits");

    // Every FPGA-count point replays the same pool under the same timing
    // key, so the datapath is evaluated once: warm a pool-wide oracle,
    // then project it onto each shard's global indices (`subset` re-keys
    // them to the shard-local positions `run_with_oracle` sees).
    let pool_oracle = OracleCache::from_env().load_or_compute(
        "multi-fpga-pool-iracc",
        &targets,
        &FpgaParams::iracc(),
        threads,
    );

    // Each FPGA-count point LPT-shards the pool and replays every shard —
    // the points are independent, so they sweep in parallel; derived
    // columns (speedup vs the 1-FPGA wall) come from the input-ordered
    // results afterwards.
    let fpga_counts = [1usize, 2, 4, 8];
    let walls = parallel_sweep(&fpga_counts, threads, |&fpgas| {
        let work: Vec<f64> = targets
            .iter()
            .map(|t| t.shape().worst_case_comparisons() as f64)
            .collect();
        let schedule = schedule_jobs(&work, fpgas);
        let mut shards: Vec<Vec<ir_genome::RealignmentTarget>> = vec![Vec::new(); fpgas];
        let mut shard_indices: Vec<Vec<usize>> = vec![Vec::new(); fpgas];
        for (t, &fpga) in schedule.assignments.iter().enumerate() {
            shards[fpga].push(targets[t].clone());
            shard_indices[fpga].push(t);
        }
        shards
            .iter()
            .zip(&shard_indices)
            .filter(|(s, _)| !s.is_empty())
            .map(|(shard, indices)| {
                let mut oracle = pool_oracle.subset(&FpgaParams::iracc(), indices);
                system.run_with_oracle(shard, &mut oracle).wall_time_s
            })
            .fold(0.0f64, f64::max)
    });

    let mut table = Table::new(vec![
        "FPGAs",
        "wall s",
        "speedup",
        "scaling efficiency",
        "instance",
        "cost $/Tcmp",
    ]);
    let one_fpga_wall = walls[0];
    for (&fpgas, &wall) in fpga_counts.iter().zip(&walls) {
        let speedup = one_fpga_wall / wall;
        let instance = if fpgas == 1 {
            Instance::f1_2xlarge()
        } else {
            Instance::f1_16xlarge()
        };
        // Sub-8 shard counts on the 16xlarge still pay for the whole box;
        // cost is normalized per tera-comparison of naive-equivalent work
        // so it is scale-independent.
        let cost = run_cost_usd(&instance, wall) / (total_work / 1e12);
        table.row(vec![
            fpgas.to_string(),
            format!("{wall:.4}"),
            format!("{speedup:.2}×"),
            format!("{:.0}%", speedup / fpgas as f64 * 100.0),
            instance.name.to_string(),
            format!("{cost:.4}"),
        ]);
    }
    table.emit("multi_fpga");

    println!(
        "\ntargets are independent, so sharding scales near-linearly until per-shard\n\
         target counts get small; at 8× the price, the f1.16xlarge only pays when all\n\
         eight FPGAs stay busy — elastic fleets of f1.2xlarge match it at equal cost\n\
         with finer-grained scaling (the paper's FPGAs-as-a-service argument)."
    );
}
