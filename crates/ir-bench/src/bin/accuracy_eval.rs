//! Extension experiment: does realignment actually *recover the truth*?
//!
//! The paper motivates IR by variant-calling accuracy ("somatic variant
//! calls must contain as few errors as possible") but reports only
//! performance. With a synthetic workload the ground truth is known, so
//! this harness measures the algorithm's biological effectiveness:
//!
//! - **consensus recovery** — how often the scored pick is the true
//!   haplotype on variant loci;
//! - **carrier-read recovery** — how often a realigned variant-carrying
//!   read lands exactly at its true offset;
//! - **realignment consistency** — the paper's core promise: after IR,
//!   carrier reads agree on one representation of the variant.

use ir_bench::{bench_workload, scale_from_env, Table};
use ir_core::{IndelRealigner, SelectionRule};

fn main() {
    let scale = scale_from_env();
    let generator = bench_workload(scale);
    let pairs = generator.targets_with_truth(400, 0xacc);
    println!(
        "Realignment accuracy on {} ground-truthed targets (scale-independent)\n",
        pairs.len()
    );

    for rule in [
        SelectionRule::AbsDiffVsReference,
        SelectionRule::TotalMinWhd,
    ] {
        evaluate(rule, &pairs);
    }
    println!(
        "\nIR's job (paper §II-A): \"ensure that all reads that contain a single sequence\n\
         variant are aligned with a consistent representation\" — the carrier-read recovery\n\
         rate above is exactly that consistency, measured against ground truth.\n\n\
         Finding: the paper's published absolute-difference scoring (Algorithm 2) is\n\
         easily distracted by spurious near-reference consensuses; GATK's actual\n\
         total-min-WHD selection recovers the true haplotype far more often. Both rules\n\
         are implemented; the hardware model follows the paper."
    );
}

fn evaluate(
    rule: SelectionRule,
    pairs: &[(ir_genome::RealignmentTarget, ir_workloads::TargetTruth)],
) {
    let realigner = IndelRealigner::new().with_selection_rule(rule);
    let mut variant_targets = 0u64;
    let mut consensus_recovered = 0u64;
    let mut carrier_reads = 0u64;
    let mut carrier_recovered = 0u64;
    let mut mismapped_moved = 0u64;
    let mut mismapped_total = 0u64;

    for (target, truth) in pairs {
        let result = realigner.realign(target);
        if truth.has_variant {
            variant_targets += 1;
            let true_consensus = truth.true_consensus.expect("variant targets have one");
            let picked_truth = result.best_consensus() == true_consensus;
            if picked_truth {
                consensus_recovered += 1;
            }
            for (j, read_truth) in truth.reads.iter().enumerate() {
                if read_truth.mismapped {
                    continue;
                }
                if read_truth.carrier {
                    carrier_reads += 1;
                    if picked_truth {
                        if let Some(offset) = result.read_outcome(j).new_offset() {
                            if offset == read_truth.source_offset {
                                carrier_recovered += 1;
                            }
                        } else if target.read(j).start_offset() as usize == read_truth.source_offset
                        {
                            // Already consistent: nothing to fix.
                            carrier_recovered += 1;
                        }
                    }
                }
            }
        }
        for (j, read_truth) in truth.reads.iter().enumerate() {
            if read_truth.mismapped {
                mismapped_total += 1;
                if result.read_outcome(j).realigned() {
                    mismapped_moved += 1;
                }
            }
        }
    }

    println!("selection rule: {rule:?}");
    let mut table = Table::new(vec!["metric", "value"]);
    let pct = |num: u64, den: u64| {
        if den == 0 {
            "n/a".to_string()
        } else {
            format!("{:.1}% ({num}/{den})", num as f64 / den as f64 * 100.0)
        }
    };
    table.row(vec![
        "true consensus picked on variant loci".into(),
        pct(consensus_recovered, variant_targets),
    ]);
    table.row(vec![
        "carrier reads placed at true offset".into(),
        pct(carrier_recovered, carrier_reads),
    ]);
    table.row(vec![
        "mismapped reads (should rarely move)".into(),
        pct(mismapped_moved, mismapped_total),
    ]);
    table.emit(&format!("accuracy_eval_{rule:?}").to_lowercase());
}
