//! Figure 2: execution-time breakdown of the three genomic-analysis
//! pipelines (primary alignment, alignment refinement, variant calling).
//!
//! Paper anchors: primary alignment < 15% of total (≈ 17 h), alignment
//! refinement ≈ 60% (≈ 72 h), variant calling ≈ 36 h; Smith-Waterman seed
//! extension ≈ 5% of total, suffix-array lookup ≈ 1.5%, and INDEL
//! realignment ≈ 34% of the total genomic-analysis time.

use ir_baselines::pipeline::{amdahl_speedup, paper_pipelines, stage_fraction_of_total};
use ir_bench::Table;

fn main() {
    println!("Figure 2: genomic analysis execution time breakdown (GATK3 / BWA-MEM)\n");

    let pipelines = paper_pipelines();
    let total_hours: f64 = pipelines.iter().map(|p| p.hours).sum();

    let mut table = Table::new(vec![
        "pipeline",
        "stage",
        "hours",
        "% of pipeline",
        "% of total",
    ]);
    for p in &pipelines {
        for (stage, fraction) in &p.stages {
            let hours = p.hours * fraction;
            table.row(vec![
                p.name.to_string(),
                stage.to_string(),
                format!("{hours:.1}"),
                format!("{:.1}%", fraction * 100.0),
                format!("{:.1}%", hours / total_hours * 100.0),
            ]);
        }
    }
    table.emit("fig2_pipeline_breakdown");

    println!("\npipeline totals over {total_hours:.0} h of genomic analysis:");
    for p in &pipelines {
        println!(
            "  {:30} {:5.1} h  ({:4.1}% of total)",
            p.name,
            p.hours,
            p.hours / total_hours * 100.0
        );
    }

    let ir = stage_fraction_of_total("Alignment Refinement", "INDEL Realignment");
    let sw = stage_fraction_of_total("Primary Alignment", "Seed Extension (Smith-Waterman)");
    let sa = stage_fraction_of_total("Primary Alignment", "Suffix Array Lookup");
    println!("\nacceleration-target comparison (why IR, not Smith-Waterman):");
    println!(
        "  INDEL realignment          : {:4.1}% of total (paper: ~34%)",
        ir * 100.0
    );
    println!(
        "  Smith-Waterman seed extend : {:4.1}% of total (paper: ~5%)",
        sw * 100.0
    );
    println!(
        "  suffix array lookup        : {:4.1}% of total (paper: ~1.5%)",
        sa * 100.0
    );

    println!("\nAmdahl's law on the whole genomic-analysis flow:");
    println!(
        "  accelerate IR 81×            → {:.2}× end-to-end",
        amdahl_speedup(ir, 81.0)
    );
    println!(
        "  accelerate Smith-Waterman 81× → {:.2}× end-to-end",
        amdahl_speedup(sw, 81.0)
    );
    println!(
        "  accelerate suffix lookup 81×  → {:.2}× end-to-end",
        amdahl_speedup(sa, 81.0)
    );
}
