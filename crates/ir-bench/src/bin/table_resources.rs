//! §III-A resource study: how many IR units fit on the VU9P, and at what
//! utilization.
//!
//! Paper anchors: 32 units fit with block-RAM utilization pushed to
//! 87.62% and CLB logic at 32.53%; the unit count is limited by block RAM
//! because the design reuses data aggressively in on-chip buffers.

use ir_bench::Table;
use ir_fpga::resources::{max_units, report, ROUTABILITY_CEILING};

fn main() {
    println!("Unit-count sweep on the Xilinx Virtex UltraScale+ VU9P\n");
    let mut table = Table::new(vec![
        "units",
        "BRAM36 blocks",
        "BRAM %",
        "LUTs",
        "CLB %",
        "fits?",
    ]);
    for units in [1usize, 4, 8, 16, 24, 28, 30, 31, 32, 33, 36, 40] {
        let r = report(units, 32);
        table.row(vec![
            units.to_string(),
            r.bram_blocks.to_string(),
            format!("{:.2}%", r.bram_utilization * 100.0),
            r.luts.to_string(),
            format!("{:.2}%", r.lut_utilization * 100.0),
            if r.fits { "yes".into() } else { "no".into() },
        ]);
    }
    table.emit("table_resources");

    let deployed = report(32, 32);
    println!("\npaper anchors: 32 units, BRAM 87.62%, CLB logic 32.53%");
    println!(
        "measured     : max units = {} (routability ceiling {:.0}%), BRAM {:.2}%, CLB {:.2}%",
        max_units(32),
        ROUTABILITY_CEILING * 100.0,
        deployed.bram_utilization * 100.0,
        deployed.lut_utilization * 100.0
    );
    println!("\nBRAM is the binding constraint: CLB sits at a third of capacity while BRAM\napproaches the routability ceiling — the paper's data-reuse design choice.");

    // Ablation: the 3-bit base packing the paper explicitly rejected.
    let byte_blocks = ir_fpga::bram::unit_bram36_blocks();
    let packed_blocks = ir_fpga::bram::packed_bases_unit_bram36_blocks();
    println!(
        "\nbyte-per-base vs 3-bit packing (§III-A): {byte_blocks} vs {packed_blocks} BRAM36/unit — \
         packing would fit more units,\nbut every buffer index, shift and mask would need \
         bit-alignment logic; the paper\nkeeps byte alignment for \"simple data manipulation\"."
    );
}
