//! §III-B ablation: TileLink/memory interface width.
//!
//! Paper anchor: "We used the parametrized implementation to explore a
//! number of TileLink interface widths, and found that a 256-bit interface
//! provided the best performance under the timing constraints." Wider
//! interfaces speed buffer fills but lengthen routing paths; this sweep
//! reproduces the trade.

use ir_bench::{bench_workload, scale_from_env, Table};
use ir_fpga::{AcceleratedSystem, FpgaParams, Scheduling};
use ir_genome::Chromosome;

fn main() {
    let scale = scale_from_env();
    let generator = bench_workload(scale);
    let workload = generator.chromosome(Chromosome::Autosome(21));
    println!("TileLink width sweep (scale {scale}, Ch21, IR ACC async)\n");

    let mut table = Table::new(vec![
        "TileLink bits",
        "bytes/beat",
        "wall s",
        "load+drain % of cycles",
        "routing headroom",
    ]);
    for bus_bytes in [8u64, 16, 32, 64] {
        let params = FpgaParams {
            bus_bytes,
            ..FpgaParams::iracc()
        };
        let run = AcceleratedSystem::new(params, Scheduling::Asynchronous)
            .expect("fits")
            .run(&workload.targets);
        let io_cycles: u64 = run
            .results
            .iter()
            .map(|r| r.cycles.load + r.cycles.drain)
            .sum();
        // Wider buses stress routing: the paper's 512-bit experiments
        // failed timing, so flag widths beyond 256 bits.
        let headroom = if bus_bytes <= 32 {
            "closes timing"
        } else {
            "routing-critical"
        };
        table.row(vec![
            (bus_bytes * 8).to_string(),
            bus_bytes.to_string(),
            format!("{:.4}", run.wall_time_s),
            format!(
                "{:.2}%",
                io_cycles as f64 / run.compute_cycles as f64 * 100.0
            ),
            headroom.to_string(),
        ]);
    }
    table.emit("ablation_interconnect");

    println!("\npaper anchor: 256-bit TileLink is the sweet spot — wider widths win little");
    println!("(compute dominates; buffer fills are already a few % of cycles) and risk timing");
}
