//! Table II: machine configurations — the EC2 instances the accelerated
//! system and the software baselines run on.

use ir_bench::Table;
use ir_cloud::{Accelerator, Instance};

fn main() {
    println!("Table II: machine configurations\n");
    let mut table = Table::new(vec![
        "instance",
        "processors",
        "vCPUs",
        "memory GiB",
        "accelerator",
        "$/hour",
    ]);
    for m in Instance::paper_machines() {
        let accel = match m.accelerator {
            Accelerator::XilinxVu9p => "Xilinx Virtex UltraScale+ VU9P, 64 GB 4×DDR4",
            Accelerator::NvidiaV100 => "NVIDIA V100",
            Accelerator::None => "—",
        };
        table.row(vec![
            m.name.to_string(),
            m.cpu.to_string(),
            m.vcpus.to_string(),
            format!("{:.0}", m.memory_gib),
            accel.to_string(),
            format!("{:.3}", m.price_per_hour_usd),
        ]);
    }
    table.emit("table2_machines");
    println!(
        "\nthe r3.2xlarge is the most cost-efficient host for GATK3 because GATK3\n\
         does not scale beyond 8 threads (paper footnote 2)"
    );
}
