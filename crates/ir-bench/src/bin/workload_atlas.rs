//! Workload atlas: per-shape-family accelerator characterization.
//!
//! For each [`ShapeFamily`] the atlas derives the unit configuration a
//! fabric built for that family would use (`derive_shape_config`), runs a
//! family-profile workload through an [`AcceleratedSystem`] resized to
//! that geometry, and reports how the shape stresses the design: BRAM
//! buffer high-water occupancy, pruning effectiveness, arbiter
//! contention, and the derived unit count the VU9P floorplan admits.
//!
//! Outputs `results/workload_atlas.{csv,txt}` (the table) and
//! `results/workload_atlas.json` (the machine-readable per-family rows).
//! Every artifact is a pure function of `(IR_SCALE,)`: the per-family
//! generator seeds are fixed, the simulation runs in virtual time, and
//! `IR_THREADS` only pre-warms the functional oracle — repeat runs are
//! byte-identical (the CI `workload-atlas-smoke` job diffs two same-seed
//! runs byte for byte).

use std::fs;
use std::time::Instant;

use ir_bench::{results_dir, scale_from_env, threads_from_env, Table};
use ir_fpga::{derive_shape_config, AcceleratedSystem, FpgaParams, FunctionalOracle, Scheduling};
use ir_workloads::ShapeFamily;

/// Per-family target budget: full-workload target count at scale 1.0 and
/// the cap that keeps the atlas tractable (long-read and deep-panel
/// targets each cost ~1e9 worst-case comparisons).
fn family_budget(family: ShapeFamily) -> (f64, usize) {
    match family {
        ShapeFamily::ShortReadGermline => (48_000.0, 64),
        ShapeFamily::LongRead => (2_000.0, 6),
        ShapeFamily::DeepPanel => (4_000.0, 8),
        ShapeFamily::Metagenomic => (24_000.0, 32),
    }
}

fn family_targets(family: ShapeFamily, scale: f64) -> usize {
    let (full, cap) = family_budget(family);
    ((full * scale).ceil() as usize).clamp(2, cap)
}

fn main() {
    let scale = scale_from_env();
    let threads = threads_from_env();
    println!(
        "Workload atlas ({} shape families, scale {scale}, {threads} host threads)\n",
        ShapeFamily::ALL.len()
    );

    let mut table = Table::new(vec![
        "family",
        "targets",
        "units",
        "max units",
        "bram36/unit",
        "bram util %",
        "geometry",
        "cons hwm %",
        "read hwm %",
        "Mcmp",
        "prune %",
        "arb5 conflict/grant",
        "wall ms",
    ]);
    let mut json_rows = Vec::new();

    for &family in ShapeFamily::ALL.iter() {
        // One oracle per family: the oracle memoizes by (timing key,
        // target index) within a single workload, and every family shares
        // the IRACC timing key — a shared oracle would replay short-read
        // results for every other family's targets.
        let mut oracle = FunctionalOracle::new();
        let profile = family.profile();
        let shape = derive_shape_config(&profile.limits(), &FpgaParams::iracc())
            .expect("every built-in family derives a valid unit configuration");
        let count = family_targets(family, scale);
        let seed = 0xA71A5 ^ family.index() as u64;
        let targets = profile.generator(scale).targets(count, seed);

        let system = AcceleratedSystem::new(shape.params, Scheduling::Asynchronous)
            .expect("derived params fit the VU9P")
            .with_geometry(shape.geometry)
            .with_telemetry(true);
        let host_start = Instant::now();
        oracle.precompute(&targets, &shape.params, threads);
        let run = system.run_with_oracle(&targets, &mut oracle);
        let host_s = host_start.elapsed().as_secs_f64();
        let snap = run.telemetry.as_ref().expect("telemetry enabled");

        // Pruning rate the paper reports (§III-A): fraction of the naive
        // all-offsets comparison count the prune comparator eliminated.
        let naive: u64 = targets
            .iter()
            .map(|t| t.shape().worst_case_comparisons())
            .sum();
        let comparisons = snap.counter("hdc/comparisons");
        let pruned_offsets = snap.counter("hdc/pruned_offsets");
        let prune_rate = if naive == 0 {
            0.0
        } else {
            1.0 - comparisons as f64 / naive as f64
        };

        let cons_hwm = snap.gauge("bram/consensus_bytes_hwm");
        let read_hwm = snap.gauge("bram/read_bytes_hwm");
        let cons_occ = cons_hwm as f64 / shape.geometry.consensus_capacity_bytes() as f64;
        let read_occ = read_hwm as f64 / shape.geometry.read_capacity_bytes() as f64;

        let arb5_grants = snap.counter("arbiter5/grants");
        let arb5_conflicts = snap.counter("arbiter5/conflict_cycles");
        let arb5_per_grant = if arb5_grants == 0 {
            0.0
        } else {
            arb5_conflicts as f64 / arb5_grants as f64
        };
        let arb32_grants = snap.counter("arbiter32/grants");
        let arb32_conflicts = snap.counter("arbiter32/conflict_grants");

        println!(
            "=== {family} ===\n{} targets, {} units ({} max at {} BRAM36/unit), \
             geometry {}x{}B consensuses / {}x{}B reads\n\
             {:.1} Mcmp, prune {:.1}%, cons hwm {:.1}%, read hwm {:.1}%, \
             virtual wall {:.3} ms, host {:.0} ms\n",
            targets.len(),
            shape.params.num_units,
            shape.max_units,
            shape.unit_bram36_blocks,
            shape.geometry.max_consensuses,
            shape.geometry.consensus_slot_bytes,
            shape.geometry.max_reads,
            shape.geometry.read_slot_bytes,
            comparisons as f64 / 1e6,
            prune_rate * 100.0,
            cons_occ * 100.0,
            read_occ * 100.0,
            run.wall_time_s * 1e3,
            host_s * 1e3,
        );

        table.row(vec![
            family.name().to_string(),
            targets.len().to_string(),
            shape.params.num_units.to_string(),
            shape.max_units.to_string(),
            shape.unit_bram36_blocks.to_string(),
            format!("{:.1}", shape.resources.bram_utilization * 100.0),
            format!(
                "{}x{}B/{}x{}B",
                shape.geometry.max_consensuses,
                shape.geometry.consensus_slot_bytes,
                shape.geometry.max_reads,
                shape.geometry.read_slot_bytes
            ),
            format!("{:.1}", cons_occ * 100.0),
            format!("{:.1}", read_occ * 100.0),
            format!("{:.2}", comparisons as f64 / 1e6),
            format!("{:.1}", prune_rate * 100.0),
            format!("{arb5_per_grant:.4}"),
            format!("{:.3}", run.wall_time_s * 1e3),
        ]);

        json_rows.push(format!(
            concat!(
                "    {{\n",
                "      \"family\": \"{}\",\n",
                "      \"targets\": {},\n",
                "      \"units\": {},\n",
                "      \"max_units\": {},\n",
                "      \"unit_bram36_blocks\": {},\n",
                "      \"bram_utilization\": {:.6},\n",
                "      \"geometry\": {{ \"max_consensuses\": {}, \"max_reads\": {}, ",
                "\"consensus_slot_bytes\": {}, \"read_slot_bytes\": {} }},\n",
                "      \"bram_consensus_hwm_bytes\": {},\n",
                "      \"bram_read_hwm_bytes\": {},\n",
                "      \"consensus_occupancy\": {:.6},\n",
                "      \"read_occupancy\": {:.6},\n",
                "      \"comparisons\": {},\n",
                "      \"pruned_offsets\": {},\n",
                "      \"prune_rate\": {:.6},\n",
                "      \"arbiter5_grants\": {},\n",
                "      \"arbiter5_conflict_cycles\": {},\n",
                "      \"arbiter32_grants\": {},\n",
                "      \"arbiter32_conflict_grants\": {},\n",
                "      \"virtual_wall_s\": {:.9}\n",
                "    }}"
            ),
            family.name(),
            targets.len(),
            shape.params.num_units,
            shape.max_units,
            shape.unit_bram36_blocks,
            shape.resources.bram_utilization,
            shape.geometry.max_consensuses,
            shape.geometry.max_reads,
            shape.geometry.consensus_slot_bytes,
            shape.geometry.read_slot_bytes,
            cons_hwm,
            read_hwm,
            cons_occ,
            read_occ,
            comparisons,
            pruned_offsets,
            prune_rate,
            arb5_grants,
            arb5_conflicts,
            arb32_grants,
            arb32_conflicts,
            run.wall_time_s,
        ));
    }

    table.emit("workload_atlas");

    let json = format!(
        "{{\n  \"ir_scale\": {scale},\n  \"families\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let json_path = results_dir().join("workload_atlas.json");
    if let Err(e) = fs::write(&json_path, &json) {
        eprintln!("warning: could not write {}: {e}", json_path.display());
    } else {
        println!("[json] {}", json_path.display());
    }
}
