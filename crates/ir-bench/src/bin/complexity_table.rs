//! §II-C: the compute-bound analysis of the IR algorithm.
//!
//! Paper anchors: worst-case `O(C·R·(m−n+1)·n)` with C ≤ 32, R ≤ 256,
//! m ≤ 2048 — an "astonishing" 3,684,352,000 comparisons for one target;
//! the kernel needs ≥ 3 bytes/cycle of buffer bandwidth to stay
//! compute-bound; even the smallest chromosome has > 48,000 targets.

use ir_bench::Table;
use ir_core::complexity::{
    pair_comparisons, paper_worst_case, target_comparisons, BYTES_PER_COMPARISON,
};
use ir_workloads::{expected_target_count, PAPER_CH21_TARGETS, PAPER_CH2_TARGETS};

fn main() {
    println!("§II-C complexity analysis of one IR target\n");
    let mut table = Table::new(vec!["C", "R", "m", "n", "comparisons"]);
    for (c, r, m, n) in [
        (2usize, 10usize, 320usize, 250usize),
        (4, 64, 900, 250),
        (8, 128, 1024, 250),
        (32, 256, 2048, 250),
    ] {
        table.row(vec![
            c.to_string(),
            r.to_string(),
            m.to_string(),
            n.to_string(),
            target_comparisons(c, r, m, n).to_string(),
        ]);
    }
    table.emit("complexity_table");

    println!("\npaper anchor: worst case 3,684,352,000 comparisons per target");
    println!(
        "measured     : {} (C=32, R=256, m=2048, n=250) ✓",
        paper_worst_case()
    );
    println!(
        "\nper (consensus, read) pair at the maxima: {} comparisons",
        pair_comparisons(2048, 250)
    );
    println!("buffer bandwidth to stay compute-bound: {BYTES_PER_COMPARISON} bytes/cycle (consensus + read + quality)");
    println!(
        "\ntarget parallelism: Ch21 has ~{} targets, Ch2 ~{} (paper: >48k and >320k);\nmodel: Ch21 {} / Ch2 {}",
        PAPER_CH21_TARGETS,
        PAPER_CH2_TARGETS,
        expected_target_count(ir_genome::Chromosome::Autosome(21)),
        expected_target_count(ir_genome::Chromosome::Autosome(2)),
    );
}
