//! `serve_fleet` — multi-node fleet load generator for `ir-serve::fleet`.
//!
//! Replays one seeded Poisson arrival stream against fleets of 1, 2, 4
//! and 8 nodes plus an SLO-driven autoscaling fleet, all on the shared
//! virtual clock. The offered rate is calibrated from a deterministic
//! full-batch probe to ~1.6x one node's capacity, so the single node is
//! visibly overloaded, two nodes run near 80% load, and wider fleets buy
//! SLO attainment with rising cost — the cost/SLO trade-off curve the
//! paper's cloud-deployment section argues about.
//!
//! Emitted artifacts (all deterministic, byte-identical across runs and
//! `IR_THREADS` settings; CI's `fleet-smoke` job diffs them):
//!
//! - `results/serve_fleet.{csv,txt}` — per-topology cost/SLO table,
//! - `results/fleet_report.json` — the 4-node fleet's structured report
//!   (consumed by `ir-cli bench-snapshot`).
//!
//! Knobs: `IR_SCALE`, `IR_THREADS` (oracle pre-warm only), `IR_RESULTS_DIR`.

use std::time::Instant;

use ir_bench::{bench_workload, fmt_duration, scale_from_env, threads_from_env, Table};
use ir_serve::{AutoscalerConfig, FleetConfig, FleetReport, FleetService, Request, ServeConfig};
use ir_workloads::ArrivalProcess;

/// Workload / arrival seeds (arbitrary but fixed, shared with serve_load).
const WORKLOAD_SEED: u64 = 2026;
const ARRIVAL_SEED: u64 = 41;

/// Offered load as a fraction of a single node's calibrated capacity.
/// Above 1.0 by design: one node must saturate for the curve to bend.
const LOAD_FACTOR: f64 = 1.6;

/// Inter-node routing hop on the virtual clock.
const HOP_LATENCY_S: f64 = 2e-6;

fn node_config(threads: usize) -> ServeConfig {
    ServeConfig {
        threads,
        ..ServeConfig::default()
    }
}

fn fleet_config(nodes: usize, threads: usize, autoscale: Option<AutoscalerConfig>) -> FleetConfig {
    FleetConfig {
        nodes,
        node: node_config(threads),
        hop_latency_s: HOP_LATENCY_S,
        autoscale,
        ..FleetConfig::default()
    }
}

fn run_fleet(
    label: &str,
    config: FleetConfig,
    targets: &[ir_genome::RealignmentTarget],
    rate_rps: f64,
) -> FleetReport {
    let times = ArrivalProcess::poisson(ARRIVAL_SEED, rate_rps).times(targets.len());
    let requests: Vec<Request> = targets
        .iter()
        .zip(&times)
        .enumerate()
        .map(|(i, (t, &at))| Request::new(i as u64, at, t.clone()))
        .collect();
    let mut fleet = FleetService::new(config).expect("valid fleet config");
    let host_start = Instant::now();
    let report = fleet.run(requests).expect("fleet run succeeds");
    println!(
        "{label}: served {}/{} requests on <= {} node(s) in {} of host time",
        report.completed(),
        report.offered(),
        report.peak_nodes,
        fmt_duration(host_start.elapsed().as_secs_f64())
    );
    report
}

fn main() {
    let scale = scale_from_env();
    let threads = threads_from_env();
    let count = ((48_000.0 * scale).ceil() as usize).max(64);
    println!("serve_fleet: {count} requests at scale {scale:.0e}, {threads} oracle thread(s)\n");
    let targets = bench_workload(scale).targets(count, WORKLOAD_SEED);

    // Calibrate one node's capacity: one shard executing full batches
    // back to back, scaled by the shard count (same probe as serve_load).
    let probe_config = node_config(threads);
    let mut probe = ir_serve::Shard::new(0, &probe_config).expect("probe shard");
    for chunk in targets.chunks(probe_config.max_batch) {
        let _ = probe.run_batch(chunk).expect("probe batch");
    }
    let capacity_rps = probe_config.shards as f64 * targets.len() as f64 / probe.busy_s();
    let rate_rps = LOAD_FACTOR * capacity_rps;
    println!(
        "calibrated single-node capacity {:.0} req/s; offering {:.0} req/s ({:.0}% of one node)\n",
        capacity_rps,
        rate_rps,
        LOAD_FACTOR * 100.0
    );

    let mut table = Table::new(vec![
        "fleet",
        "peak_nodes",
        "offered_rps",
        "completed",
        "rejected",
        "throughput_rps",
        "p50_ms",
        "p99_ms",
        "slo_attainment",
        "node_seconds",
        "cost_usd",
        "cost_per_mtargets_usd",
    ]);
    let mut snapshot_report = None;
    // The whole arrival stream spans only tens of virtual milliseconds,
    // so the autoscaler must react within a few batch completions to
    // matter: tight 1 ms evaluation windows, a single breach window
    // against a p99 objective below the single node's saturated tail,
    // and a clear_windows horizon long enough that it never flaps back
    // down mid-run.
    let autoscale = AutoscalerConfig {
        min_nodes: 1,
        max_nodes: 8,
        eval_period_s: 1e-3,
        cooldown_s: 2e-3,
        breach_windows: 1,
        clear_windows: 32,
        p99_slo_s: 4e-3,
        ..AutoscalerConfig::default()
    };
    let runs: Vec<(String, FleetConfig)> = [1usize, 2, 4, 8]
        .iter()
        .map(|&n| (format!("fixed-{n}"), fleet_config(n, threads, None)))
        .chain(std::iter::once((
            "autoscale".to_string(),
            fleet_config(1, threads, Some(autoscale)),
        )))
        .collect();
    for (label, config) in runs {
        let is_snapshot = label == "fixed-4";
        let report = run_fleet(&label, config, &targets, rate_rps);
        let pctl = |p| report.latency_percentile_s(p).expect("responses completed");
        table.row(vec![
            label,
            format!("{}", report.peak_nodes),
            format!("{rate_rps:.0}"),
            format!("{}", report.completed()),
            format!("{}", report.rejected()),
            format!("{:.0}", report.throughput_rps()),
            format!("{:.3}", pctl(50.0) * 1e3),
            format!("{:.3}", pctl(99.0) * 1e3),
            format!("{:.4}", report.slo_attainment()),
            format!("{:.6}", report.node_seconds()),
            format!("{:.6}", report.cost_usd()),
            format!("{:.4}", report.cost_per_million_targets_usd()),
        ]);
        if is_snapshot {
            snapshot_report = Some(report);
        }
    }
    println!();
    table.emit("serve_fleet");
    // The 4-node fleet's structured report feeds the perf-trajectory
    // snapshot (`ir-cli bench-snapshot` reads fleet_report.json).
    if let Some(report) = snapshot_report {
        let path = ir_bench::results_dir().join("fleet_report.json");
        match std::fs::write(&path, report.to_json()) {
            Ok(()) => println!("[json] {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
        println!(
            "4-node fleet: SLO attainment {:.4}, {:.4} USD per million targets",
            report.slo_attainment(),
            report.cost_per_million_targets_usd()
        );
    }
}
