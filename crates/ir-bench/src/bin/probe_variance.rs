//! Diagnostic: intra-batch compute variance under the synchronous
//! scheduler (not a paper figure; used to sanity-check the workload's
//! pruning-variance structure against the paper's Figure 7 narrative).

use ir_bench::{bench_workload, Table};
use ir_fpga::unit::simulate_target;
use ir_fpga::FpgaParams;
use ir_genome::Chromosome;

fn main() {
    let scale: f64 = std::env::var("IR_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2e-3);
    let generator = bench_workload(scale);
    let workload = generator.chromosome(Chromosome::Autosome(21));
    let params = FpgaParams::serial();

    // Per-target serial unit cycles, ordered the way the synchronous
    // scheduler batches them: by (reads, consensuses) descending.
    let mut targets: Vec<_> = workload.targets.iter().collect();
    targets.sort_by_key(|t| std::cmp::Reverse((t.num_reads(), t.num_consensuses())));
    let rows: Vec<(usize, u64, u64)> = targets
        .iter()
        .map(|t| {
            let run = simulate_target(t, &params);
            (
                t.num_reads(),
                t.shape().worst_case_comparisons(),
                run.cycles.total(),
            )
        })
        .collect();

    println!("targets: {}", rows.len());
    let naive: u64 = rows.iter().map(|r| r.1).sum();
    let executed: u64 = rows.iter().map(|r| r.2).sum();
    println!(
        "serial cycles / naive comparisons: {:.3}",
        executed as f64 / naive as f64
    );

    let mut utils = Vec::new();
    let mut table = Table::new(vec![
        "batch",
        "targets",
        "min cycles",
        "mean cycles",
        "max cycles",
        "batch util",
    ]);
    for (i, batch) in rows.chunks(32).enumerate() {
        let min = batch.iter().map(|r| r.2).min().unwrap();
        let max = batch.iter().map(|r| r.2).max().unwrap();
        let mean = batch.iter().map(|r| r.2).sum::<u64>() as f64 / batch.len() as f64;
        let util = mean / max as f64;
        utils.push(util);
        table.row(vec![
            i.to_string(),
            batch.len().to_string(),
            min.to_string(),
            format!("{mean:.0}"),
            max.to_string(),
            format!("{util:.3}"),
        ]);
        let works: Vec<f64> = batch
            .iter()
            .map(|r| (r.2 as f64 / 1e3).round() / 1e3)
            .collect();
        let reads: Vec<usize> = batch.iter().map(|r| r.0).collect();
        println!(
            "batch util {util:.2} | reads {:?} | Mcycles {:?}",
            &reads[..reads.len().min(8)],
            &works[..works.len().min(8)]
        );
    }
    table.emit("probe_variance");
    let avg = utils.iter().sum::<f64>() / utils.len() as f64;
    println!(
        "sync batch utilization avg: {avg:.3} → async gain ≈ {:.1}",
        1.0 / avg
    );
}
