//! Resilience study: what do hardware faults cost, and what does
//! recovering from them cost?
//!
//! The paper's accelerator runs inside leased cloud FPGAs, where the
//! happy path of the cycle model is optimistic: DMA chains stall,
//! responses get lost, units wedge, bits flip, and spot instances
//! disappear mid-genome. This sweep injects seeded faults at every
//! modeled hardware boundary (`ir_fpga::fault`) and replays the host
//! resilience policy (watchdog, bounded retry, verified read-back,
//! quarantine, software fallback) at several fault rates and
//! verification sampling rates, then prices spot-market interruptions
//! on the fleet schedule with and without per-chromosome checkpoints.
//!
//! Headline: at the default policy (verify every read-back) no silent
//! corruption is possible and every target completes; the price of that
//! guarantee shows up as wall-time overhead that stays small until
//! fault rates reach ~1e-2 per event.

use ir_bench::{
    bench_workload, parallel_sweep, scale_from_env, threads_from_env, OracleCache, Table,
};
use ir_cloud::{schedule_jobs, simulate_spot_schedule_traced, CheckpointPolicy, SpotMarket};
use ir_core::IndelRealigner;
use ir_fpga::fault::{FaultPlan, FaultRates};
use ir_fpga::layout::encode_outputs;
use ir_fpga::Telemetry;
use ir_fpga::{AcceleratedSystem, FpgaParams, ResiliencePolicy, Scheduling};
use ir_genome::{Chromosome, RealignmentTarget};

/// Targets in the fault sweep — fixed (not scaled) so the sweep sees
/// enough injection events to resolve rates down to 1e-4 even at the
/// default laptop scale.
const SWEEP_TARGETS: usize = 512;

/// Encodes the golden model's outputs for every target once; the sweep
/// reuses them for all rows rather than re-running the software
/// realigner 512 × 12 times.
fn golden_encodings(targets: &[RealignmentTarget]) -> Vec<(Vec<u8>, Vec<u8>)> {
    let golden = IndelRealigner::new();
    targets
        .iter()
        .map(|t| encode_outputs(&golden.realign_outcomes(t), t.start_pos()))
        .collect()
}

/// Counts targets whose shipped outcomes differ from the golden model —
/// the silent corruptions that escaped detection.
fn silent_corruptions(
    targets: &[RealignmentTarget],
    golden: &[(Vec<u8>, Vec<u8>)],
    run: &ir_fpga::SystemRun,
) -> usize {
    targets
        .iter()
        .zip(golden)
        .zip(&run.results)
        .filter(|((t, want), r)| &encode_outputs(&r.outcomes, t.start_pos()) != *want)
        .count()
}

fn main() {
    let scale = scale_from_env();
    let targets = bench_workload(scale).targets(SWEEP_TARGETS, 0xFA01);
    let targets = &targets[..];
    let system = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Asynchronous)
        .expect("iracc fits")
        .with_telemetry(true);
    // One warmed oracle serves the clean run and all 12 fault-sweep
    // points below: the memoized entry is the fault-free datapath result,
    // and injected faults only ever mutate the per-attempt clone.
    let cache = OracleCache::from_env();
    let mut oracle =
        cache.load_or_compute("resilience-sweep-iracc", targets, &FpgaParams::iracc(), 1);
    let clean_wall = system.run_with_oracle(targets, &mut oracle).wall_time_s;
    println!(
        "Resilience study ({} targets, 32 async units; fleet sweep at scale {scale})\n",
        targets.len()
    );

    // --- Sweep 1: fault rate × verification sampling rate. ---
    let golden = golden_encodings(targets);
    let fault_rates = [0.0, 1e-4, 1e-3, 1e-2];
    let verify_rates = [0.0, 0.1, 1.0];
    let mut table = Table::new(vec![
        "fault rate",
        "verify",
        "wall overhead",
        "retries",
        "fallbacks",
        "quarantined",
        "lost Mcycles",
        "silent corruptions",
    ]);
    for &rate in &fault_rates {
        for &verify in &verify_rates {
            let mut plan = FaultPlan::seeded(42, FaultRates::uniform(rate));
            let policy = ResiliencePolicy {
                verify_rate: verify,
                // The production default (1 << 26, ~0.5 s at 125 MHz) is
                // sized for full 250 bp genome targets; against the small
                // bench-profile targets it would swamp the overhead
                // column with watchdog waits. ~8 ms keeps the same
                // watchdog-to-target ratio.
                watchdog_cycles: 1 << 20,
                ..ResiliencePolicy::default()
            };
            let run = system.run_resilient_with_oracle(targets, &mut plan, &policy, &mut oracle);
            // The resilience layer publishes its tallies into the
            // telemetry registry; read them from there rather than
            // keeping a parallel set of counters in this binary.
            let tele = run.telemetry.as_ref().expect("telemetry enabled");
            table.row(vec![
                format!("{rate:.0e}"),
                format!("{verify:.1}"),
                format!("{:+.2}%", (run.wall_time_s / clean_wall - 1.0) * 100.0),
                tele.counter("resilience/retries").to_string(),
                tele.counter("resilience/fallbacks").to_string(),
                tele.counter("resilience/quarantined_units").to_string(),
                format!("{:.2}", tele.counter("resilience/lost_cycles") as f64 / 1e6),
                silent_corruptions(targets, &golden, &run).to_string(),
            ]);
        }
    }
    table.emit("resilience_study");
    println!(
        "\nverify 1.0 (the default) checks every read-back against the golden model, so\n\
         its silent-corruption column is structurally zero; lower sampling rates trade\n\
         that guarantee for less host work and let flipped bits through at high fault\n\
         rates. Fallbacks mean the software path finished what the fabric could not —\n\
         every run above completed all targets.\n"
    );

    // --- Sweep 2: spot-market interruptions on the fleet schedule. ---
    // Per-chromosome wall times for one genome on this configuration,
    // scaled up from the bench workload's relative chromosome sizes.
    let chromosomes: Vec<Chromosome> = Chromosome::autosomes().collect();
    let chromosome_s: Vec<f64> = parallel_sweep(&chromosomes, threads_from_env(), |&c| {
        let w = bench_workload(scale).chromosome(c);
        let mut chr_oracle = cache.load_or_compute(
            &format!("bench-{c}-iracc"),
            &w.targets,
            &FpgaParams::iracc(),
            1,
        );
        system
            .run_with_oracle(&w.targets, &mut chr_oracle)
            .wall_time_s
    });
    // The bench workload's seconds are tiny; model genome-scale jobs by
    // stretching to the paper's ~31-minute whole-genome run.
    let stretch = 31.0 * 60.0 / chromosome_s.iter().sum::<f64>();
    let stretched: Vec<f64> = chromosome_s.iter().map(|s| s * stretch).collect();
    let schedule = schedule_jobs(&stretched, 4);
    let mut spot = Table::new(vec![
        "market",
        "checkpoint",
        "interruptions",
        "makespan inflation",
        "cost inflation",
        "vs on-demand",
    ]);
    for (name, market) in [
        ("calm", SpotMarket::calm()),
        ("volatile", SpotMarket::volatile()),
    ] {
        for policy in [CheckpointPolicy::PerChromosome, CheckpointPolicy::None] {
            let mut tele = Telemetry::on();
            let run =
                simulate_spot_schedule_traced(&stretched, &schedule, &market, policy, 7, &mut tele);
            let snapshot = tele.finish().expect("telemetry on");
            spot.row(vec![
                name.to_string(),
                format!("{policy:?}"),
                snapshot.counter("fleet/interruptions").to_string(),
                format!("{:.2}×", run.makespan_inflation),
                format!("{:.2}×", run.cost_inflation),
                format!("{:.2}×", run.cost_vs_on_demand(&market)),
            ]);
        }
    }
    spot.emit("resilience_study_spot");
    println!(
        "\nspot capacity at ~0.3× the on-demand price absorbs a lot of interruption\n\
         before it stops paying for itself — but only with per-chromosome checkpoints;\n\
         restart-from-scratch burns the discount in redone work once the market churns."
    );
}
