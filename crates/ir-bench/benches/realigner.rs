//! Criterion benchmarks of the full per-target realignment pipeline
//! (the golden software model): grid → scoring → realignment.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use ir_core::{IndelRealigner, PruningMode};
use ir_workloads::{figure4_target, WorkloadConfig, WorkloadGenerator};

fn bench_figure4(c: &mut Criterion) {
    let target = figure4_target();
    c.bench_function("realign_figure4", |b| {
        let realigner = IndelRealigner::new();
        b.iter(|| realigner.realign(black_box(&target)))
    });
}

fn bench_generated_target(c: &mut Criterion) {
    let generator = WorkloadGenerator::new(WorkloadConfig {
        read_len: 62,
        min_consensus_len: 80,
        max_consensus_len: 510,
        ..WorkloadConfig::default()
    });
    let target = generator
        .targets(16, 42)
        .into_iter()
        .max_by_key(|t| t.shape().worst_case_comparisons())
        .expect("sixteen targets");
    let work = target.shape().worst_case_comparisons();

    let mut group = c.benchmark_group("realign_generated_target");
    group.throughput(Throughput::Elements(work));
    group.bench_function("pruned", |b| {
        let realigner = IndelRealigner::with_pruning(PruningMode::On);
        b.iter(|| realigner.realign(black_box(&target)))
    });
    group.bench_function("naive", |b| {
        let realigner = IndelRealigner::with_pruning(PruningMode::Off);
        b.iter(|| realigner.realign(black_box(&target)))
    });
    group.finish();
}

fn bench_parallel_software(c: &mut Criterion) {
    // Real wall-clock thread scaling of the executable software realigner
    // (the GATK3-role implementation) on this machine.
    let generator = WorkloadGenerator::new(WorkloadConfig {
        read_len: 62,
        min_consensus_len: 80,
        max_consensus_len: 510,
        ..WorkloadConfig::default()
    });
    let targets = generator.targets(32, 0x7788);
    let mut group = c.benchmark_group("software_realigner_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| {
                ir_baselines::parallel::realign_parallel(
                    black_box(&targets),
                    threads,
                    IndelRealigner::new(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_figure4,
    bench_generated_target,
    bench_parallel_software
);
criterion_main!(benches);
