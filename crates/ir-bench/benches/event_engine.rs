//! Criterion benchmark of the two simulation backends: the legacy
//! cycle-stepping schedulers vs the `ir-sim` discrete-event engine.
//!
//! The grid covers the workload scales the figure binaries run at
//! (`IR_SCALE` ∈ {1e-4, 1e-3, 5e-3}) and the unit counts the paper's
//! configurations span ({1, 8, 32}). Both backends produce bitwise-
//! identical `SystemRun`s (asserted by `tests/event_parity.rs`); this
//! bench measures the only thing that differs — host wall clock.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ir_bench::bench_workload;
use ir_fpga::{AcceleratedSystem, FpgaParams, Scheduling, SimBackend};
use ir_genome::RealignmentTarget;

/// Target count at a given scale — the same `IR_SCALE` proportionality
/// the telemetry report uses, floored low enough to keep the full grid
/// affordable under the fixed measurement window.
fn grid_targets(scale: f64) -> usize {
    ((25_600.0 * scale).round() as usize).max(32)
}

fn bench_backends(c: &mut Criterion) {
    for scale in [1e-4, 1e-3, 5e-3] {
        let targets: Vec<RealignmentTarget> =
            bench_workload(scale).targets(grid_targets(scale), 0x7E1E);
        let mut group = c.benchmark_group(format!("system_run_scale_{scale:e}"));
        for units in [1usize, 8, 32] {
            let params = FpgaParams {
                num_units: units,
                ..FpgaParams::serial()
            };
            for (backend_name, backend) in [
                ("engine", SimBackend::EventDriven),
                ("legacy", SimBackend::LegacyStepper),
            ] {
                let system = AcceleratedSystem::new(params, Scheduling::Asynchronous)
                    .expect("serial config fits at every unit count")
                    .with_backend(backend);
                group.bench_function(format!("units_{units:02}_{backend_name}"), |b| {
                    b.iter(|| system.run(black_box(&targets)))
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
