//! Criterion microbenchmarks of the weighted-Hamming-distance kernel —
//! the operation the accelerator performs billions of times per target.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ir_core::{calc_whd, calc_whd_bounded};
use ir_fpga::hdc::{run_pair, HdcConfig};
use ir_genome::{Base, Qual, Sequence};

fn sequence(len: usize, salt: usize) -> Sequence {
    (0..len)
        .map(|i| Base::from_index((i * 7 + salt).wrapping_mul(2654435761) >> 8 & 3))
        .collect()
}

fn bench_calc_whd(c: &mut Criterion) {
    let mut group = c.benchmark_group("calc_whd");
    for (m, n) in [(510usize, 62usize), (2048, 250)] {
        let cons = sequence(m, 1);
        let read = sequence(n, 2);
        let quals = Qual::uniform(35, n).unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("full", format!("m{m}_n{n}")),
            &(),
            |b, ()| b.iter(|| calc_whd(black_box(&cons), black_box(&read), black_box(&quals), 17)),
        );
        group.bench_with_input(
            BenchmarkId::new("bounded", format!("m{m}_n{n}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    calc_whd_bounded(
                        black_box(&cons),
                        black_box(&read),
                        black_box(&quals),
                        17,
                        100,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_hdc_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("hdc_pair_scan");
    let (m, n) = (510usize, 62usize);
    let cons = sequence(m, 3);
    // A read sampled from the consensus: realistic pruning behaviour.
    let read = cons.slice(100, 100 + n);
    let quals = Qual::uniform(35, n).unwrap();
    group.throughput(Throughput::Elements(((m - n + 1) * n) as u64));
    for (name, cfg) in [
        ("serial_pruned", HdcConfig::serial()),
        (
            "serial_naive",
            HdcConfig {
                pruning: false,
                ..HdcConfig::serial()
            },
        ),
        ("data_parallel", HdcConfig::data_parallel()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| run_pair(black_box(&cons), black_box(&read), black_box(&quals), cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_calc_whd, bench_hdc_scan);
criterion_main!(benches);
