//! Criterion microbenchmarks of the weighted-Hamming-distance kernel —
//! the operation the accelerator performs billions of times per target.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ir_core::batch::{CandidateBlock, SweepRead};
use ir_core::{calc_whd, calc_whd_bounded, calc_whd_bounded_packed, calc_whd_packed, KernelKind};
use ir_fpga::hdc::{
    run_pair, run_pair_fast_packed, run_pair_fast_packed_with, run_read_sweep, HdcConfig,
};
use ir_genome::{Base, PackedSequence, Qual, Sequence};

fn sequence(len: usize, salt: usize) -> Sequence {
    (0..len)
        .map(|i| Base::from_index((i * 7 + salt).wrapping_mul(2654435761) >> 8 & 3))
        .collect()
}

fn bench_calc_whd(c: &mut Criterion) {
    let mut group = c.benchmark_group("calc_whd");
    for (m, n) in [(510usize, 62usize), (2048, 250)] {
        let cons = sequence(m, 1);
        let read = sequence(n, 2);
        let quals = Qual::uniform(35, n).unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("full", format!("m{m}_n{n}")),
            &(),
            |b, ()| b.iter(|| calc_whd(black_box(&cons), black_box(&read), black_box(&quals), 17)),
        );
        group.bench_with_input(
            BenchmarkId::new("bounded", format!("m{m}_n{n}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    calc_whd_bounded(
                        black_box(&cons),
                        black_box(&read),
                        black_box(&quals),
                        17,
                        100,
                    )
                })
            },
        );
    }
    group.finish();
}

/// Scalar vs SWAR kernel across read lengths, on the two fixture shapes
/// that bracket real workloads: a read sampled from the consensus (sparse
/// mismatches — the common case once candidate haplotypes are decent) and
/// an unrelated read (dense mismatches — the adversarial case where every
/// lane accumulates). Sequences are packed outside the timing loop, which
/// matches deployment: the unit packs each target once and reuses the
/// words across all `m - n + 1` offsets.
fn bench_scalar_vs_packed(c: &mut Criterion) {
    let mut group = c.benchmark_group("whd_scalar_vs_packed");
    for n in [62usize, 100, 250] {
        let m = n + 448;
        let cons = sequence(m, 1);
        let quals = Qual::uniform(35, n).unwrap();
        let sparse = cons.slice(17, 17 + n);
        let dense = sequence(n, 2);
        let packed_cons = PackedSequence::from(&cons);
        for (shape, read) in [("sparse", &sparse), ("dense", &dense)] {
            let packed_read = PackedSequence::from(read);
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("scalar_{shape}"), n),
                &(),
                |b, ()| {
                    b.iter(|| calc_whd(black_box(&cons), black_box(read), black_box(&quals), 17))
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("packed_{shape}"), n),
                &(),
                |b, ()| {
                    b.iter(|| {
                        calc_whd_packed(
                            black_box(&packed_cons),
                            black_box(&packed_read),
                            black_box(&quals),
                            17,
                        )
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("scalar_bounded_{shape}"), n),
                &(),
                |b, ()| {
                    b.iter(|| {
                        calc_whd_bounded(
                            black_box(&cons),
                            black_box(read),
                            black_box(&quals),
                            17,
                            100,
                        )
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("packed_bounded_{shape}"), n),
                &(),
                |b, ()| {
                    b.iter(|| {
                        calc_whd_bounded_packed(
                            black_box(&packed_cons),
                            black_box(&packed_read),
                            black_box(&quals),
                            17,
                            100,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_hdc_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("hdc_pair_scan");
    let (m, n) = (510usize, 62usize);
    let cons = sequence(m, 3);
    // A read sampled from the consensus: realistic pruning behaviour.
    let read = cons.slice(100, 100 + n);
    let quals = Qual::uniform(35, n).unwrap();
    group.throughput(Throughput::Elements(((m - n + 1) * n) as u64));
    for (name, cfg) in [
        ("serial_pruned", HdcConfig::serial()),
        (
            "serial_naive",
            HdcConfig {
                pruning: false,
                ..HdcConfig::serial()
            },
        ),
        ("data_parallel", HdcConfig::data_parallel()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| run_pair(black_box(&cons), black_box(&read), black_box(&quals), cfg))
        });
    }
    // The SWAR jump-to-outcome kernel against the cycle-stepped reference,
    // on the same fixtures (it returns the identical PairRun).
    let packed_cons = PackedSequence::from(&cons);
    let packed_read = PackedSequence::from(&read);
    for (name, cfg) in [
        ("serial_pruned_packed", HdcConfig::serial()),
        ("data_parallel_packed", HdcConfig::data_parallel()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                run_pair_fast_packed(
                    black_box(&packed_cons),
                    black_box(&packed_read),
                    black_box(&quals),
                    cfg,
                )
            })
        });
    }
    group.finish();
}

/// Every runnable kernel (scalar, SWAR, each `std::arch` ISA the host
/// supports) through both execution modes — per-pair scans and the
/// structure-of-arrays batch sweep — on the sparse and dense fixture
/// shapes. This is the acceptance row for the explicit-SIMD engine: on
/// the dense shape the widest SIMD kernel must clear 2x over SWAR.
fn bench_kernel_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_dispatch");
    let (n, candidates) = (250usize, 8usize);
    let m = n + 448;
    let quals = Qual::uniform(35, n).unwrap();
    let cfg = HdcConfig {
        pruning: false,
        ..HdcConfig::data_parallel()
    };
    let cons: Vec<Sequence> = (0..candidates).map(|i| sequence(m, i + 1)).collect();
    let packed_cons: Vec<PackedSequence> = cons.iter().map(PackedSequence::from).collect();
    let block = CandidateBlock::from_packed_rows(&packed_cons);
    // Sparse: a read sampled from one candidate. Dense: an unrelated read.
    let sparse = cons[0].slice(17, 17 + n);
    let dense = sequence(n, 77);
    group.throughput(Throughput::Elements((candidates * (m - n + 1) * n) as u64));
    for (shape, read) in [("sparse", &sparse), ("dense", &dense)] {
        let packed_read = PackedSequence::from(read);
        let sweep_read = SweepRead::new(read.bases(), &quals);
        for kind in KernelKind::available() {
            group.bench_with_input(
                BenchmarkId::new(format!("{kind}_pair"), shape),
                &(),
                |b, ()| {
                    b.iter(|| {
                        for pc in &packed_cons {
                            black_box(run_pair_fast_packed_with(
                                black_box(pc),
                                black_box(&packed_read),
                                black_box(&quals),
                                kind,
                                cfg,
                            ));
                        }
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{kind}_batch"), shape),
                &(),
                |b, ()| {
                    b.iter(|| run_read_sweep(black_box(&block), black_box(&sweep_read), kind, cfg))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_calc_whd,
    bench_scalar_vs_packed,
    bench_hdc_scan,
    bench_kernel_dispatch
);
criterion_main!(benches);
