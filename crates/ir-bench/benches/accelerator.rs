//! Criterion benchmarks of the cycle-level accelerator simulator itself:
//! per-target unit simulation and whole-system scheduling.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ir_fpga::unit::simulate_target;
use ir_fpga::{AcceleratedSystem, FpgaParams, IrUnit, Scheduling};
use ir_workloads::{scheduling_toy_targets, WorkloadConfig, WorkloadGenerator};

fn bench_unit_simulation(c: &mut Criterion) {
    let generator = WorkloadGenerator::new(WorkloadConfig {
        read_len: 62,
        min_consensus_len: 80,
        max_consensus_len: 510,
        ..WorkloadConfig::default()
    });
    let target = generator.targets(1, 7).pop().expect("one target");

    let mut group = c.benchmark_group("unit_simulate_target");
    group.bench_function("serial", |b| {
        let params = FpgaParams::serial();
        b.iter(|| simulate_target(black_box(&target), &params))
    });
    group.bench_function("data_parallel", |b| {
        let params = FpgaParams::iracc();
        b.iter(|| simulate_target(black_box(&target), &params))
    });
    group.finish();
}

fn bench_command_path(c: &mut Criterion) {
    let target = ir_workloads::figure4_target();
    c.bench_function("rocc_command_sequence", |b| {
        b.iter(|| {
            let mut unit = IrUnit::new(0);
            for cmd in IrUnit::command_sequence(black_box(&target), 0) {
                unit.apply(cmd).expect("valid command");
            }
            unit
        })
    });
}

fn bench_system_scheduling(c: &mut Criterion) {
    let targets = scheduling_toy_targets();
    let mut group = c.benchmark_group("system_schedule_toy8");
    for (name, scheduling) in [
        ("synchronous", Scheduling::Synchronous),
        ("asynchronous", Scheduling::Asynchronous),
    ] {
        group.bench_function(name, |b| {
            let system = AcceleratedSystem::new(
                FpgaParams {
                    num_units: 4,
                    ..FpgaParams::serial()
                },
                scheduling,
            )
            .expect("4-unit config fits");
            b.iter(|| system.run(black_box(&targets)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_unit_simulation,
    bench_command_path,
    bench_system_scheduling
);
criterion_main!(benches);
