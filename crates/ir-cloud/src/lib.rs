//! AWS EC2 instance catalogue, pricing and fleet model.
//!
//! The paper's cost methodology (§V-B "Cost Comparison"): "Amazon has
//! priced out AWS EC2 instances proportional to the TCO of running
//! different types of systems, so we can simply use that as the true cost"
//! — run cost = hourly price × wall-clock hours. This crate provides the
//! Table II machine catalogue, that cost arithmetic (Figure 9-right), and
//! a fleet model for scaling the "sea of accelerators" across instances.
//!
//! # Example
//!
//! ```
//! use ir_cloud::{Instance, run_cost_usd};
//!
//! // The paper's headline: Ch1–22 in ~31 minutes for under a dollar.
//! let cost = run_cost_usd(&Instance::f1_2xlarge(), 31.0 * 60.0);
//! assert!(cost < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod fleet;
mod instances;

pub use cost::{cost_efficiency_ratio, gpu_speedup_needed, run_cost_usd, CostedRun};
pub use fleet::{
    schedule_jobs, simulate_spot_schedule, simulate_spot_schedule_traced, CheckpointPolicy,
    FleetPlan, FleetSizing, InterruptionModel, JobSchedule, SpotMarket, SpotRun,
};
pub use instances::{Accelerator, Instance};
