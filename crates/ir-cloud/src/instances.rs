//! The EC2 instance catalogue (paper Table II plus the GPU comparison
//! point).

use serde::Serialize;

/// Attached accelerator hardware, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Accelerator {
    /// No accelerator (plain CPU instance).
    None,
    /// One Xilinx Virtex UltraScale+ VU9P FPGA with 64 GB of DDR4.
    XilinxVu9p,
    /// One NVIDIA V100-class GPU.
    NvidiaV100,
}

/// One EC2 instance type with its 2018-era on-demand price.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Instance {
    /// API name, e.g. `"f1.2xlarge"`.
    pub name: &'static str,
    /// Host CPU description (Table II).
    pub cpu: &'static str,
    /// Hardware threads.
    pub vcpus: usize,
    /// Host memory in GiB.
    pub memory_gib: f64,
    /// Attached accelerator.
    pub accelerator: Accelerator,
    /// On-demand price in dollars per hour at the time of the paper.
    pub price_per_hour_usd: f64,
}

impl Instance {
    /// The f1.2xlarge the accelerated system deploys on: Broadwell host,
    /// one VU9P FPGA, $1.65/h (Table II, §V-B).
    pub fn f1_2xlarge() -> Self {
        Instance {
            name: "f1.2xlarge",
            cpu: "Intel Xeon E5-2686 v4 (Broadwell) 4C/8T, 2.2 GHz",
            vcpus: 8,
            memory_gib: 122.0,
            accelerator: Accelerator::XilinxVu9p,
            price_per_hour_usd: 1.65,
        }
    }

    /// The r3.2xlarge the software baselines run on: Ivy Bridge, 66.5¢/h —
    /// chosen because GATK3 does not scale past 8 threads, making this the
    /// most cost-efficient host for it (Table II, §V-B).
    pub fn r3_2xlarge() -> Self {
        Instance {
            name: "r3.2xlarge",
            cpu: "Intel Xeon E5-2670 v2 (Ivy Bridge) 4C/8T, 2.5 GHz",
            vcpus: 8,
            memory_gib: 61.0,
            accelerator: Accelerator::None,
            price_per_hour_usd: 0.665,
        }
    }

    /// The eight-FPGA f1.16xlarge — the scale-up path for a sea of seas
    /// of accelerators (2017-era on-demand price).
    pub fn f1_16xlarge() -> Self {
        Instance {
            name: "f1.16xlarge",
            cpu: "Intel Xeon E5-2686 v4 (Broadwell) 32C/64T, 2.2 GHz",
            vcpus: 64,
            memory_gib: 976.0,
            accelerator: Accelerator::XilinxVu9p,
            price_per_hour_usd: 13.20,
        }
    }

    /// The single-GPU p3 instance the GPU what-if prices at $3.06/h
    /// (§V-B).
    pub fn p3_2xlarge() -> Self {
        Instance {
            name: "p3.2xlarge",
            cpu: "Intel Xeon E5-2686 v4 (Broadwell) 4C/8T, 2.3 GHz",
            vcpus: 8,
            memory_gib: 61.0,
            accelerator: Accelerator::NvidiaV100,
            price_per_hour_usd: 3.06,
        }
    }

    /// The Table II machine table: the two instances the paper deploys
    /// and measures on.
    pub fn paper_machines() -> [Instance; 2] {
        [Instance::f1_2xlarge(), Instance::r3_2xlarge()]
    }

    /// Whether the instance carries an FPGA.
    pub fn has_fpga(&self) -> bool {
        self.accelerator == Accelerator::XilinxVu9p
    }

    /// Number of FPGAs on the instance (8 on the f1.16xlarge, else 0/1).
    pub fn fpga_count(&self) -> usize {
        match (self.accelerator, self.name) {
            (Accelerator::XilinxVu9p, "f1.16xlarge") => 8,
            (Accelerator::XilinxVu9p, _) => 1,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_prices() {
        assert!((Instance::f1_2xlarge().price_per_hour_usd - 1.65).abs() < 1e-9);
        assert!((Instance::r3_2xlarge().price_per_hour_usd - 0.665).abs() < 1e-9);
        assert!((Instance::p3_2xlarge().price_per_hour_usd - 3.06).abs() < 1e-9);
    }

    #[test]
    fn table2_shapes() {
        let f1 = Instance::f1_2xlarge();
        assert!(f1.has_fpga());
        assert_eq!(f1.vcpus, 8);
        assert!((f1.memory_gib - 122.0).abs() < 1e-9);

        let r3 = Instance::r3_2xlarge();
        assert_eq!(r3.accelerator, Accelerator::None);
        assert!((r3.memory_gib - 61.0).abs() < 1e-9);
    }

    #[test]
    fn f1_costs_more_per_hour_than_r3() {
        // The cost win must come from speed, not from cheaper hardware.
        assert!(
            Instance::f1_2xlarge().price_per_hour_usd
                > 2.0 * Instance::r3_2xlarge().price_per_hour_usd
        );
    }

    #[test]
    fn fpga_counts() {
        assert_eq!(Instance::f1_2xlarge().fpga_count(), 1);
        assert_eq!(Instance::f1_16xlarge().fpga_count(), 8);
        assert_eq!(Instance::r3_2xlarge().fpga_count(), 0);
        // The 8-FPGA box costs exactly 8× the single-FPGA box (AWS's
        // TCO-proportional pricing at the time).
        assert!(
            (Instance::f1_16xlarge().price_per_hour_usd
                - 8.0 * Instance::f1_2xlarge().price_per_hour_usd)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn paper_machines_are_f1_and_r3() {
        let names: Vec<_> = Instance::paper_machines().iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["f1.2xlarge", "r3.2xlarge"]);
    }
}
