//! Run-cost arithmetic (Figure 9-right).

use serde::Serialize;

use crate::instances::Instance;

/// Dollar cost of occupying `instance` for `wall_time_s` seconds.
///
/// EC2 bills per-second for most instances today; the paper's arithmetic
/// (price × hours) is reproduced exactly.
pub fn run_cost_usd(instance: &Instance, wall_time_s: f64) -> f64 {
    instance.price_per_hour_usd * wall_time_s / 3600.0
}

/// A named system's wall time and cost, one bar of Figure 9-right.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CostedRun {
    /// System label (`"GATK3"`, `"ADAM"`, `"IR ACC"`).
    pub system: String,
    /// Instance the system runs on.
    pub instance: Instance,
    /// Wall-clock seconds.
    pub wall_time_s: f64,
}

impl CostedRun {
    /// Creates a costed run.
    pub fn new(system: impl Into<String>, instance: Instance, wall_time_s: f64) -> Self {
        CostedRun {
            system: system.into(),
            instance,
            wall_time_s,
        }
    }

    /// The run's dollar cost.
    pub fn cost_usd(&self) -> f64 {
        run_cost_usd(&self.instance, self.wall_time_s)
    }
}

/// How many times more cost-efficient `fast` is than `slow`
/// (cost ratio; the paper reports IRACC 32× vs GATK3 and 17× vs ADAM).
pub fn cost_efficiency_ratio(slow: &CostedRun, fast: &CostedRun) -> f64 {
    let fast_cost = fast.cost_usd();
    if fast_cost == 0.0 {
        f64::INFINITY
    } else {
        slow.cost_usd() / fast_cost
    }
}

/// Speedup over GATK3 a GPU instance must reach to match the accelerated
/// F1 system's cost-performance: `iracc_speedup × gpu_price / f1_price`.
///
/// With the paper's numbers (≈ 80×, $3.06/h, $1.65/h) this is the quoted
/// 148.36×.
pub fn gpu_speedup_needed(iracc_speedup_over_gatk: f64) -> f64 {
    iracc_speedup_over_gatk * Instance::p3_2xlarge().price_per_hour_usd
        / Instance::f1_2xlarge().price_per_hour_usd
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_gatk3_cost() {
        // 42 hours on the r3.2xlarge ≈ $28 (§I / Figure 9-right).
        let cost = run_cost_usd(&Instance::r3_2xlarge(), 42.0 * 3600.0);
        assert!((cost - 27.93).abs() < 0.1, "cost {cost}");
    }

    #[test]
    fn paper_iracc_cost() {
        // "A little more than 31 minutes ... costs less than $1".
        let cost = run_cost_usd(&Instance::f1_2xlarge(), 31.5 * 60.0);
        assert!(cost < 1.0, "cost {cost}");
        assert!((cost - 0.87).abs() < 0.05, "cost {cost}");
    }

    #[test]
    fn paper_adam_cost() {
        // ADAM: $14.5 on the r3.2xlarge → ≈ 21.8 hours.
        let hours = 14.5 / Instance::r3_2xlarge().price_per_hour_usd;
        assert!((hours - 21.8).abs() < 0.1);
    }

    #[test]
    fn cost_efficiency_paper_ratio() {
        let gatk = CostedRun::new("GATK3", Instance::r3_2xlarge(), 42.0 * 3600.0);
        let iracc = CostedRun::new("IR ACC", Instance::f1_2xlarge(), 31.5 * 60.0);
        let ratio = cost_efficiency_ratio(&gatk, &iracc);
        // Paper: "32× more cost efficient".
        assert!((25.0..=40.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn gpu_needed_speedup_matches_paper() {
        // Paper: a GPU system needs 148.36× over GATK3 at 80× IRACC.
        let needed = gpu_speedup_needed(80.0);
        assert!((needed - 148.36).abs() < 0.1, "needed {needed}");
    }

    #[test]
    fn zero_cost_ratio_is_infinite() {
        let slow = CostedRun::new("a", Instance::r3_2xlarge(), 10.0);
        let fast = CostedRun::new("b", Instance::f1_2xlarge(), 0.0);
        assert!(cost_efficiency_ratio(&slow, &fast).is_infinite());
    }
}
