//! Fleet deployment: scaling the sea of accelerators across instances.
//!
//! The paper's motivation is immense-scale genomics — up to a billion
//! genomes sequenced by 2025. One F1 instance realigns one genome's
//! chromosomes 1–22 in ~31 minutes; this module sizes a fleet of such
//! instances against a target genome throughput and prices it, the
//! capacity-planning exercise an FPGAs-as-a-service operator would run.
//!
//! It also models the cheap-but-flaky way that fleet actually gets
//! bought: spot capacity. [`SpotMarket`] interrupts instances with
//! Poisson arrivals; [`simulate_spot_schedule`] replays a
//! [`JobSchedule`] under those interruptions with or without
//! per-chromosome checkpointing and reports how much makespan and paid
//! instance time inflate — the host-side twin of the on-fabric fault
//! model in `ir-fpga`.

use ir_sim::{EventQueue, SimTime};
use ir_telemetry::{SpanKind, Telemetry, Track};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use crate::cost::run_cost_usd;
use crate::instances::Instance;

/// A sizing request: how many genomes per day the fleet must sustain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FleetSizing {
    /// Genomes to process per day.
    pub genomes_per_day: f64,
    /// Wall-clock seconds one instance needs per genome.
    pub seconds_per_genome: f64,
}

/// A sized and priced fleet.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetPlan {
    /// Instance type used.
    pub instance: Instance,
    /// Instances required (ceiling of the fractional requirement).
    pub instances: usize,
    /// Cost per genome in dollars.
    pub cost_per_genome_usd: f64,
    /// Total fleet cost per day in dollars, assuming full utilization.
    pub cost_per_day_usd: f64,
}

impl FleetSizing {
    /// Sizes a fleet of `instance`s for this demand.
    ///
    /// # Panics
    ///
    /// Panics if either field is non-positive.
    pub fn plan(&self, instance: Instance) -> FleetPlan {
        assert!(self.genomes_per_day > 0.0, "demand must be positive");
        assert!(
            self.seconds_per_genome > 0.0,
            "per-genome time must be positive"
        );
        let genomes_per_instance_day = 86_400.0 / self.seconds_per_genome;
        let instances = (self.genomes_per_day / genomes_per_instance_day).ceil() as usize;
        let cost_per_genome_usd = run_cost_usd(&instance, self.seconds_per_genome);
        let cost_per_day_usd = cost_per_genome_usd * self.genomes_per_day;
        FleetPlan {
            instance,
            instances: instances.max(1),
            cost_per_genome_usd,
            cost_per_day_usd,
        }
    }
}

/// A concrete assignment of jobs (e.g. per-chromosome runs) to instances.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JobSchedule {
    /// Wall-clock seconds until the last instance finishes.
    pub makespan_s: f64,
    /// `assignments[j]` is the instance job `j` runs on.
    pub assignments: Vec<usize>,
    /// Busy seconds per instance.
    pub instance_busy_s: Vec<f64>,
}

impl JobSchedule {
    /// Mean instance utilization over the makespan. `0.0` for degenerate
    /// schedules (no instances, no work, or an infinite makespan).
    pub fn utilization(&self) -> f64 {
        if self.makespan_s == 0.0 || !self.makespan_s.is_finite() || self.instance_busy_s.is_empty()
        {
            return 0.0;
        }
        self.instance_busy_s.iter().sum::<f64>()
            / (self.makespan_s * self.instance_busy_s.len() as f64)
    }

    /// Whether this is the degenerate zero-instance plan for a non-empty
    /// job set (see [`schedule_jobs`]).
    pub fn is_degenerate(&self) -> bool {
        self.instance_busy_s.is_empty() && !self.makespan_s.is_finite()
    }
}

/// Schedules independent jobs across `instances` identical machines with
/// the longest-processing-time greedy rule — how a driver spreads the 22
/// chromosome runs over a small F1 fleet.
///
/// With `instances == 0` the result is the explicit degenerate plan: no
/// assignments, no busy vector, and a makespan of `0.0` when there is no
/// work or `f64::INFINITY` when there is (work that no machine exists to
/// run never finishes). Callers that treat zero instances as a bug can
/// check [`JobSchedule::is_degenerate`].
///
/// # Panics
///
/// Panics if any duration is negative.
pub fn schedule_jobs(durations_s: &[f64], instances: usize) -> JobSchedule {
    assert!(
        durations_s.iter().all(|&d| d >= 0.0),
        "durations must be non-negative"
    );
    if instances == 0 {
        return JobSchedule {
            makespan_s: if durations_s.is_empty() {
                0.0
            } else {
                f64::INFINITY
            },
            assignments: Vec::new(),
            instance_busy_s: Vec::new(),
        };
    }
    let mut order: Vec<usize> = (0..durations_s.len()).collect();
    order.sort_by(|&a, &b| durations_s[b].total_cmp(&durations_s[a]));

    let mut busy = vec![0.0f64; instances];
    let mut assignments = vec![0usize; durations_s.len()];
    for job in order {
        let (instance, _) = busy
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("at least one instance");
        assignments[job] = instance;
        busy[instance] += durations_s[job];
    }
    let makespan_s = busy.iter().cloned().fold(0.0, f64::max);
    JobSchedule {
        makespan_s,
        assignments,
        instance_busy_s: busy,
    }
}

/// Spot-market conditions for running the fleet on interruptible
/// capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SpotMarket {
    /// Mean interruptions per instance-hour (Poisson arrivals, so
    /// interarrival times are exponential).
    pub interruptions_per_hour: f64,
    /// Seconds to obtain a replacement instance and reload the AFI after
    /// an interruption.
    pub restart_overhead_s: f64,
    /// Spot price as a fraction of the on-demand price (AWS F1 spot
    /// historically clears around a third of on-demand).
    pub price_fraction: f64,
}

impl SpotMarket {
    /// A quiet market: roughly one interruption per instance-day.
    pub fn calm() -> Self {
        SpotMarket {
            interruptions_per_hour: 1.0 / 24.0,
            restart_overhead_s: 180.0,
            price_fraction: 0.3,
        }
    }

    /// A churning market: about one interruption per instance-hour.
    pub fn volatile() -> Self {
        SpotMarket {
            interruptions_per_hour: 1.0,
            ..SpotMarket::calm()
        }
    }
}

/// What survives a spot interruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Default)]
pub enum CheckpointPolicy {
    /// Nothing persists: the replacement instance redoes every
    /// chromosome assigned to it from scratch.
    None,
    /// Completed chromosomes are checkpointed to object storage; only
    /// the in-flight chromosome is redone.
    #[default]
    PerChromosome,
}

/// Outcome of replaying a [`JobSchedule`] on spot capacity.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SpotRun {
    /// Wall-clock seconds until the last instance finishes, including
    /// redone work and restart overheads.
    pub makespan_s: f64,
    /// Interruptions suffered across the fleet.
    pub interruptions: u64,
    /// Compute seconds discarded and redone because of interruptions.
    pub lost_work_s: f64,
    /// Restart-overhead seconds paid across the fleet.
    pub overhead_s: f64,
    /// Total instance-seconds billed (active time per instance, summed).
    pub paid_instance_s: f64,
    /// Makespan relative to the interruption-free schedule (`>= 1`).
    pub makespan_inflation: f64,
    /// Billed instance time relative to the interruption-free work total
    /// (`>= 1`) — how much extra capacity interruptions make you buy.
    pub cost_inflation: f64,
}

impl SpotRun {
    /// Spot bill relative to running the same work on on-demand
    /// capacity: values below `1.0` mean spot is still the cheaper buy
    /// despite the redone work.
    pub fn cost_vs_on_demand(&self, market: &SpotMarket) -> f64 {
        self.cost_inflation * market.price_fraction
    }
}

/// One seeded stream of spot-interruption interarrival gaps.
///
/// Both the fleet cost replay here and the serving fleet in `ir-serve`
/// consume spot interruptions; this model is the single source of those
/// draws so the two simulations can never diverge on sampling details.
/// Gaps are exponential with the market's per-second rate, drawn by
/// inverse-CDF from a [`StdRng`] — the same scheme `ir-workloads` uses
/// for Poisson arrivals. A zero rate yields [`f64::INFINITY`] without
/// consuming a draw, so a calm stream stays bit-compatible with code
/// that never sampled at all.
#[derive(Debug, Clone)]
pub struct InterruptionModel {
    rng: StdRng,
    rate_per_s: f64,
}

impl InterruptionModel {
    /// A stream drawing exponential gaps at `interruptions_per_hour`.
    ///
    /// # Panics
    ///
    /// Panics if the rate is negative or non-finite.
    pub fn new(seed: u64, interruptions_per_hour: f64) -> Self {
        assert!(
            interruptions_per_hour >= 0.0 && interruptions_per_hour.is_finite(),
            "interruption rate must be non-negative and finite"
        );
        InterruptionModel {
            rng: StdRng::seed_from_u64(seed),
            rate_per_s: interruptions_per_hour / 3600.0,
        }
    }

    /// A stream matching `market`'s interruption rate.
    pub fn from_market(seed: u64, market: &SpotMarket) -> Self {
        InterruptionModel::new(seed, market.interruptions_per_hour)
    }

    /// The stream's rate in interruptions per second.
    pub fn rate_per_s(&self) -> f64 {
        self.rate_per_s
    }

    /// Seconds until the next interruption. [`f64::INFINITY`] (with no
    /// RNG draw) when the rate is zero.
    pub fn next_gap_s(&mut self) -> f64 {
        if self.rate_per_s > 0.0 {
            let u: f64 = self.rng.random();
            -(1.0 - u).ln() / self.rate_per_s
        } else {
            f64::INFINITY
        }
    }
}

/// Spot-replay events on one instance's [`EventQueue`]. A job completion
/// scheduled for the same instant as an interruption wins the tie
/// (checkpoint-then-interrupt), which the queue encodes as a lower
/// priority; completions scheduled before an interruption landed are
/// invalidated by bumping the restart epoch rather than by queue surgery.
#[derive(Debug, Clone, Copy)]
enum FleetEv {
    /// The in-flight job finishes (valid only if `epoch` is current).
    JobDone { epoch: u64 },
    /// The spot market reclaims the instance.
    Interrupt,
}

const PRIO_JOB_DONE: u64 = 0;
const PRIO_INTERRUPT: u64 = 1;

/// Replays `schedule` (built by [`schedule_jobs`] over `durations_s`)
/// on spot capacity: each instance works through its assigned jobs in
/// longest-first order while seeded exponential interarrivals interrupt
/// it. An interruption discards the in-flight job's progress — and, under
/// [`CheckpointPolicy::None`], everything the instance completed since
/// its last (re)start — then charges [`SpotMarket::restart_overhead_s`]
/// before work resumes.
///
/// Each instance is replayed as a discrete-event simulation on the
/// [`ir_sim`] clock: the only events are job completions and market
/// interruptions, so the makespan costs two queue operations per state
/// change instead of any stepping.
///
/// The same seed, schedule and market reproduce the same run.
///
/// # Panics
///
/// Panics if the schedule's assignments don't match `durations_s`, if an
/// assignment indexes past the instance count, or if the market rate is
/// negative.
pub fn simulate_spot_schedule(
    durations_s: &[f64],
    schedule: &JobSchedule,
    market: &SpotMarket,
    checkpoint: CheckpointPolicy,
    seed: u64,
) -> SpotRun {
    let mut tele = Telemetry::off();
    simulate_spot_schedule_traced(durations_s, schedule, market, checkpoint, seed, &mut tele)
}

/// [`simulate_spot_schedule`] with telemetry: per-instance job and
/// restart spans land on [`Track::Instance`] rows of the tracer and the
/// `fleet/*` counter block tallies interruptions, completed/redone jobs
/// and lost/overhead time. Collection is purely observational — the
/// returned [`SpotRun`] is identical whether `tele` is on or off.
pub fn simulate_spot_schedule_traced(
    durations_s: &[f64],
    schedule: &JobSchedule,
    market: &SpotMarket,
    checkpoint: CheckpointPolicy,
    seed: u64,
    tele: &mut Telemetry,
) -> SpotRun {
    assert_eq!(
        schedule.assignments.len(),
        durations_s.len(),
        "schedule does not cover the job list"
    );
    let instances = schedule.instance_busy_s.len();
    assert!(
        schedule.assignments.iter().all(|&i| i < instances),
        "assignment indexes past the instance count"
    );

    // One shared stream across the whole fleet: instance `i+1` continues
    // where instance `i`'s draws left off, exactly as the pre-model code
    // sampled from its single RNG.
    let mut model = InterruptionModel::from_market(seed, market);
    let mut interruptions = 0u64;
    let mut lost_work_s = 0.0f64;
    let mut overhead_s = 0.0f64;
    let mut paid_instance_s = 0.0f64;
    let mut makespan_s = 0.0f64;

    tele.gauge_max("fleet", "instances", instances as u64);
    tele.gauge_max("fleet", "jobs", durations_s.len() as u64);
    for instance in 0..instances {
        // This instance's queue, longest first (the order LPT filled it);
        // job indices ride along so trace spans can name their job.
        let mut queue: Vec<(usize, f64)> = (0..durations_s.len())
            .filter(|&j| schedule.assignments[j] == instance)
            .map(|j| (j, durations_s[j]))
            .collect();
        queue.sort_by(|a, b| b.1.total_cmp(&a.1));

        let mut clock = 0.0f64;
        let mut next_interrupt = model.next_gap_s();
        let mut job = 0usize;
        let mut done_since_restart = 0.0f64;
        // Without checkpoints, a market whose mean interarrival is far
        // below the queue length may effectively never finish (expected
        // restarts grow as e^{rate × work}); bound the replay and report
        // an infinite makespan instead of spinning.
        let mut restarts_here = 0u64;
        const RESTART_CAP: u64 = 100_000;
        let mut epoch = 0u64;
        let mut events: EventQueue<FleetEv> = EventQueue::new();
        if job < queue.len() {
            events.push(
                SimTime::from_seconds(clock + queue[job].1),
                PRIO_JOB_DONE,
                0,
                FleetEv::JobDone { epoch },
            );
            if next_interrupt.is_finite() {
                events.push(
                    SimTime::from_seconds(next_interrupt),
                    PRIO_INTERRUPT,
                    0,
                    FleetEv::Interrupt,
                );
            }
        }
        while let Some(ev) = events.pop() {
            match ev.msg {
                FleetEv::JobDone { epoch: e } => {
                    if e != epoch {
                        // Superseded by an interruption; the live copy of
                        // this job was rescheduled after the restart.
                        continue;
                    }
                    // The chromosome completes (and checkpoints) first.
                    let (job_idx, remaining) = queue[job];
                    if tele.is_enabled() {
                        tele.span(
                            Track::Instance(instance),
                            SpanKind::Job,
                            &format!("chr job {job_idx}"),
                            Some(job_idx),
                            clock,
                            clock + remaining,
                        );
                    }
                    tele.add("fleet", "jobs_completed", 1);
                    clock += remaining;
                    done_since_restart += remaining;
                    job += 1;
                    if job >= queue.len() {
                        break;
                    }
                    events.push(
                        SimTime::from_seconds(clock + queue[job].1),
                        PRIO_JOB_DONE,
                        0,
                        FleetEv::JobDone { epoch },
                    );
                }
                FleetEv::Interrupt => {
                    interruptions += 1;
                    restarts_here += 1;
                    let job_idx = queue[job].0;
                    let in_flight = next_interrupt - clock;
                    lost_work_s += in_flight;
                    tele.add("fleet", "interruptions", 1);
                    tele.add("fleet", "lost_work_ms", (in_flight * 1e3).round() as u64);
                    if tele.is_enabled() {
                        tele.span(
                            Track::Instance(instance),
                            SpanKind::Job,
                            &format!("chr job {job_idx} (interrupted)"),
                            Some(job_idx),
                            clock,
                            next_interrupt,
                        );
                        tele.span(
                            Track::Instance(instance),
                            SpanKind::Restart,
                            "spot restart",
                            None,
                            next_interrupt,
                            next_interrupt + market.restart_overhead_s,
                        );
                    }
                    if checkpoint == CheckpointPolicy::None {
                        lost_work_s += done_since_restart;
                        tele.add("fleet", "jobs_redone", job as u64);
                        tele.add(
                            "fleet",
                            "lost_work_ms",
                            (done_since_restart * 1e3).round() as u64,
                        );
                        job = 0;
                    }
                    done_since_restart = 0.0;
                    clock = next_interrupt + market.restart_overhead_s;
                    overhead_s += market.restart_overhead_s;
                    tele.add(
                        "fleet",
                        "overhead_ms",
                        (market.restart_overhead_s * 1e3).round() as u64,
                    );
                    next_interrupt = clock + model.next_gap_s();
                    epoch += 1;
                    if restarts_here >= RESTART_CAP {
                        clock = f64::INFINITY;
                        break;
                    }
                    events.push(
                        SimTime::from_seconds(clock + queue[job].1),
                        PRIO_JOB_DONE,
                        0,
                        FleetEv::JobDone { epoch },
                    );
                    events.push(
                        SimTime::from_seconds(next_interrupt),
                        PRIO_INTERRUPT,
                        0,
                        FleetEv::Interrupt,
                    );
                }
            }
        }
        tele.gauge_max("fleet", "restarts_per_instance_hwm", restarts_here);
        paid_instance_s += clock;
        makespan_s = makespan_s.max(clock);
    }

    let clean_work: f64 = durations_s.iter().sum();
    SpotRun {
        makespan_s,
        interruptions,
        lost_work_s,
        overhead_s,
        paid_instance_s,
        makespan_inflation: if schedule.makespan_s > 0.0 {
            makespan_s / schedule.makespan_s
        } else {
            1.0
        },
        cost_inflation: if clean_work > 0.0 {
            paid_instance_s / clean_work
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpt_spreads_chromosome_jobs() {
        // Four jobs on two machines: LPT pairs 8 with 2 and 5 with 4.
        let schedule = schedule_jobs(&[8.0, 5.0, 4.0, 2.0], 2);
        assert!((schedule.makespan_s - 10.0).abs() < 1e-12);
        assert!(schedule.utilization() > 0.9);
        assert_ne!(schedule.assignments[0], schedule.assignments[1]);
    }

    #[test]
    fn single_instance_serializes() {
        let schedule = schedule_jobs(&[1.0, 2.0, 3.0], 1);
        assert!((schedule.makespan_s - 6.0).abs() < 1e-12);
        assert!((schedule.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_instances_than_jobs() {
        let schedule = schedule_jobs(&[5.0, 1.0], 8);
        assert!((schedule.makespan_s - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_jobs_are_free() {
        let schedule = schedule_jobs(&[], 4);
        assert_eq!(schedule.makespan_s, 0.0);
        assert_eq!(schedule.utilization(), 0.0);
    }

    #[test]
    fn zero_instances_yields_the_degenerate_plan() {
        let schedule = schedule_jobs(&[1.0, 2.0], 0);
        assert!(schedule.makespan_s.is_infinite());
        assert!(schedule.assignments.is_empty());
        assert!(schedule.instance_busy_s.is_empty());
        assert!(schedule.is_degenerate());
        assert_eq!(schedule.utilization(), 0.0);

        let empty = schedule_jobs(&[], 0);
        assert_eq!(empty.makespan_s, 0.0);
        assert!(!empty.is_degenerate(), "no work pending means no failure");
        assert_eq!(empty.utilization(), 0.0);
    }

    #[test]
    fn healthy_schedules_are_not_degenerate() {
        assert!(!schedule_jobs(&[1.0, 2.0], 2).is_degenerate());
        assert!(!schedule_jobs(&[], 2).is_degenerate());
    }

    #[test]
    fn interruption_model_reproduces_and_skips_zero_rate_draws() {
        // Same seed, same gaps.
        let mut a = InterruptionModel::new(7, 20.0);
        let mut b = InterruptionModel::from_market(
            7,
            &SpotMarket {
                interruptions_per_hour: 20.0,
                ..SpotMarket::volatile()
            },
        );
        for _ in 0..32 {
            let (ga, gb) = (a.next_gap_s(), b.next_gap_s());
            assert_eq!(ga.to_bits(), gb.to_bits());
            assert!(ga > 0.0 && ga.is_finite());
        }
        // The model pins the exact inverse-CDF draw the pre-model code
        // made inline: -(ln(1 - u)) / lambda on a shared StdRng.
        let mut model = InterruptionModel::new(11, 20.0);
        let mut rng = StdRng::seed_from_u64(11);
        let lambda = 20.0 / 3600.0;
        for _ in 0..8 {
            let u: f64 = rng.random();
            let inline = -(1.0 - u).ln() / lambda;
            assert_eq!(model.next_gap_s().to_bits(), inline.to_bits());
        }
        // Zero rate: infinite gap, no RNG consumption.
        let mut calm = InterruptionModel::new(3, 0.0);
        assert!(calm.next_gap_s().is_infinite());
        assert_eq!(calm.rate_per_s(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_interruption_rate_panics() {
        let _ = InterruptionModel::new(0, -1.0);
    }

    #[test]
    fn quiet_spot_market_changes_nothing() {
        let durations = [8.0, 5.0, 4.0, 2.0];
        let schedule = schedule_jobs(&durations, 2);
        let market = SpotMarket {
            interruptions_per_hour: 0.0,
            ..SpotMarket::calm()
        };
        let run = simulate_spot_schedule(
            &durations,
            &schedule,
            &market,
            CheckpointPolicy::PerChromosome,
            1,
        );
        assert_eq!(run.interruptions, 0);
        assert_eq!(run.lost_work_s, 0.0);
        assert!((run.makespan_s - schedule.makespan_s).abs() < 1e-9);
        assert!((run.makespan_inflation - 1.0).abs() < 1e-9);
        assert!((run.cost_inflation - 1.0).abs() < 1e-9);
        assert!(run.cost_vs_on_demand(&market) < 1.0, "spot stays cheap");
    }

    #[test]
    fn spot_runs_are_reproducible() {
        // 22 chromosome-ish jobs over 4 instances in a churning market.
        let durations: Vec<f64> = (1..=22).map(|c| 60.0 + 10.0 * c as f64).collect();
        let schedule = schedule_jobs(&durations, 4);
        let run = |seed| {
            simulate_spot_schedule(
                &durations,
                &schedule,
                &SpotMarket::volatile(),
                CheckpointPolicy::PerChromosome,
                seed,
            )
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn interruptions_inflate_makespan_and_cost() {
        let durations: Vec<f64> = (1..=22).map(|c| 120.0 + 30.0 * c as f64).collect();
        let schedule = schedule_jobs(&durations, 4);
        // Aggressive market so every seed sees interruptions.
        let market = SpotMarket {
            interruptions_per_hour: 20.0,
            ..SpotMarket::volatile()
        };
        let run = simulate_spot_schedule(
            &durations,
            &schedule,
            &market,
            CheckpointPolicy::PerChromosome,
            3,
        );
        assert!(run.interruptions > 0);
        assert!(run.lost_work_s > 0.0);
        assert!(run.makespan_inflation > 1.0);
        assert!(run.cost_inflation > 1.0);
        assert!(run.makespan_s > schedule.makespan_s);
    }

    #[test]
    fn checkpointing_beats_restarting_from_scratch() {
        let durations: Vec<f64> = (1..=22).map(|c| 120.0 + 30.0 * c as f64).collect();
        let schedule = schedule_jobs(&durations, 4);
        let market = SpotMarket {
            interruptions_per_hour: 20.0,
            ..SpotMarket::volatile()
        };
        let with = simulate_spot_schedule(
            &durations,
            &schedule,
            &market,
            CheckpointPolicy::PerChromosome,
            5,
        );
        let without =
            simulate_spot_schedule(&durations, &schedule, &market, CheckpointPolicy::None, 5);
        assert!(
            without.lost_work_s > with.lost_work_s,
            "scratch restarts {} must lose more than checkpointed {}",
            without.lost_work_s,
            with.lost_work_s
        );
        assert!(without.cost_inflation >= with.cost_inflation);
    }

    #[test]
    fn hopeless_market_reports_infinite_makespan() {
        // Mean interarrival of ~0.36 s against a 3600 s job, no
        // checkpoints: the replay hits the restart cap and gives up.
        let durations = [3600.0];
        let schedule = schedule_jobs(&durations, 1);
        let market = SpotMarket {
            interruptions_per_hour: 10_000.0,
            restart_overhead_s: 1.0,
            price_fraction: 0.3,
        };
        let run = simulate_spot_schedule(&durations, &schedule, &market, CheckpointPolicy::None, 2);
        assert!(run.makespan_s.is_infinite());
    }

    #[test]
    fn traced_spot_run_is_identical_and_records_spans() {
        let durations: Vec<f64> = (1..=22).map(|c| 120.0 + 30.0 * c as f64).collect();
        let schedule = schedule_jobs(&durations, 4);
        let market = SpotMarket {
            interruptions_per_hour: 20.0,
            ..SpotMarket::volatile()
        };
        let plain = simulate_spot_schedule(
            &durations,
            &schedule,
            &market,
            CheckpointPolicy::PerChromosome,
            3,
        );
        let mut tele = Telemetry::on();
        let traced = simulate_spot_schedule_traced(
            &durations,
            &schedule,
            &market,
            CheckpointPolicy::PerChromosome,
            3,
            &mut tele,
        );
        assert_eq!(plain, traced, "telemetry must be purely observational");
        let snapshot = tele.finish().expect("telemetry was on");
        assert_eq!(
            snapshot.counter("fleet/jobs_completed"),
            durations.len() as u64
        );
        assert_eq!(
            snapshot.counter("fleet/interruptions"),
            traced.interruptions
        );
        assert!(snapshot
            .trace
            .events
            .iter()
            .any(|e| matches!(e.track, Track::Instance(_)) && e.kind == SpanKind::Restart));
        assert!(snapshot
            .trace
            .events
            .iter()
            .any(|e| e.kind == SpanKind::Job && e.target.is_some()));
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn mismatched_schedule_panics() {
        let schedule = schedule_jobs(&[1.0, 2.0], 2);
        let _ = simulate_spot_schedule(
            &[1.0],
            &schedule,
            &SpotMarket::calm(),
            CheckpointPolicy::PerChromosome,
            0,
        );
    }

    #[test]
    fn one_instance_covers_light_demand() {
        // ~31 min/genome → ~46 genomes/day/instance.
        let plan = FleetSizing {
            genomes_per_day: 40.0,
            seconds_per_genome: 31.0 * 60.0,
        }
        .plan(Instance::f1_2xlarge());
        assert_eq!(plan.instances, 1);
        assert!(plan.cost_per_genome_usd < 1.0);
    }

    #[test]
    fn fleet_scales_linearly() {
        let small = FleetSizing {
            genomes_per_day: 100.0,
            seconds_per_genome: 1860.0,
        }
        .plan(Instance::f1_2xlarge());
        let big = FleetSizing {
            genomes_per_day: 10_000.0,
            seconds_per_genome: 1860.0,
        }
        .plan(Instance::f1_2xlarge());
        assert_eq!(small.instances, 3);
        assert_eq!(big.instances, 216);
        assert!((big.cost_per_day_usd / small.cost_per_day_usd - 100.0).abs() < 1.0);
    }

    #[test]
    fn software_fleet_costs_an_order_of_magnitude_more() {
        // GATK3: 42 h/genome on r3 vs IRACC: ~31 min on F1.
        let sw = FleetSizing {
            genomes_per_day: 1000.0,
            seconds_per_genome: 42.0 * 3600.0,
        }
        .plan(Instance::r3_2xlarge());
        let hw = FleetSizing {
            genomes_per_day: 1000.0,
            seconds_per_genome: 31.5 * 60.0,
        }
        .plan(Instance::f1_2xlarge());
        assert!(sw.cost_per_day_usd > 25.0 * hw.cost_per_day_usd);
        assert!(sw.instances > 30 * hw.instances);
    }

    #[test]
    #[should_panic(expected = "demand must be positive")]
    fn zero_demand_panics() {
        let _ = FleetSizing {
            genomes_per_day: 0.0,
            seconds_per_genome: 60.0,
        }
        .plan(Instance::f1_2xlarge());
    }
}
