//! Fleet deployment: scaling the sea of accelerators across instances.
//!
//! The paper's motivation is immense-scale genomics — up to a billion
//! genomes sequenced by 2025. One F1 instance realigns one genome's
//! chromosomes 1–22 in ~31 minutes; this module sizes a fleet of such
//! instances against a target genome throughput and prices it, the
//! capacity-planning exercise an FPGAs-as-a-service operator would run.

use serde::Serialize;

use crate::cost::run_cost_usd;
use crate::instances::Instance;

/// A sizing request: how many genomes per day the fleet must sustain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FleetSizing {
    /// Genomes to process per day.
    pub genomes_per_day: f64,
    /// Wall-clock seconds one instance needs per genome.
    pub seconds_per_genome: f64,
}

/// A sized and priced fleet.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetPlan {
    /// Instance type used.
    pub instance: Instance,
    /// Instances required (ceiling of the fractional requirement).
    pub instances: usize,
    /// Cost per genome in dollars.
    pub cost_per_genome_usd: f64,
    /// Total fleet cost per day in dollars, assuming full utilization.
    pub cost_per_day_usd: f64,
}

impl FleetSizing {
    /// Sizes a fleet of `instance`s for this demand.
    ///
    /// # Panics
    ///
    /// Panics if either field is non-positive.
    pub fn plan(&self, instance: Instance) -> FleetPlan {
        assert!(self.genomes_per_day > 0.0, "demand must be positive");
        assert!(
            self.seconds_per_genome > 0.0,
            "per-genome time must be positive"
        );
        let genomes_per_instance_day = 86_400.0 / self.seconds_per_genome;
        let instances = (self.genomes_per_day / genomes_per_instance_day).ceil() as usize;
        let cost_per_genome_usd = run_cost_usd(&instance, self.seconds_per_genome);
        let cost_per_day_usd = cost_per_genome_usd * self.genomes_per_day;
        FleetPlan {
            instance,
            instances: instances.max(1),
            cost_per_genome_usd,
            cost_per_day_usd,
        }
    }
}

/// A concrete assignment of jobs (e.g. per-chromosome runs) to instances.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JobSchedule {
    /// Wall-clock seconds until the last instance finishes.
    pub makespan_s: f64,
    /// `assignments[j]` is the instance job `j` runs on.
    pub assignments: Vec<usize>,
    /// Busy seconds per instance.
    pub instance_busy_s: Vec<f64>,
}

impl JobSchedule {
    /// Mean instance utilization over the makespan.
    pub fn utilization(&self) -> f64 {
        if self.makespan_s == 0.0 || self.instance_busy_s.is_empty() {
            return 0.0;
        }
        self.instance_busy_s.iter().sum::<f64>()
            / (self.makespan_s * self.instance_busy_s.len() as f64)
    }
}

/// Schedules independent jobs across `instances` identical machines with
/// the longest-processing-time greedy rule — how a driver spreads the 22
/// chromosome runs over a small F1 fleet.
///
/// # Panics
///
/// Panics if `instances` is zero or any duration is negative.
pub fn schedule_jobs(durations_s: &[f64], instances: usize) -> JobSchedule {
    assert!(instances > 0, "need at least one instance");
    assert!(
        durations_s.iter().all(|&d| d >= 0.0),
        "durations must be non-negative"
    );
    let mut order: Vec<usize> = (0..durations_s.len()).collect();
    order.sort_by(|&a, &b| durations_s[b].total_cmp(&durations_s[a]));

    let mut busy = vec![0.0f64; instances];
    let mut assignments = vec![0usize; durations_s.len()];
    for job in order {
        let (instance, _) = busy
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("at least one instance");
        assignments[job] = instance;
        busy[instance] += durations_s[job];
    }
    let makespan_s = busy.iter().cloned().fold(0.0, f64::max);
    JobSchedule {
        makespan_s,
        assignments,
        instance_busy_s: busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpt_spreads_chromosome_jobs() {
        // Four jobs on two machines: LPT pairs 8 with 2 and 5 with 4.
        let schedule = schedule_jobs(&[8.0, 5.0, 4.0, 2.0], 2);
        assert!((schedule.makespan_s - 10.0).abs() < 1e-12);
        assert!(schedule.utilization() > 0.9);
        assert_ne!(schedule.assignments[0], schedule.assignments[1]);
    }

    #[test]
    fn single_instance_serializes() {
        let schedule = schedule_jobs(&[1.0, 2.0, 3.0], 1);
        assert!((schedule.makespan_s - 6.0).abs() < 1e-12);
        assert!((schedule.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_instances_than_jobs() {
        let schedule = schedule_jobs(&[5.0, 1.0], 8);
        assert!((schedule.makespan_s - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_jobs_are_free() {
        let schedule = schedule_jobs(&[], 4);
        assert_eq!(schedule.makespan_s, 0.0);
        assert_eq!(schedule.utilization(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn zero_instances_panics() {
        let _ = schedule_jobs(&[1.0], 0);
    }

    #[test]
    fn one_instance_covers_light_demand() {
        // ~31 min/genome → ~46 genomes/day/instance.
        let plan = FleetSizing {
            genomes_per_day: 40.0,
            seconds_per_genome: 31.0 * 60.0,
        }
        .plan(Instance::f1_2xlarge());
        assert_eq!(plan.instances, 1);
        assert!(plan.cost_per_genome_usd < 1.0);
    }

    #[test]
    fn fleet_scales_linearly() {
        let small = FleetSizing {
            genomes_per_day: 100.0,
            seconds_per_genome: 1860.0,
        }
        .plan(Instance::f1_2xlarge());
        let big = FleetSizing {
            genomes_per_day: 10_000.0,
            seconds_per_genome: 1860.0,
        }
        .plan(Instance::f1_2xlarge());
        assert_eq!(small.instances, 3);
        assert_eq!(big.instances, 216);
        assert!((big.cost_per_day_usd / small.cost_per_day_usd - 100.0).abs() < 1.0);
    }

    #[test]
    fn software_fleet_costs_an_order_of_magnitude_more() {
        // GATK3: 42 h/genome on r3 vs IRACC: ~31 min on F1.
        let sw = FleetSizing {
            genomes_per_day: 1000.0,
            seconds_per_genome: 42.0 * 3600.0,
        }
        .plan(Instance::r3_2xlarge());
        let hw = FleetSizing {
            genomes_per_day: 1000.0,
            seconds_per_genome: 31.5 * 60.0,
        }
        .plan(Instance::f1_2xlarge());
        assert!(sw.cost_per_day_usd > 25.0 * hw.cost_per_day_usd);
        assert!(sw.instances > 30 * hw.instances);
    }

    #[test]
    #[should_panic(expected = "demand must be positive")]
    fn zero_demand_panics() {
        let _ = FleetSizing {
            genomes_per_day: 0.0,
            seconds_per_genome: 60.0,
        }
        .plan(Instance::f1_2xlarge());
    }
}
