//! The fuzzer's genome: one [`FuzzInput`] describes everything a
//! differential execution needs — backend parameters, scheduling, an
//! optional fault plan, an optional serve-layer scenario and the targets
//! themselves — with a stable, line-oriented text encoding so cases can be
//! checked into `fuzz/corpus/` and replayed byte-for-byte.
//!
//! # Encoding
//!
//! ```text
//! irfuzz v1
//! params preset=iracc units=32 lanes=32 pruning=1 overhead=2 prune_latency=2
//! scheduling async
//! family long-read
//! fault seed=7 rates=3f50624dd2f1a9fc ... (6 hex f64 bit patterns)
//! serve shards=2 max_batch=32 watermark=256 deadline_ns=500000 arrivals=0,1250,2500
//! fleet nodes=3 vnodes=16 hop_ns=2000
//! ---
//! <ir_genome::tio target payload>
//! ```
//!
//! `family`, `fault`, `serve` and `fleet` lines are optional (an absent
//! `family` means the default short-read germline regime, and absent
//! `fleet` skips the fleet differential stage, which keeps every older
//! corpus case byte-stable). Every `f64` travels as the hex of
//! its bit pattern and every arrival as integer nanoseconds, so decode ∘
//! encode is the identity and no parse ever goes through a lossy decimal
//! round-trip.

use std::fmt::Write as _;

use ir_fpga::{FaultRates, FpgaParams, Scheduling};
use ir_genome::{tio, RealignmentTarget};
use ir_workloads::ShapeFamily;

/// Which paper configuration the backend parameters start from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamsPreset {
    /// [`FpgaParams::serial`] — 1 lane, 400 MHz.
    Serial,
    /// [`FpgaParams::iracc`] — 32 lanes, 250 MHz.
    Iracc,
}

/// Backend parameters as a preset plus the fields the fuzzer mutates.
///
/// Storing the delta rather than a raw [`FpgaParams`] keeps the encoding
/// stable when unrelated parameter fields are added to the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamsSpec {
    /// Base preset supplying clock recipe, DMA shape and latencies.
    pub preset: ParamsPreset,
    /// Realignment units on the fabric.
    pub num_units: usize,
    /// HDC comparison lanes per unit.
    pub lanes: usize,
    /// Computation pruning enabled.
    pub pruning: bool,
    /// Fixed setup cycles per (consensus, read) pair.
    pub pair_overhead_cycles: u64,
}

impl ParamsSpec {
    /// The spec matching [`FpgaParams::iracc`] unchanged.
    pub fn iracc() -> Self {
        ParamsSpec::from_preset(ParamsPreset::Iracc)
    }

    /// The spec matching [`FpgaParams::serial`] unchanged.
    pub fn serial() -> Self {
        ParamsSpec::from_preset(ParamsPreset::Serial)
    }

    fn from_preset(preset: ParamsPreset) -> Self {
        let p = match preset {
            ParamsPreset::Serial => FpgaParams::serial(),
            ParamsPreset::Iracc => FpgaParams::iracc(),
        };
        ParamsSpec {
            preset,
            num_units: p.num_units,
            lanes: p.lanes,
            pruning: p.pruning,
            pair_overhead_cycles: p.pair_overhead_cycles,
        }
    }

    /// Materializes the full [`FpgaParams`].
    pub fn params(&self) -> FpgaParams {
        let base = match self.preset {
            ParamsPreset::Serial => FpgaParams::serial(),
            ParamsPreset::Iracc => FpgaParams::iracc(),
        };
        FpgaParams {
            num_units: self.num_units,
            lanes: self.lanes,
            pruning: self.pruning,
            pair_overhead_cycles: self.pair_overhead_cycles,
            ..base
        }
    }
}

/// Seeded fault injection for the resilient-path stages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// RNG seed of the fault plan.
    pub seed: u64,
    /// Per-site fault probabilities (validated at decode).
    pub rates: FaultRates,
}

/// A serve-layer scenario: pool shape plus the arrival pattern.
///
/// Arrival times are integer nanoseconds; the executor converts them with
/// `ns as f64 * 1e-9`, which is deterministic on every host. Requests are
/// formed by zipping the input's targets with these times, so the list may
/// be longer than the target list (the zip truncates) but never shorter
/// than 1 when present.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSpec {
    /// Worker shards.
    pub shards: usize,
    /// Batcher size cap.
    pub max_batch: usize,
    /// Admission-control watermark.
    pub admission_watermark: usize,
    /// Batcher flush deadline in nanoseconds.
    pub flush_deadline_ns: u64,
    /// Sorted arrival times in nanoseconds, one per request.
    pub arrival_ns: Vec<u64>,
}

/// A fleet-layer scenario on top of a [`ServeSpec`]: topology for the
/// fleet-vs-single-pool differential stage. Only meaningful when the
/// input also carries a serve scenario (the stage is skipped otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetSpec {
    /// Node count for the routing-invariance run (1 exercises only the
    /// byte-parity check).
    pub nodes: usize,
    /// Virtual ring points per node.
    pub vnodes: usize,
    /// Inter-node hop latency in nanoseconds for the multi-node run (the
    /// 1-node parity run always uses zero).
    pub hop_ns: u64,
}

/// One complete fuzz case.
#[derive(Debug, Clone)]
pub struct FuzzInput {
    /// Backend parameters.
    pub params: ParamsSpec,
    /// Scheduling scheme.
    pub scheduling: Scheduling,
    /// Extra kernel knob: prune-verdict latency in blocks (the serial
    /// design closes in 0, the 32-lane adder tree in 2).
    pub prune_latency_blocks: u64,
    /// Workload shape family the targets were drawn from; `None` means
    /// the default short-read germline regime (and encodes to nothing,
    /// keeping pre-family corpus cases byte-stable).
    pub family: Option<ShapeFamily>,
    /// Optional fault injection.
    pub fault: Option<FaultSpec>,
    /// Optional serve-layer scenario.
    pub serve: Option<ServeSpec>,
    /// Optional fleet topology riding on the serve scenario.
    pub fleet: Option<FleetSpec>,
    /// The realignment targets (always at least one).
    pub targets: Vec<RealignmentTarget>,
}

/// A malformed `.case` payload.
#[derive(Debug)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid fuzz case: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn scheduling_name(s: Scheduling) -> &'static str {
    match s {
        Scheduling::Synchronous => "sync",
        Scheduling::SynchronousUnsorted => "sync_unsorted",
        Scheduling::SynchronousByWorstCase => "sync_worst",
        Scheduling::Asynchronous => "async",
    }
}

fn scheduling_from(name: &str) -> Result<Scheduling, DecodeError> {
    Ok(match name {
        "sync" => Scheduling::Synchronous,
        "sync_unsorted" => Scheduling::SynchronousUnsorted,
        "sync_worst" => Scheduling::SynchronousByWorstCase,
        "async" => Scheduling::Asynchronous,
        other => return Err(DecodeError(format!("unknown scheduling {other:?}"))),
    })
}

/// `key=value` lookup in a space-separated token list.
fn field<'a>(tokens: &'a [&str], key: &str) -> Result<&'a str, DecodeError> {
    tokens
        .iter()
        .find_map(|t| t.strip_prefix(key)?.strip_prefix('='))
        .ok_or_else(|| DecodeError(format!("missing field {key}")))
}

fn parse<T: std::str::FromStr>(raw: &str, what: &str) -> Result<T, DecodeError> {
    raw.parse()
        .map_err(|_| DecodeError(format!("bad {what}: {raw:?}")))
}

fn f64_bits(raw: &str) -> Result<f64, DecodeError> {
    let bits = u64::from_str_radix(raw, 16)
        .map_err(|_| DecodeError(format!("bad f64 bit pattern: {raw:?}")))?;
    Ok(f64::from_bits(bits))
}

impl FuzzInput {
    /// Serializes to the stable `.case` text format.
    pub fn encode(&self) -> String {
        let mut out = String::from("irfuzz v1\n");
        let p = &self.params;
        let preset = match p.preset {
            ParamsPreset::Serial => "serial",
            ParamsPreset::Iracc => "iracc",
        };
        let _ = writeln!(
            out,
            "params preset={preset} units={} lanes={} pruning={} overhead={} prune_latency={}",
            p.num_units,
            p.lanes,
            u8::from(p.pruning),
            p.pair_overhead_cycles,
            self.prune_latency_blocks,
        );
        let _ = writeln!(out, "scheduling {}", scheduling_name(self.scheduling));
        if let Some(family) = self.family {
            let _ = writeln!(out, "family {}", family.name());
        }
        if let Some(f) = &self.fault {
            let r = f.rates;
            let _ = writeln!(
                out,
                "fault seed={} rates={:016x} {:016x} {:016x} {:016x} {:016x} {:016x}",
                f.seed,
                r.dma_timeout.to_bits(),
                r.dma_truncation.to_bits(),
                r.response_drop.to_bits(),
                r.response_duplicate.to_bits(),
                r.unit_hang.to_bits(),
                r.output_bit_flip.to_bits(),
            );
        }
        if let Some(s) = &self.serve {
            let arrivals: Vec<String> = s.arrival_ns.iter().map(u64::to_string).collect();
            let _ = writeln!(
                out,
                "serve shards={} max_batch={} watermark={} deadline_ns={} arrivals={}",
                s.shards,
                s.max_batch,
                s.admission_watermark,
                s.flush_deadline_ns,
                arrivals.join(","),
            );
        }
        if let Some(fl) = &self.fleet {
            let _ = writeln!(
                out,
                "fleet nodes={} vnodes={} hop_ns={}",
                fl.nodes, fl.vnodes, fl.hop_ns,
            );
        }
        out.push_str("---\n");
        let mut payload = Vec::new();
        tio::write_targets(&mut payload, &self.targets).expect("Vec<u8> writes are infallible");
        out.push_str(std::str::from_utf8(&payload).expect("tio output is ASCII"));
        out
    }

    /// Parses the `.case` text format.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] naming the offending line or field; fault rates
    /// outside `[0, 1]` and empty target lists are rejected here so every
    /// decoded input is executable.
    pub fn decode(text: &str) -> Result<Self, DecodeError> {
        let mut lines = text.lines();
        match lines.next() {
            Some("irfuzz v1") => {}
            other => return Err(DecodeError(format!("bad magic line {other:?}"))),
        }
        let mut params: Option<ParamsSpec> = None;
        let mut prune_latency_blocks = 0u64;
        let mut scheduling: Option<Scheduling> = None;
        let mut family = None;
        let mut fault = None;
        let mut serve = None;
        let mut fleet = None;
        let mut header_len = "irfuzz v1\n".len();
        for line in lines {
            header_len += line.len() + 1;
            if line == "---" {
                break;
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            match tokens.first().copied() {
                Some("params") => {
                    let preset = match field(&tokens, "preset")? {
                        "serial" => ParamsPreset::Serial,
                        "iracc" => ParamsPreset::Iracc,
                        other => return Err(DecodeError(format!("unknown preset {other:?}"))),
                    };
                    params = Some(ParamsSpec {
                        preset,
                        num_units: parse(field(&tokens, "units")?, "units")?,
                        lanes: parse(field(&tokens, "lanes")?, "lanes")?,
                        pruning: field(&tokens, "pruning")? == "1",
                        pair_overhead_cycles: parse(field(&tokens, "overhead")?, "overhead")?,
                    });
                    prune_latency_blocks =
                        parse(field(&tokens, "prune_latency")?, "prune_latency")?;
                }
                Some("scheduling") => {
                    let name = tokens
                        .get(1)
                        .ok_or_else(|| DecodeError("scheduling line missing value".into()))?;
                    scheduling = Some(scheduling_from(name)?);
                }
                Some("family") => {
                    let name = tokens
                        .get(1)
                        .ok_or_else(|| DecodeError("family line missing value".into()))?;
                    family = Some(name.parse::<ShapeFamily>().map_err(DecodeError)?);
                }
                Some("fault") => {
                    let seed = parse(field(&tokens, "seed")?, "fault seed")?;
                    let at = tokens
                        .iter()
                        .position(|t| t.starts_with("rates="))
                        .ok_or_else(|| DecodeError("fault line missing rates".into()))?;
                    let words: Vec<&str> = std::iter::once(&tokens[at]["rates=".len()..])
                        .chain(tokens[at + 1..].iter().copied())
                        .collect();
                    if words.len() != 6 {
                        return Err(DecodeError(format!(
                            "fault rates need 6 values, got {}",
                            words.len()
                        )));
                    }
                    let rates = FaultRates {
                        dma_timeout: f64_bits(words[0])?,
                        dma_truncation: f64_bits(words[1])?,
                        response_drop: f64_bits(words[2])?,
                        response_duplicate: f64_bits(words[3])?,
                        unit_hang: f64_bits(words[4])?,
                        output_bit_flip: f64_bits(words[5])?,
                    };
                    rates
                        .checked()
                        .map_err(|e| DecodeError(format!("degenerate fault rates: {e}")))?;
                    fault = Some(FaultSpec { seed, rates });
                }
                Some("serve") => {
                    let raw = field(&tokens, "arrivals")?;
                    let arrival_ns = raw
                        .split(',')
                        .map(|t| parse(t, "arrival"))
                        .collect::<Result<Vec<u64>, _>>()?;
                    if arrival_ns.is_empty() {
                        return Err(DecodeError("serve line with no arrivals".into()));
                    }
                    if arrival_ns.windows(2).any(|w| w[0] > w[1]) {
                        return Err(DecodeError("serve arrivals not sorted".into()));
                    }
                    serve = Some(ServeSpec {
                        shards: parse(field(&tokens, "shards")?, "shards")?,
                        max_batch: parse(field(&tokens, "max_batch")?, "max_batch")?,
                        admission_watermark: parse(field(&tokens, "watermark")?, "watermark")?,
                        flush_deadline_ns: parse(field(&tokens, "deadline_ns")?, "deadline_ns")?,
                        arrival_ns,
                    });
                }
                Some("fleet") => {
                    let nodes: usize = parse(field(&tokens, "nodes")?, "nodes")?;
                    let vnodes: usize = parse(field(&tokens, "vnodes")?, "vnodes")?;
                    if nodes == 0 || vnodes == 0 {
                        return Err(DecodeError("fleet needs nodes >= 1 and vnodes >= 1".into()));
                    }
                    fleet = Some(FleetSpec {
                        nodes,
                        vnodes,
                        hop_ns: parse(field(&tokens, "hop_ns")?, "hop_ns")?,
                    });
                }
                Some(other) => {
                    return Err(DecodeError(format!("unknown header line {other:?}")));
                }
                None => {}
            }
        }
        let params = params.ok_or_else(|| DecodeError("missing params line".into()))?;
        let scheduling = scheduling.ok_or_else(|| DecodeError("missing scheduling line".into()))?;
        let payload = &text[header_len.min(text.len())..];
        let targets = tio::read_targets(payload.as_bytes())
            .map_err(|e| DecodeError(format!("target payload: {e}")))?;
        if targets.is_empty() {
            return Err(DecodeError("case has no targets".into()));
        }
        Ok(FuzzInput {
            params,
            scheduling,
            prune_latency_blocks,
            family,
            fault,
            serve,
            fleet,
            targets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_genome::{Qual, Read, Sequence};

    fn tiny_target() -> RealignmentTarget {
        let reference = Sequence::from_ascii(b"ACGTACGTACGT").unwrap();
        let alt = Sequence::from_ascii(b"ACGTACGAACGT").unwrap();
        let read = Read::new(
            "r0",
            Sequence::from_ascii(b"ACGT").unwrap(),
            Qual::uniform(30, 4).unwrap(),
            0,
        )
        .unwrap();
        RealignmentTarget::builder(100)
            .reference(reference)
            .consensus(alt)
            .read(read)
            .build()
            .unwrap()
    }

    fn sample() -> FuzzInput {
        FuzzInput {
            params: ParamsSpec {
                num_units: 3,
                ..ParamsSpec::iracc()
            },
            scheduling: Scheduling::SynchronousUnsorted,
            prune_latency_blocks: 2,
            family: Some(ShapeFamily::Metagenomic),
            fault: Some(FaultSpec {
                seed: 99,
                rates: FaultRates::uniform(0.125),
            }),
            serve: Some(ServeSpec {
                shards: 2,
                max_batch: 4,
                admission_watermark: 16,
                flush_deadline_ns: 250_000,
                arrival_ns: vec![0, 1_000, 2_500],
            }),
            fleet: Some(FleetSpec {
                nodes: 3,
                vnodes: 8,
                hop_ns: 2_000,
            }),
            targets: vec![tiny_target(), tiny_target()],
        }
    }

    #[test]
    fn encode_decode_is_the_identity() {
        let input = sample();
        let text = input.encode();
        let back = FuzzInput::decode(&text).unwrap();
        assert_eq!(back.encode(), text, "decode ∘ encode is stable");
        assert_eq!(back.params, input.params);
        assert_eq!(back.scheduling, input.scheduling);
        assert_eq!(back.family, input.family);
        assert_eq!(back.fault, input.fault);
        assert_eq!(back.serve, input.serve);
        assert_eq!(back.fleet, input.fleet);
        assert_eq!(back.targets, input.targets);
    }

    #[test]
    fn optional_sections_stay_optional() {
        let mut input = sample();
        input.family = None;
        input.fault = None;
        input.serve = None;
        input.fleet = None;
        let text = input.encode();
        assert!(!text.contains("\nfamily "));
        assert!(!text.contains("\nfault "));
        assert!(!text.contains("\nserve "));
        assert!(!text.contains("\nfleet "));
        let back = FuzzInput::decode(&text).unwrap();
        assert!(back.family.is_none() && back.fault.is_none() && back.serve.is_none());
        assert!(back.fleet.is_none());
    }

    #[test]
    fn degenerate_fleet_topologies_are_rejected() {
        let zero_nodes = sample().encode().replace("fleet nodes=3", "fleet nodes=0");
        assert!(FuzzInput::decode(&zero_nodes).is_err());
        let zero_vnodes = sample().encode().replace("vnodes=8", "vnodes=0");
        assert!(FuzzInput::decode(&zero_vnodes).is_err());
    }

    #[test]
    fn every_family_name_roundtrips_in_the_header() {
        for family in ShapeFamily::ALL {
            let mut input = sample();
            input.family = Some(family);
            let back = FuzzInput::decode(&input.encode()).unwrap();
            assert_eq!(back.family, Some(family));
        }
        let mangled = sample()
            .encode()
            .replace("family metagenomic", "family nanopore");
        assert!(FuzzInput::decode(&mangled).is_err());
    }

    #[test]
    fn fault_rates_survive_bitwise() {
        let mut input = sample();
        // A rate with no short decimal representation.
        input.fault = Some(FaultSpec {
            seed: 1,
            rates: FaultRates::uniform(0.1 + 0.2 - 0.2),
        });
        let back = FuzzInput::decode(&input.encode()).unwrap();
        let (a, b) = (input.fault.unwrap().rates, back.fault.unwrap().rates);
        assert_eq!(a.dma_timeout.to_bits(), b.dma_timeout.to_bits());
    }

    #[test]
    fn degenerate_cases_are_rejected() {
        for (mangle, why) in [
            (
                (|t: String| t.replace("irfuzz v1", "irfuzz v0")) as fn(String) -> String,
                "magic",
            ),
            (
                |t| t.replace("scheduling sync_unsorted\n", ""),
                "scheduling",
            ),
            (
                |t| t.replace("arrivals=0,1000,2500", "arrivals=5,1,9"),
                "sorted",
            ),
        ] {
            let text = mangle(sample().encode());
            assert!(FuzzInput::decode(&text).is_err(), "must reject: {why}");
        }
    }

    #[test]
    fn params_spec_materializes_overrides() {
        let spec = ParamsSpec {
            num_units: 7,
            lanes: 1,
            pruning: false,
            ..ParamsSpec::iracc()
        };
        let p = spec.params();
        assert_eq!(p.num_units, 7);
        assert_eq!(p.lanes, 1);
        assert!(!p.pruning);
        // Preset-supplied fields come through untouched.
        assert_eq!(p.cmd_latency_s, FpgaParams::iracc().cmd_latency_s);
    }
}
