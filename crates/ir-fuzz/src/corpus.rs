//! The persisted corpus: `seeds/` (hand-picked or generator-exported
//! starting points) and `discovered/` (minimized divergence reproducers,
//! written by the fuzz loop and replayed as regression tests by
//! `tests/fuzz_replay.rs`).
//!
//! Cases load in sorted filename order so a corpus directory always
//! produces the same starting pool, and discovered entries are named
//! `<sanitized-signature>-<hash8>.case` so one file exists per unique
//! divergence signature across runs.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::input::FuzzInput;
use crate::Fnv;

/// Subdirectory of checked-in starting points.
pub const SEEDS_DIR: &str = "seeds";
/// Subdirectory of minimized divergence reproducers.
pub const DISCOVERED_DIR: &str = "discovered";

/// Loads every `.case` under `dir` (non-recursive), sorted by filename.
/// A missing directory is an empty corpus, not an error.
///
/// # Errors
///
/// I/O failures other than `NotFound`, and decode failures (a corrupt
/// checked-in case should fail loudly, not silently shrink the corpus).
pub fn load_dir(dir: &Path) -> io::Result<Vec<(String, FuzzInput)>> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut names: Vec<String> = Vec::new();
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".case") {
            names.push(name);
        }
    }
    names.sort();
    let mut cases = Vec::with_capacity(names.len());
    for name in names {
        let text = fs::read_to_string(dir.join(&name))?;
        let input = FuzzInput::decode(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{name}: {e}")))?;
        cases.push((name, input));
    }
    Ok(cases)
}

/// Loads the full corpus pool under `root`: `seeds/` first, then
/// `discovered/`, each in sorted filename order.
///
/// # Errors
///
/// As [`load_dir`].
pub fn load_corpus(root: &Path) -> io::Result<Vec<(String, FuzzInput)>> {
    let mut pool = load_dir(&root.join(SEEDS_DIR))?;
    pool.extend(load_dir(&root.join(DISCOVERED_DIR))?);
    Ok(pool)
}

/// The deterministic filename for a divergence signature.
pub fn case_filename(signature: &str) -> String {
    let sanitized: String = signature
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' {
                c
            } else {
                '-'
            }
        })
        .collect();
    let mut h = Fnv::new();
    h.str(signature);
    format!("{}-{:08x}.case", sanitized, h.finish() as u32)
}

/// Persists a minimized reproducer under `root/discovered/`. Returns the
/// path written, or `None` if a case for this signature already exists
/// (the corpus keeps the first minimized form, so replays stay stable).
///
/// # Errors
///
/// Propagates directory-creation and write failures.
pub fn save_discovered(
    root: &Path,
    signature: &str,
    input: &FuzzInput,
) -> io::Result<Option<PathBuf>> {
    let dir = root.join(DISCOVERED_DIR);
    fs::create_dir_all(&dir)?;
    let path = dir.join(case_filename(signature));
    if path.exists() {
        return Ok(None);
    }
    fs::write(&path, input.encode())?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ir-fuzz-corpus-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_roundtrip_in_sorted_order() {
        let root = tmp_root("roundtrip");
        let mut rng = StdRng::seed_from_u64(2);
        let a = generate(&mut rng);
        let b = generate(&mut rng);
        save_discovered(&root, "zz/last", &a).unwrap().unwrap();
        save_discovered(&root, "aa/first", &b).unwrap().unwrap();
        let pool = load_corpus(&root).unwrap();
        assert_eq!(pool.len(), 2);
        assert!(pool[0].0 < pool[1].0, "sorted by filename");
        assert_eq!(pool[0].1.encode(), b.encode());
        assert_eq!(pool[1].1.encode(), a.encode());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn duplicate_signatures_keep_the_first_case() {
        let root = tmp_root("dedup");
        let mut rng = StdRng::seed_from_u64(3);
        let first = generate(&mut rng);
        let second = generate(&mut rng);
        assert!(save_discovered(&root, "kernel/min", &first)
            .unwrap()
            .is_some());
        assert!(
            save_discovered(&root, "kernel/min", &second)
                .unwrap()
                .is_none(),
            "second save for the same signature is a no-op"
        );
        let pool = load_corpus(&root).unwrap();
        assert_eq!(pool.len(), 1);
        assert_eq!(pool[0].1.encode(), first.encode());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_corpus_is_empty() {
        assert!(load_corpus(Path::new("/nonexistent/ir-fuzz"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn filenames_are_deterministic_and_safe() {
        let a = case_filename("engine/event-vs-stepper/wall_time_s");
        assert_eq!(a, case_filename("engine/event-vs-stepper/wall_time_s"));
        assert_ne!(a, case_filename("engine/event-vs-stepper/comparisons"));
        assert!(a.ends_with(".case"));
        assert!(!a.contains('/'), "path separators sanitized: {a}");
    }
}
