//! The differential executor: runs one [`FuzzInput`] through every
//! backend pair in the stack and reports divergences as values.
//!
//! Stages, each independently guarded by `catch_unwind` so a panic in one
//! layer becomes a `panic/<stage>` mismatch instead of killing the fuzz
//! loop:
//!
//! - **kernel** — [`ir_fpga::hdc::run_pair`] (scalar reference) vs
//!   [`ir_fpga::hdc::run_pair_fast_packed`] (the dispatched fast path) on
//!   every (consensus, read) pair, plus every available explicit-SIMD
//!   [`KernelKind`] (AVX2/AVX-512/NEON) differenced against the portable
//!   SWAR kernel on the same pair. The extra backend pairs only add
//!   mismatch checks — the corpus fingerprint hashes the scalar result
//!   exactly as before, so every persisted case replays bitwise-unchanged.
//! - **engine** — the event-driven core vs the legacy cycle stepper,
//!   bitwise across the full [`SystemRun`] including telemetry; plus the
//!   telemetry-transparency contract (enabling telemetry changes no
//!   reported number) and, under a fault spec, the resilient path on both
//!   backends.
//! - **invariants** — cross-cutting telemetry laws: per-unit cycle
//!   conservation, `arbiter5/grants == arbiter32/grants == ddr/beats`,
//!   and `resilience/*` counters mirroring the report.
//! - **serve** — the batched service vs the direct backend per response,
//!   thread-count invariance (1 vs 2 oracle threads), and the `serve/*`
//!   counter contract.
//! - **fleet** — a 1-node zero-hop fleet vs the single-pool service
//!   byte for byte, plus routing conservation and per-request payload
//!   invariance at the input's node count (only for inputs carrying a
//!   `fleet` line, so the pre-fleet corpus keeps its fingerprints).
//!
//! Every stage also feeds a deterministic FNV-1a fingerprint; the fuzz
//! loop uses it as the novelty signal for corpus growth.

use std::panic::{catch_unwind, AssertUnwindSafe};

use ir_fpga::hdc::{run_pair, run_pair_fast_packed, run_pair_fast_packed_with, HdcConfig, PairRun};
use ir_fpga::{AcceleratedSystem, FaultPlan, KernelKind, ResiliencePolicy, SimBackend, SystemRun};
use ir_genome::PackedSequence;
use ir_serve::{
    FaultInjection, FleetConfig, FleetReport, FleetService, RealignService, Request, ServeConfig,
    ServiceReport,
};
use ir_telemetry::PerfCounters;

use crate::input::{FuzzInput, ServeSpec};
use crate::Fnv;

/// One observed divergence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Pipeline stage that diverged (`kernel`, `engine`, `invariant`,
    /// `serve`, `fleet`).
    pub stage: &'static str,
    /// Deduplication key: stage plus the specific contract that broke,
    /// free of case-specific values so re-discoveries collapse.
    pub signature: String,
    /// Human-readable specifics (indices, values) for the report.
    pub detail: String,
}

/// The result of one differential execution.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// FNV-1a digest of everything the run produced — the novelty signal.
    pub fingerprint: u64,
    /// Divergences, in discovery order.
    pub mismatches: Vec<Mismatch>,
}

impl Outcome {
    /// Whether every backend pair agreed and every invariant held.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

fn panic_payload(err: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = err.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = err.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f`, converting a panic into a `panic/<stage>` mismatch.
fn guarded<T>(
    stage: &'static str,
    out: &mut Vec<Mismatch>,
    f: impl FnOnce(&mut Vec<Mismatch>) -> T,
) -> Option<T> {
    let mut local = Vec::new();
    match catch_unwind(AssertUnwindSafe(|| f(&mut local))) {
        Ok(v) => {
            out.append(&mut local);
            Some(v)
        }
        Err(err) => {
            out.append(&mut local);
            out.push(Mismatch {
                stage,
                signature: format!("panic/{stage}"),
                detail: panic_payload(err),
            });
            None
        }
    }
}

fn hash_pair_run(h: &mut Fnv, r: &PairRun) {
    h.u64(r.min.whd);
    h.u64(r.min.offset as u64);
    h.u64(r.cycles);
    h.u64(r.comparisons);
    h.u64(r.offsets_pruned);
}

fn hash_system_run(h: &mut Fnv, run: &SystemRun) {
    h.u64(run.wall_time_s.to_bits());
    h.u64(run.dma_busy_s.to_bits());
    h.u64(run.command_s.to_bits());
    h.u64(run.compute_cycles);
    h.u64(run.comparisons);
    for r in &run.results {
        h.u64(r.best as u64);
        h.u64(r.comparisons);
        h.u64(r.realigned_count() as u64);
    }
    if let Some(t) = &run.telemetry {
        for (k, v) in t.counters.counters() {
            h.str(k);
            h.u64(v);
        }
    }
}

fn hash_report(h: &mut Fnv, report: &ServiceReport) {
    h.u64(report.completed());
    h.u64(report.rejections.len() as u64);
    h.u64(report.batches);
    h.u64(report.makespan_s.to_bits());
    for r in &report.responses {
        h.u64(r.id);
        h.u64(r.completion_s.to_bits());
        h.u64(r.best_consensus as u64);
        h.u64(r.realigned as u64);
    }
}

/// Stage 1: scalar reference kernel vs the dispatched packed kernel on
/// every (consensus, read) pair of every target, plus each explicit-SIMD
/// kernel vs the portable SWAR kernel on the same pair.
fn kernel_stage(input: &FuzzInput, h: &mut Fnv, out: &mut Vec<Mismatch>) {
    let simd_kinds: Vec<KernelKind> = KernelKind::available()
        .into_iter()
        .filter(|k| !matches!(k, KernelKind::Scalar | KernelKind::Swar))
        .collect();
    let cfg = HdcConfig {
        lanes: input.params.lanes,
        pruning: input.params.pruning,
        pair_overhead_cycles: input.params.pair_overhead_cycles,
        prune_latency_blocks: input.prune_latency_blocks,
    };
    for (ti, target) in input.targets.iter().enumerate() {
        for (ci, cons) in target.consensuses().iter().enumerate() {
            let packed_cons = PackedSequence::from_sequence(cons);
            for (ri, read) in target.reads().iter().enumerate() {
                if read.len() > cons.len() {
                    continue; // no alignment offset exists for this pair
                }
                let slow = guarded("kernel", out, |_| {
                    run_pair(cons, read.bases(), read.quals(), cfg)
                });
                let fast = guarded("kernel", out, |_| {
                    let packed_read = PackedSequence::from_sequence(read.bases());
                    run_pair_fast_packed(&packed_cons, &packed_read, read.quals(), cfg)
                });
                let (Some(slow), Some(fast)) = (slow, fast) else {
                    return; // a panicking kernel would panic on every pair
                };
                if slow != fast {
                    let field = if slow.min != fast.min {
                        "min"
                    } else if slow.cycles != fast.cycles {
                        "cycles"
                    } else if slow.comparisons != fast.comparisons {
                        "comparisons"
                    } else {
                        "offsets_pruned"
                    };
                    out.push(Mismatch {
                        stage: "kernel",
                        signature: format!("kernel/packed-vs-scalar/{field}"),
                        detail: format!(
                            "target {ti} consensus {ci} read {ri}: scalar {slow:?} vs packed {fast:?}"
                        ),
                    });
                }
                // SIMD-vs-SWAR backend pairs: extra checks only — the
                // fingerprint below still hashes the scalar result alone.
                if !simd_kinds.is_empty() {
                    let packed_read = PackedSequence::from_sequence(read.bases());
                    let swar = guarded("kernel", out, |_| {
                        run_pair_fast_packed_with(
                            &packed_cons,
                            &packed_read,
                            read.quals(),
                            KernelKind::Swar,
                            cfg,
                        )
                    });
                    if let Some(swar) = swar {
                        for &kind in &simd_kinds {
                            let simd = guarded("kernel", out, |_| {
                                run_pair_fast_packed_with(
                                    &packed_cons,
                                    &packed_read,
                                    read.quals(),
                                    kind,
                                    cfg,
                                )
                            });
                            if let Some(simd) = simd {
                                if simd != swar {
                                    out.push(Mismatch {
                                        stage: "kernel",
                                        signature: format!("kernel/simd-vs-swar/{kind}"),
                                        detail: format!(
                                            "target {ti} consensus {ci} read {ri}: \
                                             {kind} {simd:?} vs swar {swar:?}"
                                        ),
                                    });
                                }
                            }
                        }
                    }
                }
                hash_pair_run(h, &slow);
            }
        }
    }
}

/// Compares two [`SystemRun`]s bitwise, pushing one mismatch per
/// diverging field.
fn diff_runs(a: &SystemRun, b: &SystemRun, contract: &str, out: &mut Vec<Mismatch>) {
    let mut push = |field: &str, detail: String| {
        out.push(Mismatch {
            stage: "engine",
            signature: format!("engine/{contract}/{field}"),
            detail,
        });
    };
    if a.wall_time_s.to_bits() != b.wall_time_s.to_bits() {
        push(
            "wall_time_s",
            format!("{} vs {}", a.wall_time_s, b.wall_time_s),
        );
    }
    if a.dma_busy_s.to_bits() != b.dma_busy_s.to_bits() {
        push(
            "dma_busy_s",
            format!("{} vs {}", a.dma_busy_s, b.dma_busy_s),
        );
    }
    if a.command_s.to_bits() != b.command_s.to_bits() {
        push("command_s", format!("{} vs {}", a.command_s, b.command_s));
    }
    if a.compute_cycles != b.compute_cycles {
        push(
            "compute_cycles",
            format!("{} vs {}", a.compute_cycles, b.compute_cycles),
        );
    }
    if a.comparisons != b.comparisons {
        push(
            "comparisons",
            format!("{} vs {}", a.comparisons, b.comparisons),
        );
    }
    if a.unit_busy_s.len() != b.unit_busy_s.len()
        || a.unit_busy_s
            .iter()
            .zip(&b.unit_busy_s)
            .any(|(x, y)| x.to_bits() != y.to_bits())
    {
        push(
            "unit_busy_s",
            format!("{:?} vs {:?}", a.unit_busy_s, b.unit_busy_s),
        );
    }
    if a.results.len() != b.results.len() {
        push(
            "results_len",
            format!("{} vs {}", a.results.len(), b.results.len()),
        );
    } else {
        for (i, (x, y)) in a.results.iter().zip(&b.results).enumerate() {
            if x.best != y.best || x.outcomes != y.outcomes || x.cycles != y.cycles {
                push("results", format!("target {i}: {x:?} vs {y:?}"));
                break;
            }
        }
    }
    if a.timeline != b.timeline {
        push(
            "timeline",
            format!("{} vs {} events", a.timeline.len(), b.timeline.len()),
        );
    }
    if a.resilience != b.resilience {
        push(
            "resilience",
            format!("{:?} vs {:?}", a.resilience, b.resilience),
        );
    }
    match (&a.telemetry, &b.telemetry) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            if !x.bitwise_eq(y) {
                push("telemetry", "snapshots differ bitwise".to_string());
            }
        }
        _ => push("telemetry_presence", "one side missing".to_string()),
    }
}

/// Telemetry laws that hold for any run: cycle conservation per unit and
/// the arbiter/DDR grant identity.
fn telemetry_invariants(run: &SystemRun, num_units: usize, out: &mut Vec<Mismatch>) {
    let Some(tele) = &run.telemetry else { return };
    for u in 0..num_units {
        let busy = tele.counter(&format!("unit/{u:02}/busy_cycles"));
        let stall = tele.counter(&format!("unit/{u:02}/stall_cycles"));
        let quarantined = tele.counter(&format!("unit/{u:02}/quarantined_cycles"));
        let idle = tele.counter(&format!("unit/{u:02}/idle_cycles"));
        let total = tele.counter(&format!("unit/{u:02}/total_cycles"));
        if busy + stall + quarantined + idle != total {
            out.push(Mismatch {
                stage: "invariant",
                signature: "invariant/unit-cycle-conservation".to_string(),
                detail: format!(
                    "unit {u}: busy {busy} + stall {stall} + quarantined {quarantined} \
                     + idle {idle} != total {total}"
                ),
            });
        }
    }
    let grants5 = tele.counter("arbiter5/grants");
    let grants32 = tele.counter("arbiter32/grants");
    let beats = tele.counter("ddr/beats");
    if grants32 != beats || grants5 != beats {
        out.push(Mismatch {
            stage: "invariant",
            signature: "invariant/arbiter-grants-vs-ddr-beats".to_string(),
            detail: format!("arbiter5 {grants5}, arbiter32 {grants32}, ddr beats {beats}"),
        });
    }
    if let Some(report) = &run.resilience {
        let mut mirror = PerfCounters::default();
        report.record_into(&mut mirror);
        for (key, want) in mirror.counters() {
            let got = tele.counter(key);
            if got != want {
                out.push(Mismatch {
                    stage: "invariant",
                    signature: "invariant/resilience-counter-mirror".to_string(),
                    detail: format!("{key}: telemetry {got} vs report {want}"),
                });
            }
        }
    }
}

fn system(
    input: &FuzzInput,
    backend: SimBackend,
    telemetry: bool,
) -> Result<AcceleratedSystem, ir_fpga::FpgaError> {
    AcceleratedSystem::new(input.params.params(), input.scheduling)
        .map(|s| s.with_backend(backend).with_telemetry(telemetry))
}

/// Stage 2 + 3: engine pair, telemetry transparency, fault parity and
/// telemetry invariants.
fn engine_stage(input: &FuzzInput, h: &mut Fnv, out: &mut Vec<Mismatch>) {
    let num_units = input.params.num_units;
    let engine = match system(input, SimBackend::EventDriven, true) {
        Ok(s) => s,
        Err(e) => {
            // Construction rejections are a legitimate outcome for
            // boundary parameters — but both backends must agree on them.
            h.str(&format!("construct:{e:?}"));
            if let Ok(_legacy) = system(input, SimBackend::LegacyStepper, true) {
                out.push(Mismatch {
                    stage: "engine",
                    signature: "engine/construction-divergence".to_string(),
                    detail: format!("event-driven rejected ({e}) but legacy accepted"),
                });
            }
            return;
        }
    };
    let legacy = match system(input, SimBackend::LegacyStepper, true) {
        Ok(s) => s,
        Err(e) => {
            out.push(Mismatch {
                stage: "engine",
                signature: "engine/construction-divergence".to_string(),
                detail: format!("legacy rejected ({e}) but event-driven accepted"),
            });
            return;
        }
    };

    let run_a = guarded("engine", out, |_| engine.run(&input.targets));
    let run_b = guarded("engine", out, |_| legacy.run(&input.targets));
    if let (Some(run_a), Some(run_b)) = (&run_a, &run_b) {
        diff_runs(run_a, run_b, "event-vs-stepper", out);
        telemetry_invariants(run_a, num_units, out);
        hash_system_run(h, run_a);
    }

    // Telemetry transparency: a telemetry-off run reports the same
    // numbers (minus the snapshot and the trace-derived timeline).
    if let Some(run_a) = &run_a {
        let plain = guarded("engine", out, |_| {
            system(input, SimBackend::EventDriven, false)
                .expect("already constructed once")
                .run(&input.targets)
        });
        if let Some(plain) = plain {
            let mut masked = run_a.clone();
            masked.telemetry = None;
            masked.timeline = plain.timeline.clone();
            diff_runs(&masked, &plain, "telemetry-transparency", out);
        }
    }

    if let Some(fault) = &input.fault {
        let policy = ResiliencePolicy::default();
        let resilient = |sys: &AcceleratedSystem| -> Result<SystemRun, String> {
            let mut plan =
                FaultPlan::try_seeded(fault.seed, fault.rates).map_err(|e| e.to_string())?;
            Ok(sys.run_resilient(&input.targets, &mut plan, &policy))
        };
        let fa = guarded("engine", out, |_| resilient(&engine));
        let fb = guarded("engine", out, |_| resilient(&legacy));
        match (fa, fb) {
            (Some(Ok(fa)), Some(Ok(fb))) => {
                diff_runs(&fa, &fb, "fault-event-vs-stepper", out);
                telemetry_invariants(&fa, num_units, out);
                let report = fa.resilience.as_ref().expect("resilient runs report");
                // The clean run's functional results must survive faults.
                if let Some(clean) = &run_a {
                    let diverged = clean
                        .results
                        .iter()
                        .zip(&fa.results)
                        .position(|(c, f)| c.best != f.best || c.outcomes != f.outcomes);
                    if let Some(i) = diverged {
                        out.push(Mismatch {
                            stage: "engine",
                            signature: "engine/fault-functional-divergence".to_string(),
                            detail: format!(
                                "target {i}: faulty run changed the functional result \
                                 (report: {report:?})"
                            ),
                        });
                    }
                }
                hash_system_run(h, &fa);
            }
            (Some(Err(e)), _) | (_, Some(Err(e))) => {
                out.push(Mismatch {
                    stage: "engine",
                    signature: "engine/fault-plan-rejected".to_string(),
                    detail: e,
                });
            }
            _ => {}
        }
    }
}

fn serve_config(input: &FuzzInput, spec: &ServeSpec, threads: usize) -> ServeConfig {
    ServeConfig {
        shards: spec.shards,
        admission_watermark: spec.admission_watermark,
        max_batch: spec.max_batch,
        flush_deadline_s: spec.flush_deadline_ns as f64 * 1e-9,
        slo_deadline_s: ServeConfig::default().slo_deadline_s,
        params: input.params.params(),
        scheduling: input.scheduling,
        policy: ResiliencePolicy::default(),
        faults: input.fault.map(|f| FaultInjection {
            seed: f.seed,
            rates: f.rates,
        }),
        threads,
        pool: None,
        tenants: None,
    }
}

fn requests(input: &FuzzInput, spec: &ServeSpec) -> Vec<Request> {
    let family = input.family.unwrap_or_default();
    input
        .targets
        .iter()
        .zip(&spec.arrival_ns)
        .enumerate()
        .map(|(i, (t, &ns))| {
            Request::new(i as u64, ns as f64 * 1e-9, t.clone()).with_family(family)
        })
        .collect()
}

fn diff_reports_for(
    stage: &'static str,
    a: &ServiceReport,
    b: &ServiceReport,
    contract: &str,
    out: &mut Vec<Mismatch>,
) {
    let mut push = |field: &str, detail: String| {
        out.push(Mismatch {
            stage,
            signature: format!("{stage}/{contract}/{field}"),
            detail,
        });
    };
    if a.makespan_s.to_bits() != b.makespan_s.to_bits() {
        push(
            "makespan_s",
            format!("{} vs {}", a.makespan_s, b.makespan_s),
        );
    }
    if a.batches != b.batches {
        push("batches", format!("{} vs {}", a.batches, b.batches));
    }
    if a.rejections != b.rejections {
        push(
            "rejections",
            format!("{} vs {}", a.rejections.len(), b.rejections.len()),
        );
    }
    if a.responses.len() != b.responses.len() {
        push(
            "responses_len",
            format!("{} vs {}", a.responses.len(), b.responses.len()),
        );
    } else if let Some((x, y)) = a.responses.iter().zip(&b.responses).find(|(x, y)| {
        x.id != y.id
            || x.completion_s.to_bits() != y.completion_s.to_bits()
            || x.dispatch_s.to_bits() != y.dispatch_s.to_bits()
            || x.shard != y.shard
            || x.batch != y.batch
            || x.best_consensus != y.best_consensus
            || x.realigned != y.realigned
    }) {
        push("responses", format!("{x:?} vs {y:?}"));
    }
    if a.resilience != b.resilience {
        push(
            "resilience",
            format!("{:?} vs {:?}", a.resilience, b.resilience),
        );
    }
    if a.counters != b.counters {
        push("counters", "registries differ".to_string());
    }
}

/// Serve-layer counter contract: the `serve/*` registry agrees with the
/// report's own tallies, and `resilience/*` mirrors the aggregate report.
fn serve_invariants(report: &ServiceReport, faults_on: bool, out: &mut Vec<Mismatch>) {
    let c = &report.counters;
    let checks = [
        ("serve/completed", report.completed()),
        ("serve/rejected", report.rejections.len() as u64),
        ("serve/batches", report.batches),
    ];
    for (key, want) in checks {
        let got = c.counter(key);
        if got != want {
            out.push(Mismatch {
                stage: "serve",
                signature: "serve/counter-contract".to_string(),
                detail: format!("{key}: counter {got} vs report {want}"),
            });
        }
    }
    if faults_on {
        let mut mirror = PerfCounters::default();
        report.resilience.record_into(&mut mirror);
        for (key, want) in mirror.counters() {
            let got = c.counter(key);
            if got != want {
                out.push(Mismatch {
                    stage: "serve",
                    signature: "serve/resilience-counter-mirror".to_string(),
                    detail: format!("{key}: counter {got} vs report {want}"),
                });
            }
        }
    }
}

/// Stage 4: the batched service against the direct backend, plus thread
/// invariance.
fn serve_stage(input: &FuzzInput, h: &mut Fnv, out: &mut Vec<Mismatch>) {
    let Some(spec) = &input.serve else { return };
    let run = |threads: usize| -> Result<ServiceReport, ir_serve::ServeError> {
        let mut service = RealignService::new(serve_config(input, spec, threads))?;
        service.run(requests(input, spec))
    };
    let one = guarded("serve", out, |_| run(1));
    let two = guarded("serve", out, |_| run(2));
    let (Some(one), Some(two)) = (one, two) else {
        return;
    };
    let (one, two) = match (one, two) {
        (Ok(one), Ok(two)) => (one, two),
        (Err(e), _) | (_, Err(e)) => {
            out.push(Mismatch {
                stage: "serve",
                signature: format!("serve/typed-error/{}", error_tag(&e)),
                detail: e.to_string(),
            });
            return;
        }
    };
    diff_reports_for("serve", &one, &two, "threads-1-vs-2", out);
    serve_invariants(&one, input.fault.is_some(), out);

    // Functional parity: every completed response equals the direct
    // backend's answer for that target.
    if let Ok(direct_sys) = AcceleratedSystem::new(input.params.params(), input.scheduling) {
        if let Some(direct) = guarded("serve", out, |_| direct_sys.run(&input.targets)) {
            for r in one.responses_by_id() {
                let want = &direct.results[r.id as usize];
                if r.best_consensus != want.best_consensus()
                    || r.realigned != want.realigned_count()
                {
                    out.push(Mismatch {
                        stage: "serve",
                        signature: "serve/direct-functional-divergence".to_string(),
                        detail: format!(
                            "request {}: serve ({}, {}) vs direct ({}, {})",
                            r.id,
                            r.best_consensus,
                            r.realigned,
                            want.best_consensus(),
                            want.realigned_count()
                        ),
                    });
                    break;
                }
            }
        }
    }
    hash_report(h, &one);
}

/// Stage 5: the fleet against the single pool. A 1-node zero-hop fleet
/// must be *byte-identical* to [`RealignService`]; at the spec's node
/// count the fleet must conserve the request stream (served ∪ shed
/// partitions the offered ids) and keep every response's functional
/// payload equal to the single pool's answer for that id. Fleet data is
/// only hashed for inputs carrying a `fleet` line, so every pre-fleet
/// corpus case keeps its fingerprint.
fn fleet_stage(input: &FuzzInput, h: &mut Fnv, out: &mut Vec<Mismatch>) {
    let Some(fspec) = &input.fleet else { return };
    let Some(spec) = &input.serve else { return };
    let run_fleet = |nodes: usize, hop_s: f64| -> Result<FleetReport, ir_serve::ServeError> {
        let mut fleet = FleetService::new(FleetConfig {
            nodes,
            node: serve_config(input, spec, 1),
            hop_latency_s: hop_s,
            vnodes: fspec.vnodes,
            autoscale: None,
            spot: None,
        })?;
        fleet.run(requests(input, spec))
    };
    let single = guarded("fleet", out, |_| {
        RealignService::new(serve_config(input, spec, 1))?.run(requests(input, spec))
    });
    let parity = guarded("fleet", out, |_| run_fleet(1, 0.0));
    let (Some(single), Some(parity)) = (single, parity) else {
        return;
    };
    let (single, parity) = match (single, parity) {
        (Ok(s), Ok(p)) => (s, p),
        (Err(e), _) | (_, Err(e)) => {
            out.push(Mismatch {
                stage: "fleet",
                signature: format!("fleet/typed-error/{}", error_tag(&e)),
                detail: e.to_string(),
            });
            return;
        }
    };
    diff_reports_for(
        "fleet",
        &parity.node_reports[0],
        &single,
        "1node-vs-single",
        out,
    );

    let offered = requests(input, spec).len() as u64;
    let routed = if fspec.nodes > 1 {
        match guarded("fleet", out, |_| {
            run_fleet(fspec.nodes, fspec.hop_ns as f64 * 1e-9)
        }) {
            Some(Ok(r)) => Some(r),
            Some(Err(e)) => {
                out.push(Mismatch {
                    stage: "fleet",
                    signature: format!("fleet/typed-error/{}", error_tag(&e)),
                    detail: e.to_string(),
                });
                None
            }
            None => None,
        }
    } else {
        None
    };
    if let Some(routed) = &routed {
        // Conservation: served ∪ shed partitions the offered id range.
        let mut ids: Vec<u64> = routed
            .responses_by_id()
            .iter()
            .map(|r| r.id)
            .chain(
                routed
                    .node_reports
                    .iter()
                    .flat_map(|r| r.rejections.iter().map(|x| x.id)),
            )
            .collect();
        ids.sort_unstable();
        let want: Vec<u64> = (0..offered).collect();
        if ids != want {
            out.push(Mismatch {
                stage: "fleet",
                signature: "fleet/routing-conservation".to_string(),
                detail: format!(
                    "{} nodes: served+shed ids {:?} != offered 0..{}",
                    fspec.nodes, ids, offered
                ),
            });
        }
        // Functional routing-invariance: whichever node served a
        // request, the payload matches the single pool's answer.
        for r in routed.responses_by_id() {
            let Some(golden) = single.responses.iter().find(|s| s.id == r.id) else {
                continue; // single pool shed it (admission is topology-local)
            };
            if r.best_consensus != golden.best_consensus || r.realigned != golden.realigned {
                out.push(Mismatch {
                    stage: "fleet",
                    signature: "fleet/routing-functional-divergence".to_string(),
                    detail: format!(
                        "request {}: fleet ({}, {}) vs single ({}, {})",
                        r.id,
                        r.best_consensus,
                        r.realigned,
                        golden.best_consensus,
                        golden.realigned
                    ),
                });
                break;
            }
        }
        // With nothing shed on either side, the response multiset is
        // independent of the node count.
        if single.rejections.is_empty() && routed.rejected() == 0 {
            let fleet_ids: Vec<u64> = routed.responses_by_id().iter().map(|r| r.id).collect();
            let single_ids: Vec<u64> = single.responses_by_id().iter().map(|r| r.id).collect();
            if fleet_ids != single_ids {
                out.push(Mismatch {
                    stage: "fleet",
                    signature: "fleet/routing-multiset-divergence".to_string(),
                    detail: format!(
                        "{} nodes served {:?} but the single pool served {:?}",
                        fspec.nodes, fleet_ids, single_ids
                    ),
                });
            }
        }
    }

    hash_report(h, &parity.node_reports[0]);
    if let Some(routed) = &routed {
        h.u64(routed.completed());
        h.u64(routed.rejected());
        h.u64(routed.batches());
        h.u64(routed.makespan_s.to_bits());
        for (k, v) in routed.counters.counters() {
            h.str(k);
            h.u64(v);
        }
    }
}

fn error_tag(e: &ir_serve::ServeError) -> &'static str {
    use ir_serve::ServeError::*;
    match e {
        InvalidConfig { .. } => "invalid-config",
        Backend(_) => "backend",
        UnsortedArrivals { .. } => "unsorted-arrivals",
        DuplicateArrival { .. } => "duplicate-arrival",
        ShardNotInFlight { .. } => "shard-not-in-flight",
        EmptyBatch { .. } => "empty-batch",
        NoResponses => "no-responses",
        PercentileOutOfRange { .. } => "percentile-out-of-range",
        UndrainedQueue { .. } => "undrained-queue",
        UnknownTenant { .. } => "unknown-tenant",
        NoActiveNodes => "no-active-nodes",
        _ => "other",
    }
}

/// Executes one case through every stage.
pub fn execute(input: &FuzzInput) -> Outcome {
    let mut h = Fnv::new();
    let mut mismatches = Vec::new();
    h.str(&input.encode());
    kernel_stage(input, &mut h, &mut mismatches);
    engine_stage(input, &mut h, &mut mismatches);
    serve_stage(input, &mut h, &mut mismatches);
    fleet_stage(input, &mut h, &mut mismatches);
    Outcome {
        fingerprint: h.finish(),
        mismatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_cases_execute_clean() {
        let mut rng = StdRng::seed_from_u64(21);
        for i in 0..6 {
            let input = generate(&mut rng);
            let outcome = execute(&input);
            assert!(
                outcome.is_clean(),
                "case {i} diverged: {:?}\n{}",
                outcome.mismatches,
                input.encode()
            );
        }
    }

    #[test]
    fn execution_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(4);
        let input = generate(&mut rng);
        let a = execute(&input);
        let b = execute(&input);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.mismatches, b.mismatches);
    }

    #[test]
    fn fingerprints_separate_different_cases() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = execute(&generate(&mut rng));
        let b = execute(&generate(&mut rng));
        assert_ne!(a.fingerprint, b.fingerprint);
    }
}
