//! Automatic input minimization: shrink a divergence-inducing case while
//! preserving the property of interest (usually "still produces the same
//! divergence signature").
//!
//! The algorithm is a bounded ddmin-lite over the input's structure, in
//! decreasing order of expected payoff:
//!
//! 1. drop whole targets (halves, then singles),
//! 2. drop the optional `serve` and `fault` sections,
//! 3. per target: drop reads and alternative consensuses,
//! 4. simplify the backend to a single serial unit.
//!
//! Each candidate is accepted only if the caller's predicate still holds;
//! the predicate budget bounds total work, so minimization of an expensive
//! case can never stall the fuzz loop. The predicate is a plain closure —
//! unit tests drive the minimizer with synthetic predicates, no fuzzing
//! required.

use ir_genome::RealignmentTarget;

use crate::input::FuzzInput;

/// Bounded predicate evaluator.
struct Budget<'a, F> {
    predicate: &'a mut F,
    remaining: usize,
}

impl<F: FnMut(&FuzzInput) -> bool> Budget<'_, F> {
    fn check(&mut self, candidate: &FuzzInput) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        (self.predicate)(candidate)
    }
}

/// Rebuilds one target with a subset of its reads and alt consensuses.
/// Returns `None` if the subset violates target invariants.
fn rebuild(
    target: &RealignmentTarget,
    keep_alt: &[bool],
    keep_read: &[bool],
) -> Option<RealignmentTarget> {
    let alts = target.consensuses()[1..]
        .iter()
        .zip(keep_alt)
        .filter(|(_, &k)| k)
        .map(|(c, _)| c.clone());
    let reads = target
        .reads()
        .iter()
        .zip(keep_read)
        .filter(|(_, &k)| k)
        .map(|(r, _)| r.clone());
    let mut builder = RealignmentTarget::builder(target.start_pos())
        .reference(target.consensuses()[0].clone())
        .consensuses(alts)
        .reads(reads);
    if let Some(chr) = target.chromosome() {
        builder = builder.chromosome(chr);
    }
    builder.build().ok()
}

/// Tries removing list items in ddmin style: first halves, then single
/// items, never leaving fewer than `min_keep` kept. `apply` materializes
/// a candidate from a keep-mask; returns the final keep-mask.
fn shrink_list<F, A>(
    len: usize,
    min_keep: usize,
    budget: &mut Budget<'_, F>,
    mut apply: A,
) -> Vec<bool>
where
    F: FnMut(&FuzzInput) -> bool,
    A: FnMut(&[bool]) -> Option<FuzzInput>,
{
    let mut keep = vec![true; len];
    let kept = |keep: &[bool]| keep.iter().filter(|&&k| k).count();
    // Halves: drop the first half, then the second.
    for half in 0..2 {
        let mut candidate_keep = keep.clone();
        let mid = len / 2;
        for (i, k) in candidate_keep.iter_mut().enumerate() {
            if (half == 0) == (i < mid) {
                *k = false;
            }
        }
        if kept(&candidate_keep) >= min_keep && candidate_keep != keep {
            if let Some(candidate) = apply(&candidate_keep) {
                if budget.check(&candidate) {
                    keep = candidate_keep;
                }
            }
        }
    }
    // Singles.
    for i in 0..len {
        if !keep[i] || kept(&keep) <= min_keep {
            continue;
        }
        let mut candidate_keep = keep.clone();
        candidate_keep[i] = false;
        if let Some(candidate) = apply(&candidate_keep) {
            if budget.check(&candidate) {
                keep = candidate_keep;
            }
        }
    }
    keep
}

/// Minimizes `input` while `still_interesting` holds, spending at most
/// `max_checks` predicate evaluations. The original input is returned
/// unchanged if nothing smaller stays interesting.
pub fn minimize_with<F>(input: &FuzzInput, mut still_interesting: F, max_checks: usize) -> FuzzInput
where
    F: FnMut(&FuzzInput) -> bool,
{
    let mut best = input.clone();
    let mut budget = Budget {
        predicate: &mut still_interesting,
        remaining: max_checks,
    };

    // 1. Whole targets. Serve arrivals are truncated alongside (the
    // executor zips requests, but a tight encoding keeps cases readable).
    let keep = shrink_list(best.targets.len(), 1, &mut budget, |mask| {
        let targets: Vec<RealignmentTarget> = best
            .targets
            .iter()
            .zip(mask)
            .filter(|(_, &k)| k)
            .map(|(t, _)| t.clone())
            .collect();
        if targets.is_empty() {
            return None;
        }
        let mut candidate = best.clone();
        if let Some(serve) = &mut candidate.serve {
            serve.arrival_ns.truncate(targets.len());
        }
        candidate.targets = targets;
        Some(candidate)
    });
    let targets: Vec<RealignmentTarget> = best
        .targets
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(t, _)| t.clone())
        .collect();
    if targets.len() < best.targets.len() {
        if let Some(serve) = &mut best.serve {
            serve.arrival_ns.truncate(targets.len());
        }
        best.targets = targets;
    }

    // 2. Optional sections. The fleet topology goes first (it rides on
    // serve); dropping serve always drops fleet with it.
    if best.fleet.is_some() {
        let mut candidate = best.clone();
        candidate.fleet = None;
        if budget.check(&candidate) {
            best = candidate;
        }
    }
    if best.serve.is_some() {
        let mut candidate = best.clone();
        candidate.serve = None;
        candidate.fleet = None;
        if budget.check(&candidate) {
            best = candidate;
        }
    }
    if best.fault.is_some() {
        let mut candidate = best.clone();
        candidate.fault = None;
        if budget.check(&candidate) {
            best = candidate;
        }
    }

    // 3. Per-target reads and alternative consensuses.
    for ti in 0..best.targets.len() {
        let num_reads = best.targets[ti].num_reads();
        let keep_reads = shrink_list(num_reads, 1, &mut budget, |mask| {
            let all_alts = vec![true; best.targets[ti].num_consensuses() - 1];
            let rebuilt = rebuild(&best.targets[ti], &all_alts, mask)?;
            let mut candidate = best.clone();
            candidate.targets[ti] = rebuilt;
            Some(candidate)
        });
        if keep_reads.iter().any(|&k| !k) {
            let all_alts = vec![true; best.targets[ti].num_consensuses() - 1];
            if let Some(rebuilt) = rebuild(&best.targets[ti], &all_alts, &keep_reads) {
                best.targets[ti] = rebuilt;
            }
        }

        let num_alts = best.targets[ti].num_consensuses() - 1;
        let keep_alts = shrink_list(num_alts, 0, &mut budget, |mask| {
            let all_reads = vec![true; best.targets[ti].num_reads()];
            let rebuilt = rebuild(&best.targets[ti], mask, &all_reads)?;
            let mut candidate = best.clone();
            candidate.targets[ti] = rebuilt;
            Some(candidate)
        });
        if keep_alts.iter().any(|&k| !k) {
            let all_reads = vec![true; best.targets[ti].num_reads()];
            if let Some(rebuilt) = rebuild(&best.targets[ti], &keep_alts, &all_reads) {
                best.targets[ti] = rebuilt;
            }
        }
    }

    // 4. Simplest backend that still reproduces.
    let simple = crate::input::ParamsSpec {
        num_units: 1,
        ..crate::input::ParamsSpec::serial()
    };
    if best.params != simple {
        let mut candidate = best.clone();
        candidate.params = simple;
        if budget.check(&candidate) {
            best = candidate;
        }
    }

    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn multi_target_input() -> FuzzInput {
        let mut rng = StdRng::seed_from_u64(17);
        loop {
            let input = generate(&mut rng);
            if input.targets.len() >= 3 && input.serve.is_some() && input.fault.is_some() {
                return input;
            }
        }
    }

    #[test]
    fn always_interesting_shrinks_to_one_target_and_no_extras() {
        let input = multi_target_input();
        let min = minimize_with(&input, |_| true, 500);
        assert_eq!(min.targets.len(), 1, "everything droppable was dropped");
        assert!(min.serve.is_none());
        assert!(min.fleet.is_none());
        assert!(min.fault.is_none());
        assert_eq!(min.targets[0].num_reads(), 1);
        assert_eq!(min.targets[0].num_consensuses(), 1);
        assert_eq!(min.params.num_units, 1);
    }

    #[test]
    fn never_interesting_returns_the_original() {
        let input = multi_target_input();
        let min = minimize_with(&input, |_| false, 500);
        assert_eq!(min.encode(), input.encode());
    }

    #[test]
    fn predicate_constraints_are_respected() {
        let input = multi_target_input();
        let total_reads = |i: &FuzzInput| {
            i.targets
                .iter()
                .map(RealignmentTarget::num_reads)
                .sum::<usize>()
        };
        let floor = 2.min(total_reads(&input));
        // Interesting ⇔ at least `floor` reads survive in total.
        let min = minimize_with(&input, |c| total_reads(c) >= floor, 500);
        assert!(
            total_reads(&min) >= floor,
            "minimizer never broke the predicate"
        );
        assert!(
            total_reads(&min) <= total_reads(&input),
            "minimizer never grows the input"
        );
    }

    #[test]
    fn budget_zero_changes_nothing() {
        let input = multi_target_input();
        let mut calls = 0usize;
        let min = minimize_with(
            &input,
            |_| {
                calls += 1;
                true
            },
            0,
        );
        assert_eq!(calls, 0, "no predicate calls with an empty budget");
        assert_eq!(min.encode(), input.encode());
    }

    #[test]
    fn serve_arrivals_track_dropped_targets() {
        let input = multi_target_input();
        let min = minimize_with(&input, |c| c.serve.is_some(), 500);
        if let Some(serve) = &min.serve {
            assert!(serve.arrival_ns.len() >= min.targets.len().min(serve.arrival_ns.len()));
            assert!(serve.arrival_ns.len() <= input.serve.as_ref().unwrap().arrival_ns.len());
        }
    }
}
