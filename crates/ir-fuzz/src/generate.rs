//! Seeded adversarial generation and mutation of [`FuzzInput`]s.
//!
//! The generator is menu-driven rather than uniformly random: each draw
//! assembles a case from pathological building blocks the happy-path test
//! suites rarely produce — single-base reads, reads exactly as long as
//! their consensus (one alignment offset), all-`N` sequences, saturated
//! and zero quality strings, max-depth pileups, boundary backend shapes,
//! extreme fault rates and bursty arrival patterns. Everything is driven
//! by one [`StdRng`], so a `(seed, iteration)` pair always reproduces the
//! same case.
//!
//! Generated work is bounded: a case's total worst-case comparison count
//! is capped, so even "maximum pileup" draws stay inside the time budget
//! of a CI smoke run.

use ir_fpga::{FaultRates, Scheduling};
use ir_genome::{Base, Qual, Read, RealignmentTarget, Sequence, MAX_PHRED_SCORE};
use ir_workloads::{ShapeFamily, WorkloadConfig};
use rand::rngs::StdRng;
use rand::Rng;

use crate::input::{FaultSpec, FleetSpec, FuzzInput, ParamsSpec, ServeSpec};

/// Cap on a case's summed worst-case comparisons, keeping single-case
/// execution in the low milliseconds.
const MAX_CASE_COMPARISONS: u64 = 2_000_000;

/// Longest consensus the generator emits (well under the 2048 hardware
/// bound — length extremes cost time without adding new control flow).
const MAX_CONS_LEN: usize = 192;

const SCHEDULINGS: [Scheduling; 4] = [
    Scheduling::Synchronous,
    Scheduling::SynchronousUnsorted,
    Scheduling::SynchronousByWorstCase,
    Scheduling::Asynchronous,
];

fn random_base(rng: &mut StdRng) -> Base {
    match rng.random_range(0..5u32) {
        0 => Base::A,
        1 => Base::C,
        2 => Base::G,
        3 => Base::T,
        _ => Base::N,
    }
}

fn sequence(rng: &mut StdRng, len: usize) -> Sequence {
    // Shape menu: random, all-N, homopolymer, alternating two-base.
    let bases = match rng.random_range(0..4u32) {
        0 => (0..len).map(|_| random_base(rng)).collect(),
        1 => vec![Base::N; len],
        2 => vec![random_base(rng); len],
        _ => {
            let (a, b) = (random_base(rng), random_base(rng));
            (0..len).map(|i| if i % 2 == 0 { a } else { b }).collect()
        }
    };
    Sequence::new(bases)
}

fn quals(rng: &mut StdRng, len: usize) -> Qual {
    // Degenerate quality menu: all-zero, saturated, random, ramp.
    let scores: Vec<u8> = match rng.random_range(0..4u32) {
        0 => vec![0; len],
        1 => vec![MAX_PHRED_SCORE; len],
        2 => (0..len)
            .map(|_| rng.random_range(0..=MAX_PHRED_SCORE as u32) as u8)
            .collect(),
        _ => (0..len)
            .map(|i| (i % (MAX_PHRED_SCORE as usize + 1)) as u8)
            .collect(),
    };
    Qual::from_raw_scores(&scores).expect("scores are in range by construction")
}

/// One adversarial target. `max_reads` caps pileup depth so the overall
/// case budget holds.
fn target(rng: &mut StdRng, max_reads: usize) -> RealignmentTarget {
    let cons_len = match rng.random_range(0..4u32) {
        0 => 1,
        1 => rng.random_range(2..16),
        2 => rng.random_range(16..64),
        _ => rng.random_range(64..=MAX_CONS_LEN),
    };
    let num_alts = rng.random_range(0..4usize);
    let reference = sequence(rng, cons_len);
    let alts: Vec<Sequence> = (0..num_alts)
        .map(|_| {
            // Alternative consensuses may be longer than the reference but
            // never shorter than the longest read we will emit.
            let len = rng.random_range(cons_len..=(cons_len + 8).min(MAX_CONS_LEN));
            sequence(rng, len)
        })
        .collect();
    let num_reads = match rng.random_range(0..3u32) {
        0 => 1,
        1 => rng.random_range(2..8usize).min(max_reads.max(1)),
        _ => max_reads.max(1), // max-depth pileup
    };
    let reads: Vec<Read> = (0..num_reads)
        .map(|i| {
            // Read-length menu: single base, exactly consensus-length (one
            // alignment offset), or anywhere in between.
            let len = match rng.random_range(0..3u32) {
                0 => 1,
                1 => cons_len,
                _ => rng.random_range(1..=cons_len),
            };
            let offset = rng.random_range(0..cons_len as u64);
            Read::new(format!("f{i}"), sequence(rng, len), quals(rng, len), offset)
                .expect("generated reads are non-empty")
        })
        .collect();
    RealignmentTarget::builder(rng.random_range(0..1_000_000))
        .reference(reference)
        .consensuses(alts)
        .reads(reads)
        .build()
        .expect("generated shapes satisfy hardware limits")
}

fn params(rng: &mut StdRng) -> ParamsSpec {
    let mut spec = if rng.random_bool(0.5) {
        ParamsSpec::iracc()
    } else {
        ParamsSpec::serial()
    };
    // Boundary shapes: a single unit, a couple of units, or the preset's
    // full sea; lanes crossed against the preset; pruning toggled.
    spec.num_units = match rng.random_range(0..3u32) {
        0 => 1,
        1 => rng.random_range(2..8),
        _ => spec.num_units,
    };
    if rng.random_bool(0.3) {
        spec.lanes = if spec.lanes == 1 { 32 } else { 1 };
    }
    if rng.random_bool(0.3) {
        spec.pruning = !spec.pruning;
    }
    if rng.random_bool(0.2) {
        spec.pair_overhead_cycles = rng.random_range(0..5);
    }
    spec
}

fn fault(rng: &mut StdRng) -> Option<FaultSpec> {
    if rng.random_bool(0.5) {
        return None;
    }
    let rates = match rng.random_range(0..4u32) {
        // Extreme: every event at one site fails.
        0 => {
            let mut r = FaultRates::none();
            let p = 1.0;
            match rng.random_range(0..6u32) {
                0 => r.dma_timeout = p,
                1 => r.dma_truncation = p,
                2 => r.response_drop = p,
                3 => r.response_duplicate = p,
                4 => r.unit_hang = p,
                _ => r.output_bit_flip = p,
            }
            r
        }
        // Correlated burst: everything failing hard at once.
        1 => FaultRates::uniform(0.5),
        // The study default.
        2 => FaultRates::default_rates(),
        // Mild uniform pressure.
        _ => FaultRates::uniform(rng.random_range(0.01..0.2)),
    };
    Some(FaultSpec {
        seed: rng.random::<u64>(),
        rates,
    })
}

fn serve(rng: &mut StdRng, requests: usize) -> Option<ServeSpec> {
    if rng.random_bool(0.5) {
        return None;
    }
    let arrival_ns: Vec<u64> = match rng.random_range(0..3u32) {
        // Thundering herd: everything at t = 0.
        0 => vec![0; requests],
        // Uniform spacing.
        1 => {
            let gap = rng.random_range(1..50_000u64);
            (0..requests as u64).map(|i| i * gap).collect()
        }
        // Sorted random jitter.
        _ => {
            let mut t: Vec<u64> = (0..requests)
                .map(|_| rng.random_range(0..2_000_000u64))
                .collect();
            t.sort_unstable();
            t
        }
    };
    Some(ServeSpec {
        shards: rng.random_range(1..4),
        max_batch: [1, 2, 32][rng.random_range(0..3usize)],
        // Watermark 1 forces heavy admission-control rejection.
        admission_watermark: [1, 4, 256][rng.random_range(0..3usize)],
        flush_deadline_ns: [1, 10_000, 500_000][rng.random_range(0..3usize)],
        arrival_ns,
    })
}

/// Fleet topologies only make sense riding on a serve scenario; callers
/// pass `None` for serve-less cases so the RNG draw count stays aligned
/// with what the encoding can express.
fn fleet(rng: &mut StdRng, has_serve: bool) -> Option<FleetSpec> {
    if !has_serve || rng.random_bool(0.6) {
        return None;
    }
    Some(FleetSpec {
        nodes: rng.random_range(1..5),
        vnodes: [1, 4, 16][rng.random_range(0..3usize)],
        // Zero keeps the inline-ingest parity path hot; positive hops
        // exercise the delayed-delivery reroute path.
        hop_ns: [0, 500, 20_000][rng.random_range(0..3usize)],
    })
}

/// A scaled-down realistic generator config for `family`: the family's
/// own error/coverage/consensus statistics, but with the dimensions
/// shrunk far below the shape envelope so a case stays inside the
/// comparison budget (a full-size long-read target alone would cost ~1e9
/// comparisons).
fn mini_config(family: ShapeFamily) -> WorkloadConfig {
    let base = family.profile().config(1e-5);
    match family {
        ShapeFamily::ShortReadGermline => WorkloadConfig {
            read_len: 24,
            min_consensus_len: 32,
            max_consensus_len: 96,
            min_reads: 2,
            max_reads: 8,
            ..base
        },
        ShapeFamily::LongRead => WorkloadConfig {
            read_len: 48,
            min_consensus_len: 64,
            max_consensus_len: 160,
            min_reads: 2,
            max_reads: 4,
            ..base
        },
        ShapeFamily::DeepPanel => WorkloadConfig {
            read_len: 12,
            min_consensus_len: 24,
            max_consensus_len: 64,
            min_reads: 8,
            max_reads: 24,
            ..base
        },
        ShapeFamily::Metagenomic => WorkloadConfig {
            read_len: 12,
            min_consensus_len: 16,
            max_consensus_len: 64,
            min_reads: 2,
            max_reads: 12,
            ..base
        },
    }
}

/// Trims `targets` from the back until the case fits the comparison
/// budget (always keeps at least one target).
fn enforce_budget(targets: &mut Vec<RealignmentTarget>) {
    let mut total = 0u64;
    let mut keep = 0usize;
    for t in targets.iter() {
        total = total.saturating_add(t.shape().worst_case_comparisons());
        if keep > 0 && total > MAX_CASE_COMPARISONS {
            break;
        }
        keep += 1;
    }
    targets.truncate(keep.max(1));
}

/// Draws one fresh adversarial case.
pub fn generate(rng: &mut StdRng) -> FuzzInput {
    let mut family = None;
    let mut targets: Vec<RealignmentTarget> = if rng.random_bool(0.15) {
        // Occasionally a realistic mini-workload, as a sanity anchor —
        // drawn from a uniformly chosen shape family so the serve-layer
        // family routing sees all four regimes.
        let f = ShapeFamily::ALL[rng.random_range(0..ShapeFamily::ALL.len())];
        family = Some(f);
        ir_workloads::WorkloadGenerator::new(mini_config(f))
            .targets(rng.random_range(1..4), rng.random::<u64>())
    } else {
        let n = rng.random_range(1..5usize);
        (0..n).map(|_| target(rng, 24)).collect()
    };
    enforce_budget(&mut targets);
    let requests = targets.len();
    let fault = fault(rng);
    let serve = serve(rng, requests);
    let fleet = fleet(rng, serve.is_some());
    FuzzInput {
        params: params(rng),
        scheduling: SCHEDULINGS[rng.random_range(0..SCHEDULINGS.len())],
        prune_latency_blocks: [0, 1, 2, 5][rng.random_range(0..4usize)],
        family,
        fault,
        serve,
        fleet,
        targets,
    }
}

/// Mutates `input` into a neighbouring case: one structural change per
/// call, always yielding a valid executable input.
pub fn mutate(input: &FuzzInput, rng: &mut StdRng) -> FuzzInput {
    let mut out = input.clone();
    match rng.random_range(0..10u32) {
        0 => out.params = params(rng),
        1 => out.scheduling = SCHEDULINGS[rng.random_range(0..SCHEDULINGS.len())],
        2 => out.prune_latency_blocks = [0, 1, 2, 5][rng.random_range(0..4usize)],
        3 => out.fault = fault(rng),
        4 => {
            out.serve = serve(rng, out.targets.len());
            if out.serve.is_none() {
                out.fleet = None; // topology cannot outlive its traffic
            }
        }
        9 => out.fleet = fleet(rng, out.serve.is_some()),
        8 => {
            // Re-tag the family the serve router sees (targets are
            // unchanged: routing is by tag, not by shape inspection).
            out.family = if rng.random_bool(0.5) {
                Some(ShapeFamily::ALL[rng.random_range(0..ShapeFamily::ALL.len())])
            } else {
                None
            };
        }
        5 => {
            // Duplicate one target (pileup pressure on the schedulers).
            let i = rng.random_range(0..out.targets.len());
            let t = out.targets[i].clone();
            out.targets.push(t);
            enforce_budget(&mut out.targets);
        }
        6 => {
            if out.targets.len() > 1 {
                let i = rng.random_range(0..out.targets.len());
                out.targets.remove(i);
            } else {
                out.targets[0] = target(rng, 24);
            }
        }
        _ => {
            let i = rng.random_range(0..out.targets.len());
            out.targets[i] = target(rng, 24);
            enforce_budget(&mut out.targets);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generation_is_deterministic() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20)
                .map(|_| generate(&mut rng).encode())
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn generated_cases_roundtrip_and_fit_budget() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..40 {
            let input = generate(&mut rng);
            assert!(!input.targets.is_empty());
            let total: u64 = input
                .targets
                .iter()
                .map(|t| t.shape().worst_case_comparisons())
                .sum();
            // One oversized pathological target may exceed the cap alone;
            // multi-target cases must respect it.
            assert!(
                input.targets.len() == 1 || total <= MAX_CASE_COMPARISONS,
                "case blew the budget: {total}"
            );
            let back = FuzzInput::decode(&input.encode()).expect("generated cases encode");
            assert_eq!(back.targets, input.targets);
        }
    }

    #[test]
    fn mutation_is_deterministic_and_valid() {
        let mut rng = StdRng::seed_from_u64(3);
        let base = generate(&mut rng);
        let mutate_all = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20)
                .map(|_| mutate(&base, &mut rng).encode())
                .collect::<Vec<_>>()
        };
        assert_eq!(mutate_all(5), mutate_all(5));
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let m = mutate(&base, &mut rng);
            assert!(!m.targets.is_empty());
            FuzzInput::decode(&m.encode()).expect("mutants stay decodable");
        }
    }
}
