//! Differential greybox fuzzing for the realignment stack.
//!
//! The repository carries several pairs of independently implemented
//! backends that must agree bitwise: the scalar and SWAR WHD kernels, the
//! event-driven engine and the legacy cycle stepper, the batched serving
//! layer and the direct accelerator path, telemetry-on and telemetry-off
//! runs. The proptest suites sample the friendly middle of the input
//! space; this crate hunts the edges.
//!
//! The loop ([`fuzz`]) is a classic greybox cycle, fully deterministic by
//! construction:
//!
//! 1. **Generate or mutate** ([`generate`]) an adversarial [`FuzzInput`]
//!    from a seeded RNG — pathological target shapes, boundary backend
//!    parameters, extreme fault rates, bursty arrival patterns.
//! 2. **Execute** ([`exec::execute`]) the case through every backend pair
//!    and invariant check; divergences come back as values, panics are
//!    caught and tagged.
//! 3. **Novelty feedback**: each outcome's FNV-1a fingerprint feeds a
//!    seen-set; inputs with novel fingerprints join the mutation pool.
//! 4. **Minimize** ([`minimize::minimize_with`]) any divergence down to a
//!    small reproducer and **persist** it ([`corpus`]) under
//!    `fuzz/corpus/discovered/`, where `tests/fuzz_replay.rs` replays it
//!    forever after as a regression test.
//!
//! Determinism contract: [`fuzz`] with equal [`FuzzConfig`]s produces
//! byte-identical [`FuzzReport`]s (pinned by a unit test and the CI
//! `fuzz-smoke` job, which diffs two same-seed runs). The loop reads no
//! clocks, no thread scheduling and no unordered containers; `IR_THREADS`
//! never reaches it — the serve stage pins its own thread counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::io;
use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod corpus;
pub mod exec;
pub mod generate;
pub mod input;
pub mod minimize;

pub use exec::{execute, Mismatch, Outcome};
pub use generate::{generate, mutate};
pub use input::{FaultSpec, FleetSpec, FuzzInput, ParamsPreset, ParamsSpec, ServeSpec};
pub use minimize::minimize_with;

/// FNV-1a 64-bit: the fingerprint hash. `std`'s default hasher is
/// randomly keyed per process, which would destroy replay determinism —
/// this one is fixed for all time.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    /// Folds raw bytes into the digest.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds a `u64` (little-endian) into the digest.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Folds a string into the digest.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

/// Upper bound on the mutation pool; novel inputs beyond it replace a
/// seeded-random slot so the pool stays fresh without growing unboundedly.
const MAX_POOL: usize = 256;

/// Default iteration count, overridable via the `IR_FUZZ_ITERS`
/// environment variable (the same pattern as `IR_PROPTEST_CASES`).
pub const DEFAULT_ITERS: u64 = 32;

/// Reads `IR_FUZZ_ITERS`, falling back to `default` when unset or
/// unparsable.
pub fn iters_from_env(default: u64) -> u64 {
    std::env::var("IR_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Everything that determines a fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master RNG seed.
    pub seed: u64,
    /// Iterations (generated or mutated cases) to execute.
    pub iters: u64,
    /// Corpus root (holding `seeds/` and `discovered/`); `None` runs
    /// fully in memory.
    pub corpus_dir: Option<PathBuf>,
    /// Predicate budget per minimization.
    pub minimize_budget: usize,
}

impl FuzzConfig {
    /// A config with the given seed and iteration count, no corpus.
    pub fn in_memory(seed: u64, iters: u64) -> Self {
        FuzzConfig {
            seed,
            iters,
            corpus_dir: None,
            minimize_budget: 200,
        }
    }
}

/// One unique divergence the run found.
#[derive(Debug, Clone)]
pub struct Discovery {
    /// Deduplication signature (see [`Mismatch::signature`]).
    pub signature: String,
    /// Detail string of the first observation.
    pub detail: String,
    /// The minimized reproducer.
    pub minimized: FuzzInput,
    /// Where it was persisted, when a corpus directory was configured and
    /// no case for this signature existed yet.
    pub saved_to: Option<PathBuf>,
}

/// What a fuzz run did.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Cases executed.
    pub iters: u64,
    /// Cases whose fingerprint was novel (joined the mutation pool).
    pub novel: u64,
    /// Unique outcome fingerprints observed.
    pub fingerprints: BTreeSet<u64>,
    /// Unique divergences, in discovery order.
    pub discoveries: Vec<Discovery>,
}

impl FuzzReport {
    /// Whether every executed case was divergence-free.
    pub fn is_clean(&self) -> bool {
        self.discoveries.is_empty()
    }
}

/// Runs the fuzz loop. Deterministic: equal configs (and equal corpus
/// contents) produce byte-identical reports.
///
/// # Errors
///
/// Corpus I/O failures (loading `seeds/`/`discovered/`, persisting new
/// discoveries). Execution itself never errors — divergences and panics
/// are data.
pub fn fuzz(config: &FuzzConfig) -> io::Result<FuzzReport> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut pool: Vec<FuzzInput> = match &config.corpus_dir {
        Some(root) => corpus::load_corpus(root)?
            .into_iter()
            .map(|(_, input)| input)
            .collect(),
        None => Vec::new(),
    };
    let mut fingerprints = BTreeSet::new();
    let mut seen_signatures = BTreeSet::new();
    let mut discoveries = Vec::new();
    let mut novel = 0u64;

    for _ in 0..config.iters {
        let input = if !pool.is_empty() && rng.random_bool(0.5) {
            let idx = rng.random_range(0..pool.len());
            generate::mutate(&pool[idx], &mut rng)
        } else {
            generate::generate(&mut rng)
        };
        let outcome = exec::execute(&input);

        for mismatch in &outcome.mismatches {
            if !seen_signatures.insert(mismatch.signature.clone()) {
                continue;
            }
            let signature = mismatch.signature.clone();
            let minimized = minimize::minimize_with(
                &input,
                |candidate| {
                    exec::execute(candidate)
                        .mismatches
                        .iter()
                        .any(|m| m.signature == signature)
                },
                config.minimize_budget,
            );
            let saved_to = match &config.corpus_dir {
                Some(root) => corpus::save_discovered(root, &signature, &minimized)?,
                None => None,
            };
            discoveries.push(Discovery {
                signature,
                detail: mismatch.detail.clone(),
                minimized,
                saved_to,
            });
        }

        if fingerprints.insert(outcome.fingerprint) {
            novel += 1;
            if pool.len() < MAX_POOL {
                pool.push(input);
            } else {
                let slot = rng.random_range(0..pool.len());
                pool[slot] = input;
            }
        }
    }

    Ok(FuzzReport {
        iters: config.iters,
        novel,
        fingerprints,
        discoveries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        // The empty digest is the FNV-1a offset basis — pinned, because
        // changing the hash silently re-keys every corpus filename and
        // novelty set.
        assert_eq!(Fnv::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv::new();
        h.str("ir-fuzz");
        h.u64(42);
        let mut again = Fnv::new();
        again.str("ir-fuzz");
        again.u64(42);
        assert_eq!(h.finish(), again.finish());
        let mut other = Fnv::new();
        other.str("ir-fuzz");
        other.u64(43);
        assert_ne!(h.finish(), other.finish());
    }

    #[test]
    fn fuzz_runs_are_deterministic() {
        let iters = iters_from_env(6);
        let run = || fuzz(&FuzzConfig::in_memory(1234, iters)).unwrap();
        let (a, b) = (run(), run());
        assert_eq!(a.novel, b.novel);
        assert_eq!(a.fingerprints, b.fingerprints);
        assert_eq!(a.discoveries.len(), b.discoveries.len());
        for (x, y) in a.discoveries.iter().zip(&b.discoveries) {
            assert_eq!(x.signature, y.signature);
            assert_eq!(x.minimized.encode(), y.minimized.encode());
        }
    }

    #[test]
    fn healthy_stack_fuzzes_clean() {
        let report = fuzz(&FuzzConfig::in_memory(77, iters_from_env(6))).unwrap();
        assert!(
            report.is_clean(),
            "backends diverged: {:?}",
            report
                .discoveries
                .iter()
                .map(|d| (&d.signature, &d.detail))
                .collect::<Vec<_>>()
        );
        assert!(report.novel > 0, "fingerprints feed the pool");
    }

    #[test]
    fn env_iters_fall_back_to_default() {
        // The variable is unset in the test environment unless CI sets it;
        // either way the parse path must not panic.
        let _ = iters_from_env(DEFAULT_ITERS);
    }
}
