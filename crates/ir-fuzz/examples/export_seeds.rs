//! Exports a small, diverse set of generator-drawn seed cases to a
//! corpus directory. This is how `fuzz/corpus/seeds/` was produced:
//!
//! ```text
//! cargo run -p ir-fuzz --example export_seeds -- fuzz/corpus/seeds
//! ```
//!
//! Re-running overwrites the files with identical bytes (the generator
//! and the encoding are both deterministic), so the checked-in seeds can
//! always be regenerated and audited.

use std::path::PathBuf;

use ir_fuzz::{execute, generate, FuzzInput};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("fuzz/corpus/seeds"));
    std::fs::create_dir_all(&dir).expect("create seeds dir");

    // Draw until we have one case per coverage class, so the starting
    // pool touches every stage of the executor.
    let mut rng = StdRng::seed_from_u64(0x5eed);
    let mut picks: Vec<(&str, FuzzInput)> = Vec::new();
    let wants: [(&str, fn(&FuzzInput) -> bool); 5] = [
        ("kernel-only", |i| i.serve.is_none() && i.fault.is_none()),
        ("fault", |i| i.fault.is_some() && i.serve.is_none()),
        ("serve", |i| i.serve.is_some() && i.fault.is_none()),
        ("serve-fault", |i| i.serve.is_some() && i.fault.is_some()),
        ("multi-target", |i| i.targets.len() >= 3),
    ];
    for (tag, want) in wants {
        loop {
            let input = generate(&mut rng);
            if want(&input) && execute(&input).is_clean() {
                picks.push((tag, input));
                break;
            }
        }
    }

    for (i, (tag, input)) in picks.iter().enumerate() {
        let path = dir.join(format!("seed-{i:02}-{tag}.case"));
        std::fs::write(&path, input.encode()).expect("write seed case");
        println!("wrote {}", path.display());
    }
}
