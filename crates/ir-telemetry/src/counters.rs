//! The perf-counter registry: monotonic counters, high-water-mark gauges
//! and fixed-bucket histograms.
//!
//! Keys are `block/name` or `block/<idx>/name` strings (the index is
//! zero-padded to two digits so lexicographic order is numeric order for
//! up to 100 instances — enough for the 32-unit sea). A `BTreeMap` keeps
//! iteration deterministic, which makes the CSV/JSON serializations diff-
//! stable across runs.

use std::collections::BTreeMap;

/// Number of power-of-two histogram buckets. Bucket 0 holds zeros; bucket
/// `i > 0` holds values in `[2^(i-1), 2^i)`; the last bucket is unbounded.
pub const HISTOGRAM_BUCKETS: usize = 24;

/// A fixed-bucket (power-of-two) histogram with count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket observation counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Bucket index for a value.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Inclusive lower bound of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated value at percentile `p` (0–100), or `None` when the
    /// histogram is empty.
    ///
    /// The estimate is the upper edge of the first bucket whose
    /// cumulative count reaches the requested rank, clamped into
    /// `[min, max]`. The clamp is what keeps the edges honest:
    ///
    /// - a single observation reports that exact value at every `p`;
    /// - when every observation landed in the unbounded overflow bucket
    ///   (whose upper edge would be `u64::MAX`), the estimate is `max`
    ///   rather than a bucket bound four orders of magnitude away;
    /// - `p = 0` reports `min` exactly.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        if p == 0.0 {
            return Some(self.min);
        }
        // Nearest-rank: the smallest observation with at least
        // ceil(p/100 * count) observations at or below it.
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let hi = if i + 1 < HISTOGRAM_BUCKETS {
                    Self::bucket_lo(i + 1) - 1
                } else {
                    u64::MAX
                };
                return Some(hi.clamp(self.min, self.max));
            }
        }
        // Unreachable (seen reaches self.count >= rank), but stay total.
        Some(self.max)
    }
}

/// The registry: three deterministic maps.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfCounters {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl PerfCounters {
    /// Builds the canonical `block[/idx]/name` key.
    pub fn key(block: &str, idx: Option<usize>, name: &str) -> String {
        match idx {
            Some(i) => format!("{block}/{i:02}/{name}"),
            None => format!("{block}/{name}"),
        }
    }

    /// Adds `n` to a counter (created at zero on first touch).
    pub fn add(&mut self, key: &str, n: u64) {
        if let Some(v) = self.counters.get_mut(key) {
            *v += n;
        } else {
            self.counters.insert(key.to_string(), n);
        }
    }

    /// Sets a counter to an absolute value (used when folding an external
    /// tally such as a `ResilienceReport` into the registry).
    pub fn set(&mut self, key: &str, v: u64) {
        self.counters.insert(key.to_string(), v);
    }

    /// Raises a high-water-mark gauge to at least `v`.
    pub fn gauge_max(&mut self, key: &str, v: u64) {
        let g = self.gauges.entry(key.to_string()).or_insert(0);
        *g = (*g).max(v);
    }

    /// Records `v` into a histogram.
    pub fn observe(&mut self, key: &str, v: u64) {
        self.histograms
            .entry(key.to_string())
            .or_default()
            .observe(v);
    }

    /// Counter value (0 if absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Gauge value (0 if absent).
    pub fn gauge(&self, key: &str) -> u64 {
        self.gauges.get(key).copied().unwrap_or(0)
    }

    /// Histogram by key.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// All counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Counters whose key starts with `prefix`, in key order.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, &v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_zero_padded() {
        assert_eq!(PerfCounters::key("unit", Some(3), "busy"), "unit/03/busy");
        assert_eq!(PerfCounters::key("dma", None, "bytes"), "dma/bytes");
    }

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut c = PerfCounters::default();
        c.add("a/b", 2);
        c.add("a/b", 3);
        assert_eq!(c.counter("a/b"), 5);
        assert_eq!(c.counter("missing"), 0);
        c.set("a/b", 1);
        assert_eq!(c.counter("a/b"), 1);
    }

    #[test]
    fn gauges_keep_the_high_water_mark() {
        let mut c = PerfCounters::default();
        c.gauge_max("q/hwm", 4);
        c.gauge_max("q/hwm", 2);
        c.gauge_max("q/hwm", 9);
        assert_eq!(c.gauge("q/hwm"), 9);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_lo(0), 0);
        assert_eq!(Histogram::bucket_lo(1), 1);
        assert_eq!(Histogram::bucket_lo(5), 16);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 3, 100] {
            h.observe(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 104);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 100);
        assert!((h.mean() - 26.0).abs() < 1e-12);
        assert_eq!(h.buckets[0], 1); // the zero
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 1); // 3
        assert_eq!(h.buckets[7], 1); // 100 in [64,128)
    }

    #[test]
    fn percentile_of_empty_histogram_is_none() {
        let h = Histogram::default();
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), None);
        }
    }

    #[test]
    fn percentile_of_single_sample_is_that_sample() {
        for v in [0u64, 1, 7, 1 << 30, u64::MAX] {
            let mut h = Histogram::default();
            h.observe(v);
            for p in [0.0, 1.0, 50.0, 99.9, 100.0] {
                assert_eq!(h.percentile(p), Some(v), "v={v} p={p}");
            }
        }
    }

    #[test]
    fn percentile_with_all_samples_in_overflow_bucket_reports_max() {
        // Everything lands in the unbounded last bucket; the naive bucket
        // upper edge would be u64::MAX.
        let mut h = Histogram::default();
        let lo = Histogram::bucket_lo(HISTOGRAM_BUCKETS - 1);
        for v in [lo, lo + 10, lo * 2, u64::MAX / 2] {
            h.observe(v);
        }
        assert_eq!(h.percentile(0.0), Some(h.min));
        assert_eq!(h.percentile(50.0), Some(h.max));
        assert_eq!(h.percentile(99.0), Some(h.max));
        assert_eq!(h.percentile(100.0), Some(h.max));
    }

    #[test]
    fn percentile_ranks_across_buckets() {
        // 90 small values in [1,2) and 10 large in [64,128): p50 sits in
        // the small bucket (upper edge 1), p95+ in the large one.
        let mut h = Histogram::default();
        for _ in 0..90 {
            h.observe(1);
        }
        for _ in 0..10 {
            h.observe(100);
        }
        assert_eq!(h.percentile(50.0), Some(1));
        assert_eq!(h.percentile(90.0), Some(1));
        assert_eq!(h.percentile(95.0), Some(100)); // bucket edge 127 clamps to max
        assert_eq!(h.percentile(100.0), Some(100));
        // Out-of-range p clamps rather than panicking.
        assert_eq!(h.percentile(-5.0), Some(h.min));
        assert_eq!(h.percentile(250.0), Some(h.max));
    }

    #[test]
    fn prefix_scan_is_ordered_and_bounded() {
        let mut c = PerfCounters::default();
        c.add("unit/00/busy", 1);
        c.add("unit/01/busy", 2);
        c.add("dma/bytes", 3);
        c.add("unita/x", 4);
        let keys: Vec<&str> = c.counters_with_prefix("unit/").map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["unit/00/busy", "unit/01/busy"]);
    }

    #[test]
    fn iteration_is_deterministic() {
        let mut c = PerfCounters::default();
        c.add("z/last", 1);
        c.add("a/first", 1);
        let keys: Vec<&str> = c.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a/first", "z/last"]);
    }
}
