//! Cycle-level telemetry for the IR accelerator system.
//!
//! The paper's performance story is entirely about where cycles go: unit
//! busy vs. scheduler idle time (Figure 7), arbiter and DDR contention
//! under 32 units, and DMA overhead. This crate is the measurement layer
//! that makes those claims checkable on every run instead of in ad-hoc
//! bench prints:
//!
//! - [`counters`] — a [`PerfCounters`] registry of monotonic counters,
//!   high-water-mark gauges and fixed-bucket (power-of-two) histograms,
//!   keyed by `block/instance/name` strings with a deterministic order;
//! - [`trace`] — a structured span tracer ([`Tracer`]) whose events
//!   serialize to Chrome trace-event JSON loadable in Perfetto
//!   (<https://ui.perfetto.dev>);
//! - [`report`] — the [`TelemetrySnapshot`] a run attaches to its result,
//!   serializable to CSV/JSON, plus the [`BottleneckReport`] that ranks
//!   stall sources and per-block utilization;
//! - [`json`] — a dependency-free JSON validator used by tests and the CI
//!   smoke job to prove emitted traces parse.
//!
//! # Zero cost when disabled
//!
//! Every recording entry point goes through [`Telemetry`], which is either
//! [`Telemetry::Off`] (all methods return immediately, no allocation ever
//! happens) or [`Telemetry::On`] (counters and spans accumulate). Crucially
//! the instrumentation is *observational*: it never feeds back into any
//! modeled timing, so an enabled run is cycle-identical to a disabled one
//! (asserted by `tests/telemetry.rs`).
//!
//! # Example
//!
//! ```
//! use ir_telemetry::{SpanKind, Telemetry, Track};
//!
//! let mut tele = Telemetry::on();
//! tele.add("hdc", "comparisons", 1024);
//! tele.add_idx("unit", 3, "busy_cycles", 500);
//! tele.gauge_max("dma", "prefetch_depth_hwm", 4);
//! tele.observe("unit", "target_cycles", 500);
//! tele.span(Track::Unit(3), SpanKind::Compute, "t0", Some(0), 0.0, 4e-6);
//! let snapshot = tele.finish().expect("enabled telemetry snapshots");
//! assert_eq!(snapshot.counter("unit/03/busy_cycles"), 500);
//! assert!(snapshot.chrome_trace_json().contains("traceEvents"));
//!
//! // Disabled telemetry costs nothing and yields nothing.
//! let mut off = Telemetry::off();
//! off.add("hdc", "comparisons", 1024);
//! assert!(off.finish().is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod json;
pub mod report;
pub mod snapshot;
pub mod trace;

pub use counters::{Histogram, PerfCounters};
pub use report::{BottleneckReport, StallSource, TelemetrySnapshot, UnitUtilization};
pub use snapshot::{BenchSnapshot, DeltaStatus, MetricDelta, SnapshotDiff};
pub use trace::{SpanKind, Trace, TraceEvent, Tracer, Track};

/// The recording facade every instrumented layer holds: either a live
/// collector or a no-op.
///
/// Recording methods are `#[inline]` and check the variant first, so a
/// disabled run pays one branch per call site and never allocates.
#[derive(Debug, Default)]
pub enum Telemetry {
    /// Recording disabled: every method is a no-op.
    #[default]
    Off,
    /// Recording enabled: counters and spans accumulate in the collector.
    On(Box<Collector>),
}

/// The live state behind [`Telemetry::On`].
#[derive(Debug, Default)]
pub struct Collector {
    /// The counter/gauge/histogram registry.
    pub counters: PerfCounters,
    /// The span tracer.
    pub tracer: Tracer,
}

impl Telemetry {
    /// A disabled (no-op) handle.
    pub fn off() -> Self {
        Telemetry::Off
    }

    /// An enabled handle with an empty registry and tracer.
    pub fn on() -> Self {
        Telemetry::On(Box::default())
    }

    /// An enabled or disabled handle, by flag.
    pub fn with_enabled(enabled: bool) -> Self {
        if enabled {
            Telemetry::on()
        } else {
            Telemetry::off()
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        matches!(self, Telemetry::On(_))
    }

    /// Adds `n` to the counter `block/name`.
    #[inline]
    pub fn add(&mut self, block: &str, name: &str, n: u64) {
        if let Telemetry::On(c) = self {
            c.counters.add(&PerfCounters::key(block, None, name), n);
        }
    }

    /// Adds `n` to the per-instance counter `block/<idx>/name`.
    #[inline]
    pub fn add_idx(&mut self, block: &str, idx: usize, name: &str, n: u64) {
        if let Telemetry::On(c) = self {
            c.counters
                .add(&PerfCounters::key(block, Some(idx), name), n);
        }
    }

    /// Raises the high-water-mark gauge `block/name` to at least `v`.
    #[inline]
    pub fn gauge_max(&mut self, block: &str, name: &str, v: u64) {
        if let Telemetry::On(c) = self {
            c.counters
                .gauge_max(&PerfCounters::key(block, None, name), v);
        }
    }

    /// Records `v` into the histogram `block/name`.
    #[inline]
    pub fn observe(&mut self, block: &str, name: &str, v: u64) {
        if let Telemetry::On(c) = self {
            c.counters.observe(&PerfCounters::key(block, None, name), v);
        }
    }

    /// Records a `[start_s, end_s]` span on `track`. Spans with
    /// non-positive duration are dropped.
    #[inline]
    pub fn span(
        &mut self,
        track: Track,
        kind: SpanKind,
        name: &str,
        target: Option<usize>,
        start_s: f64,
        end_s: f64,
    ) {
        if let Telemetry::On(c) = self {
            c.tracer.span(track, kind, name, target, start_s, end_s);
        }
    }

    /// Like [`Telemetry::span`] with extra `(key, value)` arguments that
    /// surface in the Perfetto args panel.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn span_args(
        &mut self,
        track: Track,
        kind: SpanKind,
        name: &str,
        target: Option<usize>,
        start_s: f64,
        end_s: f64,
        args: &[(&'static str, u64)],
    ) {
        if let Telemetry::On(c) = self {
            c.tracer
                .span_args(track, kind, name, target, start_s, end_s, args);
        }
    }

    /// Consumes the handle and returns the snapshot, or `None` when
    /// disabled.
    pub fn finish(self) -> Option<TelemetrySnapshot> {
        match self {
            Telemetry::Off => None,
            Telemetry::On(c) => Some(TelemetrySnapshot::new(c.counters, c.tracer.into_trace())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_records_nothing_and_allocates_nothing() {
        let mut tele = Telemetry::off();
        tele.add("a", "b", 1);
        tele.add_idx("a", 0, "b", 1);
        tele.gauge_max("a", "g", 9);
        tele.observe("a", "h", 9);
        tele.span(Track::Host, SpanKind::Compute, "x", None, 0.0, 1.0);
        assert!(!tele.is_enabled());
        assert!(tele.finish().is_none());
    }

    #[test]
    fn on_accumulates() {
        let mut tele = Telemetry::on();
        assert!(tele.is_enabled());
        tele.add("hdc", "comparisons", 10);
        tele.add("hdc", "comparisons", 5);
        tele.add_idx("unit", 7, "busy_cycles", 3);
        tele.gauge_max("q", "hwm", 2);
        tele.gauge_max("q", "hwm", 1);
        tele.observe("u", "cyc", 100);
        tele.span(Track::Unit(7), SpanKind::Compute, "t", Some(0), 0.0, 1e-6);
        let snap = tele.finish().unwrap();
        assert_eq!(snap.counter("hdc/comparisons"), 15);
        assert_eq!(snap.counter("unit/07/busy_cycles"), 3);
        assert_eq!(snap.gauge("q/hwm"), 2);
        assert_eq!(snap.trace.events.len(), 1);
    }

    #[test]
    fn with_enabled_matches_flag() {
        assert!(Telemetry::with_enabled(true).is_enabled());
        assert!(!Telemetry::with_enabled(false).is_enabled());
    }
}
