//! The per-run telemetry snapshot and the bottleneck report derived from
//! it.
//!
//! A [`TelemetrySnapshot`] is what a run hands back when telemetry was
//! enabled: the full counter registry plus the span trace. It serializes
//! to a `kind,key,value` CSV (diff-stable, key-ordered) and to a plain
//! JSON document, and the Chrome trace is available via
//! [`TelemetrySnapshot::chrome_trace_json`].
//!
//! The [`BottleneckReport`] interprets the counter taxonomy — the
//! `unit/<u>/{busy,stall,idle,quarantined,total}_cycles` convention plus
//! the block-level conflict/stall counters — into the ranked stall table
//! the `telemetry_report` bench binary prints.

use crate::counters::PerfCounters;
use crate::json::escape_json_string;
use crate::trace::Trace;

/// Everything a telemetry-enabled run recorded.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// The counter/gauge/histogram registry.
    pub counters: PerfCounters,
    /// The recorded span trace.
    pub trace: Trace,
}

impl TelemetrySnapshot {
    /// Bundles a registry and a trace into a snapshot.
    pub fn new(counters: PerfCounters, trace: Trace) -> Self {
        TelemetrySnapshot { counters, trace }
    }

    /// Counter value by key (0 if absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.counter(key)
    }

    /// Gauge value by key (0 if absent).
    pub fn gauge(&self, key: &str) -> u64 {
        self.counters.gauge(key)
    }

    /// The trace serialized as Chrome trace-event JSON (Perfetto-loadable).
    pub fn chrome_trace_json(&self) -> String {
        self.trace.to_chrome_json()
    }

    /// Whether two snapshots are *bitwise* identical: all counters,
    /// gauges and histograms equal, and every trace span equal with its
    /// timestamps compared by bit pattern rather than float equality
    /// (`-0.0 != 0.0`, `NaN == NaN`). This is the equivalence the
    /// event-driven and legacy simulation backends are held to in
    /// `tests/event_parity.rs`.
    pub fn bitwise_eq(&self, other: &TelemetrySnapshot) -> bool {
        self.counters == other.counters
            && self.trace.events.len() == other.trace.events.len()
            && self
                .trace
                .events
                .iter()
                .zip(&other.trace.events)
                .all(|(a, b)| {
                    a.track == b.track
                        && a.kind == b.kind
                        && a.name == b.name
                        && a.target == b.target
                        && a.args == b.args
                        && a.start_s.to_bits() == b.start_s.to_bits()
                        && a.end_s.to_bits() == b.end_s.to_bits()
                })
    }

    /// Serializes the registry as `kind,key,value` CSV rows (header
    /// included). Histograms expand to their summary stats plus non-empty
    /// buckets keyed by bucket lower bound.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,key,value\n");
        for (k, v) in self.counters.counters() {
            out.push_str(&format!("counter,{k},{v}\n"));
        }
        for (k, v) in self.counters.gauges() {
            out.push_str(&format!("gauge,{k},{v}\n"));
        }
        for (k, h) in self.counters.histograms() {
            out.push_str(&format!("histogram,{k}/count,{}\n", h.count));
            out.push_str(&format!("histogram,{k}/sum,{}\n", h.sum));
            if h.count > 0 {
                out.push_str(&format!("histogram,{k}/min,{}\n", h.min));
                out.push_str(&format!("histogram,{k}/max,{}\n", h.max));
            }
            for (i, &n) in h.buckets.iter().enumerate() {
                if n > 0 {
                    out.push_str(&format!(
                        "histogram,{k}/ge_{},{n}\n",
                        crate::counters::Histogram::bucket_lo(i)
                    ));
                }
            }
        }
        out
    }

    /// Serializes the registry as a JSON object with `counters`, `gauges`
    /// and `histograms` members.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (k, v) in self.counters.counters() {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str(&format!("{}:{v}", escape_json_string(k)));
        }
        out.push_str("},\"gauges\":{");
        first = true;
        for (k, v) in self.counters.gauges() {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str(&format!("{}:{v}", escape_json_string(k)));
        }
        out.push_str("},\"histograms\":{");
        first = true;
        for (k, h) in self.counters.histograms() {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
                escape_json_string(k),
                h.count,
                h.sum,
                if h.count > 0 { h.min } else { 0 },
                h.max,
                buckets.join(",")
            ));
        }
        out.push_str("}}");
        out
    }

    /// Derives the ranked bottleneck report from the counter taxonomy.
    pub fn bottleneck_report(&self) -> BottleneckReport {
        BottleneckReport::from_counters(&self.counters)
    }
}

/// One named source of lost cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct StallSource {
    /// Human-readable source label.
    pub name: String,
    /// Cycles attributed to this source.
    pub cycles: u64,
    /// Fraction of the total unit-cycle pool.
    pub fraction: f64,
}

/// Per-unit cycle breakdown pulled from `unit/<u>/*_cycles` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitUtilization {
    /// Unit index.
    pub unit: usize,
    /// Cycles spent computing targets.
    pub busy_cycles: u64,
    /// Cycles stalled on DMA/config/response flush.
    pub stall_cycles: u64,
    /// Cycles idle (no work assigned, or waiting out a batch).
    pub idle_cycles: u64,
    /// Cycles lost to quarantine after repeated faults.
    pub quarantined_cycles: u64,
    /// Total wall cycles for the run.
    pub total_cycles: u64,
}

impl UnitUtilization {
    /// Busy cycles over total cycles (0.0 when total is zero).
    pub fn busy_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.total_cycles as f64
        }
    }
}

/// Ranked stall sources and per-unit utilization for one run.
#[derive(Debug, Clone, Default)]
pub struct BottleneckReport {
    /// Sum of `total_cycles` across units (the cycle pool fractions are
    /// relative to).
    pub total_unit_cycles: u64,
    /// Stall sources with non-zero cycles, largest first.
    pub stalls: Vec<StallSource>,
    /// Per-unit breakdowns in unit order.
    pub units: Vec<UnitUtilization>,
}

impl BottleneckReport {
    /// Builds the report from a registry following the standard counter
    /// taxonomy.
    pub fn from_counters(c: &PerfCounters) -> Self {
        let mut units: Vec<UnitUtilization> = Vec::new();
        for (key, v) in c.counters_with_prefix("unit/") {
            // key = unit/<idx>/<name>
            let mut parts = key.splitn(3, '/');
            let (_, idx, name) = (parts.next(), parts.next(), parts.next());
            let (Some(idx), Some(name)) = (idx, name) else {
                continue;
            };
            let Ok(idx) = idx.parse::<usize>() else {
                continue;
            };
            while units.len() <= idx {
                let unit = units.len();
                units.push(UnitUtilization {
                    unit,
                    ..UnitUtilization::default()
                });
            }
            let u = &mut units[idx];
            match name {
                "busy_cycles" => u.busy_cycles = v,
                "stall_cycles" => u.stall_cycles = v,
                "idle_cycles" => u.idle_cycles = v,
                "quarantined_cycles" => u.quarantined_cycles = v,
                "total_cycles" => u.total_cycles = v,
                _ => {}
            }
        }

        let total_unit_cycles: u64 = units.iter().map(|u| u.total_cycles).sum();
        let agg = |f: fn(&UnitUtilization) -> u64| units.iter().map(f).sum::<u64>();
        let mut stalls: Vec<(String, u64)> = vec![
            (
                "unit stall (dma wait + cfg + flush)".into(),
                agg(|u| u.stall_cycles),
            ),
            ("scheduler idle".into(), agg(|u| u.idle_cycles)),
            ("quarantined units".into(), agg(|u| u.quarantined_cycles)),
            (
                "5:1 arbiter conflicts".into(),
                c.counter("arbiter5/conflict_cycles"),
            ),
            ("dma engine stall".into(), c.counter("dma/stall_cycles")),
            (
                "host command issue".into(),
                c.counter("host/command_cycles"),
            ),
        ];
        stalls.retain(|(_, cycles)| *cycles > 0);
        stalls.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let stalls = stalls
            .into_iter()
            .map(|(name, cycles)| StallSource {
                name,
                cycles,
                fraction: if total_unit_cycles == 0 {
                    0.0
                } else {
                    cycles as f64 / total_unit_cycles as f64
                },
            })
            .collect();

        BottleneckReport {
            total_unit_cycles,
            stalls,
            units,
        }
    }

    /// Mean busy fraction across units (0.0 with no units).
    pub fn mean_busy_fraction(&self) -> f64 {
        if self.units.is_empty() {
            0.0
        } else {
            self.units.iter().map(|u| u.busy_fraction()).sum::<f64>() / self.units.len() as f64
        }
    }

    /// Renders the report as an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("total unit-cycles: {}\n", self.total_unit_cycles));
        out.push_str("top stall sources:\n");
        if self.stalls.is_empty() {
            out.push_str("  (none — fully busy)\n");
        }
        for (i, s) in self.stalls.iter().enumerate() {
            out.push_str(&format!(
                "  {}. {:<36} {:>14} cycles  ({:5.1}%)\n",
                i + 1,
                s.name,
                s.cycles,
                s.fraction * 100.0
            ));
        }
        if !self.units.is_empty() {
            let min = self
                .units
                .iter()
                .min_by(|a, b| a.busy_fraction().total_cmp(&b.busy_fraction()))
                .expect("non-empty");
            let max = self
                .units
                .iter()
                .max_by(|a, b| a.busy_fraction().total_cmp(&b.busy_fraction()))
                .expect("non-empty");
            out.push_str(&format!(
                "unit utilization: mean {:5.1}%  min {:5.1}% (unit {:02})  max {:5.1}% (unit {:02})\n",
                self.mean_busy_fraction() * 100.0,
                min.busy_fraction() * 100.0,
                min.unit,
                max.busy_fraction() * 100.0,
                max.unit
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;

    fn sample() -> TelemetrySnapshot {
        let mut c = PerfCounters::default();
        for (u, busy, stall, idle) in [(0usize, 800u64, 150u64, 50u64), (1, 600, 100, 300)] {
            c.add(&PerfCounters::key("unit", Some(u), "busy_cycles"), busy);
            c.add(&PerfCounters::key("unit", Some(u), "stall_cycles"), stall);
            c.add(&PerfCounters::key("unit", Some(u), "idle_cycles"), idle);
            c.add(&PerfCounters::key("unit", Some(u), "total_cycles"), 1000);
        }
        c.add("arbiter5/conflict_cycles", 40);
        c.gauge_max("dma/prefetch_depth_hwm", 3);
        c.observe("unit/target_cycles", 800);
        c.observe("unit/target_cycles", 600);
        TelemetrySnapshot::new(c, Trace::default())
    }

    #[test]
    fn csv_has_all_kinds_in_order() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("kind,key,value\n"));
        assert!(csv.contains("counter,unit/00/busy_cycles,800"));
        assert!(csv.contains("gauge,dma/prefetch_depth_hwm,3"));
        assert!(csv.contains("histogram,unit/target_cycles/count,2"));
        assert!(csv.contains("histogram,unit/target_cycles/sum,1400"));
        let counter_pos = csv.find("counter,").unwrap();
        let gauge_pos = csv.find("gauge,").unwrap();
        let hist_pos = csv.find("histogram,").unwrap();
        assert!(counter_pos < gauge_pos && gauge_pos < hist_pos);
    }

    #[test]
    fn json_is_valid() {
        let json = sample().to_json();
        validate_json(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(json.contains("\"unit/01/idle_cycles\":300"));
        assert!(json.contains("\"buckets\":["));
    }

    #[test]
    fn empty_snapshot_serializes_validly() {
        let snap = TelemetrySnapshot::default();
        validate_json(&snap.to_json()).expect("empty snapshot JSON");
        assert_eq!(snap.to_csv(), "kind,key,value\n");
        assert!(snap.bottleneck_report().units.is_empty());
    }

    #[test]
    fn bottleneck_report_ranks_stalls_and_parses_units() {
        let report = sample().bottleneck_report();
        assert_eq!(report.total_unit_cycles, 2000);
        assert_eq!(report.units.len(), 2);
        assert_eq!(report.units[1].idle_cycles, 300);
        assert!((report.units[0].busy_fraction() - 0.8).abs() < 1e-12);
        // idle (350) > stall (250) > arbiter conflicts (40)
        let names: Vec<&str> = report.stalls.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "scheduler idle",
                "unit stall (dma wait + cfg + flush)",
                "5:1 arbiter conflicts"
            ]
        );
        assert!((report.stalls[0].fraction - 350.0 / 2000.0).abs() < 1e-12);
        assert!((report.mean_busy_fraction() - 0.7).abs() < 1e-12);
        let text = report.render();
        assert!(text.contains("scheduler idle"));
        assert!(text.contains("unit utilization: mean  70.0%"));
    }
}
