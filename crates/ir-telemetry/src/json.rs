//! A minimal, dependency-free JSON writer helper, validator and reader.
//!
//! The vendored `serde` stub carries no `serde_json`, so trace and
//! snapshot serialization is hand-rolled. This module provides the
//! pieces that keep that honest: correct string escaping on the way out,
//! a strict recursive-descent parser used by tests and the CI smoke job
//! to prove every emitted document actually parses, and a [`JsonValue`]
//! tree (`parse_json`) so tools like `bench-diff` can read documents
//! back without an external dependency.

/// Escapes `s` as a JSON string literal, including the surrounding
/// quotes.
pub fn escape_json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON document.
///
/// Object members keep their source order (duplicate keys are kept as-is;
/// [`JsonValue::get`] returns the first).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`; the grammar guarantees it is finite).
    Number(f64),
    /// A string with escapes decoded.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, members in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// First member named `key`, when this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The members in source order, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses exactly one JSON document (strict RFC 8259 subset: no trailing
/// content, no trailing commas, finite numbers).
///
/// Returns `Err` with a byte offset and message on the first violation.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(v)
}

/// Validates that `input` is exactly one JSON document; same grammar as
/// [`parse_json`], discarding the value.
pub fn validate_json(input: &str) -> Result<(), String> {
    parse_json(input).map(|_| ())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b't') => self.literal("true").map(|_| JsonValue::Bool(true)),
            Some(b'f') => self.literal("false").map(|_| JsonValue::Bool(false)),
            Some(b'n') => self.literal("null").map(|_| JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number().map(JsonValue::Number),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut members = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Object(members)),
                _ => {
                    self.pos -= usize::from(self.pos > 0);
                    return Err(self.err("expected ',' or '}' in object"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut elements = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(elements));
        }
        loop {
            self.skip_ws();
            elements.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Array(elements)),
                _ => {
                    self.pos -= usize::from(self.pos > 0);
                    return Err(self.err("expected ',' or ']' in array"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let first = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: require the paired low half.
                            if self.literal("\\u").is_err() {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let second = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&second) {
                                return Err(self.err("unpaired surrogate"));
                            }
                            0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                        } else {
                            first
                        };
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return Err(self.err("bad \\u escape")),
                        }
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(c) => {
                    // Re-read the full UTF-8 scalar starting at this byte.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let rest = &self.bytes[start..];
                        let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                        let ch = s.chars().next().expect("non-empty");
                        out.push(ch);
                        self.pos = start + ch.len_utf8();
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            match self.bump() {
                Some(c) if c.is_ascii_hexdigit() => {
                    v = v * 16 + (c as char).to_digit(16).expect("hex digit");
                }
                _ => return Err(self.err("bad \\u escape")),
            }
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        debug_assert!(self.pos > start);
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits and sign are ASCII");
        let n: f64 = text.parse().map_err(|_| self.err("unparseable number"))?;
        if !n.is_finite() {
            return Err(self.err("number overflows f64"));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips_through_the_validator() {
        for s in [
            "plain",
            "quo\"te",
            "back\\slash",
            "new\nline",
            "tab\there",
            "\u{1}ctl",
        ] {
            let lit = escape_json_string(s);
            validate_json(&lit).unwrap_or_else(|e| panic!("{lit}: {e}"));
        }
        assert_eq!(escape_json_string("a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn accepts_well_formed_documents() {
        for doc in [
            "null",
            "true",
            "-12.5e+3",
            "\"hi\"",
            "[]",
            "[1, 2, [3]]",
            "{}",
            "{\"a\": {\"b\": [1, null, \"x\"]}, \"c\": -0.5}",
            " { \"ts\" : 1.000 , \"dur\" : 4.000 } ",
        ] {
            validate_json(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn parses_values_with_structure_and_escapes() {
        let doc = "{\"a\": [1, -2.5e1, null, true], \"s\": \"q\\\"\\u0041\\n\", \"o\": {}}";
        let v = parse_json(doc).expect("parses");
        let a = v.get("a").and_then(JsonValue::as_array).expect("array");
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-25.0));
        assert_eq!(a[2], JsonValue::Null);
        assert_eq!(a[3].as_bool(), Some(true));
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("q\"A\n"));
        assert_eq!(v.get("o").and_then(JsonValue::as_object), Some(&[][..]));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_surrogate_pairs_and_rejects_lone_halves() {
        let v = parse_json("\"\\ud83e\\udde1\"").expect("astral escape");
        assert_eq!(v.as_str(), Some("\u{1F9E1}"));
        assert!(parse_json("\"\\ud83e\"").is_err());
        assert!(parse_json("\"\\ud83e\\u0041\"").is_err());
    }

    #[test]
    fn parsing_round_trips_escaped_output() {
        for s in ["plain", "quo\"te", "back\\slash", "new\nline", "héllo → 🌍"] {
            let lit = escape_json_string(s);
            assert_eq!(parse_json(&lit).unwrap().as_str(), Some(s), "{lit}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{'a': 1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad\\escape\"",
            "nulll",
            "[1] [2]",
            "{\"a\":1,}",
        ] {
            assert!(validate_json(doc).is_err(), "should reject: {doc}");
        }
    }
}
