//! A minimal, dependency-free JSON writer helper and validator.
//!
//! The vendored `serde` stub carries no `serde_json`, so trace and
//! snapshot serialization is hand-rolled. This module provides the two
//! pieces that keep that honest: correct string escaping on the way out,
//! and a strict recursive-descent parser used by tests and the CI smoke
//! job to prove every emitted document actually parses.

/// Escapes `s` as a JSON string literal, including the surrounding
/// quotes.
pub fn escape_json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Validates that `input` is exactly one JSON document (strict RFC 8259
/// subset: no trailing content, no trailing commas, finite numbers).
///
/// Returns `Err` with a byte offset and message on the first violation.
pub fn validate_json(input: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => {
                    self.pos -= usize::from(self.pos > 0);
                    return Err(self.err("expected ',' or '}' in object"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => {
                    self.pos -= usize::from(self.pos > 0);
                    return Err(self.err("expected ',' or ']' in array"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(c) if c.is_ascii_hexdigit() => {}
                                _ => return Err(self.err("bad \\u escape")),
                            }
                        }
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {}
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        debug_assert!(self.pos > start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips_through_the_validator() {
        for s in [
            "plain",
            "quo\"te",
            "back\\slash",
            "new\nline",
            "tab\there",
            "\u{1}ctl",
        ] {
            let lit = escape_json_string(s);
            validate_json(&lit).unwrap_or_else(|e| panic!("{lit}: {e}"));
        }
        assert_eq!(escape_json_string("a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn accepts_well_formed_documents() {
        for doc in [
            "null",
            "true",
            "-12.5e+3",
            "\"hi\"",
            "[]",
            "[1, 2, [3]]",
            "{}",
            "{\"a\": {\"b\": [1, null, \"x\"]}, \"c\": -0.5}",
            " { \"ts\" : 1.000 , \"dur\" : 4.000 } ",
        ] {
            validate_json(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{'a': 1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad\\escape\"",
            "nulll",
            "[1] [2]",
            "{\"a\":1,}",
        ] {
            assert!(validate_json(doc).is_err(), "should reject: {doc}");
        }
    }
}
