//! Perf-trajectory snapshots: the versioned `BENCH_<n>.json` schema and
//! the tolerance-banded diff behind `ir-cli bench-diff`.
//!
//! Every PR checks in one [`BenchSnapshot`] capturing where the suite's
//! wall time went (per-figure `wall_ms/*`), what the service layer
//! sustained (`serve/*` throughput, latency percentiles and SLO
//! attainment) and the headline kernel speedups (`speedup/*`), stamped
//! with the git revision and the `IR_SCALE`/`IR_THREADS` the run used.
//! CI regenerates a snapshot at reduced scale and diffs it against the
//! committed one; [`SnapshotDiff::has_regressions`] gates the job.
//!
//! The diff applies per-namespace tolerance bands rather than exact
//! comparison — wall clocks are noisy, simulated metrics are not:
//!
//! | namespace               | direction        | tolerance |
//! |-------------------------|------------------|-----------|
//! | `wall_ms/*`             | lower is better  | +50%      |
//! | `serve/throughput_rps`  | higher is better | −10%      |
//! | `serve/p50_us`/`p95_us`/`p99_us` | lower   | +25%      |
//! | `serve/slo_attainment`  | higher is better | −10%      |
//! | `speedup/*`             | higher is better | −10%      |
//!
//! Host wall clocks are additionally only comparable between runs of the
//! same configuration: when `ir_scale`, `ir_threads` or the dispatched
//! WHD `kernel` differ (a snapshot from an AVX-512 host against one from
//! a NEON host, say), `wall_ms` comparisons are skipped with a note
//! instead of judged. A metric
//! present in the old snapshot but missing from the new one is always a
//! regression (a bench silently dropping out of the suite must fail the
//! gate); a metric only present in the new snapshot is informational.

use crate::json::{escape_json_string, parse_json, JsonValue};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Current snapshot schema version; bump when the JSON shape changes.
pub const SNAPSHOT_SCHEMA_VERSION: u64 = 1;

/// One perf-trajectory snapshot (the content of a `BENCH_<n>.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// Schema version ([`SNAPSHOT_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Git revision the snapshot was produced at (`unknown` outside a
    /// checkout).
    pub git_rev: String,
    /// Workload scale the suite ran at.
    pub ir_scale: f64,
    /// Host threads the suite ran with.
    pub ir_threads: u64,
    /// The WHD kernel the suite dispatched to (`scalar`, `swar`, `avx2`,
    /// `avx512`, `neon`) — wall clocks are not comparable across ISAs.
    /// Snapshots predating the field parse as `"unknown"`.
    pub kernel: String,
    /// Flat metric map, keys namespaced `wall_ms/*`, `serve/*`,
    /// `speedup/*`. A `BTreeMap` keeps serialization diff-stable.
    pub metrics: BTreeMap<String, f64>,
}

impl BenchSnapshot {
    /// An empty snapshot at the current schema version.
    pub fn new(git_rev: &str, ir_scale: f64, ir_threads: u64) -> Self {
        BenchSnapshot {
            schema_version: SNAPSHOT_SCHEMA_VERSION,
            git_rev: git_rev.to_string(),
            ir_scale,
            ir_threads,
            kernel: "unknown".to_string(),
            metrics: BTreeMap::new(),
        }
    }

    /// Records the dispatched WHD kernel the run used.
    pub fn with_kernel(mut self, kernel: &str) -> Self {
        self.kernel = kernel.to_string();
        self
    }

    /// Serializes to the canonical two-space-indented JSON document
    /// (deterministic: metrics in key order, floats in shortest
    /// round-trip form).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.metrics.len() * 48);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(out, "  \"git_rev\": {},", escape_json_string(&self.git_rev));
        let _ = writeln!(out, "  \"ir_scale\": {},", fmt_f64(self.ir_scale));
        let _ = writeln!(out, "  \"ir_threads\": {},", self.ir_threads);
        let _ = writeln!(out, "  \"kernel\": {},", escape_json_string(&self.kernel));
        out.push_str("  \"metrics\": {");
        let mut first = true;
        for (k, v) in &self.metrics {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {}", escape_json_string(k), fmt_f64(*v));
        }
        if !self.metrics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses a snapshot document, verifying the schema version.
    pub fn from_json(input: &str) -> Result<Self, String> {
        let doc = parse_json(input)?;
        let schema_version = doc
            .get("schema_version")
            .and_then(JsonValue::as_f64)
            .ok_or("missing schema_version")? as u64;
        if schema_version != SNAPSHOT_SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {schema_version} (expected {SNAPSHOT_SCHEMA_VERSION})"
            ));
        }
        let git_rev = doc
            .get("git_rev")
            .and_then(JsonValue::as_str)
            .ok_or("missing git_rev")?
            .to_string();
        let ir_scale = doc
            .get("ir_scale")
            .and_then(JsonValue::as_f64)
            .ok_or("missing ir_scale")?;
        let ir_threads = doc
            .get("ir_threads")
            .and_then(JsonValue::as_f64)
            .ok_or("missing ir_threads")? as u64;
        // Additive field: snapshots predating kernel dispatch lack it.
        let kernel = doc
            .get("kernel")
            .and_then(JsonValue::as_str)
            .unwrap_or("unknown")
            .to_string();
        let mut metrics = BTreeMap::new();
        for (k, v) in doc
            .get("metrics")
            .and_then(JsonValue::as_object)
            .ok_or("missing metrics object")?
        {
            let n = v
                .as_f64()
                .ok_or_else(|| format!("metric {k} is not a number"))?;
            metrics.insert(k.clone(), n);
        }
        Ok(BenchSnapshot {
            schema_version,
            git_rev,
            ir_scale,
            ir_threads,
            kernel,
            metrics,
        })
    }

    /// Diffs `self` (the committed baseline) against `new`, applying the
    /// per-namespace tolerance bands described in the module docs.
    pub fn diff(&self, new: &BenchSnapshot) -> SnapshotDiff {
        let config_mismatch = self.ir_scale != new.ir_scale
            || self.ir_threads != new.ir_threads
            || self.kernel != new.kernel;
        let mut deltas = Vec::new();
        for (key, &old_v) in &self.metrics {
            let delta = match new.metrics.get(key) {
                None => MetricDelta {
                    key: key.clone(),
                    old: Some(old_v),
                    new: None,
                    status: DeltaStatus::MissingInNew,
                    note: "present in baseline, missing from new snapshot".to_string(),
                },
                Some(&new_v) => judge(key, old_v, new_v, config_mismatch),
            };
            deltas.push(delta);
        }
        for (key, &new_v) in &new.metrics {
            if !self.metrics.contains_key(key) {
                deltas.push(MetricDelta {
                    key: key.clone(),
                    old: None,
                    new: Some(new_v),
                    status: DeltaStatus::NewOnly,
                    note: "new metric, informational".to_string(),
                });
            }
        }
        SnapshotDiff {
            config_mismatch,
            deltas,
        }
    }
}

/// Shortest round-trip JSON number for an `f64` (the grammar forbids
/// non-finite values, which snapshots never contain).
fn fmt_f64(v: f64) -> String {
    debug_assert!(v.is_finite());
    let s = format!("{v}");
    // `{}` on f64 never emits an exponent for integral values, but an
    // integral float like 5.0 formats as "5" — still a valid JSON number.
    s
}

/// How one metric moved between snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaStatus {
    /// Within the tolerance band (or informational-only namespace).
    Ok,
    /// Moved favorably beyond the tolerance band.
    Improved,
    /// Moved unfavorably beyond the tolerance band — gates CI.
    Regressed,
    /// In the baseline but not the new snapshot — gates CI.
    MissingInNew,
    /// Only in the new snapshot; informational.
    NewOnly,
    /// Not comparable (configuration mismatch); informational.
    Skipped,
}

/// One metric's comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric key.
    pub key: String,
    /// Baseline value, if present.
    pub old: Option<f64>,
    /// New value, if present.
    pub new: Option<f64>,
    /// Verdict.
    pub status: DeltaStatus,
    /// Human-readable explanation.
    pub note: String,
}

/// The result of diffing two snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotDiff {
    /// Whether `ir_scale`/`ir_threads`/`kernel` differed (wall
    /// comparisons skipped).
    pub config_mismatch: bool,
    /// Per-metric verdicts, baseline keys first (in key order), then
    /// new-only keys.
    pub deltas: Vec<MetricDelta>,
}

impl SnapshotDiff {
    /// Whether any metric regressed or went missing — the CI gate.
    pub fn has_regressions(&self) -> bool {
        self.deltas
            .iter()
            .any(|d| matches!(d.status, DeltaStatus::Regressed | DeltaStatus::MissingInNew))
    }

    /// Renders the diff as an aligned text report, one metric per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.config_mismatch {
            out.push_str(
                "note: ir_scale/ir_threads/kernel differ between snapshots; \
                 wall_ms comparisons skipped\n",
            );
        }
        let key_w = self
            .deltas
            .iter()
            .map(|d| d.key.len())
            .max()
            .unwrap_or(0)
            .max(6);
        for d in &self.deltas {
            let tag = match d.status {
                DeltaStatus::Ok => "ok        ",
                DeltaStatus::Improved => "improved  ",
                DeltaStatus::Regressed => "REGRESSED ",
                DeltaStatus::MissingInNew => "MISSING   ",
                DeltaStatus::NewOnly => "new       ",
                DeltaStatus::Skipped => "skipped   ",
            };
            let fmt = |v: Option<f64>| match v {
                Some(x) => format!("{x:.4}"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "{tag} {key:<key_w$}  {old:>14} -> {new:>14}  {note}",
                key = d.key,
                old = fmt(d.old),
                new = fmt(d.new),
                note = d.note,
            );
        }
        let regressions = self
            .deltas
            .iter()
            .filter(|d| matches!(d.status, DeltaStatus::Regressed | DeltaStatus::MissingInNew))
            .count();
        let _ = writeln!(
            out,
            "{} metrics compared, {} regression{}",
            self.deltas.len(),
            regressions,
            if regressions == 1 { "" } else { "s" },
        );
        out
    }
}

/// Which way a metric should move, and how much slack it gets.
struct Policy {
    higher_is_better: bool,
    /// Relative tolerance (e.g. 0.5 = 50%).
    tolerance: f64,
    /// Whether the metric is a host wall clock (skipped on config
    /// mismatch, judged loosely otherwise).
    is_wall_clock: bool,
}

fn policy_for(key: &str) -> Option<Policy> {
    if key.starts_with("wall_ms/") {
        return Some(Policy {
            higher_is_better: false,
            tolerance: 0.5,
            is_wall_clock: true,
        });
    }
    if key == "serve/throughput_rps"
        || key == "serve/slo_attainment"
        || key == "fleet/throughput_rps"
        || key == "fleet/slo_attainment"
        || key.starts_with("speedup/")
    {
        return Some(Policy {
            higher_is_better: true,
            tolerance: 0.10,
            is_wall_clock: false,
        });
    }
    if key == "serve/p50_us"
        || key == "serve/p95_us"
        || key == "serve/p99_us"
        || key == "fleet/p99_us"
        || key == "fleet/cost_per_mtargets_usd"
    {
        return Some(Policy {
            higher_is_better: false,
            tolerance: 0.25,
            is_wall_clock: false,
        });
    }
    None
}

fn judge(key: &str, old: f64, new: f64, config_mismatch: bool) -> MetricDelta {
    let base = |status, note: String| MetricDelta {
        key: key.to_string(),
        old: Some(old),
        new: Some(new),
        status,
        note,
    };
    let Some(policy) = policy_for(key) else {
        return base(DeltaStatus::Ok, "no policy; informational".to_string());
    };
    if policy.is_wall_clock && config_mismatch {
        return base(
            DeltaStatus::Skipped,
            "wall clock not comparable across ir_scale/ir_threads/kernel".to_string(),
        );
    }
    if old == 0.0 {
        // No meaningful relative band off a zero baseline.
        return base(DeltaStatus::Ok, "zero baseline; informational".to_string());
    }
    let ratio = new / old;
    let (regressed, improved) = if policy.higher_is_better {
        (
            ratio < 1.0 - policy.tolerance,
            ratio > 1.0 + policy.tolerance,
        )
    } else {
        (
            ratio > 1.0 + policy.tolerance,
            ratio < 1.0 - policy.tolerance,
        )
    };
    let pct = (ratio - 1.0) * 100.0;
    let band = policy.tolerance * 100.0;
    if regressed {
        base(
            DeltaStatus::Regressed,
            format!("{pct:+.1}% exceeds the ±{band:.0}% band"),
        )
    } else if improved {
        base(DeltaStatus::Improved, format!("{pct:+.1}%"))
    } else {
        base(DeltaStatus::Ok, format!("{pct:+.1}% within ±{band:.0}%"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchSnapshot {
        let mut s = BenchSnapshot::new("abc1234", 5e-3, 4).with_kernel("avx512");
        s.metrics.insert("wall_ms/fig9_speedup".into(), 9000.0);
        s.metrics.insert("serve/throughput_rps".into(), 120000.0);
        s.metrics.insert("serve/p99_us".into(), 850.5);
        s.metrics.insert("serve/slo_attainment".into(), 0.998);
        s.metrics.insert("speedup/fig9_taskp_gmean".into(), 11.5);
        s
    }

    /// The serialized form is part of the repo's public surface (checked
    /// in as BENCH_<n>.json); this golden string pins it.
    #[test]
    fn golden_serialization() {
        let golden = "{\n\
                      \x20 \"schema_version\": 1,\n\
                      \x20 \"git_rev\": \"abc1234\",\n\
                      \x20 \"ir_scale\": 0.005,\n\
                      \x20 \"ir_threads\": 4,\n\
                      \x20 \"kernel\": \"avx512\",\n\
                      \x20 \"metrics\": {\n\
                      \x20   \"serve/p99_us\": 850.5,\n\
                      \x20   \"serve/slo_attainment\": 0.998,\n\
                      \x20   \"serve/throughput_rps\": 120000,\n\
                      \x20   \"speedup/fig9_taskp_gmean\": 11.5,\n\
                      \x20   \"wall_ms/fig9_speedup\": 9000\n\
                      \x20 }\n\
                      }\n";
        assert_eq!(sample().to_json(), golden);
    }

    #[test]
    fn json_round_trips() {
        let s = sample();
        let back = BenchSnapshot::from_json(&s.to_json()).expect("parses");
        assert_eq!(back, s);
        let empty = BenchSnapshot::new("", 1e-3, 1);
        assert_eq!(
            BenchSnapshot::from_json(&empty.to_json()).expect("parses"),
            empty
        );
    }

    #[test]
    fn from_json_rejects_other_schema_versions_and_shapes() {
        let bumped = sample()
            .to_json()
            .replace("\"schema_version\": 1", "\"schema_version\": 2");
        assert!(BenchSnapshot::from_json(&bumped)
            .unwrap_err()
            .contains("schema_version"));
        assert!(BenchSnapshot::from_json("{}").is_err());
        assert!(BenchSnapshot::from_json("[1,2]").is_err());
    }

    #[test]
    fn diff_flags_regressions_beyond_the_band() {
        let old = sample();
        let mut new = sample();
        // Throughput drops 20% (> 10% band) and p99 grows 50% (> 25%).
        new.metrics.insert("serve/throughput_rps".into(), 96000.0);
        new.metrics.insert("serve/p99_us".into(), 1275.75);
        let diff = old.diff(&new);
        assert!(diff.has_regressions());
        let status = |k: &str| {
            diff.deltas
                .iter()
                .find(|d| d.key == k)
                .map(|d| d.status)
                .unwrap()
        };
        assert_eq!(status("serve/throughput_rps"), DeltaStatus::Regressed);
        assert_eq!(status("serve/p99_us"), DeltaStatus::Regressed);
        assert_eq!(status("wall_ms/fig9_speedup"), DeltaStatus::Ok);
    }

    #[test]
    fn diff_tolerates_noise_and_credits_improvements() {
        let old = sample();
        let mut new = sample();
        new.metrics.insert("wall_ms/fig9_speedup".into(), 12000.0); // +33% < 50% band
        new.metrics.insert("serve/throughput_rps".into(), 114000.0); // −5% < 10%
        new.metrics.insert("serve/p99_us".into(), 500.0); // −41%: improved
        let diff = old.diff(&new);
        assert!(!diff.has_regressions());
        let status = |k: &str| {
            diff.deltas
                .iter()
                .find(|d| d.key == k)
                .map(|d| d.status)
                .unwrap()
        };
        assert_eq!(status("wall_ms/fig9_speedup"), DeltaStatus::Ok);
        assert_eq!(status("serve/throughput_rps"), DeltaStatus::Ok);
        assert_eq!(status("serve/p99_us"), DeltaStatus::Improved);
    }

    #[test]
    fn diff_treats_missing_metrics_as_regressions_and_new_as_info() {
        let old = sample();
        let mut new = sample();
        new.metrics.remove("speedup/fig9_taskp_gmean");
        new.metrics.insert("wall_ms/new_bench".into(), 5.0);
        let diff = old.diff(&new);
        assert!(diff.has_regressions());
        let find = |k: &str| diff.deltas.iter().find(|d| d.key == k).unwrap();
        assert_eq!(
            find("speedup/fig9_taskp_gmean").status,
            DeltaStatus::MissingInNew
        );
        assert_eq!(find("wall_ms/new_bench").status, DeltaStatus::NewOnly);
        // A NewOnly metric alone never gates.
        let mut only_new = sample();
        only_new.metrics.insert("wall_ms/new_bench".into(), 5.0);
        assert!(!old.diff(&only_new).has_regressions());
    }

    #[test]
    fn diff_skips_wall_clocks_across_configs_but_judges_simulated_metrics() {
        let old = sample();
        let mut new = sample();
        new.ir_scale = 1e-3; // different configuration
        new.metrics.insert("wall_ms/fig9_speedup".into(), 90000.0); // 10×: skipped
        new.metrics.insert("serve/throughput_rps".into(), 60000.0); // −50%: still judged
        let diff = old.diff(&new);
        assert!(diff.config_mismatch);
        let status = |k: &str| {
            diff.deltas
                .iter()
                .find(|d| d.key == k)
                .map(|d| d.status)
                .unwrap()
        };
        assert_eq!(status("wall_ms/fig9_speedup"), DeltaStatus::Skipped);
        assert_eq!(status("serve/throughput_rps"), DeltaStatus::Regressed);
        assert!(diff.has_regressions());
        assert!(diff.render().contains("wall_ms comparisons skipped"));
    }

    /// Snapshots written before kernel dispatch existed (no `kernel`
    /// field) must keep parsing, as `"unknown"`.
    #[test]
    fn missing_kernel_field_parses_as_unknown() {
        let legacy = sample()
            .to_json()
            .replace("  \"kernel\": \"avx512\",\n", "");
        let snap = BenchSnapshot::from_json(&legacy).expect("legacy snapshot parses");
        assert_eq!(snap.kernel, "unknown");
    }

    /// A kernel (ISA) mismatch alone skips wall-clock judgement — host
    /// wall times measured on different SIMD widths are not comparable —
    /// while simulated metrics are still judged.
    #[test]
    fn diff_skips_wall_clocks_across_kernels() {
        let old = sample();
        let mut new = sample().with_kernel("neon");
        new.metrics = old.metrics.clone();
        new.metrics.insert("wall_ms/fig9_speedup".into(), 90000.0); // 10×: skipped
        new.metrics.insert("speedup/fig9_taskp_gmean".into(), 2.0); // −83%: judged
        let diff = old.diff(&new);
        assert!(diff.config_mismatch);
        let status = |k: &str| {
            diff.deltas
                .iter()
                .find(|d| d.key == k)
                .map(|d| d.status)
                .unwrap()
        };
        assert_eq!(status("wall_ms/fig9_speedup"), DeltaStatus::Skipped);
        assert_eq!(status("speedup/fig9_taskp_gmean"), DeltaStatus::Regressed);
    }

    #[test]
    fn render_lists_every_metric_and_counts_regressions() {
        let old = sample();
        let mut new = sample();
        new.metrics.insert("serve/throughput_rps".into(), 1.0);
        let text = old.diff(&new).render();
        for key in old.metrics.keys() {
            assert!(text.contains(key.as_str()), "render misses {key}");
        }
        assert!(text.contains("REGRESSED"));
        assert!(text.contains("1 regression\n"));
    }
}
