//! Structured span tracing with Chrome trace-event JSON output.
//!
//! Every span is a *complete* event (`"ph": "X"`) on a named track: the
//! DMA engine, one IR unit, the host control program, or one fleet
//! instance. The serialized form is the Chrome trace-event format, which
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing` both load
//! directly: open the UI and drop the emitted `.trace.json` file on it.
//!
//! Timestamps are recorded in simulated seconds and serialized in
//! microseconds (the unit the format requires).

use crate::json::escape_json_string;

/// The track (rendered as a named thread) a span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Track {
    /// The PCIe DMA engine.
    Dma,
    /// One IR unit of the sea.
    Unit(usize),
    /// The host control program (command issue, response drain).
    Host,
    /// One service shard (a simulated FPGA behind the batching frontend).
    Shard(usize),
    /// One fleet instance (cloud-level schedules).
    Instance(usize),
}

impl Track {
    /// Stable thread id for the Chrome trace (`tid`).
    pub fn tid(self) -> u64 {
        match self {
            Track::Dma => 0,
            Track::Unit(u) => 1 + u as u64,
            Track::Shard(s) => 500 + s as u64,
            Track::Host => 900,
            Track::Instance(i) => 1000 + i as u64,
        }
    }

    /// Human-readable track name shown by Perfetto.
    pub fn name(self) -> String {
        match self {
            Track::Dma => "dma".to_string(),
            Track::Unit(u) => format!("unit {u}"),
            Track::Shard(s) => format!("shard {s}"),
            Track::Host => "host".to_string(),
            Track::Instance(i) => format!("instance {i}"),
        }
    }
}

/// What a span represents (serialized as the event category).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// PCIe DMA transfer of input data.
    Transfer,
    /// An IR unit computing a target.
    Compute,
    /// A resource waiting on something (data, config, a batch flush).
    Stall,
    /// A fleet-level job (one chromosome on one instance).
    Job,
    /// Restart overhead after a spot interruption.
    Restart,
}

impl SpanKind {
    /// The trace-event category string.
    pub fn cat(self) -> &'static str {
        match self {
            SpanKind::Transfer => "transfer",
            SpanKind::Compute => "compute",
            SpanKind::Stall => "stall",
            SpanKind::Job => "job",
            SpanKind::Restart => "restart",
        }
    }
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Track the span renders on.
    pub track: Track,
    /// Span category.
    pub kind: SpanKind,
    /// Span label.
    pub name: String,
    /// Index of the target this span serves, if any.
    pub target: Option<usize>,
    /// Start, simulated seconds.
    pub start_s: f64,
    /// End, simulated seconds.
    pub end_s: f64,
    /// Extra arguments surfaced in the Perfetto args panel.
    pub args: Vec<(&'static str, u64)>,
}

/// An ordered collection of spans.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Spans in recording order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Serializes the trace as Chrome trace-event JSON (an object with a
    /// `traceEvents` array plus thread-name metadata), loadable in
    /// Perfetto.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.events.len() * 160);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let mut push = |out: &mut String, s: String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str(&s);
        };

        // Thread-name metadata, one per distinct track, in tid order.
        let mut tracks: Vec<Track> = self.events.iter().map(|e| e.track).collect();
        tracks.sort_by_key(|t| t.tid());
        tracks.dedup();
        push(
            &mut out,
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"ir-system\"}}"
                .to_string(),
        );
        for t in &tracks {
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":{}}}}}",
                    t.tid(),
                    escape_json_string(&t.name()),
                ),
            );
        }

        for e in &self.events {
            let ts_us = e.start_s * 1e6;
            let dur_us = (e.end_s - e.start_s) * 1e6;
            let mut args = String::new();
            if let Some(t) = e.target {
                args.push_str(&format!("\"target\":{t}"));
            }
            for (k, v) in &e.args {
                if !args.is_empty() {
                    args.push(',');
                }
                args.push_str(&format!("{}:{v}", escape_json_string(k)));
            }
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{ts_us:.3},\
                     \"dur\":{dur_us:.3},\"cat\":{},\"name\":{},\"args\":{{{args}}}}}",
                    e.track.tid(),
                    escape_json_string(e.kind.cat()),
                    escape_json_string(&e.name),
                ),
            );
        }
        out.push_str("]}");
        out
    }
}

/// The span recorder behind [`crate::Telemetry`].
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    events: Vec<TraceEvent>,
}

impl Tracer {
    /// Records a span; non-positive durations are dropped.
    pub fn span(
        &mut self,
        track: Track,
        kind: SpanKind,
        name: &str,
        target: Option<usize>,
        start_s: f64,
        end_s: f64,
    ) {
        self.span_args(track, kind, name, target, start_s, end_s, &[]);
    }

    /// Records a span with extra arguments; non-positive durations are
    /// dropped.
    #[allow(clippy::too_many_arguments)]
    pub fn span_args(
        &mut self,
        track: Track,
        kind: SpanKind,
        name: &str,
        target: Option<usize>,
        start_s: f64,
        end_s: f64,
        args: &[(&'static str, u64)],
    ) {
        if end_s <= start_s {
            return;
        }
        self.events.push(TraceEvent {
            track,
            kind,
            name: name.to_string(),
            target,
            start_s,
            end_s,
            args: args.to_vec(),
        });
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consumes the tracer into its trace.
    pub fn into_trace(self) -> Trace {
        Trace {
            events: self.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;

    fn sample_trace() -> Trace {
        let mut t = Tracer::default();
        t.span(
            Track::Dma,
            SpanKind::Transfer,
            "xfer t0",
            Some(0),
            0.0,
            1e-6,
        );
        t.span_args(
            Track::Unit(2),
            SpanKind::Compute,
            "t0",
            Some(0),
            1e-6,
            5e-6,
            &[("cycles", 500), ("comparisons", 12_000)],
        );
        t.span(
            Track::Unit(2),
            SpanKind::Stall,
            "dma wait",
            Some(1),
            5e-6,
            6e-6,
        );
        t.into_trace()
    }

    #[test]
    fn tids_are_distinct_per_track() {
        assert_eq!(Track::Dma.tid(), 0);
        assert_eq!(Track::Unit(0).tid(), 1);
        assert_eq!(Track::Unit(31).tid(), 32);
        assert_eq!(Track::Shard(0).tid(), 500);
        assert_eq!(Track::Shard(7).tid(), 507);
        assert_eq!(Track::Host.tid(), 900);
        assert_eq!(Track::Instance(3).tid(), 1003);
    }

    #[test]
    fn zero_duration_spans_are_dropped() {
        let mut t = Tracer::default();
        t.span(Track::Host, SpanKind::Stall, "empty", None, 1.0, 1.0);
        t.span(Track::Host, SpanKind::Stall, "negative", None, 2.0, 1.0);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn chrome_json_is_valid_and_carries_metadata() {
        let json = sample_trace().to_chrome_json();
        validate_json(&json).expect("trace JSON must parse");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"unit 2\""));
        assert!(json.contains("\"comparisons\":12000"));
        assert!(json.contains("\"cat\":\"compute\""));
    }

    #[test]
    fn empty_trace_serializes_validly() {
        let json = Trace::default().to_chrome_json();
        validate_json(&json).expect("empty trace JSON must parse");
    }

    #[test]
    fn timestamps_serialize_in_microseconds() {
        let json = sample_trace().to_chrome_json();
        // The compute span starts at 1 µs and lasts 4 µs.
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":4.000"));
    }
}
