//! The host control program's functional path.
//!
//! The paper's control programs "1) malloc input/output arrays in the
//! host memory, 2) transfer large data chunks from the host to the
//! FPGA-attached DRAM ..., 3) configure and start the accelerators one
//! unit at a time ..., and 4) wait for responses and configure and start
//! the units that are finished with the previous task" (§V-A).
//!
//! [`crate::system::AcceleratedSystem`] models that loop's *timing*; this
//! module executes it *functionally*: every target really is encoded into
//! host buffer images, configured through RoCC wire commands routed via
//! the MMIO queues, executed on an [`IrUnit`], and read back by decoding
//! the output buffers. It is the strongest end-to-end check that the ISA,
//! the buffer layout, the codec and the datapath compose correctly.

use ir_core::{IndelRealigner, ReadOutcome};
use ir_genome::RealignmentTarget;

use crate::dma::DmaParams;
use crate::fault::{FaultCounts, FaultPlan};
use crate::isa::IrCommand;
use crate::layout::{decode_outputs, encode_outputs, HostBuffers};
use crate::mmio::{MmioHub, UnitResponse};
use crate::params::FpgaParams;
use crate::unit::{IrUnit, UnitCycles};
use crate::FpgaError;

/// The outcome of one target driven through the full functional path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriverRun {
    /// Unit that executed the target (the last unit attempted, for
    /// software-fallback targets).
    pub unit_id: usize,
    /// Decoded per-read outcomes (from the output buffer images).
    pub outcomes: Vec<ReadOutcome>,
    /// Cycle breakdown reported by the unit (zero for software-fallback
    /// targets — the work left the fabric).
    pub cycles: UnitCycles,
    /// Whether the target exhausted its hardware retries and was
    /// realigned by the `ir-core` software path instead.
    pub via_fallback: bool,
}

/// Host-side recovery policy: what the control program does when the
/// hardware misbehaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResiliencePolicy {
    /// Cycle budget the watchdog grants one dispatched target before
    /// declaring it hung (covers a lost response or a wedged FSM).
    pub watchdog_cycles: u64,
    /// Hardware retries per target before giving up on the fabric.
    pub max_retries: u32,
    /// Backoff before retry *k* is `backoff_base_cycles << k` host
    /// cycles (lets a transiently congested hub drain).
    pub backoff_base_cycles: u64,
    /// Fraction of targets whose read-back is verified byte-for-byte
    /// against the golden model (1.0 = every target; silent corruption
    /// is impossible only at 1.0).
    pub verify_rate: f64,
    /// Failures attributed to one unit before it is quarantined and
    /// receives no further targets. The last healthy unit is never
    /// quarantined.
    pub quarantine_threshold: u32,
    /// Realign targets that exhaust hardware retries with the `ir-core`
    /// software path, so a run always completes.
    pub software_fallback: bool,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            // ~0.5 s at 125 MHz — far above any single target's cycles.
            watchdog_cycles: 1 << 26,
            max_retries: 3,
            backoff_base_cycles: 4096,
            verify_rate: 1.0,
            quarantine_threshold: 3,
            software_fallback: true,
        }
    }
}

/// What the resilience layer saw and did over one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResilienceReport {
    /// Faults the plan actually injected (ground truth to reconcile the
    /// detection counters against).
    pub faults: FaultCounts,
    /// DMA transfers that failed (timeout or truncation).
    pub dma_faults: u64,
    /// Watchdog expirations waiting on a response.
    pub timeouts: u64,
    /// Read-backs rejected as corrupt (decode error or golden-model
    /// verification mismatch).
    pub corrupt_detected: u64,
    /// Units caught hung and reset.
    pub unit_hangs: u64,
    /// Stale or duplicate responses drained and discarded.
    pub stale_responses: u64,
    /// Hardware retries issued.
    pub retries: u64,
    /// Targets that fell back to the software path.
    pub fallbacks: u64,
    /// Units quarantined during the run.
    pub quarantined_units: Vec<usize>,
    /// Targets that completed on hardware after at least one retry.
    pub recovered_targets: u64,
    /// Compute cycles of the eventual successful attempt of recovered
    /// targets (work the retry policy salvaged for the fabric).
    pub recovered_cycles: u64,
    /// Cycles burned on failed attempts, watchdog waits and backoff.
    pub lost_cycles: u64,
}

impl ResilienceReport {
    /// Whether the run saw no faults and took no recovery action.
    pub fn is_clean(&self) -> bool {
        self == &ResilienceReport::default()
    }

    /// Folds another report into this one (summing every tally and
    /// unioning the quarantined-unit set), so a layer that issues many
    /// smaller runs against the same fabric — the `ir-serve` shard pool
    /// dispatches one [`run_resilient`](crate::AcceleratedSystem::run_resilient)
    /// call per batch — can publish one aggregate report.
    pub fn absorb(&mut self, other: &ResilienceReport) {
        self.faults.dma_timeouts += other.faults.dma_timeouts;
        self.faults.dma_truncations += other.faults.dma_truncations;
        self.faults.responses_dropped += other.faults.responses_dropped;
        self.faults.responses_duplicated += other.faults.responses_duplicated;
        self.faults.unit_hangs += other.faults.unit_hangs;
        self.faults.output_bit_flips += other.faults.output_bit_flips;
        self.dma_faults += other.dma_faults;
        self.timeouts += other.timeouts;
        self.corrupt_detected += other.corrupt_detected;
        self.unit_hangs += other.unit_hangs;
        self.stale_responses += other.stale_responses;
        self.retries += other.retries;
        self.fallbacks += other.fallbacks;
        for &unit in &other.quarantined_units {
            if !self.quarantined_units.contains(&unit) {
                self.quarantined_units.push(unit);
            }
        }
        self.quarantined_units.sort_unstable();
        self.recovered_targets += other.recovered_targets;
        self.recovered_cycles += other.recovered_cycles;
        self.lost_cycles += other.lost_cycles;
    }

    /// Publishes every field of this report into `counters` under the
    /// `resilience/` block, so the telemetry snapshot is the single place
    /// downstream tooling reads fault/recovery tallies from.
    pub fn record_into(&self, counters: &mut ir_telemetry::PerfCounters) {
        counters.set("resilience/injected_dma_timeouts", self.faults.dma_timeouts);
        counters.set(
            "resilience/injected_dma_truncations",
            self.faults.dma_truncations,
        );
        counters.set(
            "resilience/injected_responses_dropped",
            self.faults.responses_dropped,
        );
        counters.set(
            "resilience/injected_responses_duplicated",
            self.faults.responses_duplicated,
        );
        counters.set("resilience/injected_unit_hangs", self.faults.unit_hangs);
        counters.set(
            "resilience/injected_output_bit_flips",
            self.faults.output_bit_flips,
        );
        counters.set("resilience/injected_total", self.faults.total());
        counters.set("resilience/dma_faults", self.dma_faults);
        counters.set("resilience/timeouts", self.timeouts);
        counters.set("resilience/corrupt_detected", self.corrupt_detected);
        counters.set("resilience/unit_hangs", self.unit_hangs);
        counters.set("resilience/stale_responses", self.stale_responses);
        counters.set("resilience/retries", self.retries);
        counters.set("resilience/fallbacks", self.fallbacks);
        counters.set(
            "resilience/quarantined_units",
            self.quarantined_units.len() as u64,
        );
        counters.set("resilience/recovered_targets", self.recovered_targets);
        counters.set("resilience/recovered_cycles", self.recovered_cycles);
        counters.set("resilience/lost_cycles", self.lost_cycles);
    }
}

/// How one failed hardware attempt is handled.
struct AttemptFailure {
    error: FpgaError,
    /// Cycles burned by the failed attempt (watchdog wait, discarded
    /// compute).
    lost_cycles: u64,
    /// Whether the failure is attributed to the unit (counts toward its
    /// quarantine threshold).
    unit_at_fault: bool,
    /// Deterministic failures (a target that cannot fit) skip the retry
    /// loop and go straight to the fallback decision.
    permanent: bool,
}

/// A host driver bound to a sea of units through one MMIO hub.
#[derive(Debug)]
pub struct HostDriver {
    params: FpgaParams,
    hub: MmioHub,
    units: Vec<IrUnit>,
    dma: DmaParams,
    failures: Vec<u32>,
    quarantined: Vec<bool>,
}

impl HostDriver {
    /// Creates a driver for `params.num_units` units.
    ///
    /// # Errors
    ///
    /// Propagates floorplan/timing validation from
    /// [`crate::resources::validate`].
    pub fn new(params: FpgaParams) -> Result<Self, FpgaError> {
        crate::resources::validate(&params)?;
        let num_units = params.num_units;
        let units = (0..num_units).map(IrUnit::new).collect();
        Ok(HostDriver {
            params,
            hub: MmioHub::new(64),
            units,
            dma: DmaParams::default(),
            failures: vec![0; num_units],
            quarantined: vec![false; num_units],
        })
    }

    /// Number of units under this driver.
    pub fn num_units(&self) -> usize {
        self.units.len()
    }

    /// Units currently quarantined by the resilience layer.
    pub fn quarantined_units(&self) -> Vec<usize> {
        self.quarantined
            .iter()
            .enumerate()
            .filter_map(|(u, &q)| q.then_some(u))
            .collect()
    }

    /// Drives one target end to end on `unit_id`: build buffer images,
    /// issue the RoCC command sequence through the MMIO hub and router,
    /// execute, post and poll the response, and decode the output buffers.
    ///
    /// # Errors
    ///
    /// - [`FpgaError::NoSuchUnit`] for an out-of-range unit.
    /// - [`FpgaError::BufferOverflow`] if the target exceeds the unit's
    ///   buffers.
    /// - Any configuration error surfaced by the unit's command FSM.
    pub fn run_target(
        &mut self,
        unit_id: usize,
        target: &RealignmentTarget,
    ) -> Result<DriverRun, FpgaError> {
        if unit_id >= self.units.len() {
            return Err(FpgaError::NoSuchUnit {
                unit: unit_id,
                available: self.units.len(),
            });
        }
        // Step 1–2: host arrays and the DMA image.
        let buffers = HostBuffers::from_target(target);
        buffers.check_fit()?;

        // Step 3: configure and start through the MMIO command queue; the
        // router pops and dispatches to the addressed unit.
        for cmd in IrUnit::command_sequence(target, unit_id as u8) {
            self.hub.push_command(cmd.encode())?;
            let wire = self
                .hub
                .pop_command()
                .ok_or(FpgaError::NotConfigured("command queue empty at dispatch"))?;
            let decoded = IrCommand::decode(wire)?;
            self.units[unit_id].apply(decoded)?;
        }

        // Execute; the unit posts its completion response.
        let run = self.units[unit_id].execute(target, &self.params)?;
        self.hub.push_response(UnitResponse {
            unit_id,
            cycles: run.cycles.total(),
        });

        // Step 4: poll the response, then read back and decode the output
        // buffers.
        let response = self.hub.poll_response().ok_or(FpgaError::NoResponse)?;
        let (flags, positions) = encode_outputs(&run.outcomes, target.start_pos());
        let outcomes = decode_outputs(&flags, &positions, target.num_reads(), target.start_pos())?;

        Ok(DriverRun {
            unit_id: response.unit_id,
            outcomes,
            cycles: run.cycles,
            via_fallback: false,
        })
    }

    /// Drives a batch of targets round-robin across all units.
    ///
    /// # Errors
    ///
    /// Fails fast on the first target that errors.
    pub fn run_batch(
        &mut self,
        targets: &[RealignmentTarget],
    ) -> Result<Vec<DriverRun>, FpgaError> {
        targets
            .iter()
            .enumerate()
            .map(|(i, t)| self.run_target(i % self.units.len(), t))
            .collect()
    }

    /// First non-quarantined unit at or after `preferred` (wrapping), or
    /// `None` if the whole sea is quarantined.
    fn pick_unit(&self, preferred: usize) -> Option<usize> {
        let n = self.units.len();
        (0..n)
            .map(|k| (preferred + k) % n)
            .find(|&u| !self.quarantined[u])
    }

    /// One hardware attempt: the full functional path of
    /// [`Self::run_target`] with every fault-injection site armed and
    /// every read-back integrity-checked.
    fn attempt_target(
        &mut self,
        unit_id: usize,
        target: &RealignmentTarget,
        plan: &mut FaultPlan,
        policy: &ResiliencePolicy,
        report: &mut ResilienceReport,
    ) -> Result<DriverRun, AttemptFailure> {
        let permanent = |error| AttemptFailure {
            error,
            lost_cycles: 0,
            unit_at_fault: false,
            permanent: true,
        };
        let watchdog = policy.watchdog_cycles;

        // Steps 1–2: host arrays and the PCIe DMA transfer, which can
        // time out or truncate.
        let buffers = HostBuffers::from_target(target);
        buffers.check_fit().map_err(permanent)?;
        if let Err(error) = self
            .dma
            .transfer_time_checked(buffers.payload_bytes(), plan)
        {
            report.dma_faults += 1;
            return Err(AttemptFailure {
                error,
                lost_cycles: 0,
                unit_at_fault: false,
                permanent: false,
            });
        }

        // A prior failed attempt can strand a stale or duplicate
        // response; drain the queue before dispatching.
        while self.hub.poll_response().is_some() {
            report.stale_responses += 1;
        }

        // Step 3: configure and start through the MMIO queues.
        for cmd in IrUnit::command_sequence(target, unit_id as u8) {
            let step: Result<(), FpgaError> = (|| {
                self.hub.push_command(cmd.encode())?;
                let wire = self
                    .hub
                    .pop_command()
                    .ok_or(FpgaError::NotConfigured("command queue empty at dispatch"))?;
                self.units[unit_id].apply(IrCommand::decode(wire)?)
            })();
            step.map_err(permanent)?;
        }

        // Execute; the FSM can hang stuck-busy (the watchdog burns its
        // whole budget noticing).
        let run = self.units[unit_id]
            .execute_with_faults(target, &self.params, plan)
            .map_err(|error| AttemptFailure {
                error,
                lost_cycles: watchdog,
                unit_at_fault: true,
                permanent: false,
            })?;

        // The hub can drop or duplicate the completion response.
        self.hub.push_response_faulty(
            UnitResponse {
                unit_id,
                cycles: run.cycles.total(),
            },
            plan,
        );

        // Step 4: poll for this unit's response; anything else in the
        // queue is stale. A dropped response means the work completed but
        // the result is stranded — the watchdog expires.
        let response = loop {
            match self.hub.poll_response() {
                Some(r) if r.unit_id == unit_id => break Some(r),
                Some(_) => report.stale_responses += 1,
                None => break None,
            }
        };
        let Some(response) = response else {
            return Err(AttemptFailure {
                error: FpgaError::Timeout {
                    site: "mmio response queue",
                    waited_s: watchdog as f64 * self.params.cycle_time_s(),
                },
                lost_cycles: run.cycles.total() + watchdog,
                unit_at_fault: true,
                permanent: false,
            });
        };

        // Read back the output buffers, which can come back with flipped
        // bits; decode rejects structurally invalid images, and the
        // sampled golden-model check catches the rest.
        let (mut flags, mut positions) = encode_outputs(&run.outcomes, target.start_pos());
        plan.corrupt_outputs(&mut flags, &mut positions);
        let corrupt = |error| AttemptFailure {
            error,
            lost_cycles: run.cycles.total(),
            unit_at_fault: true,
            permanent: false,
        };
        let outcomes = decode_outputs(&flags, &positions, target.num_reads(), target.start_pos())
            .map_err(corrupt)?;
        if plan.sample_verify(policy.verify_rate) {
            let golden = IndelRealigner::new().realign_outcomes(target);
            let (want_flags, want_positions) = encode_outputs(&golden, target.start_pos());
            if flags != want_flags || positions != want_positions {
                return Err(corrupt(FpgaError::CorruptOutput {
                    detail: "read-back differs from the golden model",
                    observed: response.unit_id as u64,
                }));
            }
        }

        Ok(DriverRun {
            unit_id: response.unit_id,
            outcomes,
            cycles: run.cycles,
            via_fallback: false,
        })
    }

    /// Drives one target with the full resilience policy: bounded retry
    /// with exponential backoff, watchdog recovery of hung units and
    /// lost responses, integrity-checked read-back, quarantine of
    /// repeatedly failing units, and (if enabled) software fallback so
    /// the target always completes. Recovery actions accumulate into
    /// `report`.
    ///
    /// With [`FaultPlan::none`] this is functionally identical to
    /// [`Self::run_target`] and the report stays clean.
    ///
    /// # Errors
    ///
    /// Only when every hardware retry failed *and*
    /// [`ResiliencePolicy::software_fallback`] is off (the last hardware
    /// error is returned), or for out-of-range `unit_id`.
    pub fn run_target_resilient(
        &mut self,
        unit_id: usize,
        target: &RealignmentTarget,
        plan: &mut FaultPlan,
        policy: &ResiliencePolicy,
        report: &mut ResilienceReport,
    ) -> Result<DriverRun, FpgaError> {
        if unit_id >= self.units.len() {
            return Err(FpgaError::NoSuchUnit {
                unit: unit_id,
                available: self.units.len(),
            });
        }
        let mut last_unit = unit_id;
        let mut last_error = None;
        for attempt in 0..=policy.max_retries {
            let Some(unit) = self.pick_unit(unit_id) else {
                break; // the whole sea is quarantined
            };
            last_unit = unit;
            match self.attempt_target(unit, target, plan, policy, report) {
                Ok(run) => {
                    self.failures[unit] = 0;
                    if attempt > 0 {
                        report.recovered_targets += 1;
                        report.recovered_cycles += run.cycles.total();
                    }
                    return Ok(run);
                }
                Err(failure) => {
                    match &failure.error {
                        FpgaError::Timeout { .. } => report.timeouts += 1,
                        FpgaError::CorruptOutput { .. } => report.corrupt_detected += 1,
                        FpgaError::UnitHung { .. } => report.unit_hangs += 1,
                        _ => {}
                    }
                    report.lost_cycles += failure.lost_cycles;
                    if matches!(failure.error, FpgaError::UnitHung { .. }) {
                        self.units[unit].reset();
                    }
                    if failure.unit_at_fault {
                        self.failures[unit] += 1;
                        let healthy = self.quarantined.iter().filter(|&&q| !q).count();
                        if self.failures[unit] >= policy.quarantine_threshold && healthy > 1 {
                            self.quarantined[unit] = true;
                            report.quarantined_units.push(unit);
                        }
                    }
                    let permanent = failure.permanent;
                    last_error = Some(failure.error);
                    if permanent {
                        break;
                    }
                    if attempt < policy.max_retries {
                        report.retries += 1;
                        report.lost_cycles += policy.backoff_base_cycles << attempt;
                    }
                }
            }
        }
        if policy.software_fallback {
            report.fallbacks += 1;
            return Ok(DriverRun {
                unit_id: last_unit,
                outcomes: IndelRealigner::new().realign_outcomes(target),
                cycles: UnitCycles::default(),
                via_fallback: true,
            });
        }
        Err(last_error.unwrap_or(FpgaError::NoResponse))
    }

    /// Drives a batch of targets round-robin with the resilience policy.
    /// The run always completes when software fallback is on; the report
    /// records every fault seen and recovery action taken, with the
    /// plan's injection counts snapshotted into
    /// [`ResilienceReport::faults`].
    ///
    /// # Errors
    ///
    /// Fails fast on the first unrecoverable target (fallback disabled).
    pub fn run_batch_resilient(
        &mut self,
        targets: &[RealignmentTarget],
        plan: &mut FaultPlan,
        policy: &ResiliencePolicy,
    ) -> Result<(Vec<DriverRun>, ResilienceReport), FpgaError> {
        let mut report = ResilienceReport::default();
        let mut runs = Vec::with_capacity(targets.len());
        for (i, target) in targets.iter().enumerate() {
            let preferred = i % self.units.len();
            runs.push(self.run_target_resilient(preferred, target, plan, policy, &mut report)?);
        }
        report.faults = plan.counts();
        Ok((runs, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_core::IndelRealigner;
    use ir_genome::{Qual, Read};

    fn figure4_target() -> RealignmentTarget {
        RealignmentTarget::builder(20)
            .reference("CCTTAGA".parse().unwrap())
            .consensus("ACCTGAA".parse().unwrap())
            .consensus("TCTGCCT".parse().unwrap())
            .read(
                Read::new(
                    "r0",
                    "TGAA".parse().unwrap(),
                    Qual::from_raw_scores(&[10, 20, 45, 10]).unwrap(),
                    0,
                )
                .unwrap(),
            )
            .read(
                Read::new(
                    "r1",
                    "CCTC".parse().unwrap(),
                    Qual::from_raw_scores(&[10, 60, 30, 20]).unwrap(),
                    0,
                )
                .unwrap(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn full_functional_path_matches_golden() {
        let mut driver = HostDriver::new(FpgaParams::iracc()).unwrap();
        let target = figure4_target();
        let run = driver.run_target(3, &target).unwrap();
        assert_eq!(run.unit_id, 3);
        let golden = IndelRealigner::new().realign(&target);
        // The decoded outcomes carry realign decisions and positions (the
        // offset for non-realigned reads is not transmitted).
        for (got, want) in run.outcomes.iter().zip(golden.outcomes()) {
            assert_eq!(got.realigned(), want.realigned());
            assert_eq!(got.new_pos(), want.new_pos());
        }
    }

    #[test]
    fn batch_round_robins_units() {
        let params = FpgaParams {
            num_units: 4,
            ..FpgaParams::iracc()
        };
        let mut driver = HostDriver::new(params).unwrap();
        let targets = vec![figure4_target(); 6];
        let runs = driver.run_batch(&targets).unwrap();
        let units: Vec<usize> = runs.iter().map(|r| r.unit_id).collect();
        assert_eq!(units, vec![0, 1, 2, 3, 0, 1]);
        for unit in &driver.units[..2] {
            assert_eq!(unit.targets_completed(), 2);
        }
    }

    #[test]
    fn out_of_range_unit_is_rejected() {
        let params = FpgaParams {
            num_units: 2,
            ..FpgaParams::iracc()
        };
        let mut driver = HostDriver::new(params).unwrap();
        let err = driver.run_target(5, &figure4_target()).unwrap_err();
        assert!(matches!(
            err,
            FpgaError::NoSuchUnit {
                unit: 5,
                available: 2
            }
        ));
    }

    #[test]
    fn driver_reports_cycles() {
        let mut driver = HostDriver::new(FpgaParams::serial()).unwrap();
        let run = driver.run_target(0, &figure4_target()).unwrap();
        assert!(run.cycles.total() > 0);
        assert!(run.cycles.hdc > run.cycles.selector);
    }

    #[test]
    fn resilient_run_with_inert_plan_matches_plain_run() {
        let target = figure4_target();
        let mut plain = HostDriver::new(FpgaParams::iracc()).unwrap();
        let want = plain.run_target(3, &target).unwrap();

        let mut driver = HostDriver::new(FpgaParams::iracc()).unwrap();
        let mut plan = FaultPlan::none();
        let mut report = ResilienceReport::default();
        let got = driver
            .run_target_resilient(
                3,
                &target,
                &mut plan,
                &ResiliencePolicy::default(),
                &mut report,
            )
            .unwrap();
        assert_eq!(got, want);
        assert!(report.is_clean(), "clean run, clean report: {report:?}");
    }

    #[test]
    fn permanent_hangs_fall_back_to_software() {
        use crate::fault::FaultRates;
        let target = figure4_target();
        let mut driver = HostDriver::new(FpgaParams::iracc()).unwrap();
        let mut plan = FaultPlan::seeded(
            0,
            FaultRates {
                unit_hang: 1.0,
                ..FaultRates::none()
            },
        );
        let policy = ResiliencePolicy::default();
        let mut report = ResilienceReport::default();
        let run = driver
            .run_target_resilient(0, &target, &mut plan, &policy, &mut report)
            .unwrap();
        assert!(run.via_fallback);
        assert_eq!(run.cycles.total(), 0);
        assert_eq!(
            run.outcomes,
            IndelRealigner::new().realign_outcomes(&target)
        );
        assert_eq!(report.fallbacks, 1);
        assert_eq!(report.unit_hangs, u64::from(policy.max_retries) + 1);
        assert_eq!(report.retries, u64::from(policy.max_retries));
        assert!(report.lost_cycles > 0);
        // Every attempt hung a unit; the repeat offenders are quarantined.
        assert!(!driver.quarantined_units().is_empty());
    }

    #[test]
    fn fallback_disabled_surfaces_the_hardware_error() {
        use crate::fault::FaultRates;
        let target = figure4_target();
        let mut driver = HostDriver::new(FpgaParams::iracc()).unwrap();
        let mut plan = FaultPlan::seeded(
            7,
            FaultRates {
                response_drop: 1.0,
                ..FaultRates::none()
            },
        );
        let policy = ResiliencePolicy {
            software_fallback: false,
            max_retries: 1,
            ..ResiliencePolicy::default()
        };
        let mut report = ResilienceReport::default();
        let err = driver
            .run_target_resilient(0, &target, &mut plan, &policy, &mut report)
            .unwrap_err();
        assert!(matches!(err, FpgaError::Timeout { .. }));
        assert_eq!(report.timeouts, 2);
    }

    #[test]
    fn corrupted_read_back_is_detected_and_retried() {
        use crate::fault::FaultRates;
        let target = figure4_target();
        let mut driver = HostDriver::new(FpgaParams::iracc()).unwrap();
        // Corrupt every read-back on the first tries; retries eventually
        // lose the race only if the rate stays 1.0 — so use 1.0 and let
        // fallback prove no corrupt result ever escapes.
        let mut plan = FaultPlan::seeded(
            21,
            FaultRates {
                output_bit_flip: 1.0,
                ..FaultRates::none()
            },
        );
        let mut report = ResilienceReport::default();
        let run = driver
            .run_target_resilient(
                0,
                &target,
                &mut plan,
                &ResiliencePolicy::default(),
                &mut report,
            )
            .unwrap();
        assert!(run.via_fallback);
        assert_eq!(
            run.outcomes,
            IndelRealigner::new().realign_outcomes(&target)
        );
        assert!(report.corrupt_detected > 0);
    }

    #[test]
    fn batch_completes_under_moderate_fault_rates() {
        use crate::fault::FaultRates;
        let params = FpgaParams {
            num_units: 4,
            ..FpgaParams::iracc()
        };
        let mut driver = HostDriver::new(params).unwrap();
        let targets = vec![figure4_target(); 24];
        let mut plan = FaultPlan::seeded(5, FaultRates::uniform(0.05));
        let (runs, report) = driver
            .run_batch_resilient(&targets, &mut plan, &ResiliencePolicy::default())
            .unwrap();
        assert_eq!(runs.len(), targets.len());
        // Byte-identical to the golden model: compare the encoded output
        // images (decode does not transmit offsets of non-realigned
        // reads, so the images are the canonical representation).
        let golden = IndelRealigner::new().realign_outcomes(&targets[0]);
        let want = encode_outputs(&golden, targets[0].start_pos());
        for run in &runs {
            assert_eq!(
                encode_outputs(&run.outcomes, targets[0].start_pos()),
                want,
                "no silent corruption, ever"
            );
        }
        assert_eq!(report.faults, plan.counts());
    }

    #[test]
    fn absorb_sums_tallies_and_unions_quarantine() {
        let mut a = ResilienceReport {
            retries: 2,
            fallbacks: 1,
            lost_cycles: 100,
            quarantined_units: vec![3, 1],
            ..ResilienceReport::default()
        };
        a.faults.unit_hangs = 4;
        let mut b = ResilienceReport {
            retries: 5,
            timeouts: 7,
            quarantined_units: vec![1, 2],
            ..ResilienceReport::default()
        };
        b.faults.dma_timeouts = 6;
        a.absorb(&b);
        assert_eq!(a.retries, 7);
        assert_eq!(a.fallbacks, 1);
        assert_eq!(a.timeouts, 7);
        assert_eq!(a.lost_cycles, 100);
        assert_eq!(a.faults.unit_hangs, 4);
        assert_eq!(a.faults.dma_timeouts, 6);
        assert_eq!(a.quarantined_units, vec![1, 2, 3]);

        // Absorbing into a clean report reproduces the other exactly
        // (modulo quarantine ordering, which absorb normalizes).
        let mut clean = ResilienceReport::default();
        clean.absorb(&b);
        assert_eq!(clean, b);
    }

    #[test]
    fn quarantine_never_claims_the_last_unit() {
        use crate::fault::FaultRates;
        let params = FpgaParams {
            num_units: 2,
            ..FpgaParams::iracc()
        };
        let mut driver = HostDriver::new(params).unwrap();
        let targets = vec![figure4_target(); 16];
        let mut plan = FaultPlan::seeded(
            3,
            FaultRates {
                unit_hang: 1.0,
                ..FaultRates::none()
            },
        );
        let (runs, report) = driver
            .run_batch_resilient(&targets, &mut plan, &ResiliencePolicy::default())
            .unwrap();
        assert!(runs.iter().all(|r| r.via_fallback));
        assert!(driver.quarantined_units().len() < driver.num_units());
        assert_eq!(report.fallbacks, targets.len() as u64);
    }
}
