//! The host control program's functional path.
//!
//! The paper's control programs "1) malloc input/output arrays in the
//! host memory, 2) transfer large data chunks from the host to the
//! FPGA-attached DRAM ..., 3) configure and start the accelerators one
//! unit at a time ..., and 4) wait for responses and configure and start
//! the units that are finished with the previous task" (§V-A).
//!
//! [`crate::system::AcceleratedSystem`] models that loop's *timing*; this
//! module executes it *functionally*: every target really is encoded into
//! host buffer images, configured through RoCC wire commands routed via
//! the MMIO queues, executed on an [`IrUnit`], and read back by decoding
//! the output buffers. It is the strongest end-to-end check that the ISA,
//! the buffer layout, the codec and the datapath compose correctly.

use ir_core::ReadOutcome;
use ir_genome::RealignmentTarget;

use crate::isa::IrCommand;
use crate::layout::{decode_outputs, encode_outputs, HostBuffers};
use crate::mmio::{MmioHub, UnitResponse};
use crate::params::FpgaParams;
use crate::unit::{IrUnit, UnitCycles};
use crate::FpgaError;

/// The outcome of one target driven through the full functional path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriverRun {
    /// Unit that executed the target.
    pub unit_id: usize,
    /// Decoded per-read outcomes (from the output buffer images).
    pub outcomes: Vec<ReadOutcome>,
    /// Cycle breakdown reported by the unit.
    pub cycles: UnitCycles,
}

/// A host driver bound to a sea of units through one MMIO hub.
#[derive(Debug)]
pub struct HostDriver {
    params: FpgaParams,
    hub: MmioHub,
    units: Vec<IrUnit>,
}

impl HostDriver {
    /// Creates a driver for `params.num_units` units.
    ///
    /// # Errors
    ///
    /// Propagates floorplan/timing validation from
    /// [`crate::resources::validate`].
    pub fn new(params: FpgaParams) -> Result<Self, FpgaError> {
        crate::resources::validate(&params)?;
        let units = (0..params.num_units).map(IrUnit::new).collect();
        Ok(HostDriver {
            params,
            hub: MmioHub::new(64),
            units,
        })
    }

    /// Number of units under this driver.
    pub fn num_units(&self) -> usize {
        self.units.len()
    }

    /// Drives one target end to end on `unit_id`: build buffer images,
    /// issue the RoCC command sequence through the MMIO hub and router,
    /// execute, post and poll the response, and decode the output buffers.
    ///
    /// # Errors
    ///
    /// - [`FpgaError::NoSuchUnit`] for an out-of-range unit.
    /// - [`FpgaError::BufferOverflow`] if the target exceeds the unit's
    ///   buffers.
    /// - Any configuration error surfaced by the unit's command FSM.
    pub fn run_target(
        &mut self,
        unit_id: usize,
        target: &RealignmentTarget,
    ) -> Result<DriverRun, FpgaError> {
        if unit_id >= self.units.len() {
            return Err(FpgaError::NoSuchUnit {
                unit: unit_id,
                available: self.units.len(),
            });
        }
        // Step 1–2: host arrays and the DMA image.
        let buffers = HostBuffers::from_target(target);
        buffers.check_fit()?;

        // Step 3: configure and start through the MMIO command queue; the
        // router pops and dispatches to the addressed unit.
        for cmd in IrUnit::command_sequence(target, unit_id as u8) {
            self.hub.push_command(cmd.encode())?;
            let wire = self.hub.pop_command().expect("just enqueued");
            let decoded = IrCommand::decode(wire)?;
            self.units[unit_id].apply(decoded)?;
        }

        // Execute; the unit posts its completion response.
        let run = self.units[unit_id].execute(target, &self.params)?;
        self.hub.push_response(UnitResponse {
            unit_id,
            cycles: run.cycles.total(),
        });

        // Step 4: poll the response, then read back and decode the output
        // buffers.
        let response = self.hub.poll_response().ok_or(FpgaError::NoResponse)?;
        let (flags, positions) = encode_outputs(&run.outcomes, target.start_pos());
        let outcomes = decode_outputs(&flags, &positions, target.num_reads(), target.start_pos())?;

        Ok(DriverRun {
            unit_id: response.unit_id,
            outcomes,
            cycles: run.cycles,
        })
    }

    /// Drives a batch of targets round-robin across all units.
    ///
    /// # Errors
    ///
    /// Fails fast on the first target that errors.
    pub fn run_batch(
        &mut self,
        targets: &[RealignmentTarget],
    ) -> Result<Vec<DriverRun>, FpgaError> {
        targets
            .iter()
            .enumerate()
            .map(|(i, t)| self.run_target(i % self.units.len(), t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_core::IndelRealigner;
    use ir_genome::{Qual, Read};

    fn figure4_target() -> RealignmentTarget {
        RealignmentTarget::builder(20)
            .reference("CCTTAGA".parse().unwrap())
            .consensus("ACCTGAA".parse().unwrap())
            .consensus("TCTGCCT".parse().unwrap())
            .read(
                Read::new(
                    "r0",
                    "TGAA".parse().unwrap(),
                    Qual::from_raw_scores(&[10, 20, 45, 10]).unwrap(),
                    0,
                )
                .unwrap(),
            )
            .read(
                Read::new(
                    "r1",
                    "CCTC".parse().unwrap(),
                    Qual::from_raw_scores(&[10, 60, 30, 20]).unwrap(),
                    0,
                )
                .unwrap(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn full_functional_path_matches_golden() {
        let mut driver = HostDriver::new(FpgaParams::iracc()).unwrap();
        let target = figure4_target();
        let run = driver.run_target(3, &target).unwrap();
        assert_eq!(run.unit_id, 3);
        let golden = IndelRealigner::new().realign(&target);
        // The decoded outcomes carry realign decisions and positions (the
        // offset for non-realigned reads is not transmitted).
        for (got, want) in run.outcomes.iter().zip(golden.outcomes()) {
            assert_eq!(got.realigned(), want.realigned());
            assert_eq!(got.new_pos(), want.new_pos());
        }
    }

    #[test]
    fn batch_round_robins_units() {
        let params = FpgaParams {
            num_units: 4,
            ..FpgaParams::iracc()
        };
        let mut driver = HostDriver::new(params).unwrap();
        let targets = vec![figure4_target(); 6];
        let runs = driver.run_batch(&targets).unwrap();
        let units: Vec<usize> = runs.iter().map(|r| r.unit_id).collect();
        assert_eq!(units, vec![0, 1, 2, 3, 0, 1]);
        for unit in &driver.units[..2] {
            assert_eq!(unit.targets_completed(), 2);
        }
    }

    #[test]
    fn out_of_range_unit_is_rejected() {
        let params = FpgaParams {
            num_units: 2,
            ..FpgaParams::iracc()
        };
        let mut driver = HostDriver::new(params).unwrap();
        let err = driver.run_target(5, &figure4_target()).unwrap_err();
        assert!(matches!(
            err,
            FpgaError::NoSuchUnit {
                unit: 5,
                available: 2
            }
        ));
    }

    #[test]
    fn driver_reports_cycles() {
        let mut driver = HostDriver::new(FpgaParams::serial()).unwrap();
        let run = driver.run_target(0, &figure4_target()).unwrap();
        assert!(run.cycles.total() > 0);
        assert!(run.cycles.hdc > run.cycles.selector);
    }
}
