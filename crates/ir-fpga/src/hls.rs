//! The SDAccel/HLS build the paper compares against (§V-B "Comparison with
//! HLS").
//!
//! The paper also implemented the accelerator through the Xilinx SDAccel
//! high-level-synthesis flow and measured only a 1.3–3.1× speedup over
//! GATK3, for three reasons this model captures:
//!
//! 1. **Xilinx OpenCL caps asynchronously schedulable compute units at
//!    16**, halving task parallelism.
//! 2. **HLS could not extract the coarse-grained parallelism** of the
//!    hand-written 32-lane Hamming distance calculator, "due to ambiguous
//!    memory dependencies and aliasing present in the algorithm". Loop
//!    pipelining with array partitioning still buys a modest fixed unroll
//!    of the innermost byte loop — but at an initiation interval above 1,
//!    and without inferring the data-dependent pruning branch.
//! 3. Once the generated design failed timing or performance goals it was
//!    effectively undebuggable ("a large number of unreadable states and
//!    variables"), so these inefficiencies stuck.

use crate::params::FpgaParams;
use crate::system::{AcceleratedSystem, Scheduling};
use crate::FpgaError;

/// OpenCL's hard limit on asynchronously scheduled compute units.
pub const OPENCL_MAX_COMPUTE_UNITS: usize = 16;

/// Bytes per cycle the HLS-pipelined inner loop issues (automatic
/// partial unroll via array partitioning — far short of the hand-written
/// 32-lane datapath).
pub const HLS_UNROLL_LANES: usize = 4;

/// Pipeline inefficiency of the generated kernel relative to the Chisel
/// datapath: the unrolled loop schedules at initiation interval 2.
pub const HLS_COMPUTE_OVERHEAD: f64 = 2.0;

/// Parameters of the HLS build: 16 compute units, 4-byte partial unroll at
/// II=2, no computation pruning.
pub fn hls_params() -> FpgaParams {
    FpgaParams {
        num_units: OPENCL_MAX_COMPUTE_UNITS,
        lanes: HLS_UNROLL_LANES,
        pruning: false,
        compute_overhead: HLS_COMPUTE_OVERHEAD,
        ..FpgaParams::serial()
    }
}

/// Builds the HLS system (asynchronous scheduling through the OpenCL
/// command queue, limited to 16 compute units).
///
/// # Errors
///
/// Propagates floorplan/timing validation errors (the 16-unit HLS design
/// always fits).
///
/// # Example
///
/// ```
/// use ir_fpga::hls::hls_system;
///
/// let system = hls_system()?;
/// assert_eq!(system.params().num_units, 16);
/// assert!(!system.params().pruning);
/// # Ok::<(), ir_fpga::FpgaError>(())
/// ```
pub fn hls_system() -> Result<AcceleratedSystem, FpgaError> {
    AcceleratedSystem::new(hls_params(), Scheduling::Asynchronous)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_genome::{Qual, Read, RealignmentTarget, Sequence};

    fn workload() -> Vec<RealignmentTarget> {
        (0..24)
            .map(|s| {
                let cons_len = 384 + 16 * (s % 5);
                let reference: Sequence = (0..cons_len)
                    .map(|i| ir_genome::Base::from_index((i * 3 + s) % 4))
                    .collect();
                let alt: Sequence = (0..cons_len)
                    .map(|i| ir_genome::Base::from_index((i * 3 + s + (i % 11 == 0) as usize) % 4))
                    .collect();
                let mut b = RealignmentTarget::builder(s as u64 * 100)
                    .reference(reference.clone())
                    .consensus(alt);
                for j in 0..6 {
                    let off = (j * 13) % (cons_len - 24);
                    b = b.read(
                        Read::new(
                            format!("r{j}"),
                            reference.slice(off, off + 24),
                            Qual::uniform(30, 24).unwrap(),
                            0,
                        )
                        .unwrap(),
                    );
                }
                b.build().unwrap()
            })
            .collect()
    }

    #[test]
    fn hls_config_shape() {
        let p = hls_params();
        assert_eq!(p.num_units, 16);
        assert_eq!(p.lanes, HLS_UNROLL_LANES);
        assert!(!p.pruning);
        assert!(p.compute_overhead > 1.0);
        // Net issue rate is 2 bytes/cycle/unit — 16× below the Chisel
        // datapath's 32.
        assert!((p.lanes as f64 / p.compute_overhead) < 32.0 / 8.0);
    }

    #[test]
    fn hls_is_much_slower_than_iracc() {
        let targets = workload();
        let hls = hls_system().unwrap().run(&targets);
        let iracc = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Asynchronous)
            .unwrap()
            .run(&targets);
        // 2× fewer units × no pruning × serial lanes × pipeline overhead:
        // well over an order of magnitude.
        assert!(hls.wall_time_s > 10.0 * iracc.wall_time_s);
    }

    #[test]
    fn hls_results_are_still_correct() {
        let targets = workload();
        let hls = hls_system().unwrap().run(&targets);
        let golden = ir_core::IndelRealigner::new();
        for (run, target) in hls.results.iter().zip(targets.iter()) {
            let want = golden.realign(target);
            assert_eq!(run.best, want.best_consensus());
            assert_eq!(run.outcomes, want.outcomes());
        }
    }
}
