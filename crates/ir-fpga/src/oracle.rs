//! The functional oracle: a memoized front-end over the unit datapath
//! model.
//!
//! The discrete-event backend separates *what* a unit computes (the
//! [`UnitRun`]: grid, outcomes, cycle breakdown) from *when* the schedule
//! makes it happen. The "what" is a pure function of the target and the
//! handful of [`FpgaParams`] fields the datapath reads — so when the same
//! workload is replayed under several configurations that share those
//! fields (e.g. the synchronous and asynchronous schedulers over identical
//! serial parameters, or a legacy-vs-engine differential run), every
//! simulation after the first is a cache hit.
//!
//! The oracle computes through [`simulate_target_fast`], the
//! equivalence-preserving jump-to-outcome kernel, so even cold misses skip
//! per-cycle stepping.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use ir_core::{MinWhd, MinWhdGrid, ReadOutcome};
use ir_genome::RealignmentTarget;

use crate::params::FpgaParams;
use crate::unit::{simulate_target_fast, UnitCycles, UnitRun};

/// The [`FpgaParams`] fields that determine a [`UnitRun`]. Everything else
/// (unit count, clock, DMA, latencies) only moves work around in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TimingKey {
    lanes: usize,
    pruning: bool,
    pair_overhead_cycles: u64,
    bus_bytes: u64,
    /// `compute_overhead` by bit pattern, so the key stays `Eq + Hash`.
    compute_overhead_bits: u64,
}

impl TimingKey {
    fn of(params: &FpgaParams) -> Self {
        TimingKey {
            lanes: params.lanes,
            pruning: params.pruning,
            pair_overhead_cycles: params.pair_overhead_cycles,
            bus_bytes: params.bus_bytes,
            compute_overhead_bits: params.compute_overhead.to_bits(),
        }
    }
}

/// Memoizes [`UnitRun`]s across runs of one fixed workload.
///
/// Targets are identified by their index in the submitted slice, so one
/// oracle serves exactly one workload: create a fresh oracle when the
/// target set changes. Hits return clones — callers (the resilience layer
/// in particular) are free to mutate the returned run.
///
/// # Example
///
/// ```
/// use ir_fpga::{FpgaParams, FunctionalOracle};
/// use ir_genome::{Qual, Read, RealignmentTarget};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let target = RealignmentTarget::builder(20)
///     .reference("CCTTAGA".parse()?)
///     .consensus("ACCTGAA".parse()?)
///     .read(Read::new("r0", "TGAA".parse()?, Qual::from_raw_scores(&[10, 20, 45, 10])?, 0)?)
///     .build()?;
/// let mut oracle = FunctionalOracle::new();
/// let first = oracle.simulate(&target, 0, &FpgaParams::serial());
/// let again = oracle.simulate(&target, 0, &FpgaParams::serial());
/// assert_eq!(first, again);
/// assert_eq!(oracle.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct FunctionalOracle {
    cache: HashMap<(TimingKey, usize), UnitRun>,
}

impl FunctionalOracle {
    /// An empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// The [`UnitRun`] for `target` (at `index` in its workload) under
    /// `params` — cached, or computed through the fast kernel and cached.
    pub fn simulate(
        &mut self,
        target: &RealignmentTarget,
        index: usize,
        params: &FpgaParams,
    ) -> UnitRun {
        let key = (TimingKey::of(params), index);
        if let Some(run) = self.cache.get(&key) {
            return run.clone();
        }
        let run = simulate_target_fast(target, params);
        self.cache.insert(key, run.clone());
        run
    }

    /// Populates the cache for every target in `targets` under `params`,
    /// sharding the datapath simulations across `threads` scoped worker
    /// threads (dynamic work-stealing distribution — target cost varies
    /// wildly with shape, so static chunking would straggle).
    ///
    /// Determinism: each [`UnitRun`] is a pure function of its target and
    /// the [`FpgaParams`] timing key, computed by the same
    /// [`simulate_target_fast`] kernel a cold [`Self::simulate`] call
    /// would run, and the workers touch disjoint targets. Results are
    /// merged into the cache in target-index order after every worker has
    /// joined, so a subsequent simulation run over a pre-warmed oracle is
    /// **bitwise identical** to a single-threaded (or entirely unwarmed)
    /// run — the system-level parity is pinned in `tests/event_parity.rs`.
    ///
    /// Already-cached entries are not recomputed, so warming is idempotent
    /// and composes with partially-warmed caches.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or a worker thread panics.
    pub fn precompute(
        &mut self,
        targets: &[RealignmentTarget],
        params: &FpgaParams,
        threads: usize,
    ) {
        assert!(threads > 0, "at least one thread required");
        let key = TimingKey::of(params);
        let missing: Vec<usize> = (0..targets.len())
            .filter(|&i| !self.cache.contains_key(&(key, i)))
            .collect();
        if missing.is_empty() {
            return;
        }
        if threads == 1 || missing.len() == 1 {
            for &i in &missing {
                let run = simulate_target_fast(&targets[i], params);
                self.cache.insert((key, i), run);
            }
            return;
        }

        let next = AtomicUsize::new(0);
        let mut computed: Vec<(usize, UnitRun)> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads.min(missing.len()))
                .map(|_| {
                    let (next, missing) = (&next, &missing);
                    scope.spawn(move |_| {
                        let mut local = Vec::new();
                        loop {
                            let slot = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&i) = missing.get(slot) else {
                                break;
                            };
                            local.push((i, simulate_target_fast(&targets[i], params)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("oracle worker panicked"))
                .collect()
        })
        .expect("oracle worker threads join");
        // Deterministic merge: insert in target-index order regardless of
        // which worker computed what.
        computed.sort_unstable_by_key(|&(i, _)| i);
        for (i, run) in computed {
            self.cache.insert((key, i), run);
        }
    }

    /// Number of memoized (configuration, target) entries.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// A new oracle holding the entries for `params` at the given global
    /// `indices`, re-keyed to local positions `0..indices.len()`.
    ///
    /// Multi-accelerator sweeps shard one workload across sub-slices whose
    /// targets keep their identity but lose their global index; a warmed
    /// pool oracle projected through `subset` serves each shard without
    /// recomputing anything. Global indices that were never memoized are
    /// simply absent from the projection (they fall back to cold
    /// computation on first use).
    pub fn subset(&self, params: &FpgaParams, indices: &[usize]) -> FunctionalOracle {
        let key = TimingKey::of(params);
        let mut cache = HashMap::with_capacity(indices.len());
        for (local, &global) in indices.iter().enumerate() {
            if let Some(run) = self.cache.get(&(key, global)) {
                cache.insert((key, local), run.clone());
            }
        }
        FunctionalOracle { cache }
    }

    /// Serializes the entries for `params` covering targets
    /// `0..n_targets` into the versioned binary snapshot format, or
    /// `None` if any of those entries has not been memoized yet.
    ///
    /// The encoding is exact — every field of every [`UnitRun`] is an
    /// integer, so [`Self::import_entries`] reconstructs entries that are
    /// `==` to the originals and a run over an imported oracle stays
    /// bitwise identical to a cold run (pinned by the round-trip test
    /// below and by `ir-bench`'s cache integration test).
    pub fn export_entries(&self, params: &FpgaParams, n_targets: usize) -> Option<Vec<u8>> {
        let key = TimingKey::of(params);
        let mut out = Vec::with_capacity(64 + n_targets * 256);
        out.extend_from_slice(SNAPSHOT_MAGIC);
        put_u64(&mut out, SNAPSHOT_VERSION);
        put_key(&mut out, &key);
        put_u64(&mut out, n_targets as u64);
        for i in 0..n_targets {
            let run = self.cache.get(&(key, i))?;
            put_run(&mut out, run);
        }
        Some(out)
    }

    /// Imports a snapshot produced by [`Self::export_entries`] under the
    /// same timing-relevant parameters, returning the number of entries
    /// loaded. The import is all-or-nothing: a magic/version/key mismatch
    /// or a truncated or trailing-garbage payload loads nothing.
    pub fn import_entries(&mut self, params: &FpgaParams, bytes: &[u8]) -> Result<usize, String> {
        let key = TimingKey::of(params);
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(SNAPSHOT_MAGIC.len())?;
        if magic != SNAPSHOT_MAGIC {
            return Err("bad oracle snapshot magic".into());
        }
        let version = r.u64()?;
        if version != SNAPSHOT_VERSION {
            return Err(format!("unsupported oracle snapshot version {version}"));
        }
        let stored = read_key(&mut r)?;
        if stored != key {
            return Err("oracle snapshot was built under different timing parameters".into());
        }
        let n = r.u64()? as usize;
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            entries.push(((key, i), read_run(&mut r)?));
        }
        if r.pos != bytes.len() {
            return Err("trailing bytes after oracle snapshot payload".into());
        }
        for (k, run) in entries {
            self.cache.insert(k, run);
        }
        Ok(n)
    }
}

/// Magic bytes opening every oracle snapshot.
const SNAPSHOT_MAGIC: &[u8] = b"IRORACLE";
/// Snapshot format version; bump on any layout change.
const SNAPSHOT_VERSION: u64 = 1;

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_key(out: &mut Vec<u8>, key: &TimingKey) {
    put_u64(out, key.lanes as u64);
    put_u64(out, u64::from(key.pruning));
    put_u64(out, key.pair_overhead_cycles);
    put_u64(out, key.bus_bytes);
    put_u64(out, key.compute_overhead_bits);
}

fn put_run(out: &mut Vec<u8>, run: &UnitRun) {
    put_u64(out, run.grid.num_consensuses() as u64);
    put_u64(out, run.grid.num_reads() as u64);
    for i in 0..run.grid.num_consensuses() {
        for cell in run.grid.row(i) {
            put_u64(out, cell.whd);
            put_u64(out, cell.offset as u64);
        }
    }
    put_u64(out, run.scores.len() as u64);
    for &s in &run.scores {
        put_u64(out, s);
    }
    put_u64(out, run.best as u64);
    put_u64(out, run.outcomes.len() as u64);
    for o in &run.outcomes {
        let (realign, new_offset, new_pos) = o.into_parts();
        put_u64(out, u64::from(realign));
        put_u64(out, new_offset as u64);
        put_u64(out, new_pos);
    }
    put_u64(out, run.cycles.load);
    put_u64(out, run.cycles.hdc);
    put_u64(out, run.cycles.selector);
    put_u64(out, run.cycles.drain);
    put_u64(out, run.comparisons);
    put_u64(out, run.offsets_pruned);
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or("truncated oracle snapshot")?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn usize(&mut self) -> Result<usize, String> {
        usize::try_from(self.u64()?).map_err(|_| "oversized count in oracle snapshot".into())
    }

    fn bool(&mut self) -> Result<bool, String> {
        match self.u64()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(format!("invalid boolean {v} in oracle snapshot")),
        }
    }
}

fn read_key(r: &mut Reader<'_>) -> Result<TimingKey, String> {
    Ok(TimingKey {
        lanes: r.usize()?,
        pruning: r.bool()?,
        pair_overhead_cycles: r.u64()?,
        bus_bytes: r.u64()?,
        compute_overhead_bits: r.u64()?,
    })
}

fn read_run(r: &mut Reader<'_>) -> Result<UnitRun, String> {
    let num_consensuses = r.usize()?;
    let num_reads = r.usize()?;
    let ncells = num_consensuses
        .checked_mul(num_reads)
        .ok_or("oversized grid in oracle snapshot")?;
    let mut cells = Vec::with_capacity(ncells.min(1 << 20));
    for _ in 0..ncells {
        cells.push(MinWhd {
            whd: r.u64()?,
            offset: r.usize()?,
        });
    }
    let grid = MinWhdGrid::from_cells(num_consensuses, num_reads, cells);
    let nscores = r.usize()?;
    let mut scores = Vec::with_capacity(nscores.min(1 << 20));
    for _ in 0..nscores {
        scores.push(r.u64()?);
    }
    let best = r.usize()?;
    let noutcomes = r.usize()?;
    let mut outcomes = Vec::with_capacity(noutcomes.min(1 << 20));
    for _ in 0..noutcomes {
        let realign = r.bool()?;
        let new_offset = r.usize()?;
        let new_pos = r.u64()?;
        outcomes.push(ReadOutcome::from_parts(realign, new_offset, new_pos));
    }
    let cycles = UnitCycles {
        load: r.u64()?,
        hdc: r.u64()?,
        selector: r.u64()?,
        drain: r.u64()?,
    };
    Ok(UnitRun {
        grid,
        scores,
        best,
        outcomes,
        cycles,
        comparisons: r.u64()?,
        offsets_pruned: r.u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::simulate_target;
    use ir_genome::{Qual, Read};

    fn target() -> RealignmentTarget {
        RealignmentTarget::builder(20)
            .reference("CCTTAGA".parse().unwrap())
            .consensus("ACCTGAA".parse().unwrap())
            .read(
                Read::new(
                    "r0",
                    "TGAA".parse().unwrap(),
                    Qual::from_raw_scores(&[10, 20, 45, 10]).unwrap(),
                    0,
                )
                .unwrap(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn oracle_matches_direct_simulation() {
        let t = target();
        let mut oracle = FunctionalOracle::new();
        for params in [FpgaParams::serial(), FpgaParams::iracc()] {
            assert_eq!(
                oracle.simulate(&t, 0, &params),
                simulate_target(&t, &params)
            );
        }
        assert_eq!(oracle.len(), 2, "distinct timing keys cache separately");
    }

    #[test]
    fn timing_irrelevant_params_share_entries() {
        let t = target();
        let mut oracle = FunctionalOracle::new();
        let serial = FpgaParams::serial();
        let fewer_units = FpgaParams {
            num_units: 4,
            cmd_latency_s: 1e-3,
            ..serial
        };
        let a = oracle.simulate(&t, 0, &serial);
        let b = oracle.simulate(&t, 0, &fewer_units);
        assert_eq!(a, b);
        assert_eq!(oracle.len(), 1, "unit count and latencies don't key");
    }

    /// A small workload of distinct shapes so work-stealing actually
    /// interleaves.
    fn varied_targets() -> Vec<RealignmentTarget> {
        let reads = ["TGAA", "CCTT", "AGAC", "CTTA", "TAGA", "GACC"];
        reads
            .iter()
            .enumerate()
            .map(|(i, r)| {
                RealignmentTarget::builder(i as u64 * 10)
                    .reference("CCTTAGACCTGATTACAGGA".parse().unwrap())
                    .consensus("ACCTGAACCTGATTACAGGA".parse().unwrap())
                    .read(
                        Read::new(
                            "r",
                            r.parse().unwrap(),
                            Qual::from_raw_scores(&[10, 20, 45, 10]).unwrap(),
                            0,
                        )
                        .unwrap(),
                    )
                    .build()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn parallel_precompute_matches_cold_simulation() {
        let targets = varied_targets();
        for params in [FpgaParams::serial(), FpgaParams::iracc()] {
            for threads in [1usize, 2, 3, 8] {
                let mut warm = FunctionalOracle::new();
                warm.precompute(&targets, &params, threads);
                assert_eq!(warm.len(), targets.len(), "{threads} threads");
                let mut cold = FunctionalOracle::new();
                for (i, t) in targets.iter().enumerate() {
                    assert_eq!(
                        warm.simulate(t, i, &params),
                        cold.simulate(t, i, &params),
                        "target {i}, {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn precompute_is_idempotent_and_composes_with_partial_caches() {
        let targets = varied_targets();
        let params = FpgaParams::iracc();
        let mut oracle = FunctionalOracle::new();
        // Seed a partial cache through the normal path…
        let first = oracle.simulate(&targets[2], 2, &params);
        // …then warm the rest in parallel, twice.
        oracle.precompute(&targets, &params, 4);
        oracle.precompute(&targets, &params, 4);
        assert_eq!(oracle.len(), targets.len());
        assert_eq!(oracle.simulate(&targets[2], 2, &params), first);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn precompute_zero_threads_panics() {
        FunctionalOracle::new().precompute(&[], &FpgaParams::serial(), 0);
    }

    #[test]
    fn subset_rekeys_globals_to_locals_and_skips_missing() {
        let targets = varied_targets();
        let params = FpgaParams::iracc();
        let mut pool = FunctionalOracle::new();
        pool.precompute(&targets, &params, 1);
        let indices = [4usize, 1, 5];
        let mut shard = pool.subset(&params, &indices);
        assert_eq!(shard.len(), indices.len());
        for (local, &global) in indices.iter().enumerate() {
            assert_eq!(
                shard.simulate(&targets[global], local, &params),
                pool.simulate(&targets[global], global, &params),
                "local {local} must mirror global {global}"
            );
        }
        // Indices never memoized in the pool just don't project.
        let sparse = FunctionalOracle::new().subset(&params, &[0, 1]);
        assert!(sparse.is_empty());
        // A different timing key projects nothing either.
        assert!(pool.subset(&FpgaParams::serial(), &indices).is_empty());
    }

    #[test]
    fn export_import_round_trips_bit_exactly() {
        let targets = varied_targets();
        for params in [FpgaParams::serial(), FpgaParams::iracc()] {
            let mut warm = FunctionalOracle::new();
            warm.precompute(&targets, &params, 1);
            let bytes = warm
                .export_entries(&params, targets.len())
                .expect("fully warmed oracle exports");
            let mut cold = FunctionalOracle::new();
            let n = cold.import_entries(&params, &bytes).expect("import");
            assert_eq!(n, targets.len());
            for (i, t) in targets.iter().enumerate() {
                assert_eq!(
                    cold.simulate(t, i, &params),
                    warm.simulate(t, i, &params),
                    "target {i}"
                );
            }
        }
    }

    #[test]
    fn export_requires_full_coverage() {
        let targets = varied_targets();
        let params = FpgaParams::serial();
        let mut oracle = FunctionalOracle::new();
        oracle.simulate(&targets[0], 0, &params);
        assert!(oracle.export_entries(&params, targets.len()).is_none());
        assert!(oracle.export_entries(&params, 1).is_some());
    }

    #[test]
    fn import_rejects_corrupt_and_mismatched_snapshots() {
        let targets = varied_targets();
        let params = FpgaParams::serial();
        let mut oracle = FunctionalOracle::new();
        oracle.precompute(&targets, &params, 1);
        let bytes = oracle.export_entries(&params, targets.len()).unwrap();

        let mut fresh = FunctionalOracle::new();
        // Wrong timing key.
        assert!(fresh.import_entries(&FpgaParams::iracc(), &bytes).is_err());
        // Truncation.
        assert!(fresh
            .import_entries(&params, &bytes[..bytes.len() - 1])
            .is_err());
        // Trailing garbage.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(fresh.import_entries(&params, &padded).is_err());
        // Bad magic.
        let mut garbled = bytes.clone();
        garbled[0] ^= 0xFF;
        assert!(fresh.import_entries(&params, &garbled).is_err());
        // Every rejection is all-or-nothing.
        assert!(fresh.is_empty());
        // The pristine payload still loads.
        assert_eq!(
            fresh.import_entries(&params, &bytes).unwrap(),
            targets.len()
        );
    }

    #[test]
    fn mutating_a_returned_run_does_not_poison_the_cache() {
        let t = target();
        let mut oracle = FunctionalOracle::new();
        let mut first = oracle.simulate(&t, 0, &FpgaParams::serial());
        first.comparisons = 0;
        first.cycles = Default::default();
        let second = oracle.simulate(&t, 0, &FpgaParams::serial());
        assert_ne!(second.comparisons, 0);
    }
}
