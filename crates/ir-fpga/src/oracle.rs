//! The functional oracle: a memoized front-end over the unit datapath
//! model.
//!
//! The discrete-event backend separates *what* a unit computes (the
//! [`UnitRun`]: grid, outcomes, cycle breakdown) from *when* the schedule
//! makes it happen. The "what" is a pure function of the target and the
//! handful of [`FpgaParams`] fields the datapath reads — so when the same
//! workload is replayed under several configurations that share those
//! fields (e.g. the synchronous and asynchronous schedulers over identical
//! serial parameters, or a legacy-vs-engine differential run), every
//! simulation after the first is a cache hit.
//!
//! The oracle computes through [`simulate_target_fast`], the
//! equivalence-preserving jump-to-outcome kernel, so even cold misses skip
//! per-cycle stepping.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use ir_genome::RealignmentTarget;

use crate::params::FpgaParams;
use crate::unit::{simulate_target_fast, UnitRun};

/// The [`FpgaParams`] fields that determine a [`UnitRun`]. Everything else
/// (unit count, clock, DMA, latencies) only moves work around in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TimingKey {
    lanes: usize,
    pruning: bool,
    pair_overhead_cycles: u64,
    bus_bytes: u64,
    /// `compute_overhead` by bit pattern, so the key stays `Eq + Hash`.
    compute_overhead_bits: u64,
}

impl TimingKey {
    fn of(params: &FpgaParams) -> Self {
        TimingKey {
            lanes: params.lanes,
            pruning: params.pruning,
            pair_overhead_cycles: params.pair_overhead_cycles,
            bus_bytes: params.bus_bytes,
            compute_overhead_bits: params.compute_overhead.to_bits(),
        }
    }
}

/// Memoizes [`UnitRun`]s across runs of one fixed workload.
///
/// Targets are identified by their index in the submitted slice, so one
/// oracle serves exactly one workload: create a fresh oracle when the
/// target set changes. Hits return clones — callers (the resilience layer
/// in particular) are free to mutate the returned run.
///
/// # Example
///
/// ```
/// use ir_fpga::{FpgaParams, FunctionalOracle};
/// use ir_genome::{Qual, Read, RealignmentTarget};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let target = RealignmentTarget::builder(20)
///     .reference("CCTTAGA".parse()?)
///     .consensus("ACCTGAA".parse()?)
///     .read(Read::new("r0", "TGAA".parse()?, Qual::from_raw_scores(&[10, 20, 45, 10])?, 0)?)
///     .build()?;
/// let mut oracle = FunctionalOracle::new();
/// let first = oracle.simulate(&target, 0, &FpgaParams::serial());
/// let again = oracle.simulate(&target, 0, &FpgaParams::serial());
/// assert_eq!(first, again);
/// assert_eq!(oracle.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct FunctionalOracle {
    cache: HashMap<(TimingKey, usize), UnitRun>,
}

impl FunctionalOracle {
    /// An empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// The [`UnitRun`] for `target` (at `index` in its workload) under
    /// `params` — cached, or computed through the fast kernel and cached.
    pub fn simulate(
        &mut self,
        target: &RealignmentTarget,
        index: usize,
        params: &FpgaParams,
    ) -> UnitRun {
        let key = (TimingKey::of(params), index);
        if let Some(run) = self.cache.get(&key) {
            return run.clone();
        }
        let run = simulate_target_fast(target, params);
        self.cache.insert(key, run.clone());
        run
    }

    /// Populates the cache for every target in `targets` under `params`,
    /// sharding the datapath simulations across `threads` scoped worker
    /// threads (dynamic work-stealing distribution — target cost varies
    /// wildly with shape, so static chunking would straggle).
    ///
    /// Determinism: each [`UnitRun`] is a pure function of its target and
    /// the [`FpgaParams`] timing key, computed by the same
    /// [`simulate_target_fast`] kernel a cold [`Self::simulate`] call
    /// would run, and the workers touch disjoint targets. Results are
    /// merged into the cache in target-index order after every worker has
    /// joined, so a subsequent simulation run over a pre-warmed oracle is
    /// **bitwise identical** to a single-threaded (or entirely unwarmed)
    /// run — the system-level parity is pinned in `tests/event_parity.rs`.
    ///
    /// Already-cached entries are not recomputed, so warming is idempotent
    /// and composes with partially-warmed caches.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or a worker thread panics.
    pub fn precompute(
        &mut self,
        targets: &[RealignmentTarget],
        params: &FpgaParams,
        threads: usize,
    ) {
        assert!(threads > 0, "at least one thread required");
        let key = TimingKey::of(params);
        let missing: Vec<usize> = (0..targets.len())
            .filter(|&i| !self.cache.contains_key(&(key, i)))
            .collect();
        if missing.is_empty() {
            return;
        }
        if threads == 1 || missing.len() == 1 {
            for &i in &missing {
                let run = simulate_target_fast(&targets[i], params);
                self.cache.insert((key, i), run);
            }
            return;
        }

        let next = AtomicUsize::new(0);
        let mut computed: Vec<(usize, UnitRun)> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads.min(missing.len()))
                .map(|_| {
                    let (next, missing) = (&next, &missing);
                    scope.spawn(move |_| {
                        let mut local = Vec::new();
                        loop {
                            let slot = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&i) = missing.get(slot) else {
                                break;
                            };
                            local.push((i, simulate_target_fast(&targets[i], params)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("oracle worker panicked"))
                .collect()
        })
        .expect("oracle worker threads join");
        // Deterministic merge: insert in target-index order regardless of
        // which worker computed what.
        computed.sort_unstable_by_key(|&(i, _)| i);
        for (i, run) in computed {
            self.cache.insert((key, i), run);
        }
    }

    /// Number of memoized (configuration, target) entries.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::simulate_target;
    use ir_genome::{Qual, Read};

    fn target() -> RealignmentTarget {
        RealignmentTarget::builder(20)
            .reference("CCTTAGA".parse().unwrap())
            .consensus("ACCTGAA".parse().unwrap())
            .read(
                Read::new(
                    "r0",
                    "TGAA".parse().unwrap(),
                    Qual::from_raw_scores(&[10, 20, 45, 10]).unwrap(),
                    0,
                )
                .unwrap(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn oracle_matches_direct_simulation() {
        let t = target();
        let mut oracle = FunctionalOracle::new();
        for params in [FpgaParams::serial(), FpgaParams::iracc()] {
            assert_eq!(
                oracle.simulate(&t, 0, &params),
                simulate_target(&t, &params)
            );
        }
        assert_eq!(oracle.len(), 2, "distinct timing keys cache separately");
    }

    #[test]
    fn timing_irrelevant_params_share_entries() {
        let t = target();
        let mut oracle = FunctionalOracle::new();
        let serial = FpgaParams::serial();
        let fewer_units = FpgaParams {
            num_units: 4,
            cmd_latency_s: 1e-3,
            ..serial
        };
        let a = oracle.simulate(&t, 0, &serial);
        let b = oracle.simulate(&t, 0, &fewer_units);
        assert_eq!(a, b);
        assert_eq!(oracle.len(), 1, "unit count and latencies don't key");
    }

    /// A small workload of distinct shapes so work-stealing actually
    /// interleaves.
    fn varied_targets() -> Vec<RealignmentTarget> {
        let reads = ["TGAA", "CCTT", "AGAC", "CTTA", "TAGA", "GACC"];
        reads
            .iter()
            .enumerate()
            .map(|(i, r)| {
                RealignmentTarget::builder(i as u64 * 10)
                    .reference("CCTTAGACCTGATTACAGGA".parse().unwrap())
                    .consensus("ACCTGAACCTGATTACAGGA".parse().unwrap())
                    .read(
                        Read::new(
                            "r",
                            r.parse().unwrap(),
                            Qual::from_raw_scores(&[10, 20, 45, 10]).unwrap(),
                            0,
                        )
                        .unwrap(),
                    )
                    .build()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn parallel_precompute_matches_cold_simulation() {
        let targets = varied_targets();
        for params in [FpgaParams::serial(), FpgaParams::iracc()] {
            for threads in [1usize, 2, 3, 8] {
                let mut warm = FunctionalOracle::new();
                warm.precompute(&targets, &params, threads);
                assert_eq!(warm.len(), targets.len(), "{threads} threads");
                let mut cold = FunctionalOracle::new();
                for (i, t) in targets.iter().enumerate() {
                    assert_eq!(
                        warm.simulate(t, i, &params),
                        cold.simulate(t, i, &params),
                        "target {i}, {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn precompute_is_idempotent_and_composes_with_partial_caches() {
        let targets = varied_targets();
        let params = FpgaParams::iracc();
        let mut oracle = FunctionalOracle::new();
        // Seed a partial cache through the normal path…
        let first = oracle.simulate(&targets[2], 2, &params);
        // …then warm the rest in parallel, twice.
        oracle.precompute(&targets, &params, 4);
        oracle.precompute(&targets, &params, 4);
        assert_eq!(oracle.len(), targets.len());
        assert_eq!(oracle.simulate(&targets[2], 2, &params), first);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn precompute_zero_threads_panics() {
        FunctionalOracle::new().precompute(&[], &FpgaParams::serial(), 0);
    }

    #[test]
    fn mutating_a_returned_run_does_not_poison_the_cache() {
        let t = target();
        let mut oracle = FunctionalOracle::new();
        let mut first = oracle.simulate(&t, 0, &FpgaParams::serial());
        first.comparisons = 0;
        first.cycles = Default::default();
        let second = oracle.simulate(&t, 0, &FpgaParams::serial());
        assert_ne!(second.comparisons, 0);
    }
}
