//! Round-robin memory arbiters (paper Figure 6).
//!
//! Each IR unit's five memory channels (three MemReaders, two MemWriters)
//! meet in an **Intra-IR Mem Read/Write Arbiter (5:1)**; the 32 per-unit
//! channels then meet in the **IR Mem ARB 32:1** in front of the AXI
//! crossbar and the DDR controller. One TileLink beat moves per grant per
//! cycle.
//!
//! The system simulator prices transfers with a max-min fair bandwidth
//! model ([`crate::mem::SharedChannel`]); this module provides the actual
//! cycle-accurate arbiter those numbers abstract, plus the test that pins
//! the abstraction to it: interleaved round-robin service completes each
//! port within one round of the fair-share prediction.

/// A rotating-priority (round-robin) arbiter over `ports` requestors.
///
/// # Example
///
/// ```
/// use ir_fpga::arbiter::RoundRobinArbiter;
///
/// let mut arb = RoundRobinArbiter::new(3);
/// assert_eq!(arb.grant(&[true, false, true]), Some(0));
/// // Priority rotates past the last grantee.
/// assert_eq!(arb.grant(&[true, false, true]), Some(2));
/// assert_eq!(arb.grant(&[true, false, true]), Some(0));
/// ```
#[derive(Debug, Clone)]
pub struct RoundRobinArbiter {
    ports: usize,
    next: usize,
}

impl RoundRobinArbiter {
    /// Creates an arbiter with priority initially at port 0.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0, "arbiter needs at least one port");
        RoundRobinArbiter { ports, next: 0 }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Grants one requesting port this cycle (rotating priority), or
    /// `None` if nothing requests.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != ports`.
    pub fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.ports, "request vector width mismatch");
        for i in 0..self.ports {
            let port = (self.next + i) % self.ports;
            if requests[port] {
                self.next = (port + 1) % self.ports;
                return Some(port);
            }
        }
        None
    }
}

/// Completion cycles of `demands` (beats needed per port) drained through
/// one single-beat-per-cycle channel under round-robin arbitration.
/// `completion[i]` is the cycle (1-based) on which port `i`'s last beat
/// moves; ports with zero demand complete at cycle 0.
pub fn drain_round_robin(demands: &[u64]) -> Vec<u64> {
    let mut remaining = demands.to_vec();
    let mut completion = vec![0u64; demands.len()];
    let mut arb = RoundRobinArbiter::new(demands.len().max(1));
    let mut cycle = 0u64;
    loop {
        let requests: Vec<bool> = remaining.iter().map(|&r| r > 0).collect();
        let Some(port) = arb.grant(&requests) else {
            break;
        };
        cycle += 1;
        remaining[port] -= 1;
        if remaining[port] == 0 {
            completion[port] = cycle;
        }
    }
    completion
}

/// Contention summary of one arbitrated drain (what the telemetry layer
/// records per target without re-running the cycle loop).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArbiterStats {
    /// Beats granted (= total demand; the channel never idles mid-drain).
    pub grants: u64,
    /// Cycles during which two or more ports held pending beats — the
    /// cycles round-robin interleaving actually cost somebody.
    pub conflict_cycles: u64,
    /// Most ports simultaneously pending (the queue-depth high-water mark,
    /// reached on the very first cycle).
    pub queue_depth_hwm: u64,
}

/// Round-robin contention statistics for `demands` beats per port,
/// exact with respect to [`drain_round_robin`]: a cycle is a conflict
/// cycle iff two or more ports held pending beats at its start, and —
/// since the pending count only ever decreases — the number of such
/// cycles is exactly the second-largest port completion time.
pub fn contention_stats(demands: &[u64]) -> ArbiterStats {
    let queue_depth_hwm = demands.iter().filter(|&&d| d > 0).count() as u64;
    if queue_depth_hwm == 0 {
        return ArbiterStats::default();
    }
    let completion = drain_round_robin(demands);
    let (mut largest, mut second) = (0u64, 0u64);
    for &c in &completion {
        if c > largest {
            second = largest;
            largest = c;
        } else if c > second {
            second = c;
        }
    }
    ArbiterStats {
        grants: demands.iter().sum(),
        conflict_cycles: second,
        queue_depth_hwm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_requestor_gets_every_cycle() {
        let mut arb = RoundRobinArbiter::new(5);
        for _ in 0..10 {
            assert_eq!(arb.grant(&[false, false, true, false, false]), Some(2));
        }
    }

    #[test]
    fn idle_arbiter_grants_nothing() {
        let mut arb = RoundRobinArbiter::new(4);
        assert_eq!(arb.grant(&[false; 4]), None);
    }

    #[test]
    fn grants_are_fair_over_a_window() {
        let mut arb = RoundRobinArbiter::new(5);
        let mut counts = [0u32; 5];
        for _ in 0..1000 {
            let port = arb.grant(&[true; 5]).expect("all requesting");
            counts[port] += 1;
        }
        assert_eq!(counts, [200; 5], "perfect fairness under full load");
    }

    #[test]
    fn rotation_prevents_starvation_with_partial_load() {
        let mut arb = RoundRobinArbiter::new(3);
        let mut counts = [0u32; 3];
        for i in 0..300 {
            // Port 1 requests only every third cycle; the others always.
            let requests = [true, i % 3 == 0, true];
            if let Some(port) = arb.grant(&requests) {
                counts[port] += 1;
            }
        }
        assert!(counts[1] > 0, "intermittent requestor must still be served");
        assert!(counts[0] > 0 && counts[2] > 0);
    }

    #[test]
    fn drain_matches_fair_share_prediction() {
        // Five equal demands (the intra-unit 5:1 case): everyone finishes
        // within one round of the analytic fair-share time.
        let demands = [100u64; 5];
        let completion = drain_round_robin(&demands);
        for &c in &completion {
            assert!((496..=500).contains(&c), "completion {c} vs fair-share 500");
        }
    }

    #[test]
    fn drain_short_demands_finish_early() {
        // One small reader among four heavy ones completes near 5× its own
        // demand (its fair share), not near the total.
        let demands = [10u64, 400, 400, 400, 400];
        let completion = drain_round_robin(&demands);
        assert!(completion[0] <= 50, "small port done at {}", completion[0]);
        let max = *completion.iter().max().unwrap();
        assert_eq!(max, 1610, "channel busy every cycle until all beats move");
    }

    #[test]
    fn drain_agrees_with_shared_channel_model() {
        // The 32:1 system arbiter under full load must match the
        // SharedChannel fair-sharing abstraction the scheduler uses.
        use crate::mem::{SharedChannel, TransferRequest};
        let demands = [64u64; 32];
        let completion = drain_round_robin(&demands);
        // SharedChannel with 1 beat/cycle total and no per-client cap:
        let link = SharedChannel::new(1.0, 1.0);
        let requests: Vec<TransferRequest> = demands
            .iter()
            .map(|&b| TransferRequest {
                bytes: b,
                ready_at_s: 0.0,
            })
            .collect();
        let finish = link.schedule(&requests);
        for (c, f) in completion.iter().zip(&finish) {
            let fair = *f; // "seconds" = cycles at 1 beat/cycle
            assert!(
                (*c as f64 - fair).abs() <= 32.0,
                "cycle-accurate {c} vs fair-share {fair}"
            );
        }
    }

    #[test]
    fn zero_demands_complete_at_zero() {
        assert_eq!(drain_round_robin(&[0, 0, 3]), vec![0, 0, 3]);
    }

    /// Re-runs the exact cycle loop counting, per granted cycle, how many
    /// ports still held pending beats.
    fn exact_stats(demands: &[u64]) -> ArbiterStats {
        let mut remaining = demands.to_vec();
        let mut arb = RoundRobinArbiter::new(demands.len().max(1));
        let mut stats = ArbiterStats {
            queue_depth_hwm: demands.iter().filter(|&&d| d > 0).count() as u64,
            ..ArbiterStats::default()
        };
        loop {
            let requests: Vec<bool> = remaining.iter().map(|&r| r > 0).collect();
            let pending = requests.iter().filter(|&&r| r).count() as u64;
            let Some(port) = arb.grant(&requests) else {
                break;
            };
            stats.grants += 1;
            if pending >= 2 {
                stats.conflict_cycles += 1;
            }
            remaining[port] -= 1;
        }
        stats
    }

    #[test]
    fn contention_stats_match_exact_drain() {
        for demands in [
            vec![0u64, 0, 0],
            vec![7],
            vec![100; 5],
            vec![10, 400, 400, 400, 400],
            vec![0, 3, 9, 1, 0, 27],
            vec![64; 32],
        ] {
            assert_eq!(
                contention_stats(&demands),
                exact_stats(&demands),
                "demands {demands:?}"
            );
        }
    }

    #[test]
    fn contention_stats_edge_cases() {
        assert_eq!(contention_stats(&[]), ArbiterStats::default());
        let solo = contention_stats(&[42]);
        assert_eq!(solo.grants, 42);
        assert_eq!(solo.conflict_cycles, 0);
        assert_eq!(solo.queue_depth_hwm, 1);
        // Two equal demands conflict until the first port drains its last
        // beat (cycle 9 of 10); the final beat moves uncontended.
        let pair = contention_stats(&[5, 5]);
        assert_eq!(pair.grants, 10);
        assert_eq!(pair.conflict_cycles, 9);
        assert_eq!(pair.queue_depth_hwm, 2);
    }
}
