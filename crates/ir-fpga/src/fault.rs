//! Seeded fault injection at the modeled hardware boundaries.
//!
//! A real F1 deployment fails in ways the cycle model's happy path never
//! exercises: a PCIe DMA descriptor chain stalls or delivers a short
//! payload, the AXI-Lite hub drops or duplicates a completion response
//! under pressure, a unit's FSM wedges mid-target, or an output buffer
//! comes back with flipped bits. [`FaultPlan`] injects exactly those
//! faults, from a seeded RNG so every run is reproducible, at the modules
//! that model the failing hardware ([`crate::dma`], [`crate::mmio`],
//! [`crate::unit`], [`crate::layout`]).
//!
//! The host-side recovery machinery that turns these faults back into
//! correct runs lives in [`crate::driver`] (functional path) and
//! [`crate::system`] (timing path). `FaultPlan::none()` is inert: it draws
//! nothing from any RNG, so fault-free runs are bit-identical to runs that
//! never heard of this module (asserted by `tests/resilience.rs`).

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fault rate that is not a probability: `NaN`, infinite, or outside
/// `[0, 1]`. Carries the offending site name and raw value so the message
/// pinpoints which knob is wrong.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRateError {
    /// The [`FaultRates`] field that failed validation.
    pub site: &'static str,
    /// The value that field held.
    pub value: f64,
}

impl fmt::Display for FaultRateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fault rate {} = {} is not a probability in [0, 1]",
            self.site, self.value
        )
    }
}

impl std::error::Error for FaultRateError {}

/// Per-site fault probabilities. Each is the chance the site fails on one
/// *event* (one transfer, one response, one target execution, one output
/// read-back), independent across events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// A PCIe DMA descriptor chain times out (no data arrives).
    pub dma_timeout: f64,
    /// A DMA transfer completes but delivers fewer bytes than requested.
    pub dma_truncation: f64,
    /// The MMIO hub loses a unit's completion response.
    pub response_drop: f64,
    /// The MMIO hub posts a unit's completion response twice.
    pub response_duplicate: f64,
    /// A unit's FSM hangs mid-target and sits stuck-busy.
    pub unit_hang: f64,
    /// The output buffer image suffers a single-bit flip.
    pub output_bit_flip: f64,
}

impl FaultRates {
    /// All rates zero.
    pub fn none() -> Self {
        FaultRates::uniform(0.0)
    }

    /// The same rate at every site.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    pub fn uniform(rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "fault rate must be a probability"
        );
        FaultRates {
            dma_timeout: rate,
            dma_truncation: rate,
            response_drop: rate,
            response_duplicate: rate,
            unit_hang: rate,
            output_bit_flip: rate,
        }
    }

    /// The default study rates: every site fails once per ~thousand
    /// events — far above anything a healthy deployment shows, low enough
    /// that bounded retry recovers nearly everything.
    pub fn default_rates() -> Self {
        FaultRates::uniform(1e-3)
    }

    /// The rates as `(site, value)` pairs, in declaration order.
    fn sites(&self) -> [(&'static str, f64); 6] {
        [
            ("dma_timeout", self.dma_timeout),
            ("dma_truncation", self.dma_truncation),
            ("response_drop", self.response_drop),
            ("response_duplicate", self.response_duplicate),
            ("unit_hang", self.unit_hang),
            ("output_bit_flip", self.output_bit_flip),
        ]
    }

    /// Validates every rate, reporting the first degenerate one.
    ///
    /// A rate is degenerate when it is `NaN` or outside `[0, 1]` — either
    /// would previously have panicked deep inside [`FaultPlan::seeded`];
    /// callers assembling rates from untrusted input (CLI flags, fuzzer
    /// genomes, service configs) should check here first.
    ///
    /// # Errors
    ///
    /// [`FaultRateError`] naming the first out-of-range site.
    pub fn checked(&self) -> Result<(), FaultRateError> {
        for (site, value) in self.sites() {
            if !(0.0..=1.0).contains(&value) {
                return Err(FaultRateError { site, value });
            }
        }
        Ok(())
    }

    /// Forces every rate into `[0, 1]`: `NaN` becomes `0`, everything else
    /// saturates at the nearest bound. Use when a degenerate input should
    /// degrade gracefully rather than be rejected (the fuzzer's mutator
    /// does this so extreme mutations still produce runnable plans).
    pub fn clamped(&self) -> Self {
        let clamp = |p: f64| if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        FaultRates {
            dma_timeout: clamp(self.dma_timeout),
            dma_truncation: clamp(self.dma_truncation),
            response_drop: clamp(self.response_drop),
            response_duplicate: clamp(self.response_duplicate),
            unit_hang: clamp(self.unit_hang),
            output_bit_flip: clamp(self.output_bit_flip),
        }
    }

    /// Whether every rate is exactly zero — a plan built from such rates
    /// can never inject anything.
    pub fn is_vacuous(&self) -> bool {
        self.sites().iter().all(|&(_, p)| p == 0.0)
    }

    fn validate(&self) {
        if let Err(e) = self.checked() {
            panic!("{e}: {} must be a probability", e.site);
        }
    }
}

/// How many faults each site actually injected (not how many the rates
/// would predict) — the ground truth a [`crate::driver::ResilienceReport`]
/// is reconciled against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounts {
    /// DMA chains that timed out.
    pub dma_timeouts: u64,
    /// DMA chains that delivered short.
    pub dma_truncations: u64,
    /// Responses dropped by the hub.
    pub responses_dropped: u64,
    /// Responses duplicated by the hub.
    pub responses_duplicated: u64,
    /// Unit executions that hung.
    pub unit_hangs: u64,
    /// Output images with a flipped bit.
    pub output_bit_flips: u64,
}

impl FaultCounts {
    /// Total faults injected across all sites.
    pub fn total(&self) -> u64 {
        self.dma_timeouts
            + self.dma_truncations
            + self.responses_dropped
            + self.responses_duplicated
            + self.unit_hangs
            + self.output_bit_flips
    }
}

/// What one DMA transfer did under fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaFault {
    /// The descriptor chain never completed.
    Timeout,
    /// The chain completed but moved only `delivered` of the requested
    /// bytes.
    Truncation {
        /// Bytes that actually arrived.
        delivered: u64,
    },
}

/// What the MMIO hub did with one completion response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseFault {
    /// Delivered normally.
    Delivered,
    /// Lost; the host's poll loop will spin until its watchdog fires.
    Dropped,
    /// Posted twice; the host must tolerate the stale duplicate.
    Duplicated,
}

/// A seeded fault-injection schedule.
///
/// One plan is threaded through a run; each injection site asks it
/// whether this event fails. [`FaultPlan::none`] never fails anything and
/// never touches an RNG.
///
/// # Example
///
/// ```
/// use ir_fpga::fault::{FaultPlan, FaultRates};
///
/// let mut plan = FaultPlan::seeded(7, FaultRates::uniform(1.0));
/// assert!(plan.dma_fault(1024).is_some());
/// assert!(FaultPlan::none().dma_fault(1024).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: Option<StdRng>,
    rates: FaultRates,
    counts: FaultCounts,
}

impl FaultPlan {
    /// The inert plan: injects nothing, draws nothing.
    pub fn none() -> Self {
        FaultPlan {
            rng: None,
            rates: FaultRates::none(),
            counts: FaultCounts::default(),
        }
    }

    /// A reproducible plan: the same seed and rates inject the same
    /// faults at the same events.
    ///
    /// # Panics
    ///
    /// Panics if any rate is outside `[0, 1]`.
    pub fn seeded(seed: u64, rates: FaultRates) -> Self {
        rates.validate();
        FaultPlan {
            rng: Some(StdRng::seed_from_u64(seed)),
            rates,
            counts: FaultCounts::default(),
        }
    }

    /// Non-panicking [`FaultPlan::seeded`]: rejects degenerate rates as a
    /// value instead of aborting, and returns the inert plan for vacuous
    /// (all-zero) rates so a "fault injection on but rates zero" config
    /// stays bit-identical to a run with no plan at all.
    ///
    /// # Errors
    ///
    /// [`FaultRateError`] if any rate is `NaN` or outside `[0, 1]`.
    pub fn try_seeded(seed: u64, rates: FaultRates) -> Result<Self, FaultRateError> {
        rates.checked()?;
        if rates.is_vacuous() {
            return Ok(FaultPlan::none());
        }
        Ok(FaultPlan {
            rng: Some(StdRng::seed_from_u64(seed)),
            rates,
            counts: FaultCounts::default(),
        })
    }

    /// A seeded plan at [`FaultRates::default_rates`].
    pub fn with_default_rates(seed: u64) -> Self {
        FaultPlan::seeded(seed, FaultRates::default_rates())
    }

    /// Whether this plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.rng.is_some()
    }

    /// The configured rates.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// Faults injected so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    fn fire(&mut self, p: f64) -> bool {
        match self.rng.as_mut() {
            None => false,
            Some(rng) => p > 0.0 && rng.random_bool(p),
        }
    }

    /// Site hook for [`crate::dma`]: does this transfer of `bytes` fail?
    pub fn dma_fault(&mut self, bytes: u64) -> Option<DmaFault> {
        if self.fire(self.rates.dma_timeout) {
            self.counts.dma_timeouts += 1;
            return Some(DmaFault::Timeout);
        }
        if bytes > 0 && self.fire(self.rates.dma_truncation) {
            self.counts.dma_truncations += 1;
            let delivered = self
                .rng
                .as_mut()
                .map(|rng| rng.random_range(0..bytes))
                .unwrap_or(0);
            return Some(DmaFault::Truncation { delivered });
        }
        None
    }

    /// Site hook for [`crate::mmio`]: what happens to this response?
    pub fn response_fault(&mut self) -> ResponseFault {
        if self.fire(self.rates.response_drop) {
            self.counts.responses_dropped += 1;
            ResponseFault::Dropped
        } else if self.fire(self.rates.response_duplicate) {
            self.counts.responses_duplicated += 1;
            ResponseFault::Duplicated
        } else {
            ResponseFault::Delivered
        }
    }

    /// Site hook for [`crate::unit`]: does this execution hang?
    pub fn unit_hangs(&mut self) -> bool {
        if self.fire(self.rates.unit_hang) {
            self.counts.unit_hangs += 1;
            true
        } else {
            false
        }
    }

    /// Site hook for [`crate::layout`] read-back: flips one random bit in
    /// the flag/position output images with probability
    /// [`FaultRates::output_bit_flip`]. Returns whether a bit flipped.
    pub fn corrupt_outputs(&mut self, flags: &mut [u8], positions: &mut [u8]) -> bool {
        let bits = (flags.len() + positions.len()) * 8;
        if bits == 0 || !self.fire(self.rates.output_bit_flip) {
            return false;
        }
        self.counts.output_bit_flips += 1;
        let bit = self
            .rng
            .as_mut()
            .map(|rng| rng.random_range(0..bits))
            .unwrap_or(0);
        let (byte, shift) = (bit / 8, bit % 8);
        if byte < flags.len() {
            flags[byte] ^= 1 << shift;
        } else {
            positions[byte - flags.len()] ^= 1 << shift;
        }
        true
    }

    /// Sampling decision for golden-model output verification: verify
    /// this target at `rate`? Always `true` at `rate >= 1` (including for
    /// inert plans, where nothing random is available to sample with).
    pub fn sample_verify(&mut self, rate: f64) -> bool {
        if rate >= 1.0 {
            return true;
        }
        self.fire(rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_injects_nothing() {
        let mut plan = FaultPlan::none();
        for _ in 0..1000 {
            assert!(plan.dma_fault(4096).is_none());
            assert_eq!(plan.response_fault(), ResponseFault::Delivered);
            assert!(!plan.unit_hangs());
        }
        let mut flags = [1u8, 0];
        let mut positions = [0u8; 8];
        assert!(!plan.corrupt_outputs(&mut flags, &mut positions));
        assert_eq!(flags, [1, 0]);
        assert_eq!(plan.counts().total(), 0);
        assert!(!plan.is_active());
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let observe = |seed| {
            let mut plan = FaultPlan::seeded(seed, FaultRates::uniform(0.3));
            (0..200)
                .map(|_| {
                    (
                        plan.dma_fault(100),
                        plan.response_fault(),
                        plan.unit_hangs(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(observe(42), observe(42));
        assert_ne!(observe(42), observe(43));
    }

    #[test]
    fn rate_one_always_fires() {
        let mut plan = FaultPlan::seeded(0, FaultRates::uniform(1.0));
        assert!(matches!(plan.dma_fault(64), Some(DmaFault::Timeout)));
        assert_eq!(plan.response_fault(), ResponseFault::Dropped);
        assert!(plan.unit_hangs());
        let mut flags = [0u8];
        let mut positions = [0u8; 4];
        assert!(plan.corrupt_outputs(&mut flags, &mut positions));
        let flipped: u32 = flags
            .iter()
            .chain(positions.iter())
            .map(|b| b.count_ones())
            .sum();
        assert_eq!(flipped, 1, "exactly one bit flips");
        assert_eq!(plan.counts().total(), 4);
    }

    #[test]
    fn truncation_delivers_short() {
        let mut plan = FaultPlan::seeded(
            1,
            FaultRates {
                dma_truncation: 1.0,
                ..FaultRates::none()
            },
        );
        match plan.dma_fault(1000) {
            Some(DmaFault::Truncation { delivered }) => assert!(delivered < 1000),
            other => panic!("expected truncation, got {other:?}"),
        }
        assert_eq!(plan.counts().dma_truncations, 1);
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let mut plan = FaultPlan::seeded(9, FaultRates::uniform(0.1));
        let hangs = (0..10_000).filter(|_| plan.unit_hangs()).count();
        assert!((800..1200).contains(&hangs), "got {hangs} hangs");
    }

    #[test]
    fn verify_sampling_is_always_on_at_rate_one() {
        assert!(FaultPlan::none().sample_verify(1.0));
        assert!(
            !FaultPlan::none().sample_verify(0.5),
            "inert plan cannot sample"
        );
        let mut plan = FaultPlan::seeded(3, FaultRates::none());
        let sampled = (0..10_000).filter(|_| plan.sample_verify(0.25)).count();
        assert!((2000..3000).contains(&sampled));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_rate_panics() {
        let _ = FaultPlan::seeded(
            0,
            FaultRates {
                unit_hang: 1.5,
                ..FaultRates::none()
            },
        );
    }

    #[test]
    fn checked_reports_the_first_degenerate_site() {
        assert!(FaultRates::none().checked().is_ok());
        assert!(FaultRates::uniform(1.0).checked().is_ok());
        let cases: [(fn(&mut FaultRates), &str); 6] = [
            (|r| r.dma_timeout = -0.1, "dma_timeout"),
            (|r| r.dma_truncation = f64::NAN, "dma_truncation"),
            (|r| r.response_drop = f64::INFINITY, "response_drop"),
            (|r| r.response_duplicate = 2.0, "response_duplicate"),
            (|r| r.unit_hang = 1.0001, "unit_hang"),
            (|r| r.output_bit_flip = -f64::EPSILON, "output_bit_flip"),
        ];
        for (mutate, site) in cases {
            let mut rates = FaultRates::none();
            mutate(&mut rates);
            let err = rates.checked().expect_err("must reject");
            assert_eq!(err.site, site);
            assert!(err.to_string().contains(site), "{err}");
        }
    }

    #[test]
    fn clamped_forces_rates_into_range() {
        let wild = FaultRates {
            dma_timeout: -3.0,
            dma_truncation: f64::NAN,
            response_drop: 17.0,
            response_duplicate: f64::NEG_INFINITY,
            unit_hang: 0.25,
            output_bit_flip: f64::INFINITY,
        };
        let tamed = wild.clamped();
        assert!(tamed.checked().is_ok());
        assert_eq!(tamed.dma_timeout, 0.0);
        assert_eq!(tamed.dma_truncation, 0.0, "NaN clamps to zero");
        assert_eq!(tamed.response_drop, 1.0);
        assert_eq!(tamed.response_duplicate, 0.0);
        assert_eq!(tamed.unit_hang, 0.25, "in-range rates pass through");
        assert_eq!(tamed.output_bit_flip, 1.0);
    }

    #[test]
    fn try_seeded_rejects_instead_of_panicking() {
        let err = FaultPlan::try_seeded(
            0,
            FaultRates {
                unit_hang: f64::NAN,
                ..FaultRates::none()
            },
        )
        .expect_err("NaN must be rejected");
        assert_eq!(err.site, "unit_hang");
    }

    #[test]
    fn try_seeded_vacuous_rates_yield_the_inert_plan() {
        let plan = FaultPlan::try_seeded(99, FaultRates::none()).unwrap();
        assert!(!plan.is_active(), "all-zero rates never draw from an RNG");
        let live = FaultPlan::try_seeded(99, FaultRates::uniform(0.5)).unwrap();
        assert!(live.is_active());
    }

    #[test]
    fn vacuous_detection() {
        assert!(FaultRates::none().is_vacuous());
        assert!(!FaultRates::uniform(1e-9).is_vacuous());
        assert!(!FaultRates {
            output_bit_flip: 0.1,
            ..FaultRates::none()
        }
        .is_vacuous());
    }
}
