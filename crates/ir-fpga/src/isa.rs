//! The five-command IR accelerator ISA (paper Table I).
//!
//! Per target, the host issues: five `ir_set_addr` (three input and two
//! output buffer addresses), one `ir_set_target`, one `ir_set_size`, up to
//! 32 `ir_set_len` (one per consensus), and finally `ir_start`.

use serde::{Deserialize, Serialize};

use crate::rocc::RoccInstruction;
use crate::FpgaError;

/// The five DMA buffers each IR unit owns (paper Figure 6, left).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum BufferIndex {
    /// Input buffer #1: consensus bases (32 × 2048 bytes).
    ConsensusBases = 0,
    /// Input buffer #2: read bases (256 × 256 bytes).
    ReadBases = 1,
    /// Input buffer #3: read quality scores (256 × 256 bytes).
    ReadQuals = 2,
    /// Output buffer #1: realign flags (256 × 1 byte).
    RealignFlags = 3,
    /// Output buffer #2: new read positions (256 × 4 bytes).
    NewPositions = 4,
}

impl BufferIndex {
    /// All five buffers in command-issue order.
    pub const ALL: [BufferIndex; 5] = [
        BufferIndex::ConsensusBases,
        BufferIndex::ReadBases,
        BufferIndex::ReadQuals,
        BufferIndex::RealignFlags,
        BufferIndex::NewPositions,
    ];

    /// Decodes a buffer index from its wire value.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InvalidCommand`] for values ≥ 5.
    pub fn from_wire(value: u64) -> Result<Self, FpgaError> {
        Self::ALL
            .get(value as usize)
            .copied()
            .ok_or(FpgaError::InvalidCommand(value as u32))
    }

    /// Whether this is one of the three input buffers.
    pub fn is_input(self) -> bool {
        matches!(
            self,
            BufferIndex::ConsensusBases | BufferIndex::ReadBases | BufferIndex::ReadQuals
        )
    }

    /// Capacity of this buffer in bytes, per the paper's structure sizes.
    pub fn capacity_bytes(self) -> usize {
        match self {
            BufferIndex::ConsensusBases => 32 * 2048,
            BufferIndex::ReadBases | BufferIndex::ReadQuals => 256 * 256,
            BufferIndex::RealignFlags => 256,
            BufferIndex::NewPositions => 256 * 4,
        }
    }
}

/// RoCC `function` field values for the five IR commands.
mod funct {
    pub const SET_ADDR: u8 = 0;
    pub const SET_TARGET: u8 = 1;
    pub const SET_SIZE: u8 = 2;
    pub const SET_LEN: u8 = 3;
    pub const START: u8 = 4;
}

/// One decoded IR accelerator command (paper Table I).
///
/// # Example
///
/// ```
/// use ir_fpga::{BufferIndex, IrCommand};
///
/// let cmd = IrCommand::SetSize { consensuses: 3, reads: 2 };
/// let wire = cmd.encode();
/// assert_eq!(IrCommand::decode(wire)?, cmd);
/// # Ok::<(), ir_fpga::FpgaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IrCommand {
    /// `ir_set_addr <buffer index> <mem addr>`: set the FPGA-DRAM address
    /// of one of the five DMA buffers.
    SetAddr {
        /// Which buffer.
        buffer: BufferIndex,
        /// FPGA-attached DRAM byte address.
        addr: u64,
    },
    /// `ir_set_target <target addr>`: absolute start position of the
    /// current target (added to realignment offsets on output).
    SetTarget {
        /// Absolute genomic start position.
        start_pos: u64,
    },
    /// `ir_set_size <# consensuses> <# reads>`.
    SetSize {
        /// Number of consensuses, including the reference (≤ 32).
        consensuses: u8,
        /// Number of reads (≤ 256).
        reads: u16,
    },
    /// `ir_set_len <consensus id> <consensus length>`.
    SetLen {
        /// Which consensus (0 = reference).
        consensus_id: u8,
        /// Length in bytes (≤ 2048).
        len: u16,
    },
    /// `ir_start <unit id>`: start the configured unit.
    Start {
        /// Which IR unit to launch.
        unit_id: u8,
    },
}

/// A command as it travels over the AXI-Lite MMIO interface: the RoCC word
/// plus the two 64-bit operand register values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WireCommand {
    /// The 32-bit RoCC instruction word.
    pub instruction: RoccInstruction,
    /// Value of operand register 1.
    pub rs1_value: u64,
    /// Value of operand register 2.
    pub rs2_value: u64,
}

impl IrCommand {
    /// Encodes the command into its wire form.
    pub fn encode(&self) -> WireCommand {
        let (funct, rs1_value, rs2_value, xd) = match *self {
            IrCommand::SetAddr { buffer, addr } => (funct::SET_ADDR, buffer as u64, addr, false),
            IrCommand::SetTarget { start_pos } => (funct::SET_TARGET, start_pos, 0, false),
            IrCommand::SetSize { consensuses, reads } => (
                funct::SET_SIZE,
                u64::from(consensuses),
                u64::from(reads),
                false,
            ),
            IrCommand::SetLen { consensus_id, len } => (
                funct::SET_LEN,
                u64::from(consensus_id),
                u64::from(len),
                false,
            ),
            // ir_start carries a destination register so the unit can later
            // post a completion response.
            IrCommand::Start { unit_id } => (funct::START, u64::from(unit_id), 0, true),
        };
        let instruction = RoccInstruction::new(funct, 1, 2, xd, true, true, if xd { 3 } else { 0 })
            .expect("static fields are in range");
        WireCommand {
            instruction,
            rs1_value,
            rs2_value,
        }
    }

    /// Decodes a wire command back into an [`IrCommand`].
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InvalidCommand`] for unknown `function` values,
    /// bad buffer indices, or operand values that overflow the field widths
    /// of Table I.
    pub fn decode(wire: WireCommand) -> Result<Self, FpgaError> {
        let bad = || FpgaError::InvalidCommand(wire.instruction.encode());
        match wire.instruction.funct() {
            funct::SET_ADDR => Ok(IrCommand::SetAddr {
                buffer: BufferIndex::from_wire(wire.rs1_value)?,
                addr: wire.rs2_value,
            }),
            funct::SET_TARGET => Ok(IrCommand::SetTarget {
                start_pos: wire.rs1_value,
            }),
            funct::SET_SIZE => Ok(IrCommand::SetSize {
                consensuses: u8::try_from(wire.rs1_value).map_err(|_| bad())?,
                reads: u16::try_from(wire.rs2_value).map_err(|_| bad())?,
            }),
            funct::SET_LEN => Ok(IrCommand::SetLen {
                consensus_id: u8::try_from(wire.rs1_value).map_err(|_| bad())?,
                len: u16::try_from(wire.rs2_value).map_err(|_| bad())?,
            }),
            funct::START => Ok(IrCommand::Start {
                unit_id: u8::try_from(wire.rs1_value).map_err(|_| bad())?,
            }),
            _ => Err(bad()),
        }
    }

    /// Number of commands needed to configure and launch one target with
    /// `consensuses` consensus sequences: 5 × `set_addr` + `set_target` +
    /// `set_size` + `consensuses` × `set_len` + `start`.
    pub fn commands_per_target(consensuses: usize) -> usize {
        5 + 1 + 1 + consensuses + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_command() {
        let cmds = [
            IrCommand::SetAddr {
                buffer: BufferIndex::ReadQuals,
                addr: 0xdead_beef,
            },
            IrCommand::SetTarget {
                start_pos: 22_000_000,
            },
            IrCommand::SetSize {
                consensuses: 32,
                reads: 256,
            },
            IrCommand::SetLen {
                consensus_id: 31,
                len: 2048,
            },
            IrCommand::Start { unit_id: 31 },
        ];
        for cmd in cmds {
            assert_eq!(IrCommand::decode(cmd.encode()).unwrap(), cmd);
        }
    }

    #[test]
    fn start_requests_a_response() {
        let wire = IrCommand::Start { unit_id: 0 }.encode();
        assert!(
            wire.instruction.xd(),
            "ir_start must carry a destination for the response"
        );
        let wire = IrCommand::SetTarget { start_pos: 0 }.encode();
        assert!(!wire.instruction.xd());
    }

    #[test]
    fn decode_rejects_unknown_funct() {
        let mut wire = IrCommand::Start { unit_id: 0 }.encode();
        wire.instruction = RoccInstruction::new(99, 1, 2, false, true, true, 0).unwrap();
        assert!(IrCommand::decode(wire).is_err());
    }

    #[test]
    fn decode_rejects_overflowing_operands() {
        let mut wire = IrCommand::SetSize {
            consensuses: 1,
            reads: 1,
        }
        .encode();
        wire.rs1_value = 300; // does not fit u8
        assert!(IrCommand::decode(wire).is_err());

        let mut wire = IrCommand::SetLen {
            consensus_id: 0,
            len: 1,
        }
        .encode();
        wire.rs2_value = 1 << 20; // does not fit u16
        assert!(IrCommand::decode(wire).is_err());
    }

    #[test]
    fn buffer_index_wire_round_trip() {
        for buf in BufferIndex::ALL {
            assert_eq!(BufferIndex::from_wire(buf as u64).unwrap(), buf);
        }
        assert!(BufferIndex::from_wire(5).is_err());
    }

    #[test]
    fn buffer_capacities_match_figure6() {
        assert_eq!(BufferIndex::ConsensusBases.capacity_bytes(), 65_536);
        assert_eq!(BufferIndex::ReadBases.capacity_bytes(), 65_536);
        assert_eq!(BufferIndex::ReadQuals.capacity_bytes(), 65_536);
        assert_eq!(BufferIndex::RealignFlags.capacity_bytes(), 256);
        assert_eq!(BufferIndex::NewPositions.capacity_bytes(), 1024);
    }

    #[test]
    fn input_output_split() {
        let inputs: Vec<_> = BufferIndex::ALL.iter().filter(|b| b.is_input()).collect();
        assert_eq!(inputs.len(), 3);
    }

    #[test]
    fn command_count_per_target() {
        // Paper: ir_set_addr ×5, ir_set_target ×1, ir_set_size ×1,
        // ir_set_len once per consensus, ir_start ×1.
        assert_eq!(IrCommand::commands_per_target(3), 11);
        assert_eq!(IrCommand::commands_per_target(32), 40);
    }
}
