//! FPGA-attached memory system: per-unit channels and shared-bandwidth
//! scheduling.
//!
//! Each IR unit owns five memory channels — three `MemReader`s (consensus
//! bases, read bases, quality scores) and two `MemWriter`s (realign flags,
//! new positions) — arbitrated 5:1 inside the unit and then 32:1 across
//! units into the single DDR4 controller the design instantiates (paper
//! Figure 6). The unit-side TileLink port moves one 256-bit beat per cycle;
//! the DDR channel sustains ≈ 4× that, so a handful of units can stream
//! concurrently without slowdown.

use ir_genome::TargetShape;

/// Fixed DRAM access latency charged once per load/drain burst, in cycles.
pub const BURST_LATENCY_CYCLES: u64 = 40;

/// DDR4 row-buffer size in bytes (1 KiB pages on the F1's DDR4-2133
/// DIMMs). Sequential streams that stay inside an open row hit the row
/// buffer; each new row costs an activate.
pub const DDR_ROW_BYTES: u64 = 1024;

/// Per-target DDR traffic summary the telemetry layer records: the five
/// per-unit streams (three MemReaders, two MemWriters) expressed as beats,
/// row activations and row-buffer hits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BurstStats {
    /// Beats per stream: consensus bases, read bases, quality scores,
    /// realign flags, new positions.
    pub stream_beats: [u64; 5],
    /// Total beats across all five streams.
    pub beats: u64,
    /// DDR rows activated (each stream is sequential, so one activate per
    /// [`DDR_ROW_BYTES`] touched per stream).
    pub rows_activated: u64,
    /// Beats served from an already-open row.
    pub row_hits: u64,
    /// Total bytes moved (input + output).
    pub bytes: u64,
}

/// Computes the [`BurstStats`] for one target's load + drain through a
/// `bus_bytes`-per-beat port.
pub fn burst_stats(shape: &TargetShape, bus_bytes: u64) -> BurstStats {
    let consensus_bytes: u64 = shape.consensus_lens.iter().map(|&l| l as u64).sum();
    let read_bytes: u64 = shape.read_lens.iter().map(|&l| l as u64).sum();
    let stream_bytes = [
        consensus_bytes,
        read_bytes,
        read_bytes,                 // one quality byte per base
        shape.num_reads as u64,     // one realign flag per read
        4 * shape.num_reads as u64, // one 4-byte new position per read
    ];
    let mut stats = BurstStats::default();
    for (i, &bytes) in stream_bytes.iter().enumerate() {
        let beats = bytes.div_ceil(bus_bytes);
        let rows = bytes.div_ceil(DDR_ROW_BYTES);
        stats.stream_beats[i] = beats;
        stats.beats += beats;
        stats.rows_activated += rows;
        // With bus_bytes ≤ row size every row boundary lands on a beat
        // boundary, so exactly one beat per touched row misses.
        stats.row_hits += beats.saturating_sub(rows);
        stats.bytes += bytes;
    }
    stats
}

/// Cycles for a unit to fill its three input buffers for `shape` through
/// its 5:1-arbitrated TileLink port of `bus_bytes` per beat.
pub fn load_cycles(shape: &TargetShape, bus_bytes: u64) -> u64 {
    BURST_LATENCY_CYCLES + shape.input_bytes().div_ceil(bus_bytes)
}

/// Cycles for a unit to drain its two output buffers.
pub fn drain_cycles(shape: &TargetShape, bus_bytes: u64) -> u64 {
    BURST_LATENCY_CYCLES + shape.output_bytes().div_ceil(bus_bytes)
}

/// A transfer request submitted to a [`SharedChannel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferRequest {
    /// Bytes to move.
    pub bytes: u64,
    /// Time the transfer becomes ready, in seconds.
    pub ready_at_s: f64,
}

/// A bandwidth-shared link (the DDR channel or the PCIe DMA path) using
/// max-min fair progressive filling: at any instant, each active transfer
/// receives `min(per_client_cap, total_bandwidth / active_count)`.
///
/// # Example
///
/// ```
/// use ir_fpga::mem::{SharedChannel, TransferRequest};
///
/// let link = SharedChannel::new(16e9, 4e9);
/// // Two transfers of 4 GB each, started together: each gets 4 GB/s
/// // (per-client cap), finishing after 1 s.
/// let done = link.schedule(&[
///     TransferRequest { bytes: 4_000_000_000, ready_at_s: 0.0 },
///     TransferRequest { bytes: 4_000_000_000, ready_at_s: 0.0 },
/// ]);
/// assert!((done[0] - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedChannel {
    bandwidth_bytes_per_s: f64,
    per_client_cap_bytes_per_s: f64,
}

impl SharedChannel {
    /// Creates a channel with total and per-client bandwidth in bytes/s.
    ///
    /// # Panics
    ///
    /// Panics if either bandwidth is non-positive.
    pub fn new(bandwidth_bytes_per_s: f64, per_client_cap_bytes_per_s: f64) -> Self {
        assert!(bandwidth_bytes_per_s > 0.0 && per_client_cap_bytes_per_s > 0.0);
        SharedChannel {
            bandwidth_bytes_per_s,
            per_client_cap_bytes_per_s,
        }
    }

    /// Total channel bandwidth in bytes per second.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth_bytes_per_s
    }

    /// Computes the finish time of every transfer under max-min fair
    /// sharing. Returns finish times in the same order as `transfers`.
    pub fn schedule(&self, transfers: &[TransferRequest]) -> Vec<f64> {
        let n = transfers.len();
        let mut remaining: Vec<f64> = transfers.iter().map(|t| t.bytes as f64).collect();
        let mut finish = vec![0.0f64; n];
        let mut done = vec![false; n];
        let mut now = transfers
            .iter()
            .map(|t| t.ready_at_s)
            .fold(f64::INFINITY, f64::min);
        if !now.is_finite() {
            return finish;
        }

        loop {
            let active: Vec<usize> = (0..n)
                .filter(|&i| !done[i] && transfers[i].ready_at_s <= now + 1e-15)
                .collect();
            let next_arrival = (0..n)
                .filter(|&i| !done[i] && transfers[i].ready_at_s > now + 1e-15)
                .map(|i| transfers[i].ready_at_s)
                .fold(f64::INFINITY, f64::min);

            if active.is_empty() {
                if next_arrival.is_finite() {
                    now = next_arrival;
                    continue;
                }
                break;
            }

            let rate = (self.bandwidth_bytes_per_s / active.len() as f64)
                .min(self.per_client_cap_bytes_per_s);
            // Time until the first active transfer completes at this rate.
            let first_completion = active
                .iter()
                .map(|&i| remaining[i] / rate)
                .fold(f64::INFINITY, f64::min);
            let step = first_completion.min(next_arrival - now);

            for &i in &active {
                remaining[i] -= rate * step;
                if remaining[i] <= 1e-9 {
                    remaining[i] = 0.0;
                    done[i] = true;
                    finish[i] = now + step;
                }
            }
            now += step;
            if done.iter().all(|&d| d) {
                break;
            }
        }
        finish
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(cons: &[usize], reads: &[usize]) -> TargetShape {
        TargetShape {
            num_consensuses: cons.len(),
            num_reads: reads.len(),
            consensus_lens: cons.to_vec(),
            read_lens: reads.to_vec(),
        }
    }

    #[test]
    fn load_cycles_round_up() {
        let s = shape(&[100], &[50]);
        // input = 100 + 2×50 = 200 bytes → ceil(200/32) = 7 beats.
        assert_eq!(load_cycles(&s, 32), BURST_LATENCY_CYCLES + 7);
    }

    #[test]
    fn drain_is_cheap() {
        let s = shape(&[2048; 32], &[256; 256]);
        // output = 5 × 256 = 1280 bytes → 40 beats.
        assert_eq!(drain_cycles(&s, 32), BURST_LATENCY_CYCLES + 40);
    }

    #[test]
    fn burst_stats_count_streams_rows_and_beats() {
        let s = shape(&[2048, 2048], &[256; 8]);
        let stats = burst_stats(&s, 32);
        // consensus 4096 B → 128 beats, 4 rows; reads/quals 2048 B → 64
        // beats, 2 rows each; flags 8 B → 1 beat, 1 row; positions 32 B →
        // 1 beat, 1 row.
        assert_eq!(stats.stream_beats, [128, 64, 64, 1, 1]);
        assert_eq!(stats.beats, 258);
        assert_eq!(stats.rows_activated, 4 + 2 + 2 + 1 + 1);
        assert_eq!(stats.row_hits, 258 - 10);
        assert_eq!(stats.bytes, s.input_bytes() + s.output_bytes());
    }

    #[test]
    fn burst_stats_row_hits_never_exceed_beats() {
        let s = shape(&[100, 37], &[50, 3]);
        let stats = burst_stats(&s, 32);
        assert!(stats.row_hits <= stats.beats);
        assert_eq!(stats.rows_activated, 5, "every stream opens one row");
        let total: u64 = stats.stream_beats.iter().sum();
        assert_eq!(total, stats.beats);
    }

    #[test]
    fn single_transfer_runs_at_client_cap() {
        let link = SharedChannel::new(16e9, 4e9);
        let done = link.schedule(&[TransferRequest {
            bytes: 4_000_000_000,
            ready_at_s: 0.0,
        }]);
        assert!((done[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn four_clients_saturate_without_slowdown() {
        // 16 GB/s channel, 4 GB/s per client: 4 concurrent clients still
        // each get their full cap.
        let link = SharedChannel::new(16e9, 4e9);
        let reqs = vec![
            TransferRequest {
                bytes: 4_000_000_000,
                ready_at_s: 0.0
            };
            4
        ];
        for t in link.schedule(&reqs) {
            assert!((t - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn eight_clients_halve_throughput() {
        let link = SharedChannel::new(16e9, 4e9);
        let reqs = vec![
            TransferRequest {
                bytes: 2_000_000_000,
                ready_at_s: 0.0
            };
            8
        ];
        for t in link.schedule(&reqs) {
            assert!(
                (t - 1.0).abs() < 1e-9,
                "each client gets 2 GB/s, so 1 s for 2 GB, got {t}"
            );
        }
    }

    #[test]
    fn staggered_arrivals_are_respected() {
        let link = SharedChannel::new(10e9, 10e9);
        let done = link.schedule(&[
            TransferRequest {
                bytes: 10_000_000_000,
                ready_at_s: 0.0,
            },
            TransferRequest {
                bytes: 5_000_000_000,
                ready_at_s: 2.0,
            },
        ]);
        // First runs alone 0..2 s (10 GB/s → 20 GB? no: 10 GB total, so it
        // has 10 GB; after 2 s it has 10 GB... it finishes exactly at 2 s
        // with 20 GB moved? No — 10 GB at 10 GB/s = 1 s, before the second
        // even arrives.
        assert!((done[0] - 1.0).abs() < 1e-9);
        assert!((done[1] - 2.5).abs() < 1e-9);
    }

    #[test]
    fn contention_then_drain() {
        let link = SharedChannel::new(8e9, 8e9);
        let done = link.schedule(&[
            TransferRequest {
                bytes: 8_000_000_000,
                ready_at_s: 0.0,
            },
            TransferRequest {
                bytes: 4_000_000_000,
                ready_at_s: 0.0,
            },
        ]);
        // Shared at 4 GB/s each: second finishes at 1 s; first then runs
        // alone at 8 GB/s with 4 GB left → 1.5 s.
        assert!((done[1] - 1.0).abs() < 1e-9);
        assert!((done[0] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_schedule_is_empty() {
        let link = SharedChannel::new(1e9, 1e9);
        assert!(link.schedule(&[]).is_empty());
    }
}
