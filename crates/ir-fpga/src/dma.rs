//! PCIe DMA between host memory and FPGA-attached DDR.
//!
//! The host malloc's the per-target input arrays and moves them in large
//! chunks over PCIe DMA with a 512-bit AXI4 data path (paper Figure 6).
//! The paper measures this transfer at "only 0.01% of the total runtime" —
//! a claim the `dma_overhead` bench reproduces.

use serde::{Deserialize, Serialize};

use crate::fault::{DmaFault, FaultPlan};
use crate::FpgaError;

/// Watchdog multiple: a DMA chain is declared timed out after this many
/// nominal transfer times (the EDMA driver's completion-poll budget).
pub const DMA_WATCHDOG_FACTOR: f64 = 10.0;

/// DMA transfer parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DmaParams {
    /// Sustained host↔FPGA bandwidth in bytes per second. PCIe gen3 ×16
    /// peaks at ~15.7 GB/s; the AWS EDMA driver sustains a few GB/s for
    /// large chunked transfers.
    pub bandwidth_bytes_per_s: f64,
    /// Fixed software + hardware setup latency per DMA descriptor chain,
    /// in seconds.
    pub latency_s: f64,
}

impl DmaParams {
    /// Transfer time in seconds for one chunk of `bytes`.
    pub fn transfer_time_s(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bytes_per_s
    }

    /// Transfer time for a batch of buffers moved as one descriptor chain
    /// (one fixed latency, summed payload) — how the control program
    /// batches target inputs.
    pub fn batch_transfer_time_s<I: IntoIterator<Item = u64>>(&self, sizes: I) -> f64 {
        let total: u64 = sizes.into_iter().sum();
        if total == 0 {
            0.0
        } else {
            self.transfer_time_s(total)
        }
    }

    /// Transfer time for one chunk, with fault injection: the chain can
    /// time out (the host's completion poll gives up after
    /// [`DMA_WATCHDOG_FACTOR`] nominal transfer times) or complete short
    /// (the descriptor count check catches the truncation on read-back).
    ///
    /// With an inert plan this is exactly [`Self::transfer_time_s`].
    ///
    /// # Errors
    ///
    /// - [`FpgaError::Timeout`] when the chain never completes.
    /// - [`FpgaError::CorruptOutput`] when fewer bytes than requested
    ///   arrive.
    pub fn transfer_time_checked(
        &self,
        bytes: u64,
        plan: &mut FaultPlan,
    ) -> Result<f64, FpgaError> {
        match plan.dma_fault(bytes) {
            None => Ok(self.transfer_time_s(bytes)),
            Some(DmaFault::Timeout) => Err(FpgaError::Timeout {
                site: "pcie dma",
                waited_s: DMA_WATCHDOG_FACTOR * self.transfer_time_s(bytes),
            }),
            Some(DmaFault::Truncation { delivered }) => Err(FpgaError::CorruptOutput {
                detail: "pcie dma delivered a truncated payload",
                observed: delivered,
            }),
        }
    }
}

impl Default for DmaParams {
    fn default() -> Self {
        DmaParams {
            bandwidth_bytes_per_s: 12.8e9,
            latency_s: 10e-6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_latency_plus_bytes_over_bw() {
        let dma = DmaParams {
            bandwidth_bytes_per_s: 1e9,
            latency_s: 1e-5,
        };
        let t = dma.transfer_time_s(1_000_000);
        assert!((t - (1e-5 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn batching_amortizes_latency() {
        let dma = DmaParams::default();
        let separate: f64 = (0..10).map(|_| dma.transfer_time_s(1000)).sum();
        let batched = dma.batch_transfer_time_s(std::iter::repeat_n(1000u64, 10));
        assert!(batched < separate);
        assert!((separate - batched - 9.0 * dma.latency_s).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_is_free() {
        assert_eq!(
            DmaParams::default().batch_transfer_time_s(std::iter::empty()),
            0.0
        );
    }

    #[test]
    fn checked_transfer_matches_unchecked_without_faults() {
        let dma = DmaParams::default();
        let t = dma
            .transfer_time_checked(65_536, &mut FaultPlan::none())
            .unwrap();
        assert_eq!(t, dma.transfer_time_s(65_536));
    }

    #[test]
    fn checked_transfer_surfaces_injected_faults() {
        use crate::fault::FaultRates;
        let dma = DmaParams::default();
        let mut timeout = FaultPlan::seeded(
            0,
            FaultRates {
                dma_timeout: 1.0,
                ..FaultRates::none()
            },
        );
        assert!(matches!(
            dma.transfer_time_checked(1024, &mut timeout),
            Err(FpgaError::Timeout {
                site: "pcie dma",
                ..
            })
        ));
        let mut truncate = FaultPlan::seeded(
            0,
            FaultRates {
                dma_truncation: 1.0,
                ..FaultRates::none()
            },
        );
        assert!(matches!(
            dma.transfer_time_checked(1024, &mut truncate),
            Err(FpgaError::CorruptOutput { observed, .. }) if observed < 1024
        ));
    }

    #[test]
    fn typical_target_transfer_is_microseconds() {
        // A large target: 32 × 2048 + 2 × 256 × 256 ≈ 196 KiB — must move
        // in well under a millisecond for the paper's 0.01% claim to hold.
        let dma = DmaParams::default();
        assert!(dma.transfer_time_s(196_608) < 1e-3);
    }
}
