//! Per-shape unit configuration derivation.
//!
//! The deployed accelerator sizes every IR unit for one workload shape:
//! 32 consensuses × 2048 B and 256 reads × 256 B (paper §III-A). Other
//! sequencing regimes break that envelope in different directions — long
//! reads need kilobyte read slots, deep panels need four times the read
//! count — and because the unit count "is limited by the number of block
//! RAM cells available", resizing the buffers moves the whole floorplan.
//!
//! This module closes that loop. [`BufferGeometry`] names a unit's buffer
//! sizing; [`derive_shape_config`] takes a workload's
//! [`TargetLimits`] envelope plus a base [`FpgaParams`] and produces the
//! [`ShapeConfig`] a fabric built for that shape would use: the rounded
//! buffer geometry, the per-unit BRAM36 cost, the maximum unit count the
//! VU9P floorplan admits at that cost, and the derived parameters (unit
//! count clamped to what fits). Shapes no configuration can hold — an ISA
//! field overflow or a geometry so large zero units fit — are rejected
//! with [`FpgaError::ShapeUnsupported`].

use ir_genome::{TargetLimits, TargetShape};
use serde::{Deserialize, Serialize};

use crate::bram;
use crate::params::FpgaParams;
use crate::resources::{self, ResourceReport};
use crate::FpgaError;

/// Slot alignment of the unit's block-indexed buffers: slots are padded
/// to whole 32-byte bus beats so block reads never straddle a beat.
pub const SLOT_ALIGN_BYTES: usize = 32;

/// ISA field widths that bound any geometry (Table I): `ir_set_size`
/// carries the consensus count in a u8 and the read count in a u16;
/// `ir_set_len` carries consensus lengths in a u16.
const MAX_ISA_CONSENSUSES: usize = u8::MAX as usize;
const MAX_ISA_READS: usize = u16::MAX as usize;
const MAX_ISA_CONSENSUS_LEN: usize = u16::MAX as usize;

/// One IR unit's buffer sizing: how many slots each block-indexed buffer
/// holds and how wide each slot is. The deployed hardware's instance is
/// [`BufferGeometry::HARDWARE`]; per-shape instances come from
/// [`BufferGeometry::from_limits`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BufferGeometry {
    /// Consensus slots in input buffer #1 (including the reference).
    pub max_consensuses: usize,
    /// Read slots in input buffers #2/#3 and the two output buffers.
    pub max_reads: usize,
    /// Bytes per consensus slot (the block-index stride).
    pub consensus_slot_bytes: usize,
    /// Bytes per read slot in the base and quality buffers.
    pub read_slot_bytes: usize,
}

impl BufferGeometry {
    /// The deployed hardware's geometry: 32 × 2048 B consensuses,
    /// 256 × 256 B reads.
    pub const HARDWARE: BufferGeometry = BufferGeometry {
        max_consensuses: 32,
        max_reads: 256,
        consensus_slot_bytes: 2048,
        read_slot_bytes: 256,
    };

    /// The tightest geometry that holds every target inside `limits`,
    /// with slot strides rounded up to whole 32-byte bus beats.
    ///
    /// `from_limits(&TargetLimits::HARDWARE)` is exactly
    /// [`BufferGeometry::HARDWARE`]. Callers must pass bounded limits
    /// (e.g. not [`TargetLimits::UNBOUNDED`]); [`derive_shape_config`]
    /// enforces the ISA field bounds before constructing a geometry.
    pub fn from_limits(limits: &TargetLimits) -> Self {
        let align = |bytes: usize| bytes.div_ceil(SLOT_ALIGN_BYTES) * SLOT_ALIGN_BYTES;
        BufferGeometry {
            max_consensuses: limits.max_consensuses,
            max_reads: limits.max_reads,
            consensus_slot_bytes: align(limits.max_consensus_len),
            read_slot_bytes: align(limits.max_read_len),
        }
    }

    /// The shape envelope this geometry admits (slot strides read back as
    /// maximum sequence lengths).
    pub fn limits(&self) -> TargetLimits {
        TargetLimits {
            max_consensuses: self.max_consensuses,
            max_reads: self.max_reads,
            max_consensus_len: self.consensus_slot_bytes,
            max_read_len: self.read_slot_bytes,
        }
    }

    /// Whether one target of `shape` fits this unit's buffers.
    pub fn holds(&self, shape: &TargetShape) -> bool {
        shape.num_consensuses <= self.max_consensuses
            && shape.num_reads <= self.max_reads
            && shape
                .consensus_lens
                .iter()
                .all(|&len| len <= self.consensus_slot_bytes)
            && shape
                .read_lens
                .iter()
                .all(|&len| len <= self.read_slot_bytes)
    }

    /// Capacity of input buffer #1 in bytes.
    pub fn consensus_capacity_bytes(&self) -> usize {
        self.max_consensuses * self.consensus_slot_bytes
    }

    /// Capacity of input buffers #2 and #3 in bytes (each).
    pub fn read_capacity_bytes(&self) -> usize {
        self.max_reads * self.read_slot_bytes
    }

    /// BRAM36 primitives one unit of this geometry consumes.
    pub fn unit_bram36_blocks(&self) -> usize {
        bram::unit_bram36_blocks_for(self)
    }
}

impl Default for BufferGeometry {
    fn default() -> Self {
        BufferGeometry::HARDWARE
    }
}

/// A complete per-shape unit configuration: the buffer geometry, its BRAM
/// cost, how many units of it the floorplan admits, and the derived
/// [`FpgaParams`] (base parameters with the unit count clamped to fit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShapeConfig {
    /// The unit buffer geometry sized for the shape.
    pub geometry: BufferGeometry,
    /// Derived accelerator parameters: the base parameters with
    /// `num_units` clamped to [`ShapeConfig::max_units`].
    pub params: FpgaParams,
    /// BRAM36 primitives one unit of this geometry consumes.
    pub unit_bram36_blocks: usize,
    /// Maximum units of this geometry under the routability ceiling —
    /// the unit-count hint a fleet scheduler sizes shards with.
    pub max_units: usize,
    /// Floorplan report for the derived configuration.
    pub resources: ResourceReport,
}

/// Derives the unit configuration for a workload whose targets fit
/// `limits`, starting from `base` parameters (clock, lanes, pruning, DMA
/// latencies are inherited; the unit count is clamped to what the
/// shape's buffer geometry leaves room for).
///
/// # Errors
///
/// Returns [`FpgaError::ShapeUnsupported`] when
///
/// - a dimension overflows an ISA field (consensus count > 255 for
///   `ir_set_size`'s u8, read count > 65535 for its u16, or consensus
///   length > 65535 for `ir_set_len`'s u16), or
/// - the implied buffer geometry is so large that zero units fit under
///   the VU9P routability ceiling.
pub fn derive_shape_config(
    limits: &TargetLimits,
    base: &FpgaParams,
) -> Result<ShapeConfig, FpgaError> {
    let isa_bounds = [
        (
            "consensus count",
            limits.max_consensuses,
            MAX_ISA_CONSENSUSES,
        ),
        ("read count", limits.max_reads, MAX_ISA_READS),
        (
            "consensus length",
            limits.max_consensus_len,
            MAX_ISA_CONSENSUS_LEN,
        ),
        // Reads never exceed the shortest consensus, so the consensus
        // bound transitively caps read length too — but reject an
        // envelope that states a longer one, rather than quietly
        // generating targets it cannot describe.
        ("read length", limits.max_read_len, MAX_ISA_CONSENSUS_LEN),
    ];
    for (what, value, max) in isa_bounds {
        if value > max {
            return Err(FpgaError::ShapeUnsupported { what, value, max });
        }
    }

    let geometry = BufferGeometry::from_limits(limits);
    let unit_blocks = geometry.unit_bram36_blocks();
    let max_units = resources::max_units_with_unit_blocks(unit_blocks, base.lanes);
    if max_units == 0 {
        return Err(FpgaError::ShapeUnsupported {
            what: "per-unit BRAM36 blocks",
            value: unit_blocks,
            max: resources::max_units(base.lanes) * bram::unit_bram36_blocks(),
        });
    }

    let params = FpgaParams {
        num_units: base.num_units.min(max_units),
        ..*base
    };
    let resources = resources::report_with_unit_blocks(params.num_units, params.lanes, unit_blocks);
    Ok(ShapeConfig {
        geometry,
        params,
        unit_bram36_blocks: unit_blocks,
        max_units,
        resources,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_limits_round_trip_to_hardware_geometry() {
        let g = BufferGeometry::from_limits(&TargetLimits::HARDWARE);
        assert_eq!(g, BufferGeometry::HARDWARE);
        assert_eq!(g.limits(), TargetLimits::HARDWARE);
        assert_eq!(g.unit_bram36_blocks(), bram::unit_bram36_blocks());
        assert_eq!(g.consensus_capacity_bytes(), 65_536);
        assert_eq!(g.read_capacity_bytes(), 65_536);
    }

    #[test]
    fn slot_strides_round_up_to_bus_beats() {
        let limits = TargetLimits {
            max_consensuses: 4,
            max_reads: 10,
            max_consensus_len: 100,
            max_read_len: 33,
        };
        let g = BufferGeometry::from_limits(&limits);
        assert_eq!(g.consensus_slot_bytes, 128);
        assert_eq!(g.read_slot_bytes, 64);
    }

    #[test]
    fn hardware_shape_derivation_reproduces_the_deployed_config() {
        let cfg = derive_shape_config(&TargetLimits::HARDWARE, &FpgaParams::iracc()).unwrap();
        assert_eq!(cfg.geometry, BufferGeometry::HARDWARE);
        assert_eq!(cfg.unit_bram36_blocks, 53);
        assert_eq!(cfg.max_units, 32);
        assert_eq!(cfg.params, FpgaParams::iracc());
        assert_eq!(cfg.resources, resources::report(32, 32));
    }

    #[test]
    fn long_read_geometry_still_fits_a_full_fabric() {
        // ONT/PacBio-style envelope: few huge slots.
        let limits = TargetLimits {
            max_consensuses: 6,
            max_reads: 8,
            max_consensus_len: 10_240,
            max_read_len: 6_144,
        };
        let cfg = derive_shape_config(&limits, &FpgaParams::iracc()).unwrap();
        assert_eq!(cfg.unit_bram36_blocks, 45);
        assert!(cfg.max_units >= 32, "max_units {}", cfg.max_units);
        assert_eq!(cfg.params.num_units, 32);
    }

    #[test]
    fn deep_panel_geometry_costs_units() {
        // 1024 read slots: the read/qual buffers dominate and the fabric
        // shrinks below the deployed 32 units.
        let limits = TargetLimits {
            max_consensuses: 32,
            max_reads: 1_024,
            max_consensus_len: 640,
            max_read_len: 160,
        };
        let cfg = derive_shape_config(&limits, &FpgaParams::iracc()).unwrap();
        assert_eq!(cfg.unit_bram36_blocks, 98);
        assert_eq!(cfg.max_units, 18);
        assert_eq!(cfg.params.num_units, 18);
        assert!(cfg.resources.fits);
        assert!(cfg.resources.bram_utilization <= resources::ROUTABILITY_CEILING);
    }

    #[test]
    fn thin_metagenomic_geometry_frees_bram() {
        let limits = TargetLimits {
            max_consensuses: 16,
            max_reads: 64,
            max_consensus_len: 2_048,
            max_read_len: 160,
        };
        let cfg = derive_shape_config(&limits, &FpgaParams::iracc()).unwrap();
        assert!(cfg.unit_bram36_blocks < 53);
        assert!(cfg.max_units > 32);
        // The unit count hint grows but the derived config never exceeds
        // the base request.
        assert_eq!(cfg.params.num_units, 32);
    }

    #[test]
    fn rejects_isa_field_overflows() {
        let too_long = TargetLimits {
            max_consensus_len: 100_000,
            ..TargetLimits::HARDWARE
        };
        assert!(matches!(
            derive_shape_config(&too_long, &FpgaParams::iracc()),
            Err(FpgaError::ShapeUnsupported {
                what: "consensus length",
                value: 100_000,
                max: 65_535,
            })
        ));
        let too_many = TargetLimits {
            max_consensuses: 300,
            ..TargetLimits::HARDWARE
        };
        assert!(matches!(
            derive_shape_config(&too_many, &FpgaParams::iracc()),
            Err(FpgaError::ShapeUnsupported {
                what: "consensus count",
                ..
            })
        ));
        assert!(derive_shape_config(&TargetLimits::UNBOUNDED, &FpgaParams::iracc()).is_err());
    }

    #[test]
    fn rejects_geometries_that_fit_zero_units() {
        // Passes every ISA width check but wants ~256 KiB of read buffer
        // per unit — no unit of that geometry fits the VU9P.
        let limits = TargetLimits {
            max_consensuses: 255,
            max_reads: 50_000,
            max_consensus_len: 4_096,
            max_read_len: 256,
        };
        let err = derive_shape_config(&limits, &FpgaParams::iracc()).unwrap_err();
        assert!(
            matches!(
                err,
                FpgaError::ShapeUnsupported {
                    what: "per-unit BRAM36 blocks",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn holds_checks_every_dimension() {
        let g = BufferGeometry::HARDWARE;
        let fits = TargetShape {
            num_consensuses: 2,
            num_reads: 3,
            consensus_lens: vec![100, 90],
            read_lens: vec![50, 50, 50],
        };
        assert!(g.holds(&fits));
        let long_cons = TargetShape {
            consensus_lens: vec![100, 4_000],
            ..fits.clone()
        };
        assert!(!g.holds(&long_cons));
        let long_read = TargetShape {
            read_lens: vec![50, 50, 500],
            ..fits.clone()
        };
        assert!(!g.holds(&long_read));
        let crowded = TargetShape {
            num_reads: 1_000,
            ..fits
        };
        assert!(!g.holds(&crowded));
    }
}
