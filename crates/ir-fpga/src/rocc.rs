//! The RoCC (Rocket Custom Coprocessor) instruction format (paper Table I).
//!
//! The IR accelerator is managed through five commands encoded in the open
//! RoCC fixed-length 32-bit format, chosen because it is simple to decode
//! and the Rocket Chip command router for it already exists. Field layout
//! (bit ranges inclusive):
//!
//! ```text
//! 31..25  function   (7 bits)  — accelerator configuration selector
//! 24..20  src2       (5 bits)  — x-register number of operand 2
//! 19..15  src1       (5 bits)  — x-register number of operand 1
//! 14      xd         (1 bit)   — instruction has a destination register
//! 13      xs1        (1 bit)   — instruction reads src1
//! 12      xs2        (1 bit)   — instruction reads src2
//! 11..7   dest       (5 bits)  — x-register number of destination
//! 6..0    opcode     (7 bits)  — accelerator type (unused: only the IR
//!                                accelerator is present)
//! ```

use serde::{Deserialize, Serialize};

use crate::FpgaError;

/// The custom opcode the IR accelerator decodes. The paper notes the
/// opcode field "is essentially not used" because the system contains only
/// one accelerator type; we pin it to RISC-V's *custom-0* encoding.
pub const IR_OPCODE: u8 = 0b000_1011;

/// One 32-bit RoCC instruction word.
///
/// # Example
///
/// ```
/// use ir_fpga::RoccInstruction;
///
/// let instr = RoccInstruction::new(0x05, 7, 12, false, true, true, 0)?;
/// let word = instr.encode();
/// assert_eq!(RoccInstruction::decode(word)?, instr);
/// # Ok::<(), ir_fpga::FpgaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RoccInstruction {
    funct: u8,
    rs2: u8,
    rs1: u8,
    xd: bool,
    xs1: bool,
    xs2: bool,
    rd: u8,
    opcode: u8,
}

impl RoccInstruction {
    /// Creates an instruction, validating field widths.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InvalidCommand`] if `funct` or `opcode` exceed
    /// 7 bits or any register number exceeds 5 bits.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        funct: u8,
        rs1: u8,
        rs2: u8,
        xd: bool,
        xs1: bool,
        xs2: bool,
        rd: u8,
    ) -> Result<Self, FpgaError> {
        if funct > 0x7f || rs1 > 0x1f || rs2 > 0x1f || rd > 0x1f {
            return Err(FpgaError::InvalidCommand(
                (u32::from(funct) << 25) | (u32::from(rs2) << 20) | (u32::from(rs1) << 15),
            ));
        }
        Ok(RoccInstruction {
            funct,
            rs2,
            rs1,
            xd,
            xs1,
            xs2,
            rd,
            opcode: IR_OPCODE,
        })
    }

    /// The 7-bit function selector (which IR command this is).
    pub fn funct(&self) -> u8 {
        self.funct
    }

    /// Register number of operand 1.
    pub fn rs1(&self) -> u8 {
        self.rs1
    }

    /// Register number of operand 2.
    pub fn rs2(&self) -> u8 {
        self.rs2
    }

    /// Whether the instruction writes a destination register.
    pub fn xd(&self) -> bool {
        self.xd
    }

    /// Whether operand 1 is read.
    pub fn xs1(&self) -> bool {
        self.xs1
    }

    /// Whether operand 2 is read.
    pub fn xs2(&self) -> bool {
        self.xs2
    }

    /// Destination register number.
    pub fn rd(&self) -> u8 {
        self.rd
    }

    /// The 7-bit opcode (always [`IR_OPCODE`] in this system).
    pub fn opcode(&self) -> u8 {
        self.opcode
    }

    /// Packs the instruction into its 32-bit wire format.
    pub fn encode(&self) -> u32 {
        (u32::from(self.funct) << 25)
            | (u32::from(self.rs2) << 20)
            | (u32::from(self.rs1) << 15)
            | (u32::from(self.xd) << 14)
            | (u32::from(self.xs1) << 13)
            | (u32::from(self.xs2) << 12)
            | (u32::from(self.rd) << 7)
            | u32::from(self.opcode)
    }

    /// Unpacks a 32-bit wire word.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InvalidCommand`] if the opcode is not
    /// [`IR_OPCODE`].
    pub fn decode(word: u32) -> Result<Self, FpgaError> {
        let opcode = (word & 0x7f) as u8;
        if opcode != IR_OPCODE {
            return Err(FpgaError::InvalidCommand(word));
        }
        Ok(RoccInstruction {
            funct: ((word >> 25) & 0x7f) as u8,
            rs2: ((word >> 20) & 0x1f) as u8,
            rs1: ((word >> 15) & 0x1f) as u8,
            xd: (word >> 14) & 1 == 1,
            xs1: (word >> 13) & 1 == 1,
            xs2: (word >> 12) & 1 == 1,
            rd: ((word >> 7) & 0x1f) as u8,
            opcode,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for funct in [0u8, 1, 5, 0x7f] {
            for (rs1, rs2, rd) in [(0u8, 0u8, 0u8), (31, 31, 31), (7, 12, 3)] {
                let instr = RoccInstruction::new(funct, rs1, rs2, true, false, true, rd).unwrap();
                assert_eq!(RoccInstruction::decode(instr.encode()).unwrap(), instr);
            }
        }
    }

    #[test]
    fn field_positions_match_table1() {
        let instr = RoccInstruction::new(0x7f, 0, 0, false, false, false, 0).unwrap();
        assert_eq!(instr.encode() >> 25, 0x7f);

        let instr = RoccInstruction::new(0, 0x1f, 0, false, false, false, 0).unwrap();
        assert_eq!((instr.encode() >> 15) & 0x1f, 0x1f);

        let instr = RoccInstruction::new(0, 0, 0x1f, false, false, false, 0).unwrap();
        assert_eq!((instr.encode() >> 20) & 0x1f, 0x1f);

        let instr = RoccInstruction::new(0, 0, 0, true, false, false, 0).unwrap();
        assert_eq!((instr.encode() >> 14) & 1, 1);

        let instr = RoccInstruction::new(0, 0, 0, false, true, false, 0).unwrap();
        assert_eq!((instr.encode() >> 13) & 1, 1);

        let instr = RoccInstruction::new(0, 0, 0, false, false, true, 0).unwrap();
        assert_eq!((instr.encode() >> 12) & 1, 1);

        let instr = RoccInstruction::new(0, 0, 0, false, false, false, 0x1f).unwrap();
        assert_eq!((instr.encode() >> 7) & 0x1f, 0x1f);
    }

    #[test]
    fn opcode_is_custom0() {
        let instr = RoccInstruction::new(1, 2, 3, false, true, true, 0).unwrap();
        assert_eq!(instr.encode() & 0x7f, u32::from(IR_OPCODE));
    }

    #[test]
    fn rejects_wide_fields() {
        assert!(RoccInstruction::new(0x80, 0, 0, false, false, false, 0).is_err());
        assert!(RoccInstruction::new(0, 32, 0, false, false, false, 0).is_err());
        assert!(RoccInstruction::new(0, 0, 32, false, false, false, 0).is_err());
        assert!(RoccInstruction::new(0, 0, 0, false, false, false, 32).is_err());
    }

    #[test]
    fn rejects_foreign_opcode() {
        // An R-type integer op (opcode 0110011) must not decode.
        assert!(RoccInstruction::decode(0x0000_0033).is_err());
    }
}
