//! The event-driven simulation core: the system of `system.rs` recast as
//! [`ir_sim`] components exchanging messages on a discrete-event queue.
//!
//! The legacy schedulers ([`SimBackend::LegacyStepper`]) walk targets in
//! host loops and call the cycle-stepping HDC kernel per pair. This module
//! reproduces the *same arithmetic in the same order* — every `f64`
//! accumulation, every telemetry call — but as reactions to events, with
//! two structural wins:
//!
//! - The clock jumps between state changes instead of ticking, so the
//!   datapath can be evaluated through the jump-to-outcome kernel
//!   ([`crate::unit::simulate_target_fast`]) or memoized wholesale through
//!   a [`FunctionalOracle`].
//! - Units, the DMA engine and the watchdog are separate [`Component`]s
//!   addressed by index, which is how the hardware is actually wired
//!   (Figure 4's 32:1 arbiter fabric) and what lets the fleet simulator
//!   reuse the same engine for spot-interruption events.
//!
//! # Equivalence with the legacy stepper
//!
//! `tests/event_parity.rs` asserts bitwise-identical [`SystemRun`]s. The
//! load-bearing ordering facts:
//!
//! - Control messages ([`Ev::Resolve`]/[`Ev::Resolved`]/DMA replies) post
//!   at priority 0; unit free/tick events post at priority
//!   `UNIT_BASE + unit`. At any timestamp every in-flight dispatch
//!   round-trip therefore completes before the next unit frees — the
//!   round-trip is atomic, exactly like one iteration of the legacy loop.
//! - Among units freeing at the same instant, priority `UNIT_BASE + unit`
//!   reproduces the legacy min-heap's `(time, unit_index)` tie-break.
//! - The asynchronous path quantizes unit-free times to integer
//!   picoseconds (`from_ps(to_ps(end))`), the exact conversion the legacy
//!   heap applied, so every `free` the scheduler reads is bit-identical.

use std::cmp::Reverse;

use ir_genome::RealignmentTarget;
use ir_sim::{Component, Ctx, Engine, Port, SimEvent, SimTime};
use ir_telemetry::{SpanKind, Track};

use crate::dma::DmaParams;
use crate::oracle::FunctionalOracle;
#[cfg(doc)]
use crate::system::SimBackend;
use crate::system::{
    timeline_from_snapshot, AcceleratedSystem, DispatchRecord, FaultState, Scheduling, SystemRun,
    TeleAcc,
};
use crate::unit::{simulate_target_fast, UnitRun};

/// Component index of the scheduler.
const SCHED: usize = 0;
/// Component index of the DMA engine.
const DMA: usize = 1;
/// Component index of the watchdog/resilience layer.
const WATCHDOG: usize = 2;
/// Component index of IR unit `u` is `UNIT_BASE + u`.
const UNIT_BASE: usize = 3;

/// Integer-picosecond quantization used by the asynchronous unit-free
/// clock — the same conversion the legacy min-heap applied at its edges.
fn to_ps(s: f64) -> u64 {
    (s * 1e12) as u64
}

fn from_ps(ps: u64) -> f64 {
    ps as f64 / 1e12
}

/// Messages exchanged between the system's components.
#[derive(Debug)]
pub(crate) enum Ev {
    /// Self-wake (engine-posted when a component returns `Some(t)`).
    Tick,
    /// Scheduler → DMA (async): append one descriptor chain to the DMA
    /// engine's queue; the transfer occupies the engine's next free slot.
    PlanChain {
        targets: Vec<usize>,
        sizes: Vec<u64>,
    },
    /// DMA → scheduler (async): a planned chain's occupancy window.
    ChainPlanned {
        targets: Vec<usize>,
        bytes: u64,
        start_s: f64,
        end_s: f64,
        dt_s: f64,
    },
    /// Scheduler → DMA (sync): transfer one batch starting now; the reply
    /// arrives when the chain completes.
    StartChain {
        targets: Vec<usize>,
        sizes: Vec<u64>,
    },
    /// DMA → scheduler (sync): the batch transfer finished.
    ChainDone {
        targets: Vec<usize>,
        bytes: u64,
        start_s: f64,
        end_s: f64,
        dt_s: f64,
    },
    /// Scheduler → watchdog: a target's functional result is ready; play
    /// the recovery state machine over it.
    Resolve {
        target: usize,
        unit: usize,
        run: Box<UnitRun>,
    },
    /// Watchdog → scheduler: recovery resolved, with the extra cycles the
    /// unit burned and the unit's health transitions.
    Resolved {
        target: usize,
        unit: usize,
        run: Box<UnitRun>,
        extra: u64,
        newly_quarantined: bool,
        still_healthy: bool,
    },
    /// Scheduler → unit: you are busy until `wake_s`; report back then.
    Dispatch { wake_s: f64 },
    /// Unit → scheduler: this unit is free for its next target.
    UnitFree { unit: usize },
}

impl SimEvent for Ev {
    fn tick() -> Self {
        Ev::Tick
    }
}

/// The PCIe DMA engine as a component: owns the single descriptor queue,
/// so chain start times serialize through `free_s`.
struct DmaComp {
    dma: DmaParams,
    free_s: f64,
}

impl Component for DmaComp {
    type Event = Ev;

    fn wake(&mut self, now: SimTime, msg: Ev, ctx: &mut Ctx<Ev>) -> Option<SimTime> {
        match msg {
            Ev::PlanChain { targets, sizes } => {
                let bytes: u64 = sizes.iter().sum();
                let dt = self.dma.batch_transfer_time_s(sizes.iter().copied());
                let start = self.free_s;
                self.free_s = start + dt;
                ctx.post(
                    SCHED,
                    now,
                    0,
                    Ev::ChainPlanned {
                        targets,
                        bytes,
                        start_s: start,
                        end_s: self.free_s,
                        dt_s: dt,
                    },
                );
            }
            Ev::StartChain { targets, sizes } => {
                let bytes: u64 = sizes.iter().sum();
                let dt = self.dma.batch_transfer_time_s(sizes.iter().copied());
                let start = now.seconds();
                ctx.post(
                    SCHED,
                    SimTime::from_seconds(start + dt),
                    0,
                    Ev::ChainDone {
                        targets,
                        bytes,
                        start_s: start,
                        end_s: start + dt,
                        dt_s: dt,
                    },
                );
            }
            _ => unreachable!("DMA engine received a non-DMA message"),
        }
        None
    }
}

/// The watchdog/resilience layer as a component: the single owner of the
/// [`FaultState`], so recovery decisions serialize through it.
struct WatchdogComp<'t, 'f, 'p> {
    targets: &'t [RealignmentTarget],
    fault: Option<&'f mut FaultState<'p>>,
}

impl Component for WatchdogComp<'_, '_, '_> {
    type Event = Ev;

    fn wake(&mut self, now: SimTime, msg: Ev, ctx: &mut Ctx<Ev>) -> Option<SimTime> {
        let Ev::Resolve {
            target,
            unit,
            mut run,
        } = msg
        else {
            unreachable!("watchdog received a non-resolve message")
        };
        let (extra, newly_quarantined, still_healthy) = match self.fault.as_deref_mut() {
            Some(fs) => {
                let was = fs.quarantined[unit];
                let extra = fs.resolve(&self.targets[target], &mut run, unit);
                let quarantined = fs.quarantined[unit];
                (extra, !was && quarantined, !quarantined)
            }
            None => (0, false, true),
        };
        ctx.post(
            SCHED,
            now,
            0,
            Ev::Resolved {
                target,
                unit,
                run,
                extra,
                newly_quarantined,
                still_healthy,
            },
        );
        None
    }
}

/// One IR unit as a component: dispatched with a busy-until time, it
/// self-wakes then and reports free. The free report carries the unit's
/// own index as its tie-break priority, reproducing the legacy heap's
/// unit-index ordering among simultaneous completions.
struct UnitComp {
    id: usize,
}

impl Component for UnitComp {
    type Event = Ev;

    fn wake(&mut self, now: SimTime, msg: Ev, ctx: &mut Ctx<Ev>) -> Option<SimTime> {
        match msg {
            Ev::Dispatch { wake_s } => Some(SimTime::from_seconds(wake_s)),
            Ev::Tick => {
                ctx.post(
                    SCHED,
                    now,
                    (UNIT_BASE + self.id) as u64,
                    Ev::UnitFree { unit: self.id },
                );
                None
            }
            _ => unreachable!("unit received a scheduler-only message"),
        }
    }
}

/// The run-wide ledgers both schedulers accumulate into; folded into a
/// [`SystemRun`] identically to the legacy epilogue.
struct Ledger {
    acc: TeleAcc,
    results: Vec<Option<UnitRun>>,
    dma_busy: f64,
    command_s: f64,
    compute_cycles: u64,
    comparisons: u64,
    unit_busy: Vec<f64>,
}

impl Ledger {
    fn new(telemetry: bool, units: usize, cycle_s: f64, num_targets: usize) -> Self {
        Ledger {
            acc: TeleAcc::new(telemetry, units, cycle_s),
            results: (0..num_targets).map(|_| None).collect(),
            dma_busy: 0.0,
            command_s: 0.0,
            compute_cycles: 0,
            comparisons: 0,
            unit_busy: vec![0.0; units],
        }
    }

    fn into_run(self, wall_s: f64, num_targets: usize) -> SystemRun {
        let snapshot = self
            .acc
            .finalize(wall_s, self.command_s, self.dma_busy, num_targets);
        SystemRun {
            wall_time_s: wall_s,
            results: self
                .results
                .into_iter()
                .map(|r| r.expect("every target ran"))
                .collect(),
            dma_busy_s: self.dma_busy,
            command_s: self.command_s,
            compute_cycles: self.compute_cycles,
            comparisons: self.comparisons,
            unit_busy_s: self.unit_busy,
            timeline: snapshot
                .as_ref()
                .map(timeline_from_snapshot)
                .unwrap_or_default(),
            resilience: None,
            telemetry: snapshot,
        }
    }
}

/// Evaluates one target's functional result, through the shared oracle
/// when one was provided.
fn evaluate(
    oracle: &mut Option<&mut FunctionalOracle>,
    target: &RealignmentTarget,
    index: usize,
    sys: &AcceleratedSystem,
) -> UnitRun {
    match oracle.as_deref_mut() {
        Some(o) => o.simulate(target, index, sys.params()),
        None => simulate_target_fast(target, sys.params()),
    }
}

/// The asynchronous scheduler as a component (paper §IV, Figure 7-bottom):
/// DMA chains are planned ahead in dispatch order; each unit receives its
/// next target the instant it reports free.
struct AsyncSched<'s, 't, 'o> {
    sys: &'s AcceleratedSystem,
    targets: &'t [RealignmentTarget],
    oracle: Option<&'o mut FunctionalOracle>,
    ledger: Ledger,
    /// Dispatch order: largest worst-case work first.
    order: Vec<usize>,
    dma_done: Vec<f64>,
    chunk_cursor: usize,
    dispatch_idx: usize,
    /// Per-unit compute-end times and the prefetch pointer — telemetry
    /// observables only, exactly as in the legacy scheduler.
    unit_end_s: Vec<f64>,
    arrived: usize,
    wall: f64,
    dma_port: Port,
    watchdog_port: Port,
}

impl<'s, 't, 'o> AsyncSched<'s, 't, 'o> {
    fn new(
        sys: &'s AcceleratedSystem,
        targets: &'t [RealignmentTarget],
        telemetry: bool,
        oracle: Option<&'o mut FunctionalOracle>,
    ) -> Self {
        let units = sys.params().num_units;
        let mut order: Vec<usize> = (0..targets.len()).collect();
        order.sort_by_key(|&t| Reverse(targets[t].shape().worst_case_comparisons()));
        AsyncSched {
            sys,
            targets,
            oracle,
            ledger: Ledger::new(telemetry, units, sys.params().cycle_time_s(), targets.len()),
            order,
            dma_done: vec![0.0; targets.len()],
            chunk_cursor: 0,
            dispatch_idx: 0,
            unit_end_s: vec![0.0; units],
            arrived: 0,
            wall: 0.0,
            dma_port: Port::new(DMA, 0),
            watchdog_port: Port::new(WATCHDOG, 0),
        }
    }

    /// Plans the next descriptor chain of up to `num_units` targets in
    /// dispatch order (the prefetch groups of the legacy scheduler).
    fn plan_next_chain(&mut self, now: SimTime, ctx: &mut Ctx<Ev>) {
        if self.chunk_cursor >= self.order.len() {
            return;
        }
        let units = self.sys.params().num_units.max(1);
        let end = self.order.len().min(self.chunk_cursor + units);
        let chunk: Vec<usize> = self.order[self.chunk_cursor..end].to_vec();
        self.chunk_cursor = end;
        let sizes: Vec<u64> = chunk
            .iter()
            .map(|&t| self.targets[t].shape().input_bytes())
            .collect();
        self.dma_port.send(
            ctx,
            now,
            Ev::PlanChain {
                targets: chunk,
                sizes,
            },
        );
    }

    fn into_run(self, num_targets: usize) -> SystemRun {
        self.ledger.into_run(self.wall, num_targets)
    }
}

impl Component for AsyncSched<'_, '_, '_> {
    type Event = Ev;

    fn wake(&mut self, now: SimTime, msg: Ev, ctx: &mut Ctx<Ev>) -> Option<SimTime> {
        match msg {
            // Kickoff: every unit is born free; DMA planning runs ahead.
            Ev::Tick => {
                if self.order.is_empty() {
                    ctx.halt();
                    return None;
                }
                for u in 0..self.sys.params().num_units {
                    ctx.post(
                        UNIT_BASE + u,
                        SimTime::ZERO,
                        (UNIT_BASE + u) as u64,
                        Ev::Dispatch { wake_s: 0.0 },
                    );
                }
                self.plan_next_chain(now, ctx);
            }
            Ev::ChainPlanned {
                targets,
                bytes,
                start_s,
                end_s,
                dt_s,
            } => {
                self.ledger.dma_busy += dt_s;
                for &t in &targets {
                    self.dma_done[t] = end_s;
                }
                self.ledger
                    .acc
                    .record_chain(&targets, bytes, start_s, end_s);
                self.plan_next_chain(now, ctx);
            }
            Ev::UnitFree { unit } => {
                if self.dispatch_idx >= self.order.len() {
                    return None;
                }
                let t = self.order[self.dispatch_idx];
                let target = &self.targets[t];
                self.ledger.command_s += self.sys.config_time_s(target);
                let run = evaluate(&mut self.oracle, target, t, self.sys);
                self.watchdog_port.send(
                    ctx,
                    now,
                    Ev::Resolve {
                        target: t,
                        unit,
                        run: Box::new(run),
                    },
                );
            }
            Ev::Resolved {
                target: t,
                unit,
                run,
                extra,
                newly_quarantined,
                still_healthy,
            } => {
                let sys = self.sys;
                let p = sys.params();
                let cycle_s = p.cycle_time_s();
                let target = &self.targets[t];
                let cfg = sys.config_time_s(target);
                let busy = (run.cycles.total() + extra) as f64 * cycle_s;
                // `now` is the unit's ps-quantized free instant — the exact
                // `from_ps(free_ps)` the legacy heap pop produced.
                let free = now.seconds();
                let start = free.max(self.dma_done[t]) + cfg;
                let dma_wait = (self.dma_done[t] - free).max(0.0);
                let end = start + busy + p.response_latency_s;
                self.ledger.command_s += p.response_latency_s;
                if newly_quarantined {
                    self.ledger.acc.record_quarantine(unit, end);
                }
                self.ledger.unit_busy[unit] += busy;
                self.ledger.compute_cycles += run.cycles.total();
                self.ledger.comparisons += run.comparisons;
                self.wall = self.wall.max(end);
                if self.ledger.acc.enabled() {
                    let active_units = 1 + self
                        .unit_end_s
                        .iter()
                        .enumerate()
                        .filter(|&(u, &e)| u != unit && e > start)
                        .count() as u64;
                    self.unit_end_s[unit] = start + busy;
                    while self.arrived < self.order.len()
                        && self.dma_done[self.order[self.arrived]] <= start
                    {
                        self.arrived += 1;
                    }
                    let prefetch_depth = self.arrived.saturating_sub(self.dispatch_idx + 1) as u64;
                    self.ledger
                        .acc
                        .tele
                        .gauge_max("dma", "prefetch_depth_hwm", prefetch_depth);
                    let shape = target.shape();
                    self.ledger.acc.record_dispatch(
                        p,
                        DispatchRecord {
                            unit,
                            target_index: t,
                            start_s: start,
                            busy_s: busy,
                            busy_cycles: run.cycles.total() + extra,
                            stall_s: dma_wait + cfg + p.response_latency_s,
                            dma_wait_s: dma_wait,
                            active_units,
                            run: &run,
                            shape: &shape,
                        },
                    );
                }
                self.ledger.results[t] = Some(*run);
                if still_healthy {
                    ctx.post(
                        UNIT_BASE + unit,
                        now,
                        0,
                        Ev::Dispatch {
                            wake_s: from_ps(to_ps(end)),
                        },
                    );
                }
                self.dispatch_idx += 1;
                if self.dispatch_idx == self.order.len() {
                    ctx.halt();
                }
            }
            _ => unreachable!("async scheduler received a DMA/unit-only message"),
        }
        None
    }
}

/// The synchronous-parallel scheduler as a component (Figure 7-top):
/// transfer a whole batch, launch every healthy unit, wait for the last,
/// flush, repeat.
struct SyncSched<'s, 't, 'o> {
    sys: &'s AcceleratedSystem,
    targets: &'t [RealignmentTarget],
    oracle: Option<&'o mut FunctionalOracle>,
    ledger: Ledger,
    order: Vec<usize>,
    /// Mirror of the watchdog's quarantine state; sizes the next batch.
    quarantined: Vec<bool>,
    cursor: usize,
    batch: Vec<usize>,
    healthy: Vec<usize>,
    slot: usize,
    /// The current batch's DMA time — every member stalls behind it.
    dma_s: f64,
    batch_end: f64,
    /// The scheduler's logical clock (batch boundaries).
    now_s: f64,
    frees_outstanding: usize,
    dma_port: Port,
    watchdog_port: Port,
}

impl<'s, 't, 'o> SyncSched<'s, 't, 'o> {
    fn new(
        sys: &'s AcceleratedSystem,
        targets: &'t [RealignmentTarget],
        telemetry: bool,
        oracle: Option<&'o mut FunctionalOracle>,
    ) -> Self {
        let units = sys.params().num_units;
        let mut order: Vec<usize> = (0..targets.len()).collect();
        match sys.scheduling() {
            Scheduling::SynchronousUnsorted => {}
            Scheduling::SynchronousByWorstCase => {
                order.sort_by_key(|&t| Reverse(targets[t].shape().worst_case_comparisons()));
            }
            _ => order
                .sort_by_key(|&t| Reverse((targets[t].num_reads(), targets[t].num_consensuses()))),
        }
        SyncSched {
            sys,
            targets,
            oracle,
            ledger: Ledger::new(telemetry, units, sys.params().cycle_time_s(), targets.len()),
            order,
            quarantined: vec![false; units],
            cursor: 0,
            batch: Vec::new(),
            healthy: Vec::new(),
            slot: 0,
            dma_s: 0.0,
            batch_end: 0.0,
            now_s: 0.0,
            frees_outstanding: 0,
            dma_port: Port::new(DMA, 0),
            watchdog_port: Port::new(WATCHDOG, 0),
        }
    }

    /// Sizes the next batch to the healthy unit count and starts its DMA.
    fn start_batch(&mut self, ctx: &mut Ctx<Ev>) {
        let units = self.sys.params().num_units;
        self.healthy = (0..units).filter(|&u| !self.quarantined[u]).collect();
        let end = self.order.len().min(self.cursor + self.healthy.len());
        self.batch = self.order[self.cursor..end].to_vec();
        self.cursor = end;
        let sizes: Vec<u64> = self
            .batch
            .iter()
            .map(|&t| self.targets[t].shape().input_bytes())
            .collect();
        self.dma_port.send(
            ctx,
            SimTime::from_seconds(self.now_s),
            Ev::StartChain {
                targets: self.batch.clone(),
                sizes,
            },
        );
    }

    /// Configures and launches one batch slot (host-serial command issue).
    fn issue_slot(&mut self, now: SimTime, ctx: &mut Ctx<Ev>) {
        let t = self.batch[self.slot];
        let target = &self.targets[t];
        self.ledger.command_s += self.sys.config_time_s(target);
        let run = evaluate(&mut self.oracle, target, t, self.sys);
        self.watchdog_port.send(
            ctx,
            now,
            Ev::Resolve {
                target: t,
                unit: self.healthy[self.slot],
                run: Box::new(run),
            },
        );
    }

    fn into_run(self, num_targets: usize) -> SystemRun {
        self.ledger.into_run(self.now_s, num_targets)
    }
}

impl Component for SyncSched<'_, '_, '_> {
    type Event = Ev;

    fn wake(&mut self, now: SimTime, msg: Ev, ctx: &mut Ctx<Ev>) -> Option<SimTime> {
        match msg {
            Ev::Tick => {
                if self.order.is_empty() {
                    ctx.halt();
                    return None;
                }
                self.start_batch(ctx);
            }
            Ev::ChainDone {
                targets,
                bytes,
                start_s,
                end_s,
                dt_s,
            } => {
                self.ledger
                    .acc
                    .record_chain(&targets, bytes, start_s, end_s);
                self.ledger.acc.tele.add("sched", "batches", 1);
                self.ledger
                    .acc
                    .tele
                    .gauge_max("dma", "prefetch_depth_hwm", targets.len() as u64);
                self.now_s = end_s;
                self.ledger.dma_busy += dt_s;
                self.dma_s = dt_s;
                self.batch_end = self.now_s;
                self.slot = 0;
                self.frees_outstanding = 0;
                self.issue_slot(now, ctx);
            }
            Ev::Resolved {
                target: t,
                unit,
                run,
                extra,
                newly_quarantined,
                still_healthy: _,
            } => {
                let sys = self.sys;
                let p = sys.params();
                let target = &self.targets[t];
                let cfg = sys.config_time_s(target);
                let busy = (run.cycles.total() + extra) as f64 * p.cycle_time_s();
                let start = self.now_s + cfg;
                let end = start + busy;
                if newly_quarantined {
                    self.quarantined[unit] = true;
                    self.ledger.acc.record_quarantine(unit, end);
                }
                self.ledger.unit_busy[unit] += busy;
                self.ledger.compute_cycles += run.cycles.total();
                self.ledger.comparisons += run.comparisons;
                self.batch_end = self.batch_end.max(end);
                let shape = target.shape();
                self.ledger.acc.record_dispatch(
                    p,
                    DispatchRecord {
                        unit,
                        target_index: t,
                        start_s: start,
                        busy_s: busy,
                        busy_cycles: run.cycles.total() + extra,
                        stall_s: self.dma_s + cfg,
                        dma_wait_s: self.dma_s,
                        active_units: self.batch.len() as u64,
                        run: &run,
                        shape: &shape,
                    },
                );
                self.ledger.results[t] = Some(*run);
                ctx.post(UNIT_BASE + unit, now, 0, Ev::Dispatch { wake_s: end });
                self.frees_outstanding += 1;
                self.slot += 1;
                if self.slot < self.batch.len() {
                    self.issue_slot(now, ctx);
                }
            }
            // The batch barrier: the last unit to free ends the batch, then
            // the whole fabric flushes before the next one starts.
            Ev::UnitFree { unit: _ } => {
                self.frees_outstanding -= 1;
                if self.frees_outstanding > 0 {
                    return None;
                }
                let flush = self.sys.params().response_latency_s * self.batch.len() as f64;
                self.ledger.command_s += flush;
                if self.ledger.acc.enabled() {
                    for &unit in self.healthy.iter().take(self.batch.len()) {
                        self.ledger.acc.stall_s[unit] += flush;
                    }
                    self.ledger.acc.tele.span(
                        Track::Host,
                        SpanKind::Stall,
                        "batch flush",
                        None,
                        self.batch_end,
                        self.batch_end + flush,
                    );
                }
                self.now_s = self.batch_end + flush;
                if self.cursor < self.order.len() {
                    self.start_batch(ctx);
                } else {
                    ctx.halt();
                }
            }
            _ => unreachable!("sync scheduler received an async-only message"),
        }
        None
    }
}

/// Runs `targets` through the event-driven core. `fault` threads the
/// resilience state machine through the watchdog component; `oracle`
/// memoizes functional results across runs of the same workload.
pub(crate) fn run_event_driven(
    sys: &AcceleratedSystem,
    targets: &[RealignmentTarget],
    telemetry: bool,
    fault: Option<&mut FaultState<'_>>,
    oracle: Option<&mut FunctionalOracle>,
) -> SystemRun {
    let units = sys.params().num_units;
    let mut dma = DmaComp {
        dma: *sys.dma_params(),
        free_s: 0.0,
    };
    let mut watchdog = WatchdogComp { targets, fault };
    let mut unit_comps: Vec<UnitComp> = (0..units).map(|id| UnitComp { id }).collect();
    let mut engine = Engine::new();
    engine.post(SCHED, SimTime::ZERO, 0, Ev::Tick);

    macro_rules! drive {
        ($sched:expr) => {{
            let mut sched = $sched;
            {
                let mut comps: Vec<&mut dyn Component<Event = Ev>> =
                    Vec::with_capacity(UNIT_BASE + units);
                comps.push(&mut sched);
                comps.push(&mut dma);
                comps.push(&mut watchdog);
                for u in unit_comps.iter_mut() {
                    comps.push(u);
                }
                engine.run(&mut comps);
            }
            sched.into_run(targets.len())
        }};
    }

    match sys.scheduling() {
        Scheduling::Asynchronous => drive!(AsyncSched::new(sys, targets, telemetry, oracle)),
        _ => drive!(SyncSched::new(sys, targets, telemetry, oracle)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::FpgaParams;
    use crate::system::SimBackend;
    use ir_genome::{Qual, Read, RealignmentTarget};

    /// A small workload with uneven shapes so scheduling order matters.
    fn workload(n: usize) -> Vec<RealignmentTarget> {
        (0..n)
            .map(|i| {
                let mut b = RealignmentTarget::builder(100 + i as u64)
                    .reference("CCTTAGACCTTAGA".parse().unwrap());
                for c in 0..(1 + i % 3) {
                    let cons = match c {
                        0 => "ACCTGAACCTGAA",
                        1 => "ACCTGTACCTGTA",
                        _ => "ACCTGCACCTGCA",
                    };
                    b = b.consensus(cons.parse().unwrap());
                }
                for r in 0..(1 + (i * 2) % 5) {
                    let bases = ["TGAA", "CTGAAC", "ACCTG", "GAACC", "TTAGA"][r % 5];
                    let quals: Vec<u8> = (0..bases.len() as u8).map(|q| 10 + 5 * q).collect();
                    b = b.read(
                        Read::new(
                            format!("r{i}_{r}"),
                            bases.parse().unwrap(),
                            Qual::from_raw_scores(&quals).unwrap(),
                            (r % 3) as u64,
                        )
                        .unwrap(),
                    );
                }
                b.build().unwrap()
            })
            .collect()
    }

    fn assert_runs_bitwise_equal(a: &SystemRun, b: &SystemRun) {
        assert_eq!(a.wall_time_s.to_bits(), b.wall_time_s.to_bits(), "wall");
        assert_eq!(a.dma_busy_s.to_bits(), b.dma_busy_s.to_bits(), "dma");
        assert_eq!(a.command_s.to_bits(), b.command_s.to_bits(), "command");
        assert_eq!(a.compute_cycles, b.compute_cycles);
        assert_eq!(a.comparisons, b.comparisons);
        assert_eq!(a.unit_busy_s.len(), b.unit_busy_s.len());
        for (x, y) in a.unit_busy_s.iter().zip(&b.unit_busy_s) {
            assert_eq!(x.to_bits(), y.to_bits(), "unit busy");
        }
        assert_eq!(a.results, b.results);
        assert_eq!(a.timeline.len(), b.timeline.len());
        for (x, y) in a.timeline.iter().zip(&b.timeline) {
            assert_eq!(x, y, "timeline event");
        }
        match (&a.telemetry, &b.telemetry) {
            (None, None) => {}
            (Some(x), Some(y)) => assert!(x.bitwise_eq(y), "telemetry snapshots differ"),
            _ => panic!("one run has telemetry, the other not"),
        }
    }

    #[test]
    fn engine_matches_legacy_all_schedulings() {
        let targets = workload(11);
        for scheduling in [
            Scheduling::Synchronous,
            Scheduling::SynchronousUnsorted,
            Scheduling::SynchronousByWorstCase,
            Scheduling::Asynchronous,
        ] {
            for params in [FpgaParams::serial(), FpgaParams::iracc()] {
                let sys = AcceleratedSystem::new(params, scheduling)
                    .unwrap()
                    .with_telemetry(true);
                let engine_run = sys.run(&targets);
                let legacy_run = sys
                    .clone()
                    .with_backend(SimBackend::LegacyStepper)
                    .run(&targets);
                assert_runs_bitwise_equal(&engine_run, &legacy_run);
            }
        }
    }

    #[test]
    fn engine_matches_legacy_without_telemetry() {
        let targets = workload(7);
        for scheduling in [Scheduling::Synchronous, Scheduling::Asynchronous] {
            let sys = AcceleratedSystem::new(FpgaParams::iracc(), scheduling).unwrap();
            let engine_run = sys.run(&targets);
            let legacy_run = sys
                .clone()
                .with_backend(SimBackend::LegacyStepper)
                .run(&targets);
            assert_runs_bitwise_equal(&engine_run, &legacy_run);
        }
    }

    #[test]
    fn empty_workload_halts_cleanly() {
        for scheduling in [Scheduling::Synchronous, Scheduling::Asynchronous] {
            let sys = AcceleratedSystem::new(FpgaParams::iracc(), scheduling)
                .unwrap()
                .with_telemetry(true);
            let run = sys.run(&[]);
            assert_eq!(run.wall_time_s, 0.0);
            assert!(run.results.is_empty());
        }
    }

    #[test]
    fn oracle_backed_run_matches_plain_engine_run() {
        let targets = workload(9);
        let sys = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Asynchronous).unwrap();
        let mut oracle = FunctionalOracle::new();
        let first = sys.run_with_oracle(&targets, &mut oracle);
        let plain = sys.run(&targets);
        assert_runs_bitwise_equal(&first, &plain);
        assert!(!oracle.is_empty());
        // Replay under another configuration: cache entries are reused and
        // the outputs still match that configuration's plain run.
        let sync = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Synchronous).unwrap();
        let replay = sync.run_with_oracle(&targets, &mut oracle);
        assert_runs_bitwise_equal(&replay, &sync.run(&targets));
    }
}
