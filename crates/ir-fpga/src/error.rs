//! Error type for the FPGA simulator.

use std::error::Error;
use std::fmt;

/// Errors produced while configuring or driving the simulated accelerator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FpgaError {
    /// The requested configuration does not fit on the FPGA.
    DoesNotFit {
        /// Requested number of IR units.
        units: usize,
        /// Maximum units the floorplan model admits.
        max_units: usize,
    },
    /// The requested clock recipe fails timing closure (the paper's
    /// 250 MHz experiment: > 95% of the critical path is routing delay).
    TimingFailure {
        /// Requested clock in MHz.
        clock_mhz: u32,
        /// Worst negative slack in nanoseconds (negative = failing).
        slack_ns: f64,
    },
    /// A RoCC word that does not decode to an IR command.
    InvalidCommand(u32),
    /// A command referenced a unit id outside the instantiated range.
    NoSuchUnit {
        /// The requested unit.
        unit: usize,
        /// Number of instantiated units.
        available: usize,
    },
    /// A target was submitted whose data exceeds the unit's buffers.
    BufferOverflow {
        /// Which buffer overflowed.
        buffer: &'static str,
        /// Bytes required.
        required: usize,
        /// Buffer capacity in bytes.
        capacity: usize,
    },
    /// The accelerator was started before all required configuration
    /// commands were issued.
    NotConfigured(&'static str),
    /// Response queue polled while empty.
    NoResponse,
    /// A hardware interaction exceeded its cycle/time budget (DMA chain
    /// that never completed, response that never arrived).
    Timeout {
        /// The boundary that timed out (e.g. `"pcie dma"`,
        /// `"mmio response queue"`).
        site: &'static str,
        /// Seconds the host waited before declaring the timeout.
        waited_s: f64,
    },
    /// Read-back data failed an integrity check (short DMA payload,
    /// malformed flag byte, golden-model verification mismatch).
    CorruptOutput {
        /// What failed the check.
        detail: &'static str,
        /// The observed value (delivered bytes, bad flag, mismatching
        /// read index — whatever the detail names).
        observed: u64,
    },
    /// A unit's FSM hung mid-execution and sits stuck-busy until reset.
    UnitHung {
        /// The wedged unit.
        unit: usize,
        /// Targets the unit had completed before hanging.
        targets_completed: u64,
    },
    /// A workload shape envelope no unit configuration can hold: one of
    /// its dimensions overflows an ISA field width, or the buffer
    /// geometry it implies leaves room for zero IR units on the fabric.
    ShapeUnsupported {
        /// The offending dimension (e.g. `"consensus length"`,
        /// `"per-unit BRAM36 blocks"`).
        what: &'static str,
        /// The requested value.
        value: usize,
        /// The largest value a configuration can support.
        max: usize,
    },
}

impl fmt::Display for FpgaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpgaError::DoesNotFit { units, max_units } => write!(
                f,
                "{units} IR units do not fit on the FPGA (floorplan admits {max_units})"
            ),
            FpgaError::TimingFailure {
                clock_mhz,
                slack_ns,
            } => write!(
                f,
                "{clock_mhz} MHz clock fails timing with {slack_ns:.2} ns of negative slack"
            ),
            FpgaError::InvalidCommand(word) => {
                write!(f, "word 0x{word:08x} does not decode to a RoCC IR command")
            }
            FpgaError::NoSuchUnit { unit, available } => {
                write!(
                    f,
                    "unit {unit} does not exist ({available} units instantiated)"
                )
            }
            FpgaError::BufferOverflow {
                buffer,
                required,
                capacity,
            } => write!(
                f,
                "{buffer} buffer overflow: {required} bytes required, capacity {capacity}"
            ),
            FpgaError::NotConfigured(what) => {
                write!(f, "accelerator started before configuring {what}")
            }
            FpgaError::NoResponse => write!(f, "response queue is empty"),
            FpgaError::Timeout { site, waited_s } => {
                write!(
                    f,
                    "timeout at {site} after {waited_s:.6} s with no completion"
                )
            }
            FpgaError::CorruptOutput { detail, observed } => {
                write!(f, "corrupt read-back data: {detail} (observed {observed})")
            }
            FpgaError::UnitHung {
                unit,
                targets_completed,
            } => write!(
                f,
                "unit {unit} hung mid-execution after {targets_completed} completed targets"
            ),
            FpgaError::ShapeUnsupported { what, value, max } => write!(
                f,
                "no unit configuration holds this shape: {what} {value} exceeds {max}"
            ),
        }
    }
}

impl Error for FpgaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let errors: Vec<FpgaError> = vec![
            FpgaError::DoesNotFit {
                units: 64,
                max_units: 32,
            },
            FpgaError::TimingFailure {
                clock_mhz: 250,
                slack_ns: -1.5,
            },
            FpgaError::InvalidCommand(0xdead_beef),
            FpgaError::NoSuchUnit {
                unit: 33,
                available: 32,
            },
            FpgaError::BufferOverflow {
                buffer: "consensus",
                required: 70_000,
                capacity: 65_536,
            },
            FpgaError::NotConfigured("buffer addresses"),
            FpgaError::NoResponse,
            FpgaError::Timeout {
                site: "pcie dma",
                waited_s: 0.004,
            },
            FpgaError::CorruptOutput {
                detail: "realign flag byte out of range",
                observed: 7,
            },
            FpgaError::UnitHung {
                unit: 12,
                targets_completed: 900,
            },
            FpgaError::ShapeUnsupported {
                what: "consensus length",
                value: 100_000,
                max: 65_535,
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(
                msg.chars().next().unwrap().is_ascii_lowercase()
                    || msg.starts_with(|c: char| c.is_ascii_digit()),
                "{msg}"
            );
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<FpgaError>();
    }
}
