//! Cycle-level simulator of the HPCA 2019 INDEL realignment accelerator
//! system.
//!
//! The paper deploys a "sea" of 32 IR accelerator units on a Xilinx Virtex
//! UltraScale+ VU9P inside an AWS EC2 F1 instance. This crate reproduces
//! that system as a discrete-event, cycle-driven simulator whose functional
//! outputs are bit-identical to the [`ir_core`] golden model and whose
//! timing is derived from the paper's microarchitecture:
//!
//! - [`rocc`] / [`isa`] — the RoCC custom-instruction format and the
//!   five-command IR ISA of Table I.
//! - [`bram`] / [`resources`] — block-RAM buffer geometry and the VU9P
//!   floorplan model that enforces the 32-unit fit at ~88% BRAM.
//! - [`shape`] — per-shape unit configuration derivation: resize the unit
//!   buffers for a workload family's envelope and re-solve the floorplan
//!   for the unit count that geometry leaves room for.
//! - [`hdc`] — the Hamming Distance Calculator stage, serial
//!   (1 compare/cycle) or 32-lane data-parallel (Figure 8), with
//!   computation pruning.
//! - [`selector`] — the Consensus Selector stage (Figure 5).
//! - [mod@unit] — one IR unit: load → compute → drain, with per-phase cycle
//!   counts.
//! - [`mem`] / [`dma`] / [`mmio`] — DDR channel bandwidth sharing, PCIe
//!   DMA, and the AXI-Lite command/response queues.
//! - [`system`] — the full F1 deployment: synchronous-flush or
//!   asynchronous scheduling across all units (Figure 7), end-to-end
//!   runtime including transfers.
//! - [`hls`] — the degraded SDAccel/HLS configuration the paper compares
//!   against (16 units, no pruning).
//! - [`fault`] / [`driver`] — seeded fault injection at the hardware
//!   boundaries (DMA, MMIO, unit FSM, output buffers) and the host-side
//!   resilience layer (watchdog, bounded retry, verified read-back,
//!   quarantine, software fallback) that recovers from it.
//!
//! Every modeled block is additionally instrumented with the
//! [`ir_telemetry`] perf-counter registry and Chrome-trace tracer; enable
//! collection with [`AcceleratedSystem::with_telemetry`] and read the
//! [`TelemetrySnapshot`] off [`SystemRun::telemetry`]. Instrumentation is
//! purely observational: an enabled run reports exactly the same cycle
//! counts as a disabled one.
//!
//! # Example
//!
//! ```
//! use ir_fpga::{FpgaParams, Scheduling, AcceleratedSystem};
//! use ir_genome::{Qual, Read, RealignmentTarget};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let target = RealignmentTarget::builder(20)
//!     .reference("CCTTAGA".parse()?)
//!     .consensus("ACCTGAA".parse()?)
//!     .read(Read::new("r0", "TGAA".parse()?, Qual::from_raw_scores(&[10, 20, 45, 10])?, 0)?)
//!     .build()?;
//!
//! let system = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Asynchronous)?;
//! let run = system.run(std::slice::from_ref(&target));
//! assert_eq!(run.results[0].best_consensus(), 1);
//! assert!(run.wall_time_s > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod bram;
pub mod dma;
pub mod driver;
pub mod fault;
pub mod fsm;
pub mod hdc;
pub mod hls;
pub mod isa;
pub mod layout;
pub mod mem;
pub mod mmio;
pub mod oracle;
pub mod resources;
pub mod rocc;
pub mod selector;
pub mod shape;
pub mod system;
pub mod unit;

mod engine;
mod error;
mod params;

pub use driver::{DriverRun, HostDriver, ResiliencePolicy, ResilienceReport};
pub use error::FpgaError;
pub use fault::{FaultCounts, FaultPlan, FaultRateError, FaultRates};
pub use ir_core::{KernelError, KernelKind};
pub use ir_telemetry::{BottleneckReport, PerfCounters, Telemetry, TelemetrySnapshot};
pub use isa::{BufferIndex, IrCommand};
pub use oracle::FunctionalOracle;
pub use params::{ClockRecipe, FpgaParams};
pub use rocc::RoccInstruction;
pub use shape::{derive_shape_config, BufferGeometry, ShapeConfig};
pub use system::{
    AcceleratedSystem, Scheduling, SimBackend, SystemRun, TimelineEvent, TimelinePhase,
};
pub use unit::{IrUnit, UnitCycles};
