//! One IR accelerator unit: configuration FSM plus the two compute stages.
//!
//! A unit is configured through the five-command ISA (paper Table I), then
//! started. Execution proceeds load → compute → drain: the MemReaders fill
//! the three input block-RAM buffers, the Hamming Distance Calculator and
//! Consensus Selector run, and the MemWriters drain the two output
//! buffers.

use ir_core::batch::{CandidateBlock, SweepRead};
use ir_core::kernel::{self, KernelKind};
use ir_core::{MinWhd, MinWhdGrid, ReadOutcome};
use ir_genome::{RealignmentTarget, TargetShape};

use crate::fault::FaultPlan;
use crate::hdc::{run_pair, run_read_sweep, HdcConfig, PairRun};
use crate::isa::{BufferIndex, IrCommand};
use crate::mem;
use crate::params::FpgaParams;
use crate::selector::run_selector;
use crate::FpgaError;

/// Per-phase cycle counts for one target on one unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct UnitCycles {
    /// Cycles filling the input buffers from FPGA DRAM.
    pub load: u64,
    /// Cycles in the Hamming Distance Calculator.
    pub hdc: u64,
    /// Cycles in the Consensus Selector.
    pub selector: u64,
    /// Cycles draining the output buffers to FPGA DRAM.
    pub drain: u64,
}

impl UnitCycles {
    /// Total cycles for the target.
    pub fn total(&self) -> u64 {
        self.load + self.hdc + self.selector + self.drain
    }
}

/// The result of running one target through a unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitRun {
    /// The min-WHD grid the HDC produced (identical to the golden model).
    pub grid: MinWhdGrid,
    /// Per-consensus scores from the selector.
    pub scores: Vec<u64>,
    /// Index of the picked consensus.
    pub best: usize,
    /// Per-read realignment outcomes.
    pub outcomes: Vec<ReadOutcome>,
    /// Cycle breakdown.
    pub cycles: UnitCycles,
    /// Base comparisons executed (post-pruning).
    pub comparisons: u64,
    /// Candidate offsets the pruning comparator cut short (0 with pruning
    /// disabled) — the early-exit count the telemetry layer reports.
    pub offsets_pruned: u64,
}

impl UnitRun {
    /// Index of the picked consensus (0 = reference, nothing realigned).
    pub fn best_consensus(&self) -> usize {
        self.best
    }

    /// Number of reads whose alignment changed.
    pub fn realigned_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.realigned()).count()
    }
}

/// Configuration state of one unit (the registers the ISA writes).
#[derive(Debug, Clone, Default)]
struct UnitConfig {
    addrs: [Option<u64>; 5],
    target_start: Option<u64>,
    sizes: Option<(u8, u16)>,
    lens: Vec<u16>,
}

/// One IR accelerator unit.
///
/// # Example
///
/// ```
/// use ir_fpga::{BufferIndex, FpgaParams, IrCommand, IrUnit};
/// use ir_genome::{Qual, Read, RealignmentTarget};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let target = RealignmentTarget::builder(20)
///     .reference("CCTTAGA".parse()?)
///     .consensus("ACCTGAA".parse()?)
///     .read(Read::new("r0", "TGAA".parse()?, Qual::from_raw_scores(&[10, 20, 45, 10])?, 0)?)
///     .build()?;
///
/// let mut unit = IrUnit::new(0);
/// for cmd in IrUnit::command_sequence(&target, 0) {
///     unit.apply(cmd)?;
/// }
/// let run = unit.execute(&target, &FpgaParams::iracc())?;
/// assert_eq!(run.best_consensus(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IrUnit {
    id: usize,
    config: UnitConfig,
    started: bool,
    targets_completed: u64,
}

impl IrUnit {
    /// Creates an idle, unconfigured unit.
    pub fn new(id: usize) -> Self {
        IrUnit {
            id,
            config: UnitConfig::default(),
            started: false,
            targets_completed: 0,
        }
    }

    /// The unit's index in the sea of accelerators.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of targets this unit has completed.
    pub fn targets_completed(&self) -> u64 {
        self.targets_completed
    }

    /// The full command sequence the host issues to configure and start
    /// one target on unit `unit_id` (paper Table I usage: five
    /// `ir_set_addr`, one `ir_set_target`, one `ir_set_size`, one
    /// `ir_set_len` per consensus, one `ir_start`).
    pub fn command_sequence(target: &RealignmentTarget, unit_id: u8) -> Vec<IrCommand> {
        let shape = target.shape();
        let mut cmds = Vec::with_capacity(IrCommand::commands_per_target(shape.num_consensuses));
        // Input/output arrays are laid out back-to-back in FPGA DRAM.
        let mut addr = 0x1000_0000u64 + (u64::from(unit_id) << 24);
        for buffer in BufferIndex::ALL {
            cmds.push(IrCommand::SetAddr { buffer, addr });
            addr += buffer.capacity_bytes() as u64;
        }
        cmds.push(IrCommand::SetTarget {
            start_pos: target.start_pos(),
        });
        cmds.push(IrCommand::SetSize {
            consensuses: shape.num_consensuses as u8,
            reads: shape.num_reads as u16,
        });
        for (id, len) in shape.consensus_lens.iter().enumerate() {
            cmds.push(IrCommand::SetLen {
                consensus_id: id as u8,
                len: *len as u16,
            });
        }
        cmds.push(IrCommand::Start { unit_id });
        cmds
    }

    /// Applies one configuration command.
    ///
    /// # Errors
    ///
    /// - [`FpgaError::BufferOverflow`] if a consensus length exceeds the
    ///   2048-byte slot.
    /// - [`FpgaError::NotConfigured`] if `Start` arrives before the
    ///   addresses, target, sizes and every consensus length are set.
    pub fn apply(&mut self, cmd: IrCommand) -> Result<(), FpgaError> {
        match cmd {
            IrCommand::SetAddr { buffer, addr } => {
                self.config.addrs[buffer as usize] = Some(addr);
            }
            IrCommand::SetTarget { start_pos } => self.config.target_start = Some(start_pos),
            IrCommand::SetSize { consensuses, reads } => {
                self.config.sizes = Some((consensuses, reads));
                self.config.lens.clear();
            }
            IrCommand::SetLen { consensus_id, len } => {
                if usize::from(len) > 2048 {
                    return Err(FpgaError::BufferOverflow {
                        buffer: "consensus slot",
                        required: usize::from(len),
                        capacity: 2048,
                    });
                }
                let idx = usize::from(consensus_id);
                if self.config.lens.len() <= idx {
                    self.config.lens.resize(idx + 1, 0);
                }
                self.config.lens[idx] = len;
            }
            IrCommand::Start { .. } => {
                if self.config.addrs.iter().any(Option::is_none) {
                    return Err(FpgaError::NotConfigured("buffer addresses"));
                }
                if self.config.target_start.is_none() {
                    return Err(FpgaError::NotConfigured("target start position"));
                }
                let Some((consensuses, _)) = self.config.sizes else {
                    return Err(FpgaError::NotConfigured("target sizes"));
                };
                if self.config.lens.len() != usize::from(consensuses)
                    || self.config.lens.contains(&0)
                {
                    return Err(FpgaError::NotConfigured("consensus lengths"));
                }
                self.started = true;
            }
        }
        Ok(())
    }

    /// Whether the unit has been started and is ready to execute.
    pub fn is_started(&self) -> bool {
        self.started
    }

    /// Executes the configured target, returning the functional result and
    /// cycle breakdown, and returns the unit to the idle state.
    ///
    /// # Errors
    ///
    /// - [`FpgaError::NotConfigured`] if the unit was not started.
    /// - [`FpgaError::BufferOverflow`] if the target data does not match
    ///   the programmed configuration or exceeds the buffers.
    pub fn execute(
        &mut self,
        target: &RealignmentTarget,
        params: &FpgaParams,
    ) -> Result<UnitRun, FpgaError> {
        if !self.started {
            return Err(FpgaError::NotConfigured("unit not started"));
        }
        let shape = target.shape();
        self.check_shape(&shape)?;

        let run = simulate_target(target, params);
        self.started = false;
        self.config = UnitConfig::default();
        self.targets_completed += 1;
        Ok(run)
    }

    /// [`Self::execute`] under fault injection: the FSM can hang
    /// mid-target. A hung unit stays stuck-busy (`is_started` remains
    /// `true`) and posts no response; the host's watchdog must notice and
    /// [`Self::reset`] it. With an inert plan this is exactly `execute`.
    ///
    /// # Errors
    ///
    /// [`FpgaError::UnitHung`] on an injected hang, plus everything
    /// [`Self::execute`] returns.
    pub fn execute_with_faults(
        &mut self,
        target: &RealignmentTarget,
        params: &FpgaParams,
        plan: &mut FaultPlan,
    ) -> Result<UnitRun, FpgaError> {
        if !self.started {
            return Err(FpgaError::NotConfigured("unit not started"));
        }
        if plan.unit_hangs() {
            // Stuck-busy: keep `started`, complete nothing.
            return Err(FpgaError::UnitHung {
                unit: self.id,
                targets_completed: self.targets_completed,
            });
        }
        self.execute(target, params)
    }

    /// Host-initiated recovery: clears all configuration and the busy
    /// flag, returning the unit to the idle state (what the control
    /// program does after its watchdog declares the unit hung).
    pub fn reset(&mut self) {
        self.config = UnitConfig::default();
        self.started = false;
    }

    fn check_shape(&self, shape: &TargetShape) -> Result<(), FpgaError> {
        let (consensuses, reads) = self.config.sizes.expect("start checked sizes");
        if usize::from(consensuses) != shape.num_consensuses
            || usize::from(reads) != shape.num_reads
        {
            return Err(FpgaError::NotConfigured(
                "sizes do not match submitted target",
            ));
        }
        for (i, (&programmed, &actual)) in self
            .config
            .lens
            .iter()
            .zip(shape.consensus_lens.iter())
            .enumerate()
        {
            if usize::from(programmed) != actual {
                let _ = i;
                return Err(FpgaError::NotConfigured("consensus length mismatch"));
            }
        }
        Ok(())
    }
}

/// Runs one target through the unit datapath model without the command
/// plumbing — the path the system scheduler uses. Functional results
/// are identical to [`ir_core::IndelRealigner`].
///
/// This variant steps the HDC kernel cycle-by-cycle ([`run_pair`]); the
/// event-driven backend uses [`simulate_target_fast`], which produces the
/// identical [`UnitRun`] through the jump-to-outcome kernel.
pub fn simulate_target(target: &RealignmentTarget, params: &FpgaParams) -> UnitRun {
    simulate_with(target, params, |i, j, cfg| {
        run_pair(
            target.consensus(i),
            target.read(j).bases(),
            target.read(j).quals(),
            cfg,
        )
    })
}

/// [`simulate_target`] through the equivalence-preserving fast HDC engine
/// on the ambient ([`ir_core::kernel::active`]) kernel: the target's
/// consensuses are transposed once into the structure-of-arrays batch
/// layout ([`CandidateBlock`]), each read is prepared once
/// ([`SweepRead`]), and one [`run_read_sweep`] per read produces a whole
/// grid column through the runtime-dispatched explicit-SIMD fold. Returns
/// a bitwise-identical [`UnitRun`]; only host wall-clock differs. This is
/// the path the event-driven backend, the `IR_THREADS` parallel sweeps,
/// the functional oracle and the serve shards all execute.
pub fn simulate_target_fast(target: &RealignmentTarget, params: &FpgaParams) -> UnitRun {
    simulate_target_fast_with(target, params, kernel::active())
}

/// [`simulate_target_fast`] on an explicitly chosen kernel — what the
/// kernel-parity suites use to cross-check every [`KernelKind`] in one
/// process.
///
/// # Panics
///
/// Panics if `kind` cannot run on this CPU.
pub fn simulate_target_fast_with(
    target: &RealignmentTarget,
    params: &FpgaParams,
    kind: KernelKind,
) -> UnitRun {
    let shape = target.shape();
    let hdc_cfg = hdc_config(params);
    let block = CandidateBlock::from_target(target);
    let mut cells = vec![MinWhd { whd: 0, offset: 0 }; shape.num_consensuses * shape.num_reads];
    let mut hdc_cycles = 0u64;
    let mut comparisons = 0u64;
    let mut offsets_pruned = 0u64;
    for j in 0..shape.num_reads {
        let read = target.read(j);
        let sweep_read = SweepRead::new(read.bases().bases(), read.quals());
        for (i, pair) in run_read_sweep(&block, &sweep_read, kind, hdc_cfg)
            .into_iter()
            .enumerate()
        {
            hdc_cycles += pair.cycles;
            comparisons += pair.comparisons;
            offsets_pruned += pair.offsets_pruned;
            cells[i * shape.num_reads + j] = pair.min;
        }
    }
    finish_run(
        target,
        params,
        &shape,
        cells,
        hdc_cycles,
        comparisons,
        offsets_pruned,
    )
}

fn hdc_config(params: &FpgaParams) -> HdcConfig {
    HdcConfig {
        lanes: params.lanes,
        pruning: params.pruning,
        pair_overhead_cycles: params.pair_overhead_cycles,
        prune_latency_blocks: if params.lanes > 1 { 2 } else { 0 },
    }
}

fn simulate_with(
    target: &RealignmentTarget,
    params: &FpgaParams,
    mut pair_fn: impl FnMut(usize, usize, HdcConfig) -> PairRun,
) -> UnitRun {
    let shape = target.shape();
    let hdc_cfg = hdc_config(params);

    let mut cells = Vec::with_capacity(shape.num_consensuses * shape.num_reads);
    let mut hdc_cycles = 0u64;
    let mut comparisons = 0u64;
    let mut offsets_pruned = 0u64;
    for i in 0..shape.num_consensuses {
        for j in 0..shape.num_reads {
            let pair = pair_fn(i, j, hdc_cfg);
            hdc_cycles += pair.cycles;
            comparisons += pair.comparisons;
            offsets_pruned += pair.offsets_pruned;
            cells.push(MinWhd {
                whd: pair.min.whd,
                offset: pair.min.offset,
            });
        }
    }
    finish_run(
        target,
        params,
        &shape,
        cells,
        hdc_cycles,
        comparisons,
        offsets_pruned,
    )
}

fn finish_run(
    target: &RealignmentTarget,
    params: &FpgaParams,
    shape: &TargetShape,
    cells: Vec<MinWhd>,
    hdc_cycles: u64,
    comparisons: u64,
    offsets_pruned: u64,
) -> UnitRun {
    let grid = MinWhdGrid::from_cells(shape.num_consensuses, shape.num_reads, cells);
    let sel = run_selector(&grid, target.start_pos());

    // The compute-pipeline efficiency factor (1.0 for the Chisel design,
    // > 1 for the HLS build) applies to both compute stages.
    let overhead = params.compute_overhead;
    let scaled = |cycles: u64| (cycles as f64 * overhead).round() as u64;
    let cycles = UnitCycles {
        load: mem::load_cycles(shape, params.bus_bytes),
        hdc: scaled(hdc_cycles),
        selector: scaled(sel.cycles),
        drain: mem::drain_cycles(shape, params.bus_bytes),
    };
    UnitRun {
        grid,
        scores: sel.scores,
        best: sel.best,
        outcomes: sel.outcomes,
        cycles,
        comparisons,
        offsets_pruned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_core::IndelRealigner;
    use ir_genome::{Qual, Read};

    fn figure4_target() -> RealignmentTarget {
        RealignmentTarget::builder(20)
            .reference("CCTTAGA".parse().unwrap())
            .consensus("ACCTGAA".parse().unwrap())
            .consensus("TCTGCCT".parse().unwrap())
            .read(
                Read::new(
                    "r0",
                    "TGAA".parse().unwrap(),
                    Qual::from_raw_scores(&[10, 20, 45, 10]).unwrap(),
                    0,
                )
                .unwrap(),
            )
            .read(
                Read::new(
                    "r1",
                    "CCTC".parse().unwrap(),
                    Qual::from_raw_scores(&[10, 60, 30, 20]).unwrap(),
                    0,
                )
                .unwrap(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn command_sequence_has_expected_length_and_order() {
        let target = figure4_target();
        let cmds = IrUnit::command_sequence(&target, 5);
        assert_eq!(cmds.len(), IrCommand::commands_per_target(3));
        assert!(matches!(cmds[0], IrCommand::SetAddr { .. }));
        assert!(matches!(cmds.last(), Some(IrCommand::Start { unit_id: 5 })));
    }

    #[test]
    fn full_command_flow_then_execute() {
        let target = figure4_target();
        let mut unit = IrUnit::new(0);
        for cmd in IrUnit::command_sequence(&target, 0) {
            unit.apply(cmd).unwrap();
        }
        assert!(unit.is_started());
        let run = unit.execute(&target, &FpgaParams::iracc()).unwrap();
        assert_eq!(run.best_consensus(), 1);
        assert_eq!(unit.targets_completed(), 1);
        assert!(!unit.is_started(), "unit returns to idle");
    }

    #[test]
    fn start_without_config_fails() {
        let mut unit = IrUnit::new(0);
        let err = unit.apply(IrCommand::Start { unit_id: 0 }).unwrap_err();
        assert!(matches!(err, FpgaError::NotConfigured(_)));
    }

    #[test]
    fn hang_leaves_unit_stuck_busy_until_reset() {
        use crate::fault::{FaultPlan, FaultRates};
        let target = figure4_target();
        let mut unit = IrUnit::new(4);
        for cmd in IrUnit::command_sequence(&target, 4) {
            unit.apply(cmd).unwrap();
        }
        let mut plan = FaultPlan::seeded(
            0,
            FaultRates {
                unit_hang: 1.0,
                ..FaultRates::none()
            },
        );
        let err = unit
            .execute_with_faults(&target, &FpgaParams::iracc(), &mut plan)
            .unwrap_err();
        assert!(matches!(err, FpgaError::UnitHung { unit: 4, .. }));
        assert!(unit.is_started(), "hung unit is stuck busy");
        assert_eq!(unit.targets_completed(), 0);
        unit.reset();
        assert!(!unit.is_started());
        // After recovery the full flow works again (inert plan).
        for cmd in IrUnit::command_sequence(&target, 4) {
            unit.apply(cmd).unwrap();
        }
        let run = unit
            .execute_with_faults(&target, &FpgaParams::iracc(), &mut FaultPlan::none())
            .unwrap();
        assert_eq!(run.best_consensus(), 1);
    }

    #[test]
    fn execute_without_start_fails() {
        let mut unit = IrUnit::new(0);
        let err = unit
            .execute(&figure4_target(), &FpgaParams::iracc())
            .unwrap_err();
        assert!(matches!(err, FpgaError::NotConfigured(_)));
    }

    #[test]
    fn oversized_consensus_len_rejected() {
        let mut unit = IrUnit::new(0);
        let err = unit
            .apply(IrCommand::SetLen {
                consensus_id: 0,
                len: 2049,
            })
            .unwrap_err();
        assert!(matches!(err, FpgaError::BufferOverflow { .. }));
    }

    #[test]
    fn mismatched_size_config_rejected_at_execute() {
        let target = figure4_target();
        let mut unit = IrUnit::new(0);
        for cmd in IrUnit::command_sequence(&target, 0) {
            // Corrupt the size command.
            let cmd = if let IrCommand::SetSize { reads, .. } = cmd {
                IrCommand::SetSize {
                    consensuses: 9,
                    reads,
                }
            } else {
                cmd
            };
            // SetLen count will now mismatch; Start will fail.
            if unit.apply(cmd).is_err() {
                return; // rejected at Start — acceptable
            }
        }
        assert!(unit.execute(&target, &FpgaParams::iracc()).is_err());
    }

    #[test]
    fn functional_result_matches_golden_model() {
        let target = figure4_target();
        let golden = IndelRealigner::new().realign(&target);
        for params in [FpgaParams::serial(), FpgaParams::iracc()] {
            let run = simulate_target(&target, &params);
            assert_eq!(run.grid, *golden.grid());
            assert_eq!(run.scores, golden.scores());
            assert_eq!(run.best, golden.best_consensus());
            assert_eq!(run.outcomes, golden.outcomes());
        }
    }

    #[test]
    fn data_parallel_is_not_slower() {
        let target = figure4_target();
        let serial = simulate_target(&target, &FpgaParams::serial());
        let parallel = simulate_target(&target, &FpgaParams::iracc());
        assert!(parallel.cycles.hdc <= serial.cycles.hdc);
        assert_eq!(parallel.cycles.selector, serial.cycles.selector);
    }

    #[test]
    fn serial_hdc_cycles_track_golden_comparisons() {
        let target = figure4_target();
        let golden = IndelRealigner::new().realign(&target);
        let run = simulate_target(&target, &FpgaParams::serial());
        // Serial HDC executes exactly the golden pruned comparisons, plus
        // the per-pair overhead.
        let pairs = (target.num_consensuses() * target.num_reads()) as u64;
        assert_eq!(
            run.cycles.hdc,
            golden.ops().base_comparisons + pairs * FpgaParams::serial().pair_overhead_cycles
        );
    }

    #[test]
    fn fast_simulation_is_bitwise_identical() {
        let target = figure4_target();
        for params in [FpgaParams::serial(), FpgaParams::iracc()] {
            let want = simulate_target(&target, &params);
            assert_eq!(simulate_target_fast(&target, &params), want);
            for kind in KernelKind::available() {
                assert_eq!(
                    simulate_target_fast_with(&target, &params, kind),
                    want,
                    "kernel {kind}"
                );
            }
        }
    }

    #[test]
    fn cycle_total_sums_phases() {
        let run = simulate_target(&figure4_target(), &FpgaParams::iracc());
        let c = run.cycles;
        assert_eq!(c.total(), c.load + c.hdc + c.selector + c.drain);
        assert!(c.load > 0 && c.drain > 0);
    }
}
