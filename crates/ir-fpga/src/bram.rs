//! Block-RAM geometry model.
//!
//! UltraScale+ BRAM36 primitives hold 36 kbit (4608 bytes) and are at most
//! 72 bits wide (512 × 72 configuration). A logical buffer that must be
//! `width_bits` wide and hold `bytes` of data therefore consumes a grid of
//! BRAM36s: `ceil(width/72)` columns × `ceil(rows/512)` row-groups, where
//! each row stores `width_bits/8` bytes.
//!
//! The IR unit's buffers are the dominant BRAM consumers (paper §III-A:
//! "the number of IR units … is limited by the number of block RAM cells
//! available because we leverage data reuse aggressively").

use serde::{Deserialize, Serialize};

/// Bytes of storage in one BRAM36 primitive (36 kbit).
pub const BRAM36_BYTES: usize = 4608;

/// Maximum data width of one BRAM36 primitive (512 × 72 mode).
pub const BRAM36_MAX_WIDTH_BITS: usize = 72;

/// A logical on-chip buffer: capacity plus required port width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BufferSpec {
    /// Human-readable name (for resource reports).
    pub name: &'static str,
    /// Capacity in bytes.
    pub bytes: usize,
    /// Read-port width in bits the datapath needs every cycle.
    pub width_bits: usize,
}

impl BufferSpec {
    /// Number of BRAM36 primitives this buffer maps to.
    pub fn bram36_blocks(&self) -> usize {
        bram36_blocks(self.bytes, self.width_bits)
    }
}

/// Number of BRAM36 primitives needed for a buffer of `bytes` with a
/// `width_bits`-wide port.
///
/// # Panics
///
/// Panics if `width_bits` is zero or not a multiple of 8.
pub fn bram36_blocks(bytes: usize, width_bits: usize) -> usize {
    assert!(
        width_bits > 0 && width_bits.is_multiple_of(8),
        "port width must be a positive byte multiple"
    );
    if bytes == 0 {
        return 0;
    }
    let columns = width_bits.div_ceil(BRAM36_MAX_WIDTH_BITS);
    let bytes_per_row = width_bits / 8;
    let rows = bytes.div_ceil(bytes_per_row);
    let row_groups = rows.div_ceil(512);
    columns * row_groups
}

/// The five per-unit DMA-visible buffers plus the selector's three
/// dist/pos buffers (paper Figures 5 and 6), with the port widths of the
/// data-parallel design (32-byte block reads).
pub fn unit_buffers() -> Vec<BufferSpec> {
    unit_buffers_for(&crate::shape::BufferGeometry::HARDWARE)
}

/// The per-unit buffer inventory for an arbitrary [`BufferGeometry`]
/// (shape-family unit sizing). [`unit_buffers`] is the hardware geometry's
/// instance of this.
///
/// [`BufferGeometry`]: crate::shape::BufferGeometry
pub fn unit_buffers_for(geometry: &crate::shape::BufferGeometry) -> Vec<BufferSpec> {
    let g = geometry;
    vec![
        // Input buffer #1: one slot per consensus, 256-bit block reads
        // (hardware: 32 × 2048 B).
        BufferSpec {
            name: "consensus bases",
            bytes: g.max_consensuses * g.consensus_slot_bytes,
            width_bits: 256,
        },
        // Input buffer #2: one slot per read (hardware: 256 × 256 B).
        BufferSpec {
            name: "read bases",
            bytes: g.max_reads * g.read_slot_bytes,
            width_bits: 256,
        },
        // Input buffer #3: one quality vector per read.
        BufferSpec {
            name: "read quality scores",
            bytes: g.max_reads * g.read_slot_bytes,
            width_bits: 256,
        },
        // Output buffer #1: realign flag per read.
        BufferSpec {
            name: "realign flags",
            bytes: g.max_reads,
            width_bits: 8,
        },
        // Output buffer #2: 4-byte new position per read.
        BufferSpec {
            name: "new positions",
            bytes: g.max_reads * 4,
            width_bits: 32,
        },
        // Selector state: dist (4 B) + pos (2 B) per read, for the
        // reference, current and running-minimum consensuses.
        BufferSpec {
            name: "selector ref dist/pos",
            bytes: g.max_reads * 6,
            width_bits: 48,
        },
        BufferSpec {
            name: "selector curr dist/pos",
            bytes: g.max_reads * 6,
            width_bits: 48,
        },
        BufferSpec {
            name: "selector min dist/pos",
            bytes: g.max_reads * 6,
            width_bits: 48,
        },
    ]
}

/// Total BRAM36 primitives one IR unit's buffers consume.
pub fn unit_bram36_blocks() -> usize {
    unit_buffers().iter().map(BufferSpec::bram36_blocks).sum()
}

/// Total BRAM36 primitives one IR unit consumes under `geometry`.
pub fn unit_bram36_blocks_for(geometry: &crate::shape::BufferGeometry) -> usize {
    unit_buffers_for(geometry)
        .iter()
        .map(BufferSpec::bram36_blocks)
        .sum()
}

/// The road not taken: unit buffers if bases were packed 3 bits each
/// ("the bases can be implemented using 3 bits to represent A,C,T,G,N" —
/// §III-A). Base buffers shrink to 3/8 of their size with 96-bit ports
/// (32 bases/cycle), quality scores stay byte-wide.
///
/// The paper rejects this: byte-per-base "enables byte- and block-aligned
/// reads from memory and simple data manipulation such as index decoding
/// and masking". [`packed_bases_unit_bram36_blocks`] quantifies what that
/// simplicity costs in block RAM.
pub fn packed_bases_unit_bram36_blocks() -> usize {
    unit_buffers()
        .iter()
        .map(|buf| match buf.name {
            // 3-bit bases, 32 per cycle → 96-bit ports.
            "consensus bases" | "read bases" => bram36_blocks(buf.bytes * 3 / 8, 96),
            _ => buf.bram36_blocks(),
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_block_cases() {
        // A tiny byte-wide buffer is one block.
        assert_eq!(bram36_blocks(256, 8), 1);
        // Exactly one full block.
        assert_eq!(bram36_blocks(BRAM36_BYTES, 72), 1);
        assert_eq!(bram36_blocks(0, 8), 0);
    }

    #[test]
    fn wide_ports_cost_columns() {
        // 256-bit port ⇒ 4 columns even for small capacity.
        assert_eq!(bram36_blocks(128, 256), 4);
    }

    #[test]
    fn deep_buffers_cost_row_groups() {
        // 64 KiB at 256-bit: 2048 rows of 32 B ⇒ 4 row-groups × 4 columns.
        assert_eq!(bram36_blocks(65_536, 256), 16);
    }

    #[test]
    #[should_panic(expected = "byte multiple")]
    fn rejects_non_byte_widths() {
        let _ = bram36_blocks(100, 9);
    }

    #[test]
    fn unit_buffer_inventory_matches_figure6() {
        let buffers = unit_buffers();
        let consensus = buffers
            .iter()
            .find(|b| b.name == "consensus bases")
            .unwrap();
        assert_eq!(consensus.bytes, 65_536);
        let total_io: usize = buffers
            .iter()
            .filter(|b| !b.name.starts_with("selector"))
            .map(|b| b.bytes)
            .sum();
        // 3 × 64 KiB inputs + 256 B flags + 1 KiB positions.
        assert_eq!(total_io, 3 * 65_536 + 256 + 1024);
    }

    #[test]
    fn unit_block_count_is_stable() {
        // 3 × 16 (inputs) + 1 + 1 (outputs) + 3 (selector) = 53.
        assert_eq!(unit_bram36_blocks(), 53);
    }

    #[test]
    fn packed_bases_save_bram_but_were_rejected() {
        let byte_aligned = unit_bram36_blocks();
        let packed = packed_bases_unit_bram36_blocks();
        assert!(
            packed < byte_aligned,
            "3-bit packing must shrink the base buffers"
        );
        // Both base buffers drop from 16 to 8 blocks: 53 → 37.
        assert_eq!(packed, 37);
    }
}
