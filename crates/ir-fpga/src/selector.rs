//! The Consensus Selector stage — cycle model.
//!
//! The second stage of the IR unit (paper Figure 5, bottom). It keeps three
//! read-length buffers (256 entries) of minimum WHDs and offsets — for the
//! reference, the consensus currently being scored, and the running-best
//! consensus — and computes each consensus's score as the sum of absolute
//! WHD differences against the reference across all reads.
//!
//! "Because the selector constitutes a small percentage of the runtime, the
//! buffers only support one read or one write per cycle" — so scoring one
//! (consensus, read) pair costs one buffer read plus one accumulate cycle,
//! and the final realignment pass costs one cycle per read.

use ir_core::{realign_reads, score_consensuses, select_best, MinWhdGrid, OpCounts, ReadOutcome};

/// Result of running the consensus selector over a completed min-WHD grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectorRun {
    /// Per-consensus scores (index 0, the reference, is 0).
    pub scores: Vec<u64>,
    /// Index of the picked consensus.
    pub best: usize,
    /// Per-read realignment outcomes.
    pub outcomes: Vec<ReadOutcome>,
    /// Cycles the selector stage occupied.
    pub cycles: u64,
}

/// Cycles to score `consensuses` candidates over `reads` reads and emit
/// the realignment pass, with single-ported `dist`/`pos` buffers:
/// 2 cycles per (consensus, read) score update (one buffer read, one
/// accumulate/writeback) plus 1 cycle per read for the final realignment
/// comparison.
pub fn selector_cycles(consensuses: usize, reads: usize) -> u64 {
    let scored = consensuses.saturating_sub(1) as u64;
    scored * reads as u64 * 2 + reads as u64
}

/// Runs the selector over a completed grid: scores every alternative
/// consensus, picks the best, and computes the per-read outcomes —
/// functionally identical to the golden model's Algorithm 2.
pub fn run_selector(grid: &MinWhdGrid, target_start_pos: u64) -> SelectorRun {
    let mut ops = OpCounts::default();
    let scores = score_consensuses(grid, &mut ops);
    let best = select_best(&scores);
    let outcomes = realign_reads(grid, best, target_start_pos);
    SelectorRun {
        scores,
        best,
        outcomes,
        cycles: selector_cycles(grid.num_consensuses(), grid.num_reads()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_genome::{Qual, Read, RealignmentTarget};

    fn figure4_grid() -> MinWhdGrid {
        let target = RealignmentTarget::builder(20)
            .reference("CCTTAGA".parse().unwrap())
            .consensus("ACCTGAA".parse().unwrap())
            .consensus("TCTGCCT".parse().unwrap())
            .read(
                Read::new(
                    "r0",
                    "TGAA".parse().unwrap(),
                    Qual::from_raw_scores(&[10, 20, 45, 10]).unwrap(),
                    0,
                )
                .unwrap(),
            )
            .read(
                Read::new(
                    "r1",
                    "CCTC".parse().unwrap(),
                    Qual::from_raw_scores(&[10, 60, 30, 20]).unwrap(),
                    0,
                )
                .unwrap(),
            )
            .build()
            .unwrap();
        let mut ops = OpCounts::default();
        MinWhdGrid::compute(&target, true, &mut ops)
    }

    #[test]
    fn selector_matches_golden_figure4() {
        let run = run_selector(&figure4_grid(), 20);
        assert_eq!(run.scores, vec![0, 30, 35]);
        assert_eq!(run.best, 1);
        assert!(run.outcomes[0].realigned());
        assert_eq!(run.outcomes[0].new_pos(), Some(23));
        assert!(!run.outcomes[1].realigned());
    }

    #[test]
    fn cycle_model_figure4() {
        // 2 alternative consensuses × 2 reads × 2 cycles + 2 final cycles.
        assert_eq!(selector_cycles(3, 2), 10);
        assert_eq!(run_selector(&figure4_grid(), 20).cycles, 10);
    }

    #[test]
    fn reference_only_costs_just_the_final_pass() {
        assert_eq!(selector_cycles(1, 8), 8);
    }

    #[test]
    fn selector_is_cheap_relative_to_hdc_worst_case() {
        // Paper rationale for single-ported buffers: the selector is a
        // small fraction of runtime. Worst-case HDC work per pair is
        // (m − n + 1) · n ≫ the selector's 2 cycles per pair.
        let hdc_worst = ir_core::complexity::pair_comparisons(2048, 250);
        let selector_per_pair = 2;
        assert!(hdc_worst > 1000 * selector_per_pair);
    }
}
