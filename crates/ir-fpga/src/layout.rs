//! Host-side memory layout: the byte images the control program builds
//! and the output buffers it decodes.
//!
//! "On the host, the genomic data inputs are organized in consecutive
//! malloc'ed memory arrays of one byte per base or per quality score for
//! the three inputs" (paper §III-B), and on the FPGA side "the input
//! buffers for the consensuses and the reads are block-indexed and
//! byte-selected" (§III-A): consensus *i* lives at slot `i × 2048`, read
//! *j* at slot `j × 256`, so the datapath never shifts by large random
//! amounts. This module builds exactly those images and decodes the two
//! output buffers (one realign-flag byte and one little-endian 4-byte
//! position per read) back into [`ReadOutcome`]s.

use ir_core::ReadOutcome;
use ir_genome::RealignmentTarget;

use crate::shape::BufferGeometry;
use crate::FpgaError;

/// Slot stride of the consensus buffer in bytes (hardware geometry).
pub const CONSENSUS_SLOT_BYTES: usize = BufferGeometry::HARDWARE.consensus_slot_bytes;
/// Slot stride of the read-base and quality buffers in bytes (hardware
/// geometry).
pub const READ_SLOT_BYTES: usize = BufferGeometry::HARDWARE.read_slot_bytes;

/// The three input-buffer images for one target, slot-aligned exactly as
/// the unit's block RAMs store them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostBuffers {
    consensus: Vec<u8>,
    read_bases: Vec<u8>,
    read_quals: Vec<u8>,
    payload_bytes: u64,
    geometry: BufferGeometry,
}

impl HostBuffers {
    /// Builds the slot-aligned buffer images for `target` against the
    /// deployed hardware geometry. Unused slot tails are zero-filled (the
    /// hardware never reads past the programmed lengths).
    pub fn from_target(target: &RealignmentTarget) -> Self {
        Self::from_target_with(target, &BufferGeometry::HARDWARE)
    }

    /// [`HostBuffers::from_target`] against an arbitrary per-shape unit
    /// geometry: slot strides come from `geometry`, so a long-read unit
    /// lays out 10 KiB consensus slots where the hardware unit uses 2 KiB.
    pub fn from_target_with(target: &RealignmentTarget, geometry: &BufferGeometry) -> Self {
        let shape = target.shape();
        let cons_slot = geometry.consensus_slot_bytes;
        let read_slot = geometry.read_slot_bytes;
        let mut consensus = vec![0u8; shape.num_consensuses * cons_slot];
        for (i, cons) in target.consensuses().iter().enumerate() {
            let slot = &mut consensus[i * cons_slot..][..cons.len()];
            slot.copy_from_slice(&cons.as_bytes());
        }
        let mut read_bases = vec![0u8; shape.num_reads * read_slot];
        let mut read_quals = vec![0u8; shape.num_reads * read_slot];
        for (j, read) in target.reads().iter().enumerate() {
            read_bases[j * read_slot..][..read.len()].copy_from_slice(&read.bases().as_bytes());
            read_quals[j * read_slot..][..read.len()].copy_from_slice(read.quals().scores());
        }
        HostBuffers {
            consensus,
            read_bases,
            read_quals,
            payload_bytes: shape.input_bytes(),
            geometry: *geometry,
        }
    }

    /// The slot-aligned consensus image (what input buffer #1 holds).
    pub fn consensus(&self) -> &[u8] {
        &self.consensus
    }

    /// The slot-aligned read-base image (input buffer #2).
    pub fn read_bases(&self) -> &[u8] {
        &self.read_bases
    }

    /// The slot-aligned quality image (input buffer #3).
    pub fn read_quals(&self) -> &[u8] {
        &self.read_quals
    }

    /// Actual content bytes the DMA engine moves (the packed host arrays,
    /// before slot alignment) — the quantity the transfer model charges.
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    /// Total slot-aligned footprint in FPGA DRAM / block RAM.
    pub fn footprint_bytes(&self) -> usize {
        self.consensus.len() + self.read_bases.len() + self.read_quals.len()
    }

    /// The unit buffer geometry these images were laid out against.
    pub fn geometry(&self) -> &BufferGeometry {
        &self.geometry
    }

    /// Checks that the images fit the physical buffers of the unit
    /// geometry they were built for (the hardware geometry via
    /// [`HostBuffers::from_target`], whose capacities equal
    /// [`crate::isa::BufferIndex::capacity_bytes`]).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BufferOverflow`] naming the offending buffer.
    pub fn check_fit(&self) -> Result<(), FpgaError> {
        let checks = [
            (
                "consensus",
                self.consensus.len(),
                self.geometry.consensus_capacity_bytes(),
            ),
            (
                "read bases",
                self.read_bases.len(),
                self.geometry.read_capacity_bytes(),
            ),
            (
                "read quality scores",
                self.read_quals.len(),
                self.geometry.read_capacity_bytes(),
            ),
        ];
        for (buffer, required, capacity) in checks {
            if required > capacity {
                return Err(FpgaError::BufferOverflow {
                    buffer,
                    required,
                    capacity,
                });
            }
        }
        Ok(())
    }
}

/// Encodes per-read outcomes into the two output-buffer images: one flag
/// byte per read (output buffer #1) and one little-endian `u32` position
/// per read (output buffer #2).
///
/// Non-realigned reads keep a zero flag; their position word carries the
/// (ignored) candidate position the selector computed, as the hardware
/// writes both buffers unconditionally.
pub fn encode_outputs(outcomes: &[ReadOutcome], target_start_pos: u64) -> (Vec<u8>, Vec<u8>) {
    let mut flags = Vec::with_capacity(outcomes.len());
    let mut positions = Vec::with_capacity(outcomes.len() * 4);
    for outcome in outcomes {
        flags.push(u8::from(outcome.realigned()));
        let pos = outcome.new_pos().unwrap_or(target_start_pos);
        positions.extend_from_slice(&(pos as u32).to_le_bytes());
    }
    (flags, positions)
}

/// Decodes the two output-buffer images back into outcomes.
///
/// This is the hot read-back path, so it never panics: every malformed
/// input (short buffer, bad flag byte, ragged position words — e.g. a
/// truncated DMA read-back or an injected bit flip) is reported as a
/// typed error the driver's retry logic can act on.
///
/// # Errors
///
/// Returns [`FpgaError::CorruptOutput`] if the buffer sizes disagree with
/// `num_reads` or a flag byte is not 0/1.
pub fn decode_outputs(
    flags: &[u8],
    positions: &[u8],
    num_reads: usize,
    target_start_pos: u64,
) -> Result<Vec<ReadOutcome>, FpgaError> {
    if flags.len() < num_reads {
        return Err(FpgaError::CorruptOutput {
            detail: "flag buffer shorter than the read count",
            observed: flags.len() as u64,
        });
    }
    if positions.len() < num_reads * 4 {
        return Err(FpgaError::CorruptOutput {
            detail: "position buffer shorter than 4 bytes per read",
            observed: positions.len() as u64,
        });
    }
    let mut outcomes = Vec::with_capacity(num_reads);
    for j in 0..num_reads {
        let flag = flags[j];
        if flag > 1 {
            return Err(FpgaError::CorruptOutput {
                detail: "realign flag byte out of range",
                observed: u64::from(flag),
            });
        }
        let word: [u8; 4] =
            positions[j * 4..j * 4 + 4]
                .try_into()
                .map_err(|_| FpgaError::CorruptOutput {
                    detail: "position word is not 4 bytes",
                    observed: j as u64,
                })?;
        let pos = u64::from(u32::from_le_bytes(word));
        let offset = (pos - target_start_pos.min(pos)) as usize;
        outcomes.push(ReadOutcome::from_parts(flag == 1, offset, pos));
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_core::IndelRealigner;
    use ir_workloads_test_support::figure4_target;

    // A tiny local copy of the Figure 4 target builder to avoid a cyclic
    // dev-dependency on ir-workloads.
    mod ir_workloads_test_support {
        use ir_genome::{Qual, Read, RealignmentTarget};

        pub fn figure4_target() -> RealignmentTarget {
            RealignmentTarget::builder(20)
                .reference("CCTTAGA".parse().unwrap())
                .consensus("ACCTGAA".parse().unwrap())
                .consensus("TCTGCCT".parse().unwrap())
                .read(
                    Read::new(
                        "r0",
                        "TGAA".parse().unwrap(),
                        Qual::from_raw_scores(&[10, 20, 45, 10]).unwrap(),
                        0,
                    )
                    .unwrap(),
                )
                .read(
                    Read::new(
                        "r1",
                        "CCTC".parse().unwrap(),
                        Qual::from_raw_scores(&[10, 60, 30, 20]).unwrap(),
                        0,
                    )
                    .unwrap(),
                )
                .build()
                .unwrap()
        }
    }

    #[test]
    fn buffers_are_slot_aligned() {
        let target = figure4_target();
        let buffers = HostBuffers::from_target(&target);
        // Consensus 1 starts exactly at slot 1.
        assert_eq!(
            &buffers.consensus()[CONSENSUS_SLOT_BYTES..CONSENSUS_SLOT_BYTES + 7],
            b"ACCTGAA"
        );
        // Read 1's bases and quals start at slot 1.
        assert_eq!(
            &buffers.read_bases()[READ_SLOT_BYTES..READ_SLOT_BYTES + 4],
            b"CCTC"
        );
        assert_eq!(
            &buffers.read_quals()[READ_SLOT_BYTES..READ_SLOT_BYTES + 4],
            &[10, 60, 30, 20]
        );
        // Padding is zeroed.
        assert_eq!(buffers.consensus()[7], 0);
    }

    #[test]
    fn payload_matches_shape_and_footprint_is_slots() {
        let target = figure4_target();
        let buffers = HostBuffers::from_target(&target);
        assert_eq!(buffers.payload_bytes(), target.shape().input_bytes());
        assert_eq!(
            buffers.footprint_bytes(),
            3 * CONSENSUS_SLOT_BYTES + 2 * 2 * READ_SLOT_BYTES
        );
        buffers.check_fit().expect("figure 4 fits trivially");
    }

    #[test]
    fn shape_geometry_changes_slot_strides() {
        let target = figure4_target();
        let geometry = BufferGeometry {
            max_consensuses: 4,
            max_reads: 8,
            consensus_slot_bytes: 64,
            read_slot_bytes: 32,
        };
        let buffers = HostBuffers::from_target_with(&target, &geometry);
        // Consensus 1 starts at the *geometry's* slot stride, not 2048.
        assert_eq!(&buffers.consensus()[64..64 + 7], b"ACCTGAA");
        assert_eq!(&buffers.read_bases()[32..32 + 4], b"CCTC");
        assert_eq!(buffers.footprint_bytes(), 3 * 64 + 2 * 2 * 32);
        // Payload bytes are geometry-independent (packed host arrays).
        assert_eq!(
            buffers.payload_bytes(),
            HostBuffers::from_target(&target).payload_bytes()
        );
        assert_eq!(buffers.geometry(), &geometry);
        buffers.check_fit().expect("fits the small geometry");
        // A geometry with too few consensus slots fails its fit check.
        let tiny = BufferGeometry {
            max_consensuses: 2,
            ..geometry
        };
        assert!(matches!(
            HostBuffers::from_target_with(&target, &tiny).check_fit(),
            Err(FpgaError::BufferOverflow {
                buffer: "consensus",
                ..
            })
        ));
    }

    #[test]
    fn outputs_round_trip() {
        let target = figure4_target();
        let result = IndelRealigner::new().realign(&target);
        let (flags, positions) = encode_outputs(result.outcomes(), target.start_pos());
        assert_eq!(flags, vec![1, 0]);
        let decoded =
            decode_outputs(&flags, &positions, target.num_reads(), target.start_pos()).unwrap();
        assert_eq!(decoded[0].realigned(), result.read_outcome(0).realigned());
        assert_eq!(decoded[0].new_pos(), result.read_outcome(0).new_pos());
        assert!(!decoded[1].realigned());
        assert_eq!(decoded[1].new_pos(), None);
    }

    #[test]
    fn decode_rejects_short_buffers_and_bad_flags() {
        assert!(matches!(
            decode_outputs(&[1], &[0, 0, 0, 0], 2, 0),
            Err(FpgaError::CorruptOutput { observed: 1, .. })
        ));
        assert!(matches!(
            decode_outputs(&[1, 1], &[0, 0, 0, 0], 2, 0),
            Err(FpgaError::CorruptOutput { observed: 4, .. })
        ));
        assert!(matches!(
            decode_outputs(&[2], &[0, 0, 0, 0], 1, 0),
            Err(FpgaError::CorruptOutput { observed: 2, .. })
        ));
    }
}
