//! AXI-Lite MMIO command/response queues.
//!
//! The AXI hub converts RoCC commands and responses to and from AXI-Lite
//! using memory-mapped registers that "implement a ready/valid interface
//! and queues for commands and responses so that the host can
//! asynchronously add a new command to the queue, or poll when awaiting a
//! response" (paper §III-B). The asynchronous-parallel scheduler is built
//! directly on this poll loop.

use std::collections::VecDeque;

use crate::fault::{FaultPlan, ResponseFault};
use crate::isa::WireCommand;
use crate::FpgaError;

/// A completion response posted by an IR unit when its target finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UnitResponse {
    /// The unit that completed.
    pub unit_id: usize,
    /// Cycle count the unit reports for the completed target.
    pub cycles: u64,
}

/// The MMIO hub: bounded command and response queues with ready/valid
/// semantics.
///
/// # Example
///
/// ```
/// use ir_fpga::mmio::MmioHub;
/// use ir_fpga::IrCommand;
///
/// let mut hub = MmioHub::new(16);
/// hub.push_command(IrCommand::Start { unit_id: 3 }.encode())?;
/// assert!(hub.pop_command().is_some());
/// # Ok::<(), ir_fpga::FpgaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MmioHub {
    commands: VecDeque<WireCommand>,
    responses: VecDeque<UnitResponse>,
    capacity: usize,
}

impl MmioHub {
    /// Creates a hub whose queues hold `capacity` entries each.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queues need at least one entry");
        MmioHub {
            commands: VecDeque::new(),
            responses: VecDeque::new(),
            capacity,
        }
    }

    /// Whether the command queue can accept another entry (the "ready"
    /// side of the host-facing interface).
    pub fn command_ready(&self) -> bool {
        self.commands.len() < self.capacity
    }

    /// Host side: enqueue a command.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::NotConfigured`] if the queue is full —
    /// the host must retry after the router drains it.
    pub fn push_command(&mut self, cmd: WireCommand) -> Result<(), FpgaError> {
        if !self.command_ready() {
            return Err(FpgaError::NotConfigured(
                "command queue full, host must back off",
            ));
        }
        self.commands.push_back(cmd);
        Ok(())
    }

    /// Router side: dequeue the next command for dispatch to a unit.
    pub fn pop_command(&mut self) -> Option<WireCommand> {
        self.commands.pop_front()
    }

    /// Unit side: post a completion response. Responses are never dropped;
    /// the queue grows past `capacity` only if the host stops polling
    /// (mirrors a credit-based response channel).
    pub fn push_response(&mut self, resp: UnitResponse) {
        self.responses.push_back(resp);
    }

    /// Unit side under fault injection: the hub can lose the response
    /// (the host's poll loop then spins until its watchdog fires) or post
    /// it twice (the host must drain the stale duplicate). Returns what
    /// the hub actually did; with an inert plan this is exactly
    /// [`Self::push_response`].
    pub fn push_response_faulty(
        &mut self,
        resp: UnitResponse,
        plan: &mut FaultPlan,
    ) -> ResponseFault {
        let fault = plan.response_fault();
        match fault {
            ResponseFault::Delivered => self.push_response(resp),
            ResponseFault::Dropped => {}
            ResponseFault::Duplicated => {
                self.push_response(resp);
                self.push_response(resp);
            }
        }
        fault
    }

    /// Host side: poll the "response valid" register and pop one response.
    pub fn poll_response(&mut self) -> Option<UnitResponse> {
        self.responses.pop_front()
    }

    /// Number of queued, undispatched commands.
    pub fn pending_commands(&self) -> usize {
        self.commands.len()
    }

    /// Number of unread responses.
    pub fn pending_responses(&self) -> usize {
        self.responses.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::IrCommand;

    #[test]
    fn commands_are_fifo() {
        let mut hub = MmioHub::new(4);
        hub.push_command(IrCommand::SetTarget { start_pos: 1 }.encode())
            .unwrap();
        hub.push_command(IrCommand::SetTarget { start_pos: 2 }.encode())
            .unwrap();
        let first = IrCommand::decode(hub.pop_command().unwrap()).unwrap();
        assert_eq!(first, IrCommand::SetTarget { start_pos: 1 });
    }

    #[test]
    fn command_queue_applies_backpressure() {
        let mut hub = MmioHub::new(2);
        hub.push_command(IrCommand::Start { unit_id: 0 }.encode())
            .unwrap();
        hub.push_command(IrCommand::Start { unit_id: 1 }.encode())
            .unwrap();
        assert!(!hub.command_ready());
        assert!(hub
            .push_command(IrCommand::Start { unit_id: 2 }.encode())
            .is_err());
        hub.pop_command();
        assert!(hub.command_ready());
    }

    #[test]
    fn responses_round_trip() {
        let mut hub = MmioHub::new(4);
        assert!(hub.poll_response().is_none());
        hub.push_response(UnitResponse {
            unit_id: 7,
            cycles: 1234,
        });
        let r = hub.poll_response().unwrap();
        assert_eq!(r.unit_id, 7);
        assert_eq!(r.cycles, 1234);
        assert!(hub.poll_response().is_none());
    }

    #[test]
    fn pending_counts() {
        let mut hub = MmioHub::new(8);
        hub.push_command(IrCommand::Start { unit_id: 0 }.encode())
            .unwrap();
        hub.push_response(UnitResponse {
            unit_id: 0,
            cycles: 1,
        });
        hub.push_response(UnitResponse {
            unit_id: 1,
            cycles: 2,
        });
        assert_eq!(hub.pending_commands(), 1);
        assert_eq!(hub.pending_responses(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = MmioHub::new(0);
    }

    #[test]
    fn faulty_push_drops_and_duplicates() {
        use crate::fault::FaultRates;
        let resp = UnitResponse {
            unit_id: 3,
            cycles: 99,
        };
        let mut hub = MmioHub::new(4);
        assert_eq!(
            hub.push_response_faulty(resp, &mut FaultPlan::none()),
            ResponseFault::Delivered
        );
        assert_eq!(hub.pending_responses(), 1);

        let mut drop_plan = FaultPlan::seeded(
            0,
            FaultRates {
                response_drop: 1.0,
                ..FaultRates::none()
            },
        );
        let mut hub = MmioHub::new(4);
        assert_eq!(
            hub.push_response_faulty(resp, &mut drop_plan),
            ResponseFault::Dropped
        );
        assert_eq!(hub.pending_responses(), 0);

        let mut dup_plan = FaultPlan::seeded(
            0,
            FaultRates {
                response_duplicate: 1.0,
                ..FaultRates::none()
            },
        );
        let mut hub = MmioHub::new(4);
        assert_eq!(
            hub.push_response_faulty(resp, &mut dup_plan),
            ResponseFault::Duplicated
        );
        assert_eq!(hub.pending_responses(), 2);
    }
}
