//! A cycle-steppable FSM model of the Hamming Distance Calculator.
//!
//! [`crate::hdc::run_pair`] computes a pair's result and cycle count in
//! closed form; this module implements the same datapath as an explicit
//! state machine advanced **one clock edge per [`HdcFsm::step`] call** —
//! the shape the Chisel RTL has. Property tests pin the two models
//! cycle-for-cycle against each other, which is what justifies calling
//! the fast model "cycle-level".

use ir_core::MinWhd;
use ir_genome::{Qual, Sequence};

use crate::hdc::HdcConfig;

/// Execution state of the calculator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Charging the per-pair setup cycles (pointer loads, min reset).
    Setup {
        /// Setup cycles remaining.
        remaining: u64,
    },
    /// Scanning offset `k`, about to issue the block starting at
    /// `block_start`.
    Scan {
        /// Current offset.
        k: usize,
        /// Next block's first base index.
        block_start: usize,
        /// Blocks still to issue after a prune verdict (adder-tree
        /// latency), if one is pending.
        drain: Option<u64>,
    },
    /// All offsets processed.
    Done,
}

/// A steppable Hamming Distance Calculator for one (consensus, read) pair.
///
/// # Example
///
/// ```
/// use ir_fpga::fsm::HdcFsm;
/// use ir_fpga::hdc::HdcConfig;
/// use ir_genome::{Qual, Sequence};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cons: Sequence = "CCTTAGA".parse()?;
/// let read: Sequence = "TGAA".parse()?;
/// let quals = Qual::from_raw_scores(&[10, 20, 45, 10])?;
/// let mut fsm = HdcFsm::new(&cons, &read, &quals, HdcConfig::serial());
/// while fsm.step() {}
/// assert_eq!(fsm.result().expect("finished").whd, 30);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct HdcFsm<'a> {
    cons: &'a [ir_genome::Base],
    bases: &'a [ir_genome::Base],
    scores: &'a [u8],
    cfg: HdcConfig,
    state: State,
    max_k: usize,
    // Datapath registers.
    whd: u64,
    pruned: bool,
    min: MinWhd,
    cycles: u64,
    comparisons: u64,
}

impl<'a> HdcFsm<'a> {
    /// Creates the FSM in its setup state.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`crate::hdc::run_pair`].
    pub fn new(
        consensus: &'a Sequence,
        read: &'a Sequence,
        quals: &'a Qual,
        cfg: HdcConfig,
    ) -> Self {
        assert!(cfg.lanes > 0, "HDC must have at least one lane");
        assert!(read.len() <= consensus.len(), "read longer than consensus");
        assert!(quals.len() >= read.len(), "missing quality scores");
        let state = if cfg.pair_overhead_cycles > 0 {
            State::Setup {
                remaining: cfg.pair_overhead_cycles,
            }
        } else {
            State::Scan {
                k: 0,
                block_start: 0,
                drain: None,
            }
        };
        HdcFsm {
            cons: consensus.bases(),
            bases: read.bases(),
            scores: quals.scores(),
            cfg,
            state,
            max_k: consensus.len() - read.len(),
            whd: 0,
            pruned: false,
            min: MinWhd {
                whd: u64::MAX,
                offset: 0,
            },
            cycles: 0,
            comparisons: 0,
        }
    }

    /// Cycles elapsed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Comparisons issued so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// The final minimum, once the FSM reaches its done state.
    pub fn result(&self) -> Option<MinWhd> {
        matches!(self.state, State::Done).then_some(self.min)
    }

    /// Ends the current offset: record min/prune and advance to the next
    /// offset or the done state.
    fn finish_offset(&mut self, k: usize) {
        if !self.pruned && self.whd < self.min.whd {
            self.min = MinWhd {
                whd: self.whd,
                offset: k,
            };
        }
        self.whd = 0;
        self.pruned = false;
        self.state = if k == self.max_k {
            State::Done
        } else {
            State::Scan {
                k: k + 1,
                block_start: 0,
                drain: None,
            }
        };
    }

    /// Advances one clock edge. Returns `true` while the FSM is busy.
    pub fn step(&mut self) -> bool {
        match self.state {
            State::Done => false,
            State::Setup { remaining } => {
                self.cycles += 1;
                self.state = if remaining > 1 {
                    State::Setup {
                        remaining: remaining - 1,
                    }
                } else {
                    State::Scan {
                        k: 0,
                        block_start: 0,
                        drain: None,
                    }
                };
                true
            }
            State::Scan {
                k,
                block_start,
                drain,
            } => {
                // Issue one block.
                self.cycles += 1;
                let n = self.bases.len();
                let block_end = (block_start + self.cfg.lanes).min(n);
                self.comparisons += (block_end - block_start) as u64;
                for idx in block_start..block_end {
                    if self.cons[k + idx] != self.bases[idx] {
                        self.whd += u64::from(self.scores[idx]);
                    }
                }
                // Pipeline control, mirroring `run_pair`.
                let mut next_drain = drain;
                let mut stop = false;
                if let Some(remaining) = next_drain.as_mut() {
                    *remaining -= 1;
                    if *remaining == 0 {
                        stop = true;
                    }
                } else if self.cfg.pruning && self.whd > self.min.whd {
                    self.pruned = true;
                    if self.cfg.prune_latency_blocks == 0 {
                        stop = true;
                    } else {
                        next_drain = Some(self.cfg.prune_latency_blocks);
                    }
                }
                if stop || block_end >= n {
                    self.finish_offset(k);
                } else {
                    self.state = State::Scan {
                        k,
                        block_start: block_end,
                        drain: next_drain,
                    };
                }
                true
            }
        }
    }
}

/// Execution state of the consensus selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SelectorState {
    /// Scoring consensus `i`, read `j`, sub-cycle 0 (buffer read) or 1
    /// (accumulate/writeback) — the single-ported dist/pos buffers cost
    /// two cycles per (consensus, read) update (paper Figure 5).
    Score {
        /// Current consensus (≥ 1).
        i: usize,
        /// Current read.
        j: usize,
        /// 0 = buffer read, 1 = accumulate.
        phase: u8,
    },
    /// Final realignment pass over read `j` (one cycle per read).
    Realign {
        /// Current read.
        j: usize,
    },
    /// All reads emitted.
    Done,
}

/// A cycle-steppable Consensus Selector over a completed min-WHD grid —
/// the second stage of the IR unit, validated against
/// [`crate::selector::selector_cycles`] and
/// [`crate::selector::run_selector`].
///
/// # Example
///
/// ```
/// use ir_core::{MinWhd, MinWhdGrid};
/// use ir_fpga::fsm::SelectorFsm;
///
/// let cell = |whd| MinWhd { whd, offset: 0 };
/// let grid = MinWhdGrid::from_cells(2, 1, vec![cell(30), cell(0)]);
/// let mut fsm = SelectorFsm::new(&grid, 100);
/// while fsm.step() {}
/// assert_eq!(fsm.best(), Some(1));
/// ```
#[derive(Debug)]
pub struct SelectorFsm<'a> {
    grid: &'a ir_core::MinWhdGrid,
    target_start_pos: u64,
    state: SelectorState,
    cycles: u64,
    // Datapath registers (Figure 5 bottom): running score of the current
    // consensus, score and index of the running minimum.
    curr_score: u64,
    best_score: u64,
    best: usize,
    outcomes: Vec<ir_core::ReadOutcome>,
}

impl<'a> SelectorFsm<'a> {
    /// Creates the selector over a completed grid.
    pub fn new(grid: &'a ir_core::MinWhdGrid, target_start_pos: u64) -> Self {
        let state = if grid.num_consensuses() > 1 {
            SelectorState::Score {
                i: 1,
                j: 0,
                phase: 0,
            }
        } else {
            SelectorState::Realign { j: 0 }
        };
        SelectorFsm {
            grid,
            target_start_pos,
            state,
            cycles: 0,
            curr_score: 0,
            best_score: u64::MAX,
            best: if grid.num_consensuses() > 1 { 1 } else { 0 },
            outcomes: Vec::with_capacity(grid.num_reads()),
        }
    }

    /// Cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The picked consensus, once done.
    pub fn best(&self) -> Option<usize> {
        matches!(self.state, SelectorState::Done).then_some(self.best)
    }

    /// The per-read outcomes, once done.
    pub fn outcomes(&self) -> Option<&[ir_core::ReadOutcome]> {
        matches!(self.state, SelectorState::Done).then_some(&self.outcomes)
    }

    /// Advances one clock edge. Returns `true` while busy.
    pub fn step(&mut self) -> bool {
        let reads = self.grid.num_reads();
        let consensuses = self.grid.num_consensuses();
        match self.state {
            SelectorState::Done => false,
            SelectorState::Score { i, j, phase } => {
                self.cycles += 1;
                if phase == 0 {
                    // Buffer read cycle (single-ported dist buffers).
                    self.state = SelectorState::Score { i, j, phase: 1 };
                } else {
                    // Accumulate |whd[i,j] − whd[0,j]|.
                    self.curr_score += self.grid.get(i, j).whd.abs_diff(self.grid.get(0, j).whd);
                    if j + 1 < reads {
                        self.state = SelectorState::Score {
                            i,
                            j: j + 1,
                            phase: 0,
                        };
                    } else {
                        // Consensus finished: the min-score comparator
                        // updates on strictly smaller scores.
                        if self.curr_score < self.best_score {
                            self.best_score = self.curr_score;
                            self.best = i;
                        }
                        self.curr_score = 0;
                        self.state = if i + 1 < consensuses {
                            SelectorState::Score {
                                i: i + 1,
                                j: 0,
                                phase: 0,
                            }
                        } else {
                            SelectorState::Realign { j: 0 }
                        };
                    }
                }
                true
            }
            SelectorState::Realign { j } => {
                self.cycles += 1;
                let reference = self.grid.get(0, j);
                let picked = self.grid.get(self.best, j);
                let realign = self.best != 0 && picked.whd < reference.whd;
                self.outcomes.push(ir_core::ReadOutcome::from_parts(
                    realign,
                    picked.offset,
                    picked.offset as u64 + self.target_start_pos,
                ));
                self.state = if j + 1 < reads {
                    SelectorState::Realign { j: j + 1 }
                } else {
                    SelectorState::Done
                };
                true
            }
        }
    }
}

/// Phase of the whole-unit FSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnitPhase {
    /// Filling the input buffers (one beat per cycle through the 5:1
    /// arbitrated TileLink port, after the burst latency).
    Load {
        /// Load cycles remaining.
        remaining: u64,
    },
    /// Running the HDC over pair `(i, j)`.
    Hdc {
        /// Current consensus.
        i: usize,
        /// Current read.
        j: usize,
    },
    /// Running the consensus selector.
    Selector,
    /// Draining the output buffers.
    Drain {
        /// Drain cycles remaining.
        remaining: u64,
    },
    /// Finished.
    Done,
}

/// A clock-steppable model of one **whole IR unit** processing one
/// target: load → HDC over every (consensus, read) pair → selector →
/// drain. Cycle counts match [`crate::unit::simulate_target`] exactly
/// (with `compute_overhead = 1`), which is the composition proof that the
/// fast closed-form model is cycle-faithful end to end.
///
/// # Example
///
/// ```
/// use ir_fpga::fsm::UnitFsm;
/// use ir_fpga::unit::simulate_target;
/// use ir_fpga::FpgaParams;
/// use ir_genome::{Qual, Read, RealignmentTarget};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let target = RealignmentTarget::builder(20)
///     .reference("CCTTAGA".parse()?)
///     .consensus("ACCTGAA".parse()?)
///     .read(Read::new("r0", "TGAA".parse()?, Qual::from_raw_scores(&[10, 20, 45, 10])?, 0)?)
///     .build()?;
///
/// let params = FpgaParams::iracc();
/// let mut fsm = UnitFsm::new(&target, &params);
/// while fsm.step() {}
/// assert_eq!(fsm.cycles(), simulate_target(&target, &params).cycles.total());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct UnitFsm<'a> {
    target: &'a ir_genome::RealignmentTarget,
    cfg: HdcConfig,
    grid_cells: Vec<MinWhd>,
    phase: UnitPhase,
    hdc: Option<HdcFsm<'a>>,
    selector_cycles_left: u64,
    selector_done: bool,
    cycles: u64,
    drain_total: u64,
}

impl<'a> UnitFsm<'a> {
    /// Creates the unit FSM for one target under `params`.
    pub fn new(target: &'a ir_genome::RealignmentTarget, params: &crate::FpgaParams) -> Self {
        let shape = target.shape();
        let cfg = HdcConfig {
            lanes: params.lanes,
            pruning: params.pruning,
            pair_overhead_cycles: params.pair_overhead_cycles,
            prune_latency_blocks: if params.lanes > 1 { 2 } else { 0 },
        };
        UnitFsm {
            target,
            cfg,
            grid_cells: Vec::with_capacity(shape.num_consensuses * shape.num_reads),
            phase: UnitPhase::Load {
                remaining: crate::mem::load_cycles(&shape, params.bus_bytes),
            },
            hdc: None,
            selector_cycles_left: crate::selector::selector_cycles(
                shape.num_consensuses,
                shape.num_reads,
            ),
            selector_done: false,
            cycles: 0,
            drain_total: crate::mem::drain_cycles(&shape, params.bus_bytes),
        }
    }

    /// Cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Whether the unit has finished the target.
    pub fn is_done(&self) -> bool {
        self.phase == UnitPhase::Done
    }

    /// The completed min-WHD grid, once the HDC phase has finished.
    pub fn grid(&self) -> Option<ir_core::MinWhdGrid> {
        let shape = self.target.shape();
        (self.grid_cells.len() == shape.num_consensuses * shape.num_reads).then(|| {
            ir_core::MinWhdGrid::from_cells(
                shape.num_consensuses,
                shape.num_reads,
                self.grid_cells.clone(),
            )
        })
    }

    fn start_pair(&mut self, i: usize, j: usize) {
        self.hdc = Some(HdcFsm::new(
            self.target.consensus(i),
            self.target.read(j).bases(),
            self.target.read(j).quals(),
            self.cfg,
        ));
    }

    /// Advances one clock edge. Returns `true` while busy.
    pub fn step(&mut self) -> bool {
        match self.phase {
            UnitPhase::Done => false,
            UnitPhase::Load { remaining } => {
                self.cycles += 1;
                self.phase = if remaining > 1 {
                    UnitPhase::Load {
                        remaining: remaining - 1,
                    }
                } else {
                    self.start_pair(0, 0);
                    UnitPhase::Hdc { i: 0, j: 0 }
                };
                true
            }
            UnitPhase::Hdc { i, j } => {
                self.cycles += 1;
                let hdc = self.hdc.as_mut().expect("HDC FSM active in Hdc phase");
                hdc.step();
                if let Some(min) = hdc.result() {
                    self.grid_cells.push(min);
                    let (next_i, next_j) = if j + 1 < self.target.num_reads() {
                        (i, j + 1)
                    } else {
                        (i + 1, 0)
                    };
                    if next_i < self.target.num_consensuses() {
                        self.start_pair(next_i, next_j);
                        self.phase = UnitPhase::Hdc {
                            i: next_i,
                            j: next_j,
                        };
                    } else {
                        self.hdc = None;
                        self.phase = UnitPhase::Selector;
                    }
                }
                true
            }
            UnitPhase::Selector => {
                self.cycles += 1;
                self.selector_cycles_left -= 1;
                if self.selector_cycles_left == 0 {
                    self.selector_done = true;
                    self.phase = UnitPhase::Drain {
                        remaining: self.drain_total,
                    };
                }
                true
            }
            UnitPhase::Drain { remaining } => {
                self.cycles += 1;
                self.phase = if remaining > 1 {
                    UnitPhase::Drain {
                        remaining: remaining - 1,
                    }
                } else {
                    UnitPhase::Done
                };
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdc::run_pair;

    fn toy_pair(salt: usize) -> (Sequence, Sequence, Qual) {
        let cons: Sequence = (0..120)
            .map(|i| {
                ir_genome::Base::from_index(
                    (((i * 7 + salt) as u64).wrapping_mul(0x9e37_79b9) >> 7) as usize % 4,
                )
            })
            .collect();
        let read = cons.slice(salt % 50, salt % 50 + 40);
        let quals = Qual::uniform(30, 40).unwrap();
        (cons, read, quals)
    }

    #[test]
    fn fsm_matches_closed_form_serial() {
        for salt in 0..20 {
            let (cons, read, quals) = toy_pair(salt);
            let cfg = HdcConfig::serial();
            let expected = run_pair(&cons, &read, &quals, cfg);
            let mut fsm = HdcFsm::new(&cons, &read, &quals, cfg);
            while fsm.step() {}
            assert_eq!(fsm.result(), Some(expected.min), "salt {salt}");
            assert_eq!(fsm.cycles(), expected.cycles, "salt {salt}");
            assert_eq!(fsm.comparisons(), expected.comparisons, "salt {salt}");
        }
    }

    #[test]
    fn fsm_matches_closed_form_data_parallel() {
        for salt in 0..20 {
            let (cons, read, quals) = toy_pair(salt);
            let cfg = HdcConfig::data_parallel();
            let expected = run_pair(&cons, &read, &quals, cfg);
            let mut fsm = HdcFsm::new(&cons, &read, &quals, cfg);
            while fsm.step() {}
            assert_eq!(fsm.result(), Some(expected.min), "salt {salt}");
            assert_eq!(fsm.cycles(), expected.cycles, "salt {salt}");
            assert_eq!(fsm.comparisons(), expected.comparisons, "salt {salt}");
        }
    }

    #[test]
    fn step_returns_false_only_when_done() {
        let (cons, read, quals) = toy_pair(3);
        let mut fsm = HdcFsm::new(&cons, &read, &quals, HdcConfig::serial());
        assert!(fsm.result().is_none());
        let mut steps = 0u64;
        while fsm.step() {
            steps += 1;
            assert!(steps < 1_000_000, "FSM must terminate");
        }
        assert_eq!(steps, fsm.cycles());
        assert!(!fsm.step(), "done state is terminal");
        assert!(fsm.result().is_some());
    }

    #[test]
    fn selector_fsm_matches_formula_and_function() {
        use crate::selector::{run_selector, selector_cycles};
        use ir_core::{MinWhdGrid, OpCounts};
        use ir_genome::{Qual, Read, RealignmentTarget};

        let target = RealignmentTarget::builder(20)
            .reference("CCTTAGA".parse().unwrap())
            .consensus("ACCTGAA".parse().unwrap())
            .consensus("TCTGCCT".parse().unwrap())
            .read(
                Read::new(
                    "r0",
                    "TGAA".parse().unwrap(),
                    Qual::from_raw_scores(&[10, 20, 45, 10]).unwrap(),
                    0,
                )
                .unwrap(),
            )
            .read(
                Read::new(
                    "r1",
                    "CCTC".parse().unwrap(),
                    Qual::from_raw_scores(&[10, 60, 30, 20]).unwrap(),
                    0,
                )
                .unwrap(),
            )
            .build()
            .unwrap();
        let mut ops = OpCounts::default();
        let grid = MinWhdGrid::compute(&target, true, &mut ops);

        let expected = run_selector(&grid, 20);
        let mut fsm = SelectorFsm::new(&grid, 20);
        assert!(fsm.best().is_none());
        while fsm.step() {}
        assert_eq!(fsm.cycles(), selector_cycles(3, 2));
        assert_eq!(fsm.cycles(), expected.cycles);
        assert_eq!(fsm.best(), Some(expected.best));
        assert_eq!(fsm.outcomes().unwrap(), expected.outcomes.as_slice());
    }

    #[test]
    fn unit_fsm_matches_simulate_target() {
        use crate::unit::simulate_target;
        use ir_genome::{Qual, Read, RealignmentTarget};

        // A small but non-trivial target: 3 consensuses, 4 reads.
        let reference: Sequence = (0..96).map(toy_base_pub).collect();
        let mut builder = RealignmentTarget::builder(500)
            .reference(reference.clone())
            .consensus((0..90).map(toy_base_pub).collect::<Sequence>())
            .consensus((0..96).map(|i| toy_base_pub(i + 3)).collect::<Sequence>());
        for j in 0..4 {
            let off = 7 * j;
            builder = builder.read(
                Read::new(
                    format!("r{j}"),
                    reference.slice(off, off + 30),
                    Qual::uniform(33, 30).unwrap(),
                    off as u64,
                )
                .unwrap(),
            );
        }
        let target = builder.build().unwrap();

        for params in [crate::FpgaParams::serial(), crate::FpgaParams::iracc()] {
            let expected = simulate_target(&target, &params);
            let mut fsm = UnitFsm::new(&target, &params);
            assert!(!fsm.is_done());
            while fsm.step() {}
            assert!(fsm.is_done());
            assert_eq!(
                fsm.cycles(),
                expected.cycles.total(),
                "lanes {}",
                params.lanes
            );
            assert_eq!(fsm.grid().expect("grid complete"), expected.grid);
        }
    }

    fn toy_base_pub(i: usize) -> ir_genome::Base {
        let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 33;
        ir_genome::Base::from_index((h % 4) as usize)
    }

    #[test]
    fn selector_fsm_reference_only_grid() {
        use ir_core::{MinWhd, MinWhdGrid};
        let cell = |whd| MinWhd { whd, offset: 0 };
        let grid = MinWhdGrid::from_cells(1, 3, vec![cell(5), cell(6), cell(7)]);
        let mut fsm = SelectorFsm::new(&grid, 0);
        while fsm.step() {}
        // Only the final pass: one cycle per read, nothing realigned.
        assert_eq!(fsm.cycles(), 3);
        assert_eq!(fsm.best(), Some(0));
        assert!(fsm.outcomes().unwrap().iter().all(|o| !o.realigned()));
    }

    #[test]
    fn setup_cycles_are_stepped() {
        let (cons, read, quals) = toy_pair(5);
        let cfg = HdcConfig {
            pair_overhead_cycles: 4,
            ..HdcConfig::serial()
        };
        let mut fsm = HdcFsm::new(&cons, &read, &quals, cfg);
        for _ in 0..4 {
            assert!(fsm.step());
            assert_eq!(fsm.comparisons(), 0, "setup issues no comparisons");
        }
        assert!(fsm.step());
        assert!(fsm.comparisons() > 0);
    }
}
