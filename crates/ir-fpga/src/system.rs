//! The full accelerated IR system on one F1 instance: a sea of IR units,
//! the PCIe DMA path, the host control program, and the two scheduling
//! schemes of Figure 7.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ir_genome::{RealignmentTarget, TargetShape};
use ir_telemetry::{SpanKind, Telemetry, TelemetrySnapshot, Track};
use serde::{Deserialize, Serialize};

use crate::arbiter::contention_stats;
use crate::dma::DmaParams;
use crate::driver::{ResiliencePolicy, ResilienceReport};
use crate::fault::{FaultPlan, ResponseFault};
use crate::isa::IrCommand;
use crate::layout::{decode_outputs, encode_outputs};
use crate::mem::burst_stats;
use crate::oracle::FunctionalOracle;
use crate::params::FpgaParams;
use crate::resources::{validate, ResourceReport};
use crate::shape::BufferGeometry;
use crate::unit::{simulate_target, UnitRun};
use crate::FpgaError;

/// How targets are dispatched onto the sea of units (paper §IV
/// "Asynchronous Scheduling", Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Scheduling {
    /// Synchronous-parallel: transfer and launch a whole batch of
    /// `num_units` targets, wait for *all* units to finish, flush, repeat.
    /// Targets are pre-sorted by read and consensus counts (the paper's
    /// mitigation) so batches are as uniform as that coarse key can make
    /// them — pruning variance defeats this anyway.
    Synchronous,
    /// Synchronous batches in plain submission order — the strawman the
    /// paper's sorting mitigates (`ablation_scheduling`).
    SynchronousUnsorted,
    /// Synchronous batches sorted by exact worst-case comparison count —
    /// a *better* key than the paper's, showing how much of the
    /// synchronous penalty sorting alone can(not) recover.
    SynchronousByWorstCase,
    /// Asynchronous-parallel: a unit receives its next target the moment
    /// it posts a completion response; DMA prefetches ahead of compute.
    #[default]
    Asynchronous,
}

/// Which simulation core advances the modeled clock.
///
/// Both backends produce bitwise-identical [`SystemRun`]s, telemetry
/// snapshots and traces (asserted by `tests/event_parity.rs`); they differ
/// only in host wall-clock. The event-driven core is the default; the
/// stepper survives as the differential-testing reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SimBackend {
    /// The [`ir_sim`] discrete-event engine: units, DMA and the watchdog
    /// are components and the clock jumps between state changes.
    #[default]
    EventDriven,
    /// The original inline schedulers stepping the HDC kernel
    /// cycle-by-cycle.
    LegacyStepper,
}

/// What a timeline interval represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimelinePhase {
    /// PCIe DMA transfer of target input data.
    Transfer,
    /// An IR unit computing a target (load + HDC + selector + drain).
    Compute,
}

/// One interval of the execution timeline (used to reproduce the Figure 7
/// gantt charts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineEvent {
    /// Unit index for compute phases; `usize::MAX` for DMA transfers.
    pub unit: usize,
    /// Index of the target in the submitted slice.
    pub target_index: usize,
    /// Interval start, seconds from run start.
    pub start_s: f64,
    /// Interval end, seconds from run start.
    pub end_s: f64,
    /// What the interval represents.
    pub phase: TimelinePhase,
}

/// The outcome of running a set of targets through the accelerated system.
#[derive(Debug, Clone)]
pub struct SystemRun {
    /// End-to-end wall-clock seconds, including data transfer, command
    /// issue, compute and responses — the same end-to-end measurement the
    /// paper's control program reports.
    pub wall_time_s: f64,
    /// Per-target functional results, in submission order. Identical to
    /// the golden model's output.
    pub results: Vec<UnitRun>,
    /// Total seconds the DMA engine was busy.
    pub dma_busy_s: f64,
    /// Total host seconds spent issuing commands and polling responses.
    pub command_s: f64,
    /// Summed compute cycles across all units.
    pub compute_cycles: u64,
    /// Total base comparisons executed on the fabric.
    pub comparisons: u64,
    /// Per-unit busy seconds.
    pub unit_busy_s: Vec<f64>,
    /// Timeline of transfer/compute intervals, derived from the telemetry
    /// trace (populated whenever telemetry is enabled, e.g. by
    /// [`AcceleratedSystem::run_telemetry`] or
    /// [`AcceleratedSystem::with_telemetry`]).
    pub timeline: Vec<TimelineEvent>,
    /// Recovery accounting (only populated by
    /// [`AcceleratedSystem::run_resilient`]; `None` on fault-free entry
    /// points).
    pub resilience: Option<ResilienceReport>,
    /// Cycle-level perf counters and the span trace (populated whenever
    /// telemetry is enabled; `None` otherwise). Enabling telemetry never
    /// changes any reported cycle count — the instrumentation only reads
    /// values the schedulers already compute.
    pub telemetry: Option<TelemetrySnapshot>,
}

impl SystemRun {
    /// Mean unit utilization: busy time over wall time, averaged across
    /// units. The synchronous scheduler's low utilization is exactly the
    /// effect Figure 7-top illustrates.
    pub fn utilization(&self) -> f64 {
        if self.wall_time_s == 0.0 || self.unit_busy_s.is_empty() {
            return 0.0;
        }
        let mean_busy: f64 = self.unit_busy_s.iter().sum::<f64>() / self.unit_busy_s.len() as f64;
        mean_busy / self.wall_time_s
    }

    /// Fraction of wall time spent on PCIe DMA (paper §IV: ≈ 0.01%).
    pub fn dma_fraction(&self) -> f64 {
        if self.wall_time_s == 0.0 {
            0.0
        } else {
            self.dma_busy_s / self.wall_time_s
        }
    }

    /// Effective base comparisons per second achieved over the run.
    pub fn comparisons_per_second(&self) -> f64 {
        if self.wall_time_s == 0.0 {
            0.0
        } else {
            self.comparisons as f64 / self.wall_time_s
        }
    }
}

/// Per-run recovery state threaded through the schedulers when
/// [`AcceleratedSystem::run_resilient`] is driving. It mirrors the
/// [`crate::driver::HostDriver`] policy machinery at the timing level:
/// instead of replaying transfers through queues it charges the cycles
/// each recovery action costs to the unit that paid them.
pub(crate) struct FaultState<'a> {
    pub(crate) plan: &'a mut FaultPlan,
    pub(crate) policy: &'a ResiliencePolicy,
    pub(crate) report: ResilienceReport,
    pub(crate) failures: Vec<u32>,
    pub(crate) quarantined: Vec<bool>,
}

impl FaultState<'_> {
    fn healthy_count(&self) -> usize {
        self.quarantined.iter().filter(|&&q| !q).count()
    }

    /// Plays the recovery state machine for one dispatched target and
    /// returns the extra cycles (watchdog waits, discarded attempts,
    /// backoff) the executing unit burned beyond the successful compute.
    ///
    /// Side effects mirror the driver: counters accumulate into the
    /// report, repeated unit-attributed failures quarantine the unit
    /// (never the last healthy one), a target that exhausts its retries
    /// falls back to the software result (cycles zeroed — the fabric
    /// never finished it), and a corrupt read-back that escapes sampled
    /// verification replaces `run.outcomes` with the corrupt decode.
    pub(crate) fn resolve(
        &mut self,
        target: &RealignmentTarget,
        run: &mut UnitRun,
        unit: usize,
    ) -> u64 {
        let policy = *self.policy;
        let mut extra = 0u64;
        let mut succeeded = false;
        for attempt in 0..=policy.max_retries {
            let mut failed = false;
            let mut unit_at_fault = false;
            if self.plan.dma_fault(target.shape().input_bytes()).is_some() {
                // Per-target re-transfer; not attributed to the unit.
                self.report.dma_faults += 1;
                failed = true;
            } else if self.plan.unit_hangs() {
                self.report.unit_hangs += 1;
                extra += policy.watchdog_cycles;
                failed = true;
                unit_at_fault = true;
            } else {
                match self.plan.response_fault() {
                    ResponseFault::Dropped => {
                        // The work completed but the completion vanished:
                        // the compute is stranded and the host waits out
                        // its watchdog before re-dispatching.
                        self.report.timeouts += 1;
                        extra += run.cycles.total() + policy.watchdog_cycles;
                        failed = true;
                        unit_at_fault = true;
                    }
                    ResponseFault::Duplicated => self.report.stale_responses += 1,
                    ResponseFault::Delivered => {}
                }
                if !failed {
                    let (mut flags, mut positions) =
                        encode_outputs(&run.outcomes, target.start_pos());
                    if self.plan.corrupt_outputs(&mut flags, &mut positions) {
                        let decoded = decode_outputs(
                            &flags,
                            &positions,
                            run.outcomes.len(),
                            target.start_pos(),
                        );
                        if decoded.is_err() || self.plan.sample_verify(policy.verify_rate) {
                            self.report.corrupt_detected += 1;
                            extra += run.cycles.total();
                            failed = true;
                            unit_at_fault = true;
                        } else if let Ok(corrupt) = decoded {
                            // Undetected single-bit flip: the corrupt
                            // outcomes ship. This is exactly what
                            // `verify_rate < 1` risks.
                            run.outcomes = corrupt;
                        }
                    }
                }
            }
            if !failed {
                if attempt > 0 {
                    self.report.recovered_targets += 1;
                    self.report.recovered_cycles += run.cycles.total();
                }
                self.failures[unit] = 0;
                succeeded = true;
                break;
            }
            if unit_at_fault {
                self.failures[unit] += 1;
                if self.failures[unit] >= policy.quarantine_threshold
                    && !self.quarantined[unit]
                    && self.healthy_count() > 1
                {
                    self.quarantined[unit] = true;
                    self.report.quarantined_units.push(unit);
                }
            }
            if attempt < policy.max_retries {
                self.report.retries += 1;
                extra += policy.backoff_base_cycles << attempt;
            }
        }
        if !succeeded {
            // Software fallback: the golden outcomes already in `run`
            // stand, but the fabric never finished this target — its
            // cycles and comparisons happened on host cores instead.
            self.report.fallbacks += 1;
            run.cycles = crate::unit::UnitCycles::default();
            run.comparisons = 0;
        }
        self.report.lost_cycles += extra;
        extra
    }
}

/// One dispatched target's observables, handed to [`TeleAcc`]. Everything
/// here is a value the scheduler already computed — recording it cannot
/// perturb timing.
pub(crate) struct DispatchRecord<'a> {
    pub(crate) unit: usize,
    pub(crate) target_index: usize,
    pub(crate) start_s: f64,
    pub(crate) busy_s: f64,
    /// Integer cycles the unit was busy (compute + fault-recovery extra).
    pub(crate) busy_cycles: u64,
    /// Seconds this dispatch stalled the unit (data wait, config,
    /// response).
    pub(crate) stall_s: f64,
    /// Portion of the stall spent waiting on DMA data specifically.
    pub(crate) dma_wait_s: f64,
    /// Units concurrently streaming/computing, including this one (drives
    /// the 32:1 arbiter counters).
    pub(crate) active_units: u64,
    pub(crate) run: &'a UnitRun,
    pub(crate) shape: &'a TargetShape,
}

/// The telemetry accumulator both schedulers thread their observations
/// through. When disabled every method returns immediately; when enabled
/// it gathers per-unit cycle ledgers, block counters and spans, then
/// [`TeleAcc::finalize`] closes the books so that for every unit
/// `busy + stall + quarantined + idle == total` holds exactly.
pub(crate) struct TeleAcc {
    pub(crate) tele: Telemetry,
    cycle_s: f64,
    busy_cycles: Vec<u64>,
    pub(crate) stall_s: Vec<f64>,
    dispatches: Vec<u64>,
    /// Wall time at which the unit was quarantined (`f64::INFINITY` =
    /// never); cycles from then to the end of the run are charged as
    /// quarantined rather than idle.
    quarantine_at_s: Vec<f64>,
}

impl TeleAcc {
    pub(crate) fn new(enabled: bool, units: usize, cycle_s: f64) -> Self {
        TeleAcc {
            tele: Telemetry::with_enabled(enabled),
            cycle_s,
            busy_cycles: vec![0; units],
            stall_s: vec![0.0; units],
            dispatches: vec![0; units],
            quarantine_at_s: vec![f64::INFINITY; units],
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.tele.is_enabled()
    }

    fn to_cycles(&self, s: f64) -> u64 {
        if s <= 0.0 {
            0
        } else {
            (s / self.cycle_s).round() as u64
        }
    }

    /// Records one DMA descriptor chain: chain-level counters plus one
    /// transfer span per carried target (the spans reconstruct the
    /// Figure 7 timeline).
    pub(crate) fn record_chain(&mut self, targets: &[usize], bytes: u64, start_s: f64, end_s: f64) {
        if !self.enabled() {
            return;
        }
        self.tele.add("dma", "bytes", bytes);
        self.tele.add("dma", "chains", 1);
        self.tele.observe("dma", "chain_bytes", bytes);
        self.tele
            .gauge_max("dma", "chain_targets_hwm", targets.len() as u64);
        for &t in targets {
            self.tele.span(
                Track::Dma,
                SpanKind::Transfer,
                &format!("xfer t{t}"),
                Some(t),
                start_s,
                end_s,
            );
        }
    }

    pub(crate) fn record_quarantine(&mut self, unit: usize, at_s: f64) {
        if self.enabled() {
            self.quarantine_at_s[unit] = self.quarantine_at_s[unit].min(at_s);
        }
    }

    /// Records one target landing on one unit: the compute span, per-unit
    /// ledger entries, and every block-level counter the dispatch touches
    /// (HDC, 5:1 and 32:1 arbiters, DDR, BRAM occupancy).
    pub(crate) fn record_dispatch(&mut self, params: &FpgaParams, d: DispatchRecord) {
        if !self.enabled() {
            return;
        }
        let DispatchRecord {
            unit,
            target_index,
            start_s,
            busy_s,
            busy_cycles,
            stall_s,
            dma_wait_s,
            active_units,
            run,
            shape,
        } = d;
        self.busy_cycles[unit] += busy_cycles;
        self.stall_s[unit] += stall_s;
        self.dispatches[unit] += 1;

        self.tele.span_args(
            Track::Unit(unit),
            SpanKind::Compute,
            &format!("t{target_index}"),
            Some(target_index),
            start_s,
            start_s + busy_s,
            &[("cycles", busy_cycles), ("comparisons", run.comparisons)],
        );
        if dma_wait_s > 0.0 {
            self.tele.span(
                Track::Unit(unit),
                SpanKind::Stall,
                "dma wait",
                Some(target_index),
                start_s - dma_wait_s,
                start_s,
            );
        }

        self.tele.add("sched", "dispatches", 1);
        self.tele
            .add("dma", "stall_cycles", self.to_cycles(dma_wait_s));
        self.tele.observe("unit", "target_cycles", busy_cycles);

        let c = run.cycles;
        self.tele.add("unit_phase", "load_cycles", c.load);
        self.tele.add("unit_phase", "hdc_cycles", c.hdc);
        self.tele.add("unit_phase", "selector_cycles", c.selector);
        self.tele.add("unit_phase", "drain_cycles", c.drain);
        self.tele.add("hdc", "comparisons", run.comparisons);
        self.tele.add("hdc", "pruned_offsets", run.offsets_pruned);

        // 5:1 intra-unit arbiter: the five memory streams of this target
        // contend for the unit's single TileLink port.
        let burst = burst_stats(shape, params.bus_bytes);
        let arb5 = contention_stats(&burst.stream_beats);
        self.tele.add("arbiter5", "grants", arb5.grants);
        self.tele
            .add("arbiter5", "conflict_cycles", arb5.conflict_cycles);
        self.tele
            .gauge_max("arbiter5", "queue_depth_hwm", arb5.queue_depth_hwm);

        // 32:1 system arbiter: every beat this target moves was granted
        // there too; beats issued while other units stream are conflicted.
        self.tele.add("arbiter32", "grants", burst.beats);
        if active_units > 1 {
            self.tele.add("arbiter32", "conflict_grants", burst.beats);
        }
        self.tele
            .gauge_max("arbiter32", "active_units_hwm", active_units);

        self.tele.add("ddr", "bytes", burst.bytes);
        self.tele.add("ddr", "beats", burst.beats);
        self.tele.add("ddr", "rows_activated", burst.rows_activated);
        self.tele.add("ddr", "row_hits", burst.row_hits);

        // BRAM occupancy high-water marks against the fixed buffer
        // geometry of `crate::bram::unit_buffers`.
        let consensus_bytes: u64 = shape.consensus_lens.iter().map(|&l| l as u64).sum();
        let read_bytes: u64 = shape.read_lens.iter().map(|&l| l as u64).sum();
        self.tele
            .gauge_max("bram", "consensus_bytes_hwm", consensus_bytes);
        self.tele.gauge_max("bram", "read_bytes_hwm", read_bytes);
        self.tele.gauge_max("bram", "qual_bytes_hwm", read_bytes);
        self.tele
            .gauge_max("bram", "output_bytes_hwm", shape.output_bytes());
    }

    /// Closes the per-unit cycle ledgers against the final wall clock and
    /// returns the snapshot (`None` when disabled).
    ///
    /// Busy cycles are exact integers from the datapath model; stall and
    /// quarantined cycles are rounded from seconds and clamped so the
    /// conservation invariant `busy + stall + quarantined + idle == total`
    /// holds exactly, with idle as the derived remainder.
    pub(crate) fn finalize(
        mut self,
        wall_s: f64,
        command_s: f64,
        dma_busy_s: f64,
        num_targets: usize,
    ) -> Option<TelemetrySnapshot> {
        if !self.enabled() {
            return None;
        }
        let total = self.to_cycles(wall_s);
        for unit in 0..self.busy_cycles.len() {
            let busy = self.busy_cycles[unit].min(total);
            let stall = self.to_cycles(self.stall_s[unit]).min(total - busy);
            let quarantined = if self.quarantine_at_s[unit].is_finite() {
                self.to_cycles(wall_s - self.quarantine_at_s[unit])
                    .min(total - busy - stall)
            } else {
                0
            };
            let idle = total - busy - stall - quarantined;
            self.tele.add_idx("unit", unit, "busy_cycles", busy);
            self.tele.add_idx("unit", unit, "stall_cycles", stall);
            self.tele
                .add_idx("unit", unit, "quarantined_cycles", quarantined);
            self.tele.add_idx("unit", unit, "idle_cycles", idle);
            self.tele.add_idx("unit", unit, "total_cycles", total);
            self.tele
                .add_idx("unit", unit, "targets", self.dispatches[unit]);
        }
        self.tele.add("system", "wall_cycles", total);
        self.tele.add("system", "targets", num_targets as u64);
        self.tele
            .add("host", "command_cycles", self.to_cycles(command_s));
        self.tele
            .add("dma", "busy_cycles", self.to_cycles(dma_busy_s));
        self.tele.finish()
    }
}

/// Rebuilds the [`TimelineEvent`] list older consumers (the Figure 7
/// gantt renderers) expect from the recorded trace spans.
pub(crate) fn timeline_from_snapshot(snapshot: &TelemetrySnapshot) -> Vec<TimelineEvent> {
    snapshot
        .trace
        .events
        .iter()
        .filter_map(|e| {
            let (unit, phase) = match (e.track, e.kind) {
                (Track::Dma, SpanKind::Transfer) => (usize::MAX, TimelinePhase::Transfer),
                (Track::Unit(u), SpanKind::Compute) => (u, TimelinePhase::Compute),
                _ => return None,
            };
            Some(TimelineEvent {
                unit,
                target_index: e.target?,
                start_s: e.start_s,
                end_s: e.end_s,
                phase,
            })
        })
        .collect()
}

/// The accelerated system: validated configuration plus a scheduler.
///
/// # Example
///
/// ```
/// use ir_fpga::{AcceleratedSystem, FpgaParams, Scheduling};
///
/// let system = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Asynchronous)?;
/// assert_eq!(system.params().num_units, 32);
/// assert!(system.resources().bram_utilization < 0.90);
/// # Ok::<(), ir_fpga::FpgaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AcceleratedSystem {
    params: FpgaParams,
    scheduling: Scheduling,
    dma: DmaParams,
    resources: ResourceReport,
    geometry: BufferGeometry,
    telemetry: bool,
    backend: SimBackend,
}

impl AcceleratedSystem {
    /// Builds a system, validating FPGA fit and timing closure. The unit
    /// buffer geometry defaults to the deployed hardware's
    /// ([`BufferGeometry::HARDWARE`]); per-shape fabrics install their
    /// derived geometry with [`Self::with_geometry`].
    ///
    /// # Errors
    ///
    /// Propagates [`FpgaError::DoesNotFit`] / [`FpgaError::TimingFailure`]
    /// from [`crate::resources::validate`].
    pub fn new(params: FpgaParams, scheduling: Scheduling) -> Result<Self, FpgaError> {
        let resources = validate(&params)?;
        Ok(AcceleratedSystem {
            params,
            scheduling,
            dma: DmaParams::default(),
            resources,
            geometry: BufferGeometry::HARDWARE,
            telemetry: false,
            backend: SimBackend::default(),
        })
    }

    /// Installs a per-shape unit buffer geometry (from
    /// [`crate::shape::derive_shape_config`], whose derivation already
    /// proved the fit) and recomputes the floorplan report at that
    /// geometry's per-unit BRAM cost. Admission against the geometry is a
    /// host-side policy ([`Self::admits`]); the cycle model itself is
    /// geometry-agnostic, so a default-geometry system behaves exactly as
    /// before.
    pub fn with_geometry(mut self, geometry: BufferGeometry) -> Self {
        self.geometry = geometry;
        self.resources = crate::resources::report_with_unit_blocks(
            self.params.num_units,
            self.params.lanes,
            geometry.unit_bram36_blocks(),
        );
        self
    }

    /// The unit buffer geometry this fabric was built with.
    pub fn geometry(&self) -> &BufferGeometry {
        &self.geometry
    }

    /// Whether one target of `shape` fits this fabric's unit buffers —
    /// the admission predicate shape-aware routers consult before
    /// dispatching to this system.
    pub fn admits(&self, shape: &TargetShape) -> bool {
        self.geometry.holds(shape)
    }

    /// Overrides the DMA parameters (defaults to [`DmaParams::default`]).
    pub fn with_dma(mut self, dma: DmaParams) -> Self {
        self.dma = dma;
        self
    }

    /// Enables or disables cycle-level telemetry for subsequent runs
    /// (disabled by default; zero cost when disabled). Enabled runs attach
    /// a [`TelemetrySnapshot`] to [`SystemRun::telemetry`] and populate
    /// [`SystemRun::timeline`] without changing any reported cycle count.
    pub fn with_telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Whether telemetry collection is enabled.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry
    }

    /// Selects the simulation core (defaults to
    /// [`SimBackend::EventDriven`]). Both backends are observationally
    /// equivalent; [`SimBackend::LegacyStepper`] exists for differential
    /// testing and as the `--legacy-stepper` escape hatch in the benches.
    pub fn with_backend(mut self, backend: SimBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The simulation core in use.
    pub fn backend(&self) -> SimBackend {
        self.backend
    }

    /// The PCIe DMA parameters in use.
    pub fn dma_params(&self) -> &DmaParams {
        &self.dma
    }

    /// The validated FPGA parameters.
    pub fn params(&self) -> &FpgaParams {
        &self.params
    }

    /// The scheduling scheme in use.
    pub fn scheduling(&self) -> Scheduling {
        self.scheduling
    }

    /// The floorplan report for this configuration.
    pub fn resources(&self) -> &ResourceReport {
        &self.resources
    }

    /// Runs `targets` end to end and reports timing. Telemetry (counters,
    /// trace, timeline) is attached iff [`Self::with_telemetry`] enabled
    /// it.
    pub fn run(&self, targets: &[RealignmentTarget]) -> SystemRun {
        self.run_inner(targets, self.telemetry, None)
    }

    /// Runs `targets` with telemetry forced on, regardless of the
    /// [`Self::with_telemetry`] flag. The timeline older consumers (the
    /// Figure 7 gantt renderers) expect is derived from the telemetry
    /// trace, which subsumes it.
    pub fn run_telemetry(&self, targets: &[RealignmentTarget]) -> SystemRun {
        self.run_inner(targets, true, None)
    }

    /// Runs `targets` through the event-driven core with a shared
    /// [`FunctionalOracle`], so replays of the same workload under other
    /// configurations reuse every memoized [`UnitRun`]. Ignores the
    /// backend selection — the oracle only exists on the engine path.
    /// Telemetry follows [`Self::with_telemetry`].
    pub fn run_with_oracle(
        &self,
        targets: &[RealignmentTarget],
        oracle: &mut FunctionalOracle,
    ) -> SystemRun {
        crate::engine::run_event_driven(self, targets, self.telemetry, None, Some(oracle))
    }

    /// Runs `targets` with fault injection and the host resilience
    /// policy. Each dispatched target plays the driver's recovery state
    /// machine (watchdog, bounded retry with exponential backoff,
    /// integrity-checked read-back, quarantine, software fallback); every
    /// failed attempt's cycles are charged to the executing unit, so the
    /// wall clock shows the price of recovery. The run always completes —
    /// targets that exhaust hardware retries keep the golden software
    /// result — and [`SystemRun::resilience`] records what happened.
    ///
    /// With [`FaultPlan::none`] the output is bit-identical to
    /// [`Self::run`] except for an all-zero report (asserted by
    /// `tests/resilience.rs`).
    ///
    /// Modeling notes: quarantine shrinks scheduling capacity (a
    /// quarantined unit receives no further targets); per-target DMA
    /// retries are charged to the unit rather than re-simulated through
    /// the batched descriptor chains; software-fallback compute happens
    /// on host cores off the modeled fabric clock, so it adds no fabric
    /// wall time, while the discarded hardware attempts it replaces do.
    pub fn run_resilient(
        &self,
        targets: &[RealignmentTarget],
        plan: &mut FaultPlan,
        policy: &ResiliencePolicy,
    ) -> SystemRun {
        self.run_resilient_inner(targets, plan, policy, None)
    }

    /// [`Self::run_resilient`] over a shared [`FunctionalOracle`]. The
    /// oracle memoizes the *fault-free* datapath result per target;
    /// injected faults mutate the per-attempt clone the resilience layer
    /// receives, never the cached entry, so a fault-rate sweep over one
    /// workload evaluates each target's datapath exactly once. Like
    /// [`Self::run_with_oracle`] this always takes the event-driven path.
    pub fn run_resilient_with_oracle(
        &self,
        targets: &[RealignmentTarget],
        plan: &mut FaultPlan,
        policy: &ResiliencePolicy,
        oracle: &mut FunctionalOracle,
    ) -> SystemRun {
        self.run_resilient_inner(targets, plan, policy, Some(oracle))
    }

    fn run_resilient_inner(
        &self,
        targets: &[RealignmentTarget],
        plan: &mut FaultPlan,
        policy: &ResiliencePolicy,
        oracle: Option<&mut FunctionalOracle>,
    ) -> SystemRun {
        let mut state = FaultState {
            plan,
            policy,
            report: ResilienceReport::default(),
            failures: vec![0; self.params.num_units],
            quarantined: vec![false; self.params.num_units],
        };
        let mut run = match oracle {
            Some(o) => crate::engine::run_event_driven(
                self,
                targets,
                self.telemetry,
                Some(&mut state),
                Some(o),
            ),
            None => self.run_inner(targets, self.telemetry, Some(&mut state)),
        };
        state.report.faults = state.plan.counts();
        if let Some(snapshot) = run.telemetry.as_mut() {
            state.report.record_into(&mut snapshot.counters);
        }
        run.resilience = Some(state.report);
        run
    }

    fn run_inner(
        &self,
        targets: &[RealignmentTarget],
        telemetry: bool,
        fault: Option<&mut FaultState>,
    ) -> SystemRun {
        match self.backend {
            SimBackend::EventDriven => {
                crate::engine::run_event_driven(self, targets, telemetry, fault, None)
            }
            SimBackend::LegacyStepper => match self.scheduling {
                Scheduling::Synchronous
                | Scheduling::SynchronousUnsorted
                | Scheduling::SynchronousByWorstCase => {
                    self.run_synchronous(targets, telemetry, fault)
                }
                Scheduling::Asynchronous => self.run_asynchronous(targets, telemetry, fault),
            },
        }
    }

    /// Host time to configure and start one target.
    pub(crate) fn config_time_s(&self, target: &RealignmentTarget) -> f64 {
        IrCommand::commands_per_target(target.num_consensuses()) as f64 * self.params.cmd_latency_s
    }

    fn run_synchronous(
        &self,
        targets: &[RealignmentTarget],
        telemetry: bool,
        mut fault: Option<&mut FaultState>,
    ) -> SystemRun {
        let p = &self.params;
        let cycle_s = p.cycle_time_s();
        let units = p.num_units;
        let mut acc = TeleAcc::new(telemetry, units, cycle_s);

        // "The targets could be sorted by read and consensus sizes to
        // ensure that all the targets that are scheduled in the same batch
        // have similar runtimes" (§IV) — the paper's coarse sort key.
        // Consensus-length and pruning variance survive inside a batch,
        // which is exactly why the synchronous scheme under-utilizes.
        let mut order: Vec<usize> = (0..targets.len()).collect();
        match self.scheduling {
            Scheduling::SynchronousUnsorted => {}
            Scheduling::SynchronousByWorstCase => {
                order.sort_by_key(|&t| Reverse(targets[t].shape().worst_case_comparisons()));
            }
            _ => order
                .sort_by_key(|&t| Reverse((targets[t].num_reads(), targets[t].num_consensuses()))),
        }

        let mut results: Vec<Option<UnitRun>> = (0..targets.len()).map(|_| None).collect();
        let mut now = 0.0f64;
        let mut dma_busy = 0.0f64;
        let mut command_s = 0.0f64;
        let mut compute_cycles = 0u64;
        let mut comparisons = 0u64;
        let mut unit_busy = vec![0.0f64; units];

        // Batches are sized to the *healthy* unit count, which shrinks as
        // the resilience layer quarantines units (all units, fault-free).
        let mut cursor = 0usize;
        while cursor < order.len() {
            let healthy: Vec<usize> = match fault.as_deref() {
                Some(fs) => (0..units).filter(|&u| !fs.quarantined[u]).collect(),
                None => (0..units).collect(),
            };
            let batch = &order[cursor..order.len().min(cursor + healthy.len())];
            cursor += batch.len();
            // One chunked DMA transfer for the whole batch.
            let batch_bytes: u64 = batch
                .iter()
                .map(|&t| targets[t].shape().input_bytes())
                .sum();
            let dma_s = self
                .dma
                .batch_transfer_time_s(batch.iter().map(|&t| targets[t].shape().input_bytes()));
            acc.record_chain(batch, batch_bytes, now, now + dma_s);
            acc.tele.add("sched", "batches", 1);
            acc.tele
                .gauge_max("dma", "prefetch_depth_hwm", batch.len() as u64);
            now += dma_s;
            dma_busy += dma_s;

            // Configure and start every unit (host-serial), then all units
            // compute in parallel; the batch ends when the slowest unit
            // finishes and the whole fabric is flushed.
            let mut batch_end = now;
            for (slot, &t) in batch.iter().enumerate() {
                let unit = healthy[slot];
                let cfg = self.config_time_s(&targets[t]);
                command_s += cfg;
                let mut run = simulate_target(&targets[t], p);
                let was_quarantined = fault.as_deref().is_some_and(|fs| fs.quarantined[unit]);
                let extra = match fault.as_deref_mut() {
                    Some(fs) => fs.resolve(&targets[t], &mut run, unit),
                    None => 0,
                };
                let busy = (run.cycles.total() + extra) as f64 * cycle_s;
                let start = now + cfg;
                let end = start + busy;
                if !was_quarantined && fault.as_deref().is_some_and(|fs| fs.quarantined[unit]) {
                    acc.record_quarantine(unit, end);
                }
                unit_busy[unit] += busy;
                compute_cycles += run.cycles.total();
                comparisons += run.comparisons;
                batch_end = batch_end.max(end);
                let shape = targets[t].shape();
                acc.record_dispatch(
                    p,
                    DispatchRecord {
                        unit,
                        target_index: t,
                        start_s: start,
                        busy_s: busy,
                        busy_cycles: run.cycles.total() + extra,
                        // The unit sat out the batch DMA and its own
                        // configuration before computing.
                        stall_s: dma_s + cfg,
                        dma_wait_s: dma_s,
                        active_units: batch.len() as u64,
                        run: &run,
                        shape: &shape,
                    },
                );
                results[t] = Some(run);
            }
            // Synchronous flush + response drain: every batch member
            // stalls until the whole fabric is flushed.
            let flush = self.params.response_latency_s * batch.len() as f64;
            command_s += flush;
            if acc.enabled() {
                for &unit in healthy.iter().take(batch.len()) {
                    acc.stall_s[unit] += flush;
                }
                acc.tele.span(
                    Track::Host,
                    SpanKind::Stall,
                    "batch flush",
                    None,
                    batch_end,
                    batch_end + flush,
                );
            }
            now = batch_end + flush;
        }

        let snapshot = acc.finalize(now, command_s, dma_busy, targets.len());
        SystemRun {
            wall_time_s: now,
            results: results
                .into_iter()
                .map(|r| r.expect("every target ran"))
                .collect(),
            dma_busy_s: dma_busy,
            command_s,
            compute_cycles,
            comparisons,
            unit_busy_s: unit_busy,
            timeline: snapshot
                .as_ref()
                .map(timeline_from_snapshot)
                .unwrap_or_default(),
            resilience: None,
            telemetry: snapshot,
        }
    }

    fn run_asynchronous(
        &self,
        targets: &[RealignmentTarget],
        telemetry: bool,
        mut fault: Option<&mut FaultState>,
    ) -> SystemRun {
        let p = &self.params;
        let cycle_s = p.cycle_time_s();
        let units = p.num_units;
        let mut acc = TeleAcc::new(telemetry, units, cycle_s);

        let mut results: Vec<Option<UnitRun>> = (0..targets.len()).map(|_| None).collect();
        let mut dma_busy = 0.0f64;
        let mut command_s = 0.0f64;
        let mut compute_cycles = 0u64;
        let mut comparisons = 0u64;
        let mut unit_busy = vec![0.0f64; units];

        // Dispatch order: largest worst-case work first (the host sorts
        // its scheduling queue, as in the synchronous scheme — pruning
        // variance is what asynchrony then absorbs).
        let mut order: Vec<usize> = (0..targets.len()).collect();
        order.sort_by_key(|&t| Reverse(targets[t].shape().worst_case_comparisons()));

        // DMA prefetches target inputs in dispatch order, one chunked
        // descriptor chain per group of `units` targets, overlapping
        // compute (Figure 7-bottom shows targets 4–7 moving while 0–3
        // compute).
        let mut dma_done = vec![0.0f64; targets.len()];
        let mut dma_free = 0.0f64;
        for chunk in order.chunks(units.max(1)) {
            let chunk_bytes: u64 = chunk
                .iter()
                .map(|&t| targets[t].shape().input_bytes())
                .sum();
            let dt = self
                .dma
                .batch_transfer_time_s(chunk.iter().map(|&t| targets[t].shape().input_bytes()));
            let start = dma_free;
            dma_free = start + dt;
            dma_busy += dt;
            for &t in chunk {
                dma_done[t] = dma_free;
            }
            acc.record_chain(chunk, chunk_bytes, start, dma_free);
        }

        // Min-heap of (free_time, unit): the next target goes to the unit
        // that responds first.
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
            (0..units).map(|u| Reverse((0u64, u))).collect();
        // Times are kept as integer picoseconds in the heap for a total
        // order; converted at the edges.
        let to_ps = |s: f64| (s * 1e12) as u64;
        let from_ps = |ps: u64| ps as f64 / 1e12;

        // Per-unit compute-end times (32:1 arbiter concurrency) and the
        // prefetch pointer (how far ahead of compute the DMA ran), only
        // consulted when telemetry is on.
        let mut unit_end_s = vec![0.0f64; units];
        let mut arrived = 0usize;

        let mut wall = 0.0f64;
        for (dispatch_idx, &t) in order.iter().enumerate() {
            let target = &targets[t];
            let Reverse((free_ps, unit)) = heap.pop().expect("at least one unit");
            let cfg = self.config_time_s(target);
            command_s += cfg;
            let mut run = simulate_target(target, p);
            let was_quarantined = fault.as_deref().is_some_and(|fs| fs.quarantined[unit]);
            let extra = match fault.as_deref_mut() {
                Some(fs) => fs.resolve(target, &mut run, unit),
                None => 0,
            };
            let busy = (run.cycles.total() + extra) as f64 * cycle_s;
            let free = from_ps(free_ps);
            let start = free.max(dma_done[t]) + cfg;
            let dma_wait = (dma_done[t] - free).max(0.0);
            let end = start + busy + self.params.response_latency_s;
            command_s += self.params.response_latency_s;
            if !was_quarantined && fault.as_deref().is_some_and(|fs| fs.quarantined[unit]) {
                acc.record_quarantine(unit, end);
            }
            unit_busy[unit] += busy;
            compute_cycles += run.cycles.total();
            comparisons += run.comparisons;
            wall = wall.max(end);
            if acc.enabled() {
                let active_units = 1 + unit_end_s
                    .iter()
                    .enumerate()
                    .filter(|&(u, &e)| u != unit && e > start)
                    .count() as u64;
                unit_end_s[unit] = start + busy;
                while arrived < order.len() && dma_done[order[arrived]] <= start {
                    arrived += 1;
                }
                let prefetch_depth = arrived.saturating_sub(dispatch_idx + 1) as u64;
                acc.tele
                    .gauge_max("dma", "prefetch_depth_hwm", prefetch_depth);
                let shape = target.shape();
                acc.record_dispatch(
                    p,
                    DispatchRecord {
                        unit,
                        target_index: t,
                        start_s: start,
                        busy_s: busy,
                        busy_cycles: run.cycles.total() + extra,
                        // Waiting on data, configuration, and the
                        // completion response all stall the unit.
                        stall_s: dma_wait + cfg + self.params.response_latency_s,
                        dma_wait_s: dma_wait,
                        active_units,
                        run: &run,
                        shape: &shape,
                    },
                );
            }
            results[t] = Some(run);
            // A freshly quarantined unit receives no further dispatches;
            // the guard in `FaultState::resolve` keeps at least one unit
            // in the heap.
            let still_healthy = fault.as_deref().is_none_or(|fs| !fs.quarantined[unit]);
            if still_healthy {
                heap.push(Reverse((to_ps(end), unit)));
            }
        }

        let snapshot = acc.finalize(wall, command_s, dma_busy, targets.len());
        SystemRun {
            wall_time_s: wall,
            results: results
                .into_iter()
                .map(|r| r.expect("every target ran"))
                .collect(),
            dma_busy_s: dma_busy,
            command_s,
            compute_cycles,
            comparisons,
            unit_busy_s: unit_busy,
            timeline: snapshot
                .as_ref()
                .map(timeline_from_snapshot)
                .unwrap_or_default(),
            resilience: None,
            telemetry: snapshot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_core::IndelRealigner;
    use ir_genome::{Qual, Read, Sequence};

    /// Builds a target whose reads mismatch the consensus in controlled
    /// amounts, so different targets have very different pruned workloads.
    fn target_with(
        reads: usize,
        read_len: usize,
        cons_len: usize,
        seed: usize,
    ) -> RealignmentTarget {
        let ref_bases: Sequence = (0..cons_len)
            .map(|i| ir_genome::Base::from_index((i * 7 + seed) % 4))
            .collect();
        let alt: Sequence = (0..cons_len)
            .map(|i| ir_genome::Base::from_index((i * 7 + seed + (i % 13 == 0) as usize) % 4))
            .collect();
        let mut builder = RealignmentTarget::builder(1000 * seed as u64)
            .reference(ref_bases.clone())
            .consensus(alt);
        for j in 0..reads {
            let offset = (j * 11 + seed) % (cons_len - read_len);
            let bases: Sequence = ref_bases.slice(offset, offset + read_len);
            let quals = Qual::uniform(30, read_len).unwrap();
            builder = builder.read(Read::new(format!("r{j}"), bases, quals, 0).unwrap());
        }
        builder.build().unwrap()
    }

    fn small_workload() -> Vec<RealignmentTarget> {
        (0..12)
            .map(|s| target_with(5 + s % 5, 48, 256 + 24 * s, s + 1))
            .collect()
    }

    #[test]
    fn construction_validates_fit() {
        assert!(AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Asynchronous).is_ok());
        let bad = FpgaParams {
            num_units: 100,
            ..FpgaParams::iracc()
        };
        assert!(AcceleratedSystem::new(bad, Scheduling::Asynchronous).is_err());
    }

    #[test]
    fn results_match_golden_model_both_schedulers() {
        let targets = small_workload();
        let golden: Vec<_> = targets
            .iter()
            .map(|t| IndelRealigner::new().realign(t))
            .collect();
        for sched in [Scheduling::Synchronous, Scheduling::Asynchronous] {
            let system = AcceleratedSystem::new(FpgaParams::iracc(), sched).unwrap();
            let run = system.run(&targets);
            assert_eq!(run.results.len(), targets.len());
            for (got, want) in run.results.iter().zip(golden.iter()) {
                assert_eq!(&got.grid, want.grid());
                assert_eq!(got.best, want.best_consensus());
                assert_eq!(got.outcomes, want.outcomes());
            }
        }
    }

    #[test]
    fn async_is_not_slower_than_sync() {
        let targets: Vec<_> = (0..40)
            .map(|s| target_with(4 + s % 7, 48, 192 + 32 * (s % 9), s + 1))
            .collect();
        let sync = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Synchronous)
            .unwrap()
            .run(&targets);
        let asynchronous = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Asynchronous)
            .unwrap()
            .run(&targets);
        assert!(asynchronous.wall_time_s <= sync.wall_time_s * 1.001);
    }

    #[test]
    fn async_utilization_beats_sync_on_skewed_work() {
        // Heavily skewed targets: one straggler per batch.
        let mut targets = Vec::new();
        for s in 0..32 {
            let cons_len = if s % 8 == 0 { 1536 } else { 160 };
            targets.push(target_with(6, 48, cons_len, s + 1));
        }
        let sync = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Synchronous)
            .unwrap()
            .run(&targets);
        let asynchronous = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Asynchronous)
            .unwrap()
            .run(&targets);
        assert!(asynchronous.utilization() >= sync.utilization());
    }

    #[test]
    fn sorting_policies_order_as_expected() {
        // Unsorted ≥ paper sort ≥ exact-work sort ≥ async on a workload
        // with both shape and pruning variance.
        let targets: Vec<_> = (0..64)
            .map(|s| target_with(3 + s % 9, 48, 128 + 48 * (s % 7), s + 1))
            .collect();
        let wall = |sched| {
            AcceleratedSystem::new(FpgaParams::serial(), sched)
                .expect("fits")
                .run(&targets)
                .wall_time_s
        };
        let unsorted = wall(Scheduling::SynchronousUnsorted);
        let paper = wall(Scheduling::Synchronous);
        let exact = wall(Scheduling::SynchronousByWorstCase);
        let asynchronous = wall(Scheduling::Asynchronous);
        assert!(
            paper <= unsorted * 1.001,
            "paper sort {paper} vs unsorted {unsorted}"
        );
        assert!(
            exact <= paper * 1.001,
            "exact sort {exact} vs paper {paper}"
        );
        assert!(
            asynchronous <= exact * 1.001,
            "async {asynchronous} vs exact {exact}"
        );
    }

    #[test]
    fn all_sync_variants_produce_identical_results() {
        let targets = small_workload();
        let golden: Vec<usize> =
            AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Synchronous)
                .expect("fits")
                .run(&targets)
                .results
                .iter()
                .map(|r| r.best)
                .collect();
        for sched in [
            Scheduling::SynchronousUnsorted,
            Scheduling::SynchronousByWorstCase,
        ] {
            let got: Vec<usize> = AcceleratedSystem::new(FpgaParams::iracc(), sched)
                .expect("fits")
                .run(&targets)
                .results
                .iter()
                .map(|r| r.best)
                .collect();
            assert_eq!(got, golden, "{sched:?} must not change functional results");
        }
    }

    #[test]
    fn dma_is_a_tiny_fraction() {
        let targets = small_workload();
        let run = AcceleratedSystem::new(FpgaParams::serial(), Scheduling::Asynchronous)
            .unwrap()
            .run(&targets);
        assert!(
            run.dma_fraction() < 0.25,
            "dma fraction {}",
            run.dma_fraction()
        );
    }

    #[test]
    fn telemetry_run_produces_timeline() {
        let targets = small_workload();
        let run = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Synchronous)
            .unwrap()
            .run_telemetry(&targets);
        let transfers = run
            .timeline
            .iter()
            .filter(|e| e.phase == TimelinePhase::Transfer);
        let computes = run
            .timeline
            .iter()
            .filter(|e| e.phase == TimelinePhase::Compute);
        assert_eq!(transfers.count(), targets.len());
        assert_eq!(computes.count(), targets.len());
        for e in &run.timeline {
            assert!(e.end_s >= e.start_s);
            assert!(e.end_s <= run.wall_time_s + 1e-12);
        }
        // Untraced run has no timeline.
        let run = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Synchronous)
            .unwrap()
            .run(&targets);
        assert!(run.timeline.is_empty());
    }

    #[test]
    fn wall_time_bounded_by_serial_sum() {
        let targets = small_workload();
        let system = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Asynchronous).unwrap();
        let run = system.run(&targets);
        let serial_compute: f64 = run.unit_busy_s.iter().sum();
        // Parallel run must beat running everything back-to-back on one
        // unit (plus transfers).
        assert!(run.wall_time_s < serial_compute + run.dma_busy_s + run.command_s + 1e-9);
    }

    #[test]
    fn empty_workload_is_free() {
        let system = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Asynchronous).unwrap();
        let run = system.run(&[]);
        assert_eq!(run.wall_time_s, 0.0);
        assert!(run.results.is_empty());
        assert_eq!(run.utilization(), 0.0);
    }

    #[test]
    fn resilient_run_with_inert_plan_is_bit_identical() {
        use crate::driver::ResiliencePolicy;
        use crate::fault::FaultPlan;
        let targets = small_workload();
        for sched in [Scheduling::Synchronous, Scheduling::Asynchronous] {
            let system = AcceleratedSystem::new(FpgaParams::iracc(), sched).unwrap();
            let plain = system.run(&targets);
            let mut plan = FaultPlan::none();
            let resilient = system.run_resilient(&targets, &mut plan, &ResiliencePolicy::default());
            assert_eq!(resilient.wall_time_s, plain.wall_time_s, "{sched:?}");
            assert_eq!(resilient.results.len(), plain.results.len());
            for (a, b) in resilient.results.iter().zip(plain.results.iter()) {
                assert_eq!(a.outcomes, b.outcomes);
                assert_eq!(a.cycles, b.cycles);
            }
            assert_eq!(resilient.unit_busy_s, plain.unit_busy_s);
            assert_eq!(resilient.compute_cycles, plain.compute_cycles);
            let report = resilient.resilience.expect("report attached");
            assert!(report.is_clean(), "{report:?}");
        }
    }

    #[test]
    fn resilient_run_completes_under_default_fault_rates() {
        use crate::driver::ResiliencePolicy;
        use crate::fault::{FaultPlan, FaultRates};
        let targets = small_workload();
        let golden: Vec<_> = targets
            .iter()
            .map(|t| IndelRealigner::new().realign(t))
            .collect();
        for sched in [Scheduling::Synchronous, Scheduling::Asynchronous] {
            let system = AcceleratedSystem::new(FpgaParams::iracc(), sched).unwrap();
            let mut plan = FaultPlan::seeded(11, FaultRates::default_rates());
            let run = system.run_resilient(&targets, &mut plan, &ResiliencePolicy::default());
            assert_eq!(run.results.len(), targets.len());
            for (got, want) in run.results.iter().zip(golden.iter()) {
                // verify_rate = 1.0: no silent corruption is possible.
                assert_eq!(got.outcomes, want.outcomes());
            }
            let report = run.resilience.expect("report attached");
            assert_eq!(report.faults, plan.counts());
        }
    }

    #[test]
    fn heavy_faults_quarantine_units_but_never_all() {
        use crate::driver::ResiliencePolicy;
        use crate::fault::{FaultPlan, FaultRates};
        let targets: Vec<_> = (0..48).map(|s| target_with(4, 48, 160, s + 1)).collect();
        let system = AcceleratedSystem::new(
            FpgaParams {
                num_units: 4,
                ..FpgaParams::iracc()
            },
            Scheduling::Asynchronous,
        )
        .unwrap();
        let mut plan = FaultPlan::seeded(
            5,
            FaultRates {
                unit_hang: 0.9,
                ..FaultRates::none()
            },
        );
        let policy = ResiliencePolicy {
            quarantine_threshold: 2,
            ..ResiliencePolicy::default()
        };
        let run = system.run_resilient(&targets, &mut plan, &policy);
        let report = run.resilience.expect("report attached");
        assert!(!report.quarantined_units.is_empty(), "{report:?}");
        assert!(report.quarantined_units.len() < 4, "one unit must survive");
        assert!(report.lost_cycles > 0);
        // Every target still completed (hardware retry or fallback).
        assert_eq!(run.results.len(), targets.len());
        let golden: Vec<_> = targets
            .iter()
            .map(|t| IndelRealigner::new().realign(t))
            .collect();
        for (got, want) in run.results.iter().zip(golden.iter()) {
            assert_eq!(got.outcomes, want.outcomes());
        }
    }

    #[test]
    fn faulty_run_is_not_faster_than_fault_free() {
        use crate::driver::ResiliencePolicy;
        use crate::fault::{FaultPlan, FaultRates};
        let targets = small_workload();
        let system = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Asynchronous).unwrap();
        let clean = system.run(&targets).wall_time_s;
        let mut plan = FaultPlan::seeded(2, FaultRates::uniform(0.05));
        let faulty = system
            .run_resilient(&targets, &mut plan, &ResiliencePolicy::default())
            .wall_time_s;
        assert!(
            faulty >= clean,
            "recovery must cost wall time: {faulty} < {clean}"
        );
    }

    #[test]
    fn per_shape_geometry_changes_admission_not_timing() {
        let targets = small_workload();
        let base = AcceleratedSystem::new(FpgaParams::iracc(), Scheduling::Asynchronous).unwrap();
        assert_eq!(base.geometry(), &BufferGeometry::HARDWARE);
        assert!(targets.iter().all(|t| base.admits(&t.shape())));

        let tight = BufferGeometry {
            max_consensuses: 4,
            max_reads: 8,
            consensus_slot_bytes: 512,
            read_slot_bytes: 64,
        };
        let shaped = base.clone().with_geometry(tight);
        // Admission follows the geometry: the wider workload targets no
        // longer fit the tight unit buffers...
        assert!(targets.iter().any(|t| !shaped.admits(&t.shape())));
        // ...and the floorplan report re-prices the unit at its new BRAM
        // cost...
        assert!(shaped.resources().bram_blocks < base.resources().bram_blocks);
        // ...but the cycle model is geometry-agnostic: identical runs.
        let a = base.run(&targets);
        let b = shaped.run(&targets);
        assert_eq!(a.wall_time_s, b.wall_time_s);
        assert_eq!(a.compute_cycles, b.compute_cycles);
    }

    #[test]
    fn comparisons_per_second_below_peak() {
        let targets = small_workload();
        let params = FpgaParams::serial();
        let run = AcceleratedSystem::new(params, Scheduling::Asynchronous)
            .unwrap()
            .run(&targets);
        assert!(run.comparisons_per_second() <= params.peak_comparisons_per_second() as f64);
    }
}
