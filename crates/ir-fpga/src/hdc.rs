//! The Hamming Distance Calculator (HDC) stage — cycle model.
//!
//! The HDC is the first of the IR unit's two stages (paper Figure 5). The
//! base design compares **one base per cycle** and accumulates the quality
//! score on a mismatch. The optimized design (Figure 8) reads a 32-byte
//! block from block RAM each cycle and performs **32 compares and 32
//! accumulates per cycle**; two consecutive consensus blocks are kept in
//! registers so the shifted window never needs a second read port.
//!
//! Both designs implement computation pruning: a register tracks the
//! running minimum WHD for the current (consensus, read) pair, and the
//! scan of an offset stops as soon as its running sum exceeds that minimum
//! (paper §III-A). Pruning granularity is one *cycle*: the serial design
//! can stop after any base, the data-parallel design only after each
//! 32-byte block — one of the accuracy-preserving costs of data
//! parallelism this model captures.

use ir_core::whd_packed::{lane_mask, mismatch_mask};
use ir_core::MinWhd;
use ir_genome::{PackedSequence, Qual, Sequence, BASES_PER_WORD};

/// Configuration of the HDC stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HdcConfig {
    /// Comparisons per cycle: 1 (base design) or 32 (Figure 8).
    pub lanes: usize,
    /// Computation pruning enabled.
    pub pruning: bool,
    /// Fixed cycles of setup per (consensus, read) pair (pointer loads and
    /// min-register reset).
    pub pair_overhead_cycles: u64,
    /// Blocks that are already in flight when the prune comparator's
    /// verdict arrives. The serial design closes compare → accumulate →
    /// prune-check in one cycle (latency 0); the 32-lane design's 32-input
    /// adder tree plus minimum comparison takes ~2 extra cycles, so two
    /// more blocks issue before an offset's scan can stop.
    pub prune_latency_blocks: u64,
}

impl HdcConfig {
    /// The base serial design with pruning.
    pub fn serial() -> Self {
        HdcConfig {
            lanes: 1,
            pruning: true,
            pair_overhead_cycles: 2,
            prune_latency_blocks: 0,
        }
    }

    /// The Figure 8 data-parallel design with pruning.
    pub fn data_parallel() -> Self {
        HdcConfig {
            lanes: 32,
            prune_latency_blocks: 2,
            ..HdcConfig::serial()
        }
    }
}

impl Default for HdcConfig {
    fn default() -> Self {
        HdcConfig::data_parallel()
    }
}

/// Result of scanning one (consensus, read) pair through the HDC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PairRun {
    /// The minimum weighted Hamming distance and its offset — identical to
    /// the golden model's result.
    pub min: MinWhd,
    /// Cycles the scan occupied the HDC pipeline.
    pub cycles: u64,
    /// Base comparisons executed (each lane-slot holding a valid base).
    pub comparisons: u64,
    /// Offsets whose scan was abandoned by pruning.
    pub offsets_pruned: u64,
}

/// Scans `read` along `consensus` and returns the minimum WHD together
/// with the cycle cost of the scan.
///
/// Functionally this is exactly Algorithm 1 for a single (consensus, read)
/// pair; the block structure only affects *when* pruning can stop a scan,
/// never the result.
///
/// # Panics
///
/// Panics if the read is longer than the consensus, if `quals` is shorter
/// than the read, or if `lanes` is zero.
pub fn run_pair(consensus: &Sequence, read: &Sequence, quals: &Qual, cfg: HdcConfig) -> PairRun {
    assert!(cfg.lanes > 0, "HDC must have at least one lane");
    let cons = consensus.bases();
    let bases = read.bases();
    let scores = quals.scores();
    assert!(bases.len() <= cons.len(), "read longer than consensus");
    assert!(scores.len() >= bases.len(), "missing quality scores");

    let n = bases.len();
    let max_k = cons.len() - n;
    let mut min = MinWhd {
        whd: u64::MAX,
        offset: 0,
    };
    let mut cycles = cfg.pair_overhead_cycles;
    let mut comparisons = 0u64;
    let mut offsets_pruned = 0u64;

    for k in 0..=max_k {
        let mut whd = 0u64;
        let mut pruned = false;
        let mut block_start = 0usize;
        // Blocks still in flight once the prune verdict lands.
        let mut drain: Option<u64> = None;
        while block_start < n {
            let block_end = (block_start + cfg.lanes).min(n);
            cycles += 1;
            comparisons += (block_end - block_start) as u64;
            for idx in block_start..block_end {
                if cons[k + idx] != bases[idx] {
                    whd += u64::from(scores[idx]);
                }
            }
            if let Some(remaining) = drain.as_mut() {
                *remaining -= 1;
                if *remaining == 0 {
                    break;
                }
            } else if cfg.pruning && whd > min.whd {
                // The prune comparator evaluates after the block's
                // accumulate settles; with a pipelined adder tree the stop
                // takes effect `prune_latency_blocks` blocks later.
                pruned = true;
                if cfg.prune_latency_blocks == 0 {
                    break;
                }
                drain = Some(cfg.prune_latency_blocks);
            }
            block_start = block_end;
        }
        if pruned {
            offsets_pruned += 1;
        } else if whd < min.whd {
            min = MinWhd { whd, offset: k };
        }
    }
    debug_assert_ne!(min.whd, u64::MAX, "offset 0 always completes");
    PairRun {
        min,
        cycles,
        comparisons,
        offsets_pruned,
    }
}

/// Equivalence-preserving fast path for [`run_pair`]: same [`PairRun`],
/// computed without stepping every modeled cycle.
///
/// Packs both sequences (4 bits/base) and delegates to
/// [`run_pair_fast_packed`]; callers scanning one pair repeatedly (the
/// unit simulator, the oracle) should pack once and call the packed entry
/// point directly.
///
/// # Panics
///
/// As [`run_pair`].
pub fn run_pair_fast(
    consensus: &Sequence,
    read: &Sequence,
    quals: &Qual,
    cfg: HdcConfig,
) -> PairRun {
    run_pair_fast_packed(
        &PackedSequence::from(consensus),
        &PackedSequence::from(read),
        quals,
        cfg,
    )
}

/// The mismatch bitmask for up to 16 bases of `read` starting at `pos`
/// against the `consensus` window at `k + pos`, restricted to `len` lanes.
/// Unlike the `ir-core` kernel, `pos` need not be word-aligned — the
/// block-granular scan walks arbitrary lane boundaries.
#[inline]
fn window_mismatches(
    cons: &PackedSequence,
    read: &PackedSequence,
    k: usize,
    pos: usize,
    len: usize,
) -> u64 {
    mismatch_mask(read.window(pos) ^ cons.window(k + pos)) & lane_mask(len)
}

/// Sum of 8 quality-score bytes (`scores_le`, little-endian) selected by
/// the low 8 nibble-flags of `mask` — branchless SWAR: spread the flags
/// to a byte mask, AND, then horizontal-sum the bytes. Flag `i` is bit
/// `4 * i`; byte sums stay ≤ 8 × 255, so the u16-lane fold cannot carry.
#[inline]
fn gather8(mask: u64, scores_le: u64) -> u32 {
    // Double the spacing of the 8 flags twice: nibble stride → byte
    // stride, leaving flag i as bit 0 of byte i.
    let mut y = mask & 0x1111_1111;
    y = (y | (y << 16)) & 0x0000_FFFF_0000_FFFF;
    y = (y | (y << 8)) & 0x00FF_00FF_00FF_00FF;
    y = (y | (y << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    // Per-byte 1 → 0xFF (0 stays 0): x * 255 as a shift-subtract, which
    // cannot interfere across bytes because each byte is 0 or 1.
    let mask_bytes = (y << 8).wrapping_sub(y);
    let x = scores_le & mask_bytes;
    // Bytes → u16 lanes (each ≤ 510), then one multiply folds the four
    // lanes into the top 16 bits (≤ 2040, no overflow).
    let t = (x & 0x00FF_00FF_00FF_00FF) + ((x >> 8) & 0x00FF_00FF_00FF_00FF);
    (t.wrapping_mul(0x0001_0001_0001_0001) >> 48) as u32
}

/// Sum of the quality scores selected by `mask` (one bit per 4-bit lane,
/// lane `i` at bit `4 * i`). Full 8-byte groups go through the branchless
/// [`gather8`]; a short tail falls back to walking its set bits. Scores
/// are ≤ 255 and a chunk holds ≤ 16 lanes, so `u32` cannot overflow.
#[inline]
fn masked_chunk_sum(mask: u64, scores: &[u8]) -> u32 {
    let mut sum = 0u32;
    let mut m = mask;
    let mut chunks = scores.chunks_exact(8);
    for group in &mut chunks {
        sum += gather8(
            m,
            u64::from_le_bytes(group.try_into().expect("8-byte group")),
        );
        m >>= 32;
    }
    let tail = chunks.remainder();
    while m != 0 {
        let lane = (m.trailing_zeros() / 4) as usize;
        sum += u32::from(tail[lane]);
        m &= m - 1;
    }
    sum
}

/// [`run_pair_fast`] over pre-packed sequences — the kernel behind the
/// event-driven backend. Where the engine jumps the clock to a unit's
/// completion event, this jumps the *cycle accounting* to the scan's
/// outcome, comparing 16 bases per word-op (SWAR over the 4-bit packing).
/// Four shapes cover every configuration:
///
/// - **Serial with immediate pruning** (`lanes == 1`,
///   `prune_latency_blocks == 0`): each 16-base chunk reduces to a
///   mismatch bitmask in a handful of word-ops, and its score sum folds
///   branchlessly (a fixed-trip masked multiply-accumulate the compiler
///   vectorizes). Only the chunk that crosses the running minimum is
///   replayed bit-by-bit to charge the exact visited count the per-base
///   scan would.
/// - **Drain swallows the whole read**
///   (`nblocks ≤ prune_latency_blocks + 1`): even if block 0 trips the
///   comparator, every block issues before the stop lands, so the scan
///   is an unconditional full fold — no early exit at all. Dense folds
///   with no data-dependent exits vectorize best over bytes, so this
///   shape unpacks both sides once and runs the same fixed-trip byte
///   multiply-accumulate the byte-per-base scan uses, amortizing the
///   unpack across all offsets.
/// - **No comparator** (`pruning == false`, the HLS-style configs):
///   the scan never stops early at any offset, so the cycle and
///   comparison charges are closed-form (`(max_k + 1) · nblocks` and
///   `(max_k + 1) · n`) and the whole pair reduces to the same dense
///   unconditional byte fold as the drain-swallowed shape.
/// - **Everything else**: [`run_pair`]'s block loop verbatim — same
///   per-block cycle charge, same prune-verdict drain — with the inner
///   per-base compare loop replaced by the SWAR mismatch reduction. The
///   control flow being identical, so are the cycle, comparison and
///   pruned-offset counts.
///
/// The equality `run_pair_fast(..) == run_pair(..)` therefore holds
/// unconditionally (asserted exhaustively by the differential proptest
/// below).
///
/// # Panics
///
/// As [`run_pair`].
pub fn run_pair_fast_packed(
    cons: &PackedSequence,
    read: &PackedSequence,
    quals: &Qual,
    cfg: HdcConfig,
) -> PairRun {
    assert!(cfg.lanes > 0, "HDC must have at least one lane");
    let scores = quals.scores();
    assert!(read.len() <= cons.len(), "read longer than consensus");
    assert!(scores.len() >= read.len(), "missing quality scores");

    let n = read.len();
    let max_k = cons.len() - n;
    let mut min = MinWhd {
        whd: u64::MAX,
        offset: 0,
    };
    let mut cycles = cfg.pair_overhead_cycles;
    let mut comparisons = 0u64;
    let mut offsets_pruned = 0u64;

    let nblocks = n.div_ceil(cfg.lanes) as u64;
    if cfg.pruning && cfg.lanes == 1 && cfg.prune_latency_blocks == 0 {
        for k in 0..=max_k {
            let mut whd = 0u64;
            let mut visited = 0usize;
            let mut stopped = false;
            'scan: while visited < n {
                let chunk_len = (n - visited).min(BASES_PER_WORD);
                let mask = window_mismatches(cons, read, k, visited, chunk_len);
                let chunk_sum = masked_chunk_sum(mask, &scores[visited..visited + chunk_len]);
                if whd + u64::from(chunk_sum) > min.whd {
                    // The prune point is inside this chunk: walk its
                    // mismatch bits in order to charge the exact visited
                    // count, exactly as the per-base scan would.
                    let mut m = mask;
                    while m != 0 {
                        let lane = (m.trailing_zeros() / 4) as usize;
                        whd += u64::from(scores[visited + lane]);
                        if whd > min.whd {
                            visited += lane + 1;
                            stopped = true;
                            break 'scan;
                        }
                        m &= m - 1;
                    }
                    unreachable!("a chunk whose sum crosses the minimum stops within it");
                }
                whd += u64::from(chunk_sum);
                visited += chunk_len;
            }
            comparisons += visited as u64;
            cycles += visited as u64;
            if stopped {
                offsets_pruned += 1;
            } else if whd < min.whd {
                min = MinWhd { whd, offset: k };
            }
        }
    } else if cfg.pruning && nblocks <= cfg.prune_latency_blocks + 1 {
        // Even if block 0 trips the comparator, `prune_latency_blocks`
        // more blocks issue before the stop lands — which is all of them,
        // so every offset folds the full read unconditionally. Dense
        // unconditional folds vectorize better over bytes than over
        // packed nibbles: unpack each side once (amortized over the
        // `(max_k + 1) * n` compares that follow) and let the compiler
        // turn the fixed-trip masked multiply-accumulate into SIMD.
        let rb = read.unpack_codes();
        let cb = cons.unpack_codes();
        for k in 0..=max_k {
            let win = &cb[k..k + n];
            let mut whd = 0u32;
            for i in 0..n {
                whd += u32::from(win[i] != rb[i]) * u32::from(scores[i]);
            }
            let whd = u64::from(whd);
            comparisons += n as u64;
            cycles += nblocks;
            if whd > min.whd {
                offsets_pruned += 1;
            } else if whd < min.whd {
                min = MinWhd { whd, offset: k };
            }
        }
    } else if !cfg.pruning {
        // With no prune comparator the block loop has no data-dependent
        // exit at any offset: every scan folds the full read, so the
        // counts are closed-form and only the min-WHD needs computing —
        // the same dense byte multiply-accumulate as the shape above,
        // minus the comparator bookkeeping.
        let rb = read.unpack_codes();
        let cb = cons.unpack_codes();
        for k in 0..=max_k {
            let win = &cb[k..k + n];
            let mut whd = 0u32;
            for i in 0..n {
                whd += u32::from(win[i] != rb[i]) * u32::from(scores[i]);
            }
            let whd = u64::from(whd);
            if whd < min.whd {
                min = MinWhd { whd, offset: k };
            }
        }
        comparisons = (max_k as u64 + 1) * n as u64;
        cycles += (max_k as u64 + 1) * nblocks;
    } else {
        // run_pair's block loop with the per-base compare replaced by the
        // SWAR reduction; covers data-parallel, unpruned and deep-drain
        // configurations alike.
        for k in 0..=max_k {
            let mut whd = 0u64;
            let mut pruned = false;
            let mut block_start = 0usize;
            let mut drain: Option<u64> = None;
            while block_start < n {
                let block_end = (block_start + cfg.lanes).min(n);
                cycles += 1;
                comparisons += (block_end - block_start) as u64;
                let mut pos = block_start;
                while pos < block_end {
                    let chunk_len = (block_end - pos).min(BASES_PER_WORD);
                    let mut mask = window_mismatches(cons, read, k, pos, chunk_len);
                    while mask != 0 {
                        whd += u64::from(scores[pos + (mask.trailing_zeros() / 4) as usize]);
                        mask &= mask - 1;
                    }
                    pos += chunk_len;
                }
                if let Some(remaining) = drain.as_mut() {
                    *remaining -= 1;
                    if *remaining == 0 {
                        break;
                    }
                } else if cfg.pruning && whd > min.whd {
                    pruned = true;
                    if cfg.prune_latency_blocks == 0 {
                        break;
                    }
                    drain = Some(cfg.prune_latency_blocks);
                }
                block_start = block_end;
            }
            if pruned {
                offsets_pruned += 1;
            } else if whd < min.whd {
                min = MinWhd { whd, offset: k };
            }
        }
    }
    debug_assert_ne!(min.whd, u64::MAX, "offset 0 always completes");
    PairRun {
        min,
        cycles,
        comparisons,
        offsets_pruned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_core::{calc_whd, OpCounts};
    use ir_genome::{Read, RealignmentTarget};

    fn fixture() -> (Sequence, Sequence, Qual) {
        (
            "CCTTAGA".parse().unwrap(),
            "TGAA".parse().unwrap(),
            Qual::from_raw_scores(&[10, 20, 45, 10]).unwrap(),
        )
    }

    #[test]
    fn serial_min_matches_golden_model() {
        let (cons, read, quals) = fixture();
        let run = run_pair(&cons, &read, &quals, HdcConfig::serial());
        assert_eq!(run.min, MinWhd { whd: 30, offset: 2 });
    }

    /// The SWAR gather agrees with a naive mask walk on every lane count
    /// and a spread of mask/score patterns, including max-quality bytes.
    #[test]
    fn masked_chunk_sum_matches_naive() {
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        assert_eq!(masked_chunk_sum(0, &[]), 0, "empty chunk");
        for len in 1..=16usize {
            for _ in 0..200 {
                let scores: Vec<u8> = (0..len).map(|_| (next() % 256) as u8).collect();
                let mask = next() & lane_mask(len);
                let naive: u32 = (0..len)
                    .filter(|&i| mask >> (4 * i) & 1 == 1)
                    .map(|i| u32::from(scores[i]))
                    .sum();
                assert_eq!(
                    masked_chunk_sum(mask, &scores),
                    naive,
                    "len {len}, mask {mask:#x}, scores {scores:?}"
                );
            }
            // All lanes set at max quality: the largest possible sums.
            let scores = vec![255u8; len];
            assert_eq!(masked_chunk_sum(lane_mask(len), &scores), 255 * len as u32);
        }
    }

    #[test]
    fn data_parallel_min_matches_serial() {
        let (cons, read, quals) = fixture();
        let serial = run_pair(&cons, &read, &quals, HdcConfig::serial());
        let parallel = run_pair(&cons, &read, &quals, HdcConfig::data_parallel());
        assert_eq!(serial.min, parallel.min);
        assert!(parallel.cycles < serial.cycles);
    }

    #[test]
    fn unpruned_serial_cycle_count_is_exact() {
        let (cons, read, quals) = fixture();
        let cfg = HdcConfig {
            lanes: 1,
            pruning: false,
            pair_overhead_cycles: 0,
            ..HdcConfig::serial()
        };
        let run = run_pair(&cons, &read, &quals, cfg);
        // 4 offsets × 4 bases = 16 compare cycles.
        assert_eq!(run.cycles, 16);
        assert_eq!(run.comparisons, 16);
        assert_eq!(run.offsets_pruned, 0);
    }

    #[test]
    fn unpruned_parallel_cycle_count_is_block_count() {
        let cons: Sequence = "A".repeat(100).parse().unwrap();
        let read: Sequence = "A".repeat(64).parse().unwrap();
        let quals = Qual::uniform(30, 64).unwrap();
        let cfg = HdcConfig {
            lanes: 32,
            pruning: false,
            pair_overhead_cycles: 0,
            ..HdcConfig::serial()
        };
        let run = run_pair(&cons, &read, &quals, cfg);
        // 37 offsets × ceil(64/32) = 74 cycles.
        assert_eq!(run.cycles, 74);
        assert_eq!(run.comparisons, 37 * 64);
    }

    #[test]
    fn pruning_reduces_cycles_but_not_result() {
        let (cons, read, quals) = fixture();
        let pruned = run_pair(&cons, &read, &quals, HdcConfig::serial());
        let naive = run_pair(
            &cons,
            &read,
            &quals,
            HdcConfig {
                pruning: false,
                ..HdcConfig::serial()
            },
        );
        assert_eq!(pruned.min, naive.min);
        assert!(pruned.cycles < naive.cycles);
        assert!(pruned.offsets_pruned > 0);
    }

    #[test]
    fn serial_comparisons_match_golden_pruned_counts() {
        // The serial HDC's executed-comparison count must equal the golden
        // model's pruned base_comparisons for the same pair.
        let target = RealignmentTarget::builder(0)
            .reference("CCTTAGACCTGATTACAGGA".parse().unwrap())
            .read(
                Read::new(
                    "r",
                    "TGAA".parse().unwrap(),
                    Qual::from_raw_scores(&[10, 20, 45, 10]).unwrap(),
                    0,
                )
                .unwrap(),
            )
            .build()
            .unwrap();
        let mut ops = OpCounts::default();
        let _ = ir_core::MinWhdGrid::compute(&target, true, &mut ops);
        let run = run_pair(
            target.reference(),
            target.read(0).bases(),
            target.read(0).quals(),
            HdcConfig::serial(),
        );
        assert_eq!(run.comparisons, ops.base_comparisons);
    }

    #[test]
    fn parallel_result_matches_full_whd_scan() {
        // Cross-check every offset against the kernel directly on a
        // mismatch-rich pair.
        let cons: Sequence = "ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT".parse().unwrap();
        let read: Sequence = "TTTTACGTACGTACGTACGTACGTACGTACGTACGT".parse().unwrap();
        let quals = Qual::uniform(17, read.len()).unwrap();
        let run = run_pair(&cons, &read, &quals, HdcConfig::data_parallel());
        let expected = (0..=(cons.len() - read.len()))
            .map(|k| calc_whd(&cons, &read, &quals, k))
            .min()
            .unwrap();
        assert_eq!(run.min.whd, expected);
    }

    #[test]
    fn pair_overhead_is_charged_once() {
        let (cons, read, quals) = fixture();
        let base = run_pair(
            &cons,
            &read,
            &quals,
            HdcConfig {
                pair_overhead_cycles: 0,
                ..HdcConfig::serial()
            },
        );
        let with_overhead = run_pair(
            &cons,
            &read,
            &quals,
            HdcConfig {
                pair_overhead_cycles: 7,
                ..HdcConfig::serial()
            },
        );
        assert_eq!(with_overhead.cycles, base.cycles + 7);
    }

    #[test]
    fn fast_path_matches_reference_on_fixture() {
        let (cons, read, quals) = fixture();
        for cfg in [HdcConfig::serial(), HdcConfig::data_parallel()] {
            assert_eq!(
                run_pair_fast(&cons, &read, &quals, cfg),
                run_pair(&cons, &read, &quals, cfg),
                "cfg {cfg:?}"
            );
        }
    }

    #[test]
    fn fast_path_matches_on_block_granular_shapes() {
        // lanes=32 with a long read (nblocks > drain+1), a no-pruning
        // config and a non-word-aligned lane count all take the
        // block-granular SWAR path; results must still match.
        let cons: Sequence = "ACGT".repeat(80).parse().unwrap();
        let read: Sequence = "TTGCA".repeat(30).parse().unwrap();
        let quals = Qual::uniform(22, read.len()).unwrap();
        for cfg in [
            HdcConfig::data_parallel(),
            HdcConfig {
                pruning: false,
                ..HdcConfig::serial()
            },
            HdcConfig {
                lanes: 4,
                prune_latency_blocks: 1,
                ..HdcConfig::serial()
            },
        ] {
            assert_eq!(
                run_pair_fast(&cons, &read, &quals, cfg),
                run_pair(&cons, &read, &quals, cfg),
                "cfg {cfg:?}"
            );
        }
    }

    mod fast_path_differential {
        use super::*;
        use proptest::prelude::*;

        fn base_strategy() -> impl Strategy<Value = u8> {
            prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T'), Just(b'N')]
        }

        fn pair_strategy() -> impl Strategy<Value = (Sequence, Sequence, Qual)> {
            (4usize..=96, 0usize..=64).prop_flat_map(|(read_len, slack)| {
                let cons_len = read_len + slack;
                (
                    prop::collection::vec(base_strategy(), cons_len),
                    prop::collection::vec(base_strategy(), read_len),
                    prop::collection::vec(0u8..=60, read_len),
                )
                    .prop_map(|(cons, read, quals)| {
                        let cons: Sequence = String::from_utf8(cons).unwrap().parse().unwrap();
                        let read: Sequence = String::from_utf8(read).unwrap().parse().unwrap();
                        let quals = Qual::from_raw_scores(&quals).unwrap();
                        (cons, read, quals)
                    })
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases_env(64))]
            #[test]
            fn fast_equals_reference_everywhere(
                (cons, read, quals) in pair_strategy(),
                lanes in prop_oneof![Just(1usize), Just(4), Just(32)],
                pruning in any::<bool>(),
                latency in 0u64..=2,
            ) {
                let cfg = HdcConfig {
                    lanes,
                    pruning,
                    pair_overhead_cycles: 2,
                    prune_latency_blocks: latency,
                };
                prop_assert_eq!(
                    run_pair_fast(&cons, &read, &quals, cfg),
                    run_pair(&cons, &read, &quals, cfg)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_panics() {
        let (cons, read, quals) = fixture();
        let _ = run_pair(
            &cons,
            &read,
            &quals,
            HdcConfig {
                lanes: 0,
                pruning: true,
                pair_overhead_cycles: 0,
                ..HdcConfig::serial()
            },
        );
    }
}
