//! The Hamming Distance Calculator (HDC) stage — cycle model.
//!
//! The HDC is the first of the IR unit's two stages (paper Figure 5). The
//! base design compares **one base per cycle** and accumulates the quality
//! score on a mismatch. The optimized design (Figure 8) reads a 32-byte
//! block from block RAM each cycle and performs **32 compares and 32
//! accumulates per cycle**; two consecutive consensus blocks are kept in
//! registers so the shifted window never needs a second read port.
//!
//! Both designs implement computation pruning: a register tracks the
//! running minimum WHD for the current (consensus, read) pair, and the
//! scan of an offset stops as soon as its running sum exceeds that minimum
//! (paper §III-A). Pruning granularity is one *cycle*: the serial design
//! can stop after any base, the data-parallel design only after each
//! 32-byte block — one of the accuracy-preserving costs of data
//! parallelism this model captures.
//!
//! [`run_pair`] steps the model cycle by cycle and is the reference. The
//! fast path ([`run_pair_fast_packed`], [`run_read_sweep`]) jumps the
//! cycle accounting to each scan's outcome and evaluates the folds on the
//! runtime-dispatched explicit-SIMD kernels ([`ir_core::kernel`]) over
//! the structure-of-arrays batch layout ([`ir_core::batch`]) — same
//! [`PairRun`], bit for bit, for every [`KernelKind`].

use ir_core::batch::{CandidateBlock, SweepRead};
use ir_core::kernel::{self, KernelKind};
use ir_core::MinWhd;
use ir_genome::{PackedSequence, Qual, Sequence};

/// Configuration of the HDC stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HdcConfig {
    /// Comparisons per cycle: 1 (base design) or 32 (Figure 8).
    pub lanes: usize,
    /// Computation pruning enabled.
    pub pruning: bool,
    /// Fixed cycles of setup per (consensus, read) pair (pointer loads and
    /// min-register reset).
    pub pair_overhead_cycles: u64,
    /// Blocks that are already in flight when the prune comparator's
    /// verdict arrives. The serial design closes compare → accumulate →
    /// prune-check in one cycle (latency 0); the 32-lane design's 32-input
    /// adder tree plus minimum comparison takes ~2 extra cycles, so two
    /// more blocks issue before an offset's scan can stop.
    pub prune_latency_blocks: u64,
}

impl HdcConfig {
    /// The base serial design with pruning.
    pub fn serial() -> Self {
        HdcConfig {
            lanes: 1,
            pruning: true,
            pair_overhead_cycles: 2,
            prune_latency_blocks: 0,
        }
    }

    /// The Figure 8 data-parallel design with pruning.
    pub fn data_parallel() -> Self {
        HdcConfig {
            lanes: 32,
            prune_latency_blocks: 2,
            ..HdcConfig::serial()
        }
    }
}

impl Default for HdcConfig {
    fn default() -> Self {
        HdcConfig::data_parallel()
    }
}

/// Result of scanning one (consensus, read) pair through the HDC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PairRun {
    /// The minimum weighted Hamming distance and its offset — identical to
    /// the golden model's result.
    pub min: MinWhd,
    /// Cycles the scan occupied the HDC pipeline.
    pub cycles: u64,
    /// Base comparisons executed (each lane-slot holding a valid base).
    pub comparisons: u64,
    /// Offsets whose scan was abandoned by pruning.
    pub offsets_pruned: u64,
}

/// Scans `read` along `consensus` and returns the minimum WHD together
/// with the cycle cost of the scan.
///
/// Functionally this is exactly Algorithm 1 for a single (consensus, read)
/// pair; the block structure only affects *when* pruning can stop a scan,
/// never the result.
///
/// # Panics
///
/// Panics if the read is longer than the consensus, if `quals` is shorter
/// than the read, or if `lanes` is zero.
pub fn run_pair(consensus: &Sequence, read: &Sequence, quals: &Qual, cfg: HdcConfig) -> PairRun {
    assert!(cfg.lanes > 0, "HDC must have at least one lane");
    let cons = consensus.bases();
    let bases = read.bases();
    let scores = quals.scores();
    assert!(bases.len() <= cons.len(), "read longer than consensus");
    assert!(scores.len() >= bases.len(), "missing quality scores");

    let n = bases.len();
    let max_k = cons.len() - n;
    let mut min = MinWhd {
        whd: u64::MAX,
        offset: 0,
    };
    let mut cycles = cfg.pair_overhead_cycles;
    let mut comparisons = 0u64;
    let mut offsets_pruned = 0u64;

    for k in 0..=max_k {
        let mut whd = 0u64;
        let mut pruned = false;
        let mut block_start = 0usize;
        // Blocks still in flight once the prune verdict lands.
        let mut drain: Option<u64> = None;
        while block_start < n {
            let block_end = (block_start + cfg.lanes).min(n);
            cycles += 1;
            comparisons += (block_end - block_start) as u64;
            for idx in block_start..block_end {
                if cons[k + idx] != bases[idx] {
                    whd += u64::from(scores[idx]);
                }
            }
            if let Some(remaining) = drain.as_mut() {
                *remaining -= 1;
                if *remaining == 0 {
                    break;
                }
            } else if cfg.pruning && whd > min.whd {
                // The prune comparator evaluates after the block's
                // accumulate settles; with a pipelined adder tree the stop
                // takes effect `prune_latency_blocks` blocks later.
                pruned = true;
                if cfg.prune_latency_blocks == 0 {
                    break;
                }
                drain = Some(cfg.prune_latency_blocks);
            }
            block_start = block_end;
        }
        if pruned {
            offsets_pruned += 1;
        } else if whd < min.whd {
            min = MinWhd { whd, offset: k };
        }
    }
    debug_assert_ne!(min.whd, u64::MAX, "offset 0 always completes");
    PairRun {
        min,
        cycles,
        comparisons,
        offsets_pruned,
    }
}

/// Equivalence-preserving fast path for [`run_pair`]: same [`PairRun`],
/// computed without stepping every modeled cycle.
///
/// Packs both sequences (4 bits/base) and delegates to
/// [`run_pair_fast_packed`]; callers scanning many pairs of one target
/// should build the batch layout once and use [`run_read_sweep`].
///
/// # Panics
///
/// As [`run_pair`].
pub fn run_pair_fast(
    consensus: &Sequence,
    read: &Sequence,
    quals: &Qual,
    cfg: HdcConfig,
) -> PairRun {
    run_pair_fast_packed(
        &PackedSequence::from(consensus),
        &PackedSequence::from(read),
        quals,
        cfg,
    )
}

/// [`run_pair_fast`] over pre-packed sequences, on the ambient
/// ([`ir_core::kernel::active`]) kernel. Prepares a one-candidate batch
/// per call; hot loops should prepare the batch once and use
/// [`run_read_sweep`] instead.
///
/// # Panics
///
/// As [`run_pair`].
pub fn run_pair_fast_packed(
    cons: &PackedSequence,
    read: &PackedSequence,
    quals: &Qual,
    cfg: HdcConfig,
) -> PairRun {
    run_pair_fast_packed_with(cons, read, quals, kernel::active(), cfg)
}

/// [`run_pair_fast_packed`] on an explicitly chosen kernel — what the
/// kernel-parity suites use to cross-check every [`KernelKind`] in one
/// process.
///
/// # Panics
///
/// As [`run_pair`], plus if `kind` cannot run on this CPU.
pub fn run_pair_fast_packed_with(
    cons: &PackedSequence,
    read: &PackedSequence,
    quals: &Qual,
    kind: KernelKind,
    cfg: HdcConfig,
) -> PairRun {
    assert!(cfg.lanes > 0, "HDC must have at least one lane");
    assert!(read.len() <= cons.len(), "read longer than consensus");
    assert!(quals.scores().len() >= read.len(), "missing quality scores");
    let block = CandidateBlock::from_packed_rows(std::slice::from_ref(cons));
    let sweep_read = SweepRead::from_packed(read, quals);
    run_pair_codes(block.row_padded(0), block.len(0), &sweep_read, kind, cfg)
}

/// Sweeps one prepared read against every candidate of the batch — the
/// engine behind [`crate::oracle::FunctionalOracle`]'s
/// [`crate::unit::simulate_target_fast`] path. Element `i` of the result
/// is exactly `run_pair(candidate_i, read, …)`.
///
/// # Panics
///
/// As [`run_pair`], plus if `kind` cannot run on this CPU.
pub fn run_read_sweep(
    block: &CandidateBlock,
    read: &SweepRead,
    kind: KernelKind,
    cfg: HdcConfig,
) -> Vec<PairRun> {
    (0..block.num_candidates())
        .map(|i| run_pair_codes(block.row_padded(i), block.len(i), read, kind, cfg))
        .collect()
}

/// The jump-to-outcome scan of one (candidate, read) pair over the batch
/// layout: `row` is the candidate's zero-padded code row, `cons_len` its
/// real length. Four shapes cover every configuration:
///
/// - **Serial with immediate pruning** (`lanes == 1`,
///   `prune_latency_blocks == 0`): each kernel-width chunk folds its
///   weighted mismatch sum in one dispatched SIMD pass; only the chunk
///   that crosses the running minimum is replayed base-by-base to charge
///   the exact visited count the per-base scan would. The charge is the
///   crossing base's position, which no chunking can move.
/// - **Drain swallows the whole read**
///   (`nblocks ≤ prune_latency_blocks + 1`): even if block 0 trips the
///   comparator, every block issues before the stop lands, so the scan
///   is an unconditional full fold — no early exit at all. The fold runs
///   whole vectors over the pre-padded lane arrays (padding lanes carry
///   score 0, so they add nothing), with no tail handling in the loop.
/// - **No comparator** (`pruning == false`, the HLS-style configs): the
///   scan never stops early at any offset, so the cycle and comparison
///   charges are closed-form (`(max_k + 1) · nblocks` and
///   `(max_k + 1) · n`) and the whole pair reduces to the same padded
///   dense fold.
/// - **Everything else**: [`run_pair`]'s block loop verbatim — same
///   per-block cycle charge, same prune-verdict drain — with the inner
///   per-base compare loop replaced by the dispatched fold. The control
///   flow being identical, so are the cycle, comparison and
///   pruned-offset counts.
///
/// The equality `run_pair_fast(..) == run_pair(..)` therefore holds
/// unconditionally for every kernel (asserted exhaustively by the
/// differential proptest below and the kernel-parity suite).
fn run_pair_codes(
    row: &[u8],
    cons_len: usize,
    read: &SweepRead,
    kind: KernelKind,
    cfg: HdcConfig,
) -> PairRun {
    assert!(cfg.lanes > 0, "HDC must have at least one lane");
    let n = read.len();
    assert!(n <= cons_len, "read longer than consensus");
    let rcodes = read.codes();
    let scores = read.scores();

    let max_k = cons_len - n;
    let mut min = MinWhd {
        whd: u64::MAX,
        offset: 0,
    };
    let mut cycles = cfg.pair_overhead_cycles;
    let mut comparisons = 0u64;
    let mut offsets_pruned = 0u64;

    let nblocks = n.div_ceil(cfg.lanes) as u64;
    if cfg.pruning && cfg.lanes == 1 && cfg.prune_latency_blocks == 0 {
        // The whole offset sweep runs inside the kernel crate so the
        // per-ISA mismatch compare inlines into the offset loop (one
        // vector compare per 64-base chunk, scores accumulated bit by
        // bit in ascending position with the per-base bound check —
        // exactly the reference scan's pruning semantics).
        let sweep = kernel::serial_sweep(kind, row, cons_len, rcodes, scores);
        min = MinWhd {
            whd: sweep.min_whd,
            offset: sweep.min_offset,
        };
        comparisons += sweep.visited;
        cycles += sweep.visited;
        offsets_pruned += sweep.offsets_pruned;
    } else if cfg.pruning && nblocks <= cfg.prune_latency_blocks + 1 {
        // Even if block 0 trips the comparator, `prune_latency_blocks`
        // more blocks issue before the stop lands — which is all of them,
        // so every offset folds the full read unconditionally. The
        // padded lane arrays let the fold run whole vectors with no
        // tail: lanes past the read end compare padding-vs-padding (or
        // candidate code vs padding) at score 0 and contribute nothing.
        let rp = read.codes_padded();
        let sp = read.scores_padded();
        let n_pad = read.padded_len();
        for k in 0..=max_k {
            let whd = kernel::fold_whd(kind, &row[k..k + n_pad], rp, sp);
            comparisons += n as u64;
            cycles += nblocks;
            if whd > min.whd {
                offsets_pruned += 1;
            } else if whd < min.whd {
                min = MinWhd { whd, offset: k };
            }
        }
    } else if !cfg.pruning {
        // With no prune comparator the block loop has no data-dependent
        // exit at any offset: every scan folds the full read, so the
        // counts are closed-form and only the min-WHD needs computing —
        // the same padded dense fold as the shape above, minus the
        // comparator bookkeeping.
        let rp = read.codes_padded();
        let sp = read.scores_padded();
        let n_pad = read.padded_len();
        for k in 0..=max_k {
            let whd = kernel::fold_whd(kind, &row[k..k + n_pad], rp, sp);
            if whd < min.whd {
                min = MinWhd { whd, offset: k };
            }
        }
        comparisons = (max_k as u64 + 1) * n as u64;
        cycles += (max_k as u64 + 1) * nblocks;
    } else {
        // run_pair's block loop with the per-base compare replaced by the
        // dispatched fold; covers data-parallel, deep-drain and odd lane
        // configurations alike.
        for k in 0..=max_k {
            let win = &row[k..k + n];
            let mut whd = 0u64;
            let mut pruned = false;
            let mut block_start = 0usize;
            let mut drain: Option<u64> = None;
            while block_start < n {
                let block_end = (block_start + cfg.lanes).min(n);
                cycles += 1;
                comparisons += (block_end - block_start) as u64;
                whd += kernel::fold_whd(
                    kind,
                    &win[block_start..block_end],
                    &rcodes[block_start..block_end],
                    &scores[block_start..block_end],
                );
                if let Some(remaining) = drain.as_mut() {
                    *remaining -= 1;
                    if *remaining == 0 {
                        break;
                    }
                } else if cfg.pruning && whd > min.whd {
                    pruned = true;
                    if cfg.prune_latency_blocks == 0 {
                        break;
                    }
                    drain = Some(cfg.prune_latency_blocks);
                }
                block_start = block_end;
            }
            if pruned {
                offsets_pruned += 1;
            } else if whd < min.whd {
                min = MinWhd { whd, offset: k };
            }
        }
    }
    debug_assert_ne!(min.whd, u64::MAX, "offset 0 always completes");
    PairRun {
        min,
        cycles,
        comparisons,
        offsets_pruned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_core::{calc_whd, OpCounts};
    use ir_genome::{Read, RealignmentTarget};

    fn fixture() -> (Sequence, Sequence, Qual) {
        (
            "CCTTAGA".parse().unwrap(),
            "TGAA".parse().unwrap(),
            Qual::from_raw_scores(&[10, 20, 45, 10]).unwrap(),
        )
    }

    #[test]
    fn serial_min_matches_golden_model() {
        let (cons, read, quals) = fixture();
        let run = run_pair(&cons, &read, &quals, HdcConfig::serial());
        assert_eq!(run.min, MinWhd { whd: 30, offset: 2 });
    }

    #[test]
    fn data_parallel_min_matches_serial() {
        let (cons, read, quals) = fixture();
        let serial = run_pair(&cons, &read, &quals, HdcConfig::serial());
        let parallel = run_pair(&cons, &read, &quals, HdcConfig::data_parallel());
        assert_eq!(serial.min, parallel.min);
        assert!(parallel.cycles < serial.cycles);
    }

    #[test]
    fn unpruned_serial_cycle_count_is_exact() {
        let (cons, read, quals) = fixture();
        let cfg = HdcConfig {
            lanes: 1,
            pruning: false,
            pair_overhead_cycles: 0,
            ..HdcConfig::serial()
        };
        let run = run_pair(&cons, &read, &quals, cfg);
        // 4 offsets × 4 bases = 16 compare cycles.
        assert_eq!(run.cycles, 16);
        assert_eq!(run.comparisons, 16);
        assert_eq!(run.offsets_pruned, 0);
    }

    #[test]
    fn unpruned_parallel_cycle_count_is_block_count() {
        let cons: Sequence = "A".repeat(100).parse().unwrap();
        let read: Sequence = "A".repeat(64).parse().unwrap();
        let quals = Qual::uniform(30, 64).unwrap();
        let cfg = HdcConfig {
            lanes: 32,
            pruning: false,
            pair_overhead_cycles: 0,
            ..HdcConfig::serial()
        };
        let run = run_pair(&cons, &read, &quals, cfg);
        // 37 offsets × ceil(64/32) = 74 cycles.
        assert_eq!(run.cycles, 74);
        assert_eq!(run.comparisons, 37 * 64);
    }

    #[test]
    fn pruning_reduces_cycles_but_not_result() {
        let (cons, read, quals) = fixture();
        let pruned = run_pair(&cons, &read, &quals, HdcConfig::serial());
        let naive = run_pair(
            &cons,
            &read,
            &quals,
            HdcConfig {
                pruning: false,
                ..HdcConfig::serial()
            },
        );
        assert_eq!(pruned.min, naive.min);
        assert!(pruned.cycles < naive.cycles);
        assert!(pruned.offsets_pruned > 0);
    }

    #[test]
    fn serial_comparisons_match_golden_pruned_counts() {
        // The serial HDC's executed-comparison count must equal the golden
        // model's pruned base_comparisons for the same pair.
        let target = RealignmentTarget::builder(0)
            .reference("CCTTAGACCTGATTACAGGA".parse().unwrap())
            .read(
                Read::new(
                    "r",
                    "TGAA".parse().unwrap(),
                    Qual::from_raw_scores(&[10, 20, 45, 10]).unwrap(),
                    0,
                )
                .unwrap(),
            )
            .build()
            .unwrap();
        let mut ops = OpCounts::default();
        let _ = ir_core::MinWhdGrid::compute(&target, true, &mut ops);
        let run = run_pair(
            target.reference(),
            target.read(0).bases(),
            target.read(0).quals(),
            HdcConfig::serial(),
        );
        assert_eq!(run.comparisons, ops.base_comparisons);
    }

    #[test]
    fn parallel_result_matches_full_whd_scan() {
        // Cross-check every offset against the kernel directly on a
        // mismatch-rich pair.
        let cons: Sequence = "ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT".parse().unwrap();
        let read: Sequence = "TTTTACGTACGTACGTACGTACGTACGTACGTACGT".parse().unwrap();
        let quals = Qual::uniform(17, read.len()).unwrap();
        let run = run_pair(&cons, &read, &quals, HdcConfig::data_parallel());
        let expected = (0..=(cons.len() - read.len()))
            .map(|k| calc_whd(&cons, &read, &quals, k))
            .min()
            .unwrap();
        assert_eq!(run.min.whd, expected);
    }

    #[test]
    fn pair_overhead_is_charged_once() {
        let (cons, read, quals) = fixture();
        let base = run_pair(
            &cons,
            &read,
            &quals,
            HdcConfig {
                pair_overhead_cycles: 0,
                ..HdcConfig::serial()
            },
        );
        let with_overhead = run_pair(
            &cons,
            &read,
            &quals,
            HdcConfig {
                pair_overhead_cycles: 7,
                ..HdcConfig::serial()
            },
        );
        assert_eq!(with_overhead.cycles, base.cycles + 7);
    }

    #[test]
    fn fast_path_matches_reference_on_fixture() {
        let (cons, read, quals) = fixture();
        for cfg in [HdcConfig::serial(), HdcConfig::data_parallel()] {
            assert_eq!(
                run_pair_fast(&cons, &read, &quals, cfg),
                run_pair(&cons, &read, &quals, cfg),
                "cfg {cfg:?}"
            );
        }
    }

    #[test]
    fn fast_path_matches_on_block_granular_shapes() {
        // lanes=32 with a long read (nblocks > drain+1), a no-pruning
        // config and a non-word-aligned lane count all take the
        // block-granular path; results must still match on every kernel.
        let cons: Sequence = "ACGT".repeat(80).parse().unwrap();
        let read: Sequence = "TTGCA".repeat(30).parse().unwrap();
        let quals = Qual::uniform(22, read.len()).unwrap();
        let (pc, pr) = (PackedSequence::from(&cons), PackedSequence::from(&read));
        for cfg in [
            HdcConfig::data_parallel(),
            HdcConfig {
                pruning: false,
                ..HdcConfig::serial()
            },
            HdcConfig {
                lanes: 4,
                prune_latency_blocks: 1,
                ..HdcConfig::serial()
            },
        ] {
            let want = run_pair(&cons, &read, &quals, cfg);
            for kind in KernelKind::available() {
                assert_eq!(
                    run_pair_fast_packed_with(&pc, &pr, &quals, kind, cfg),
                    want,
                    "cfg {cfg:?} kernel {kind}"
                );
            }
        }
    }

    #[test]
    fn read_sweep_matches_per_pair_runs() {
        let cands: Vec<Sequence> = [
            "CCTTAGA",
            "ACCTGAA",
            "TCTGCCTTCTGCCTAGGACCT", // ragged: longer row
        ]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
        let read: Sequence = "TGAA".parse().unwrap();
        let quals = Qual::from_raw_scores(&[10, 20, 45, 10]).unwrap();
        let base_rows: Vec<&[ir_genome::Base]> = cands.iter().map(|c| c.bases()).collect();
        let block = CandidateBlock::from_bases_rows(&base_rows);
        let sweep_read = SweepRead::new(read.bases(), &quals);
        for cfg in [HdcConfig::serial(), HdcConfig::data_parallel()] {
            let want: Vec<PairRun> = cands
                .iter()
                .map(|c| run_pair(c, &read, &quals, cfg))
                .collect();
            for kind in KernelKind::available() {
                assert_eq!(
                    run_read_sweep(&block, &sweep_read, kind, cfg),
                    want,
                    "cfg {cfg:?} kernel {kind}"
                );
            }
        }
    }

    #[test]
    fn zero_length_read_sweeps_cleanly() {
        let cons: Sequence = "ACGTACGT".parse().unwrap();
        let block = CandidateBlock::from_bases_rows(&[cons.bases()]);
        let empty = SweepRead::new(&[], &Qual::uniform(0, 0).unwrap());
        for cfg in [HdcConfig::serial(), HdcConfig::data_parallel()] {
            let want = run_pair(
                &cons,
                &"".parse().unwrap(),
                &Qual::uniform(0, 0).unwrap(),
                cfg,
            );
            for kind in KernelKind::available() {
                assert_eq!(
                    run_read_sweep(&block, &empty, kind, cfg),
                    vec![want],
                    "cfg {cfg:?} kernel {kind}"
                );
            }
        }
    }

    mod fast_path_differential {
        use super::*;
        use proptest::prelude::*;

        fn base_strategy() -> impl Strategy<Value = u8> {
            prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T'), Just(b'N')]
        }

        fn pair_strategy() -> impl Strategy<Value = (Sequence, Sequence, Qual)> {
            (4usize..=96, 0usize..=64).prop_flat_map(|(read_len, slack)| {
                let cons_len = read_len + slack;
                (
                    prop::collection::vec(base_strategy(), cons_len),
                    prop::collection::vec(base_strategy(), read_len),
                    prop::collection::vec(0u8..=60, read_len),
                )
                    .prop_map(|(cons, read, quals)| {
                        let cons: Sequence = String::from_utf8(cons).unwrap().parse().unwrap();
                        let read: Sequence = String::from_utf8(read).unwrap().parse().unwrap();
                        let quals = Qual::from_raw_scores(&quals).unwrap();
                        (cons, read, quals)
                    })
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases_env(64))]
            #[test]
            fn fast_equals_reference_everywhere(
                (cons, read, quals) in pair_strategy(),
                lanes in prop_oneof![Just(1usize), Just(4), Just(32)],
                pruning in any::<bool>(),
                latency in 0u64..=2,
            ) {
                let cfg = HdcConfig {
                    lanes,
                    pruning,
                    pair_overhead_cycles: 2,
                    prune_latency_blocks: latency,
                };
                let want = run_pair(&cons, &read, &quals, cfg);
                let (pc, pr) = (PackedSequence::from(&cons), PackedSequence::from(&read));
                for kind in KernelKind::available() {
                    prop_assert_eq!(
                        run_pair_fast_packed_with(&pc, &pr, &quals, kind, cfg),
                        want,
                        "kernel {}",
                        kind
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_panics() {
        let (cons, read, quals) = fixture();
        let _ = run_pair(
            &cons,
            &read,
            &quals,
            HdcConfig {
                lanes: 0,
                pruning: true,
                pair_overhead_cycles: 0,
                ..HdcConfig::serial()
            },
        );
    }
}
