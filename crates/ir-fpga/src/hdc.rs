//! The Hamming Distance Calculator (HDC) stage — cycle model.
//!
//! The HDC is the first of the IR unit's two stages (paper Figure 5). The
//! base design compares **one base per cycle** and accumulates the quality
//! score on a mismatch. The optimized design (Figure 8) reads a 32-byte
//! block from block RAM each cycle and performs **32 compares and 32
//! accumulates per cycle**; two consecutive consensus blocks are kept in
//! registers so the shifted window never needs a second read port.
//!
//! Both designs implement computation pruning: a register tracks the
//! running minimum WHD for the current (consensus, read) pair, and the
//! scan of an offset stops as soon as its running sum exceeds that minimum
//! (paper §III-A). Pruning granularity is one *cycle*: the serial design
//! can stop after any base, the data-parallel design only after each
//! 32-byte block — one of the accuracy-preserving costs of data
//! parallelism this model captures.

use ir_core::MinWhd;
use ir_genome::{Qual, Sequence};

/// Configuration of the HDC stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HdcConfig {
    /// Comparisons per cycle: 1 (base design) or 32 (Figure 8).
    pub lanes: usize,
    /// Computation pruning enabled.
    pub pruning: bool,
    /// Fixed cycles of setup per (consensus, read) pair (pointer loads and
    /// min-register reset).
    pub pair_overhead_cycles: u64,
    /// Blocks that are already in flight when the prune comparator's
    /// verdict arrives. The serial design closes compare → accumulate →
    /// prune-check in one cycle (latency 0); the 32-lane design's 32-input
    /// adder tree plus minimum comparison takes ~2 extra cycles, so two
    /// more blocks issue before an offset's scan can stop.
    pub prune_latency_blocks: u64,
}

impl HdcConfig {
    /// The base serial design with pruning.
    pub fn serial() -> Self {
        HdcConfig {
            lanes: 1,
            pruning: true,
            pair_overhead_cycles: 2,
            prune_latency_blocks: 0,
        }
    }

    /// The Figure 8 data-parallel design with pruning.
    pub fn data_parallel() -> Self {
        HdcConfig {
            lanes: 32,
            prune_latency_blocks: 2,
            ..HdcConfig::serial()
        }
    }
}

impl Default for HdcConfig {
    fn default() -> Self {
        HdcConfig::data_parallel()
    }
}

/// Result of scanning one (consensus, read) pair through the HDC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PairRun {
    /// The minimum weighted Hamming distance and its offset — identical to
    /// the golden model's result.
    pub min: MinWhd,
    /// Cycles the scan occupied the HDC pipeline.
    pub cycles: u64,
    /// Base comparisons executed (each lane-slot holding a valid base).
    pub comparisons: u64,
    /// Offsets whose scan was abandoned by pruning.
    pub offsets_pruned: u64,
}

/// Scans `read` along `consensus` and returns the minimum WHD together
/// with the cycle cost of the scan.
///
/// Functionally this is exactly Algorithm 1 for a single (consensus, read)
/// pair; the block structure only affects *when* pruning can stop a scan,
/// never the result.
///
/// # Panics
///
/// Panics if the read is longer than the consensus, if `quals` is shorter
/// than the read, or if `lanes` is zero.
pub fn run_pair(consensus: &Sequence, read: &Sequence, quals: &Qual, cfg: HdcConfig) -> PairRun {
    assert!(cfg.lanes > 0, "HDC must have at least one lane");
    let cons = consensus.bases();
    let bases = read.bases();
    let scores = quals.scores();
    assert!(bases.len() <= cons.len(), "read longer than consensus");
    assert!(scores.len() >= bases.len(), "missing quality scores");

    let n = bases.len();
    let max_k = cons.len() - n;
    let mut min = MinWhd {
        whd: u64::MAX,
        offset: 0,
    };
    let mut cycles = cfg.pair_overhead_cycles;
    let mut comparisons = 0u64;
    let mut offsets_pruned = 0u64;

    for k in 0..=max_k {
        let mut whd = 0u64;
        let mut pruned = false;
        let mut block_start = 0usize;
        // Blocks still in flight once the prune verdict lands.
        let mut drain: Option<u64> = None;
        while block_start < n {
            let block_end = (block_start + cfg.lanes).min(n);
            cycles += 1;
            comparisons += (block_end - block_start) as u64;
            for idx in block_start..block_end {
                if cons[k + idx] != bases[idx] {
                    whd += u64::from(scores[idx]);
                }
            }
            if let Some(remaining) = drain.as_mut() {
                *remaining -= 1;
                if *remaining == 0 {
                    break;
                }
            } else if cfg.pruning && whd > min.whd {
                // The prune comparator evaluates after the block's
                // accumulate settles; with a pipelined adder tree the stop
                // takes effect `prune_latency_blocks` blocks later.
                pruned = true;
                if cfg.prune_latency_blocks == 0 {
                    break;
                }
                drain = Some(cfg.prune_latency_blocks);
            }
            block_start = block_end;
        }
        if pruned {
            offsets_pruned += 1;
        } else if whd < min.whd {
            min = MinWhd { whd, offset: k };
        }
    }
    debug_assert_ne!(min.whd, u64::MAX, "offset 0 always completes");
    PairRun {
        min,
        cycles,
        comparisons,
        offsets_pruned,
    }
}

/// Equivalence-preserving fast path for [`run_pair`]: same [`PairRun`],
/// computed without stepping every modeled cycle.
///
/// This is the kernel behind the event-driven backend — where the engine
/// jumps the clock to a unit's completion event, this jumps the *cycle
/// accounting* to the scan's outcome. Two shapes are accelerated:
///
/// - **Serial with immediate pruning** (`lanes == 1`,
///   `prune_latency_blocks == 0`): the per-base running sum is monotone
///   nondecreasing, so the prune point is the first prefix exceeding the
///   running minimum. Chunked prefix sums find it without the per-base
///   branch: if a whole chunk cannot cross the minimum it is folded in one
///   addition, otherwise the chunk is replayed base-by-base to the exact
///   stop index.
/// - **Drain covers the whole scan** (`nblocks ≤ prune_latency_blocks +
///   1`): the prune verdict can never retire the scan before block
///   exhaustion, so every block issues regardless — the full-window WHD,
///   `n` comparisons and `nblocks` cycles, with the offset counted pruned
///   exactly when its total exceeds the running minimum. This covers the
///   32-lane design for reads up to `3 × lanes` bases.
///
/// Any other configuration falls back to [`run_pair`] itself, so the
/// equality `run_pair_fast(..) == run_pair(..)` holds unconditionally
/// (asserted exhaustively by the differential proptest below).
///
/// # Panics
///
/// As [`run_pair`].
pub fn run_pair_fast(
    consensus: &Sequence,
    read: &Sequence,
    quals: &Qual,
    cfg: HdcConfig,
) -> PairRun {
    assert!(cfg.lanes > 0, "HDC must have at least one lane");
    let cons = consensus.bases();
    let bases = read.bases();
    let scores = quals.scores();
    assert!(bases.len() <= cons.len(), "read longer than consensus");
    assert!(scores.len() >= bases.len(), "missing quality scores");

    let n = bases.len();
    let max_k = cons.len() - n;
    let mut min = MinWhd {
        whd: u64::MAX,
        offset: 0,
    };
    let mut cycles = cfg.pair_overhead_cycles;
    let mut comparisons = 0u64;
    let mut offsets_pruned = 0u64;
    let nblocks = n.div_ceil(cfg.lanes) as u64;

    if cfg.pruning && cfg.lanes == 1 && cfg.prune_latency_blocks == 0 {
        // Chunk size balances the prefix-sum fold against replay cost on
        // the chunk that crosses the minimum.
        const CHUNK: usize = 16;
        for k in 0..=max_k {
            let win = &cons[k..k + n];
            let mut whd = 0u64;
            let mut visited = 0usize;
            let mut stopped = false;
            'scan: while visited < n {
                let end = (visited + CHUNK).min(n);
                // Scores are ≤ 255 and CHUNK ≤ 16, so a u32 cannot overflow.
                let mut chunk_sum = 0u32;
                for ((&c, &b), &s) in win[visited..end]
                    .iter()
                    .zip(&bases[visited..end])
                    .zip(&scores[visited..end])
                {
                    chunk_sum += u32::from(c != b) * u32::from(s);
                }
                if whd + u64::from(chunk_sum) > min.whd {
                    // The prune point is inside this chunk: replay it
                    // base-by-base to charge the exact visited count.
                    for ((&c, &b), &s) in win[visited..end]
                        .iter()
                        .zip(&bases[visited..end])
                        .zip(&scores[visited..end])
                    {
                        visited += 1;
                        if c != b {
                            whd += u64::from(s);
                            if whd > min.whd {
                                stopped = true;
                                break 'scan;
                            }
                        }
                    }
                } else {
                    whd += u64::from(chunk_sum);
                    visited = end;
                }
            }
            comparisons += visited as u64;
            cycles += visited as u64;
            if stopped {
                offsets_pruned += 1;
            } else if whd < min.whd {
                min = MinWhd { whd, offset: k };
            }
        }
    } else if cfg.pruning && nblocks <= cfg.prune_latency_blocks + 1 {
        // Even if block 0 trips the comparator, `prune_latency_blocks`
        // more blocks issue before the stop lands — which is all of them.
        for k in 0..=max_k {
            let win = &cons[k..k + n];
            let mut whd = 0u32;
            for i in 0..n {
                whd += u32::from(win[i] != bases[i]) * u32::from(scores[i]);
            }
            let whd = u64::from(whd);
            comparisons += n as u64;
            cycles += nblocks;
            if whd > min.whd {
                offsets_pruned += 1;
            } else if whd < min.whd {
                min = MinWhd { whd, offset: k };
            }
        }
    } else {
        return run_pair(consensus, read, quals, cfg);
    }
    debug_assert_ne!(min.whd, u64::MAX, "offset 0 always completes");
    PairRun {
        min,
        cycles,
        comparisons,
        offsets_pruned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_core::{calc_whd, OpCounts};
    use ir_genome::{Read, RealignmentTarget};

    fn fixture() -> (Sequence, Sequence, Qual) {
        (
            "CCTTAGA".parse().unwrap(),
            "TGAA".parse().unwrap(),
            Qual::from_raw_scores(&[10, 20, 45, 10]).unwrap(),
        )
    }

    #[test]
    fn serial_min_matches_golden_model() {
        let (cons, read, quals) = fixture();
        let run = run_pair(&cons, &read, &quals, HdcConfig::serial());
        assert_eq!(run.min, MinWhd { whd: 30, offset: 2 });
    }

    #[test]
    fn data_parallel_min_matches_serial() {
        let (cons, read, quals) = fixture();
        let serial = run_pair(&cons, &read, &quals, HdcConfig::serial());
        let parallel = run_pair(&cons, &read, &quals, HdcConfig::data_parallel());
        assert_eq!(serial.min, parallel.min);
        assert!(parallel.cycles < serial.cycles);
    }

    #[test]
    fn unpruned_serial_cycle_count_is_exact() {
        let (cons, read, quals) = fixture();
        let cfg = HdcConfig {
            lanes: 1,
            pruning: false,
            pair_overhead_cycles: 0,
            ..HdcConfig::serial()
        };
        let run = run_pair(&cons, &read, &quals, cfg);
        // 4 offsets × 4 bases = 16 compare cycles.
        assert_eq!(run.cycles, 16);
        assert_eq!(run.comparisons, 16);
        assert_eq!(run.offsets_pruned, 0);
    }

    #[test]
    fn unpruned_parallel_cycle_count_is_block_count() {
        let cons: Sequence = "A".repeat(100).parse().unwrap();
        let read: Sequence = "A".repeat(64).parse().unwrap();
        let quals = Qual::uniform(30, 64).unwrap();
        let cfg = HdcConfig {
            lanes: 32,
            pruning: false,
            pair_overhead_cycles: 0,
            ..HdcConfig::serial()
        };
        let run = run_pair(&cons, &read, &quals, cfg);
        // 37 offsets × ceil(64/32) = 74 cycles.
        assert_eq!(run.cycles, 74);
        assert_eq!(run.comparisons, 37 * 64);
    }

    #[test]
    fn pruning_reduces_cycles_but_not_result() {
        let (cons, read, quals) = fixture();
        let pruned = run_pair(&cons, &read, &quals, HdcConfig::serial());
        let naive = run_pair(
            &cons,
            &read,
            &quals,
            HdcConfig {
                pruning: false,
                ..HdcConfig::serial()
            },
        );
        assert_eq!(pruned.min, naive.min);
        assert!(pruned.cycles < naive.cycles);
        assert!(pruned.offsets_pruned > 0);
    }

    #[test]
    fn serial_comparisons_match_golden_pruned_counts() {
        // The serial HDC's executed-comparison count must equal the golden
        // model's pruned base_comparisons for the same pair.
        let target = RealignmentTarget::builder(0)
            .reference("CCTTAGACCTGATTACAGGA".parse().unwrap())
            .read(
                Read::new(
                    "r",
                    "TGAA".parse().unwrap(),
                    Qual::from_raw_scores(&[10, 20, 45, 10]).unwrap(),
                    0,
                )
                .unwrap(),
            )
            .build()
            .unwrap();
        let mut ops = OpCounts::default();
        let _ = ir_core::MinWhdGrid::compute(&target, true, &mut ops);
        let run = run_pair(
            target.reference(),
            target.read(0).bases(),
            target.read(0).quals(),
            HdcConfig::serial(),
        );
        assert_eq!(run.comparisons, ops.base_comparisons);
    }

    #[test]
    fn parallel_result_matches_full_whd_scan() {
        // Cross-check every offset against the kernel directly on a
        // mismatch-rich pair.
        let cons: Sequence = "ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT".parse().unwrap();
        let read: Sequence = "TTTTACGTACGTACGTACGTACGTACGTACGTACGT".parse().unwrap();
        let quals = Qual::uniform(17, read.len()).unwrap();
        let run = run_pair(&cons, &read, &quals, HdcConfig::data_parallel());
        let expected = (0..=(cons.len() - read.len()))
            .map(|k| calc_whd(&cons, &read, &quals, k))
            .min()
            .unwrap();
        assert_eq!(run.min.whd, expected);
    }

    #[test]
    fn pair_overhead_is_charged_once() {
        let (cons, read, quals) = fixture();
        let base = run_pair(
            &cons,
            &read,
            &quals,
            HdcConfig {
                pair_overhead_cycles: 0,
                ..HdcConfig::serial()
            },
        );
        let with_overhead = run_pair(
            &cons,
            &read,
            &quals,
            HdcConfig {
                pair_overhead_cycles: 7,
                ..HdcConfig::serial()
            },
        );
        assert_eq!(with_overhead.cycles, base.cycles + 7);
    }

    #[test]
    fn fast_path_matches_reference_on_fixture() {
        let (cons, read, quals) = fixture();
        for cfg in [HdcConfig::serial(), HdcConfig::data_parallel()] {
            assert_eq!(
                run_pair_fast(&cons, &read, &quals, cfg),
                run_pair(&cons, &read, &quals, cfg),
                "cfg {cfg:?}"
            );
        }
    }

    #[test]
    fn fast_path_falls_back_outside_accelerated_shapes() {
        // lanes=32 with a long read (nblocks > drain+1) and a no-pruning
        // config both take the fallback; results must still match.
        let cons: Sequence = "ACGT".repeat(80).parse().unwrap();
        let read: Sequence = "TTGCA".repeat(30).parse().unwrap();
        let quals = Qual::uniform(22, read.len()).unwrap();
        for cfg in [
            HdcConfig::data_parallel(),
            HdcConfig {
                pruning: false,
                ..HdcConfig::serial()
            },
            HdcConfig {
                lanes: 4,
                prune_latency_blocks: 1,
                ..HdcConfig::serial()
            },
        ] {
            assert_eq!(
                run_pair_fast(&cons, &read, &quals, cfg),
                run_pair(&cons, &read, &quals, cfg),
                "cfg {cfg:?}"
            );
        }
    }

    mod fast_path_differential {
        use super::*;
        use proptest::prelude::*;

        fn base_strategy() -> impl Strategy<Value = u8> {
            prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T')]
        }

        fn pair_strategy() -> impl Strategy<Value = (Sequence, Sequence, Qual)> {
            (4usize..=96, 0usize..=64).prop_flat_map(|(read_len, slack)| {
                let cons_len = read_len + slack;
                (
                    prop::collection::vec(base_strategy(), cons_len),
                    prop::collection::vec(base_strategy(), read_len),
                    prop::collection::vec(0u8..=60, read_len),
                )
                    .prop_map(|(cons, read, quals)| {
                        let cons: Sequence = String::from_utf8(cons).unwrap().parse().unwrap();
                        let read: Sequence = String::from_utf8(read).unwrap().parse().unwrap();
                        let quals = Qual::from_raw_scores(&quals).unwrap();
                        (cons, read, quals)
                    })
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn fast_equals_reference_everywhere(
                (cons, read, quals) in pair_strategy(),
                lanes in prop_oneof![Just(1usize), Just(4), Just(32)],
                pruning in any::<bool>(),
                latency in 0u64..=2,
            ) {
                let cfg = HdcConfig {
                    lanes,
                    pruning,
                    pair_overhead_cycles: 2,
                    prune_latency_blocks: latency,
                };
                prop_assert_eq!(
                    run_pair_fast(&cons, &read, &quals, cfg),
                    run_pair(&cons, &read, &quals, cfg)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_panics() {
        let (cons, read, quals) = fixture();
        let _ = run_pair(
            &cons,
            &read,
            &quals,
            HdcConfig {
                lanes: 0,
                pruning: true,
                pair_overhead_cycles: 0,
                ..HdcConfig::serial()
            },
        );
    }
}
