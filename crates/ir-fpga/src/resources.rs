//! VU9P floorplan and timing model.
//!
//! Reproduces the paper's resource results: 32 IR units fit on the Xilinx
//! Virtex UltraScale+ VU9P with block-RAM utilization of 87.62% and CLB
//! logic utilization of 32.53% (§III-A, footnote 3), and the 250 MHz clock
//! recipe fails timing because > 95% of the critical path is routing delay
//! through the 32-unit AXI4 memory system (§IV "Frequency").

use serde::{Deserialize, Serialize};

use crate::bram;
use crate::params::{ClockRecipe, FpgaParams};
use crate::FpgaError;

/// Total BRAM36 primitives on the VU9P.
pub const VU9P_BRAM36: usize = 2160;
/// Total 6-input LUTs on the VU9P.
pub const VU9P_LUTS: usize = 1_182_240;
/// Total DSP slices on the VU9P (Table II quotes "6,800 DSPs").
pub const VU9P_DSPS: usize = 6840;

/// Fraction of BRAM the placer can realistically fill before routing
/// congestion makes the design un-closable — the reason the paper stops at
/// 32 units (~88–90% BRAM) rather than packing to 100%.
pub const ROUTABILITY_CEILING: f64 = 0.90;

/// BRAM36 blocks of the per-unit memory-channel arbiter queue ("ARB Q" in
/// Figure 6): a 256-bit wide FIFO.
pub const ARB_QUEUE_BLOCKS_PER_UNIT: usize = 4;

/// BRAM36 blocks of the shared infrastructure: AXI hub, AXI crossbar
/// buffering, PCIe DMA engine and the RoCC command router.
pub const SYSTEM_BRAM_BLOCKS: usize = 68;

/// LUTs per IR unit (the data-parallel comparator tree dominates).
pub const UNIT_LUTS_SERIAL: usize = 6_000;
/// LUTs per unit with the 32-lane Figure 8 calculator.
pub const UNIT_LUTS_DATA_PARALLEL: usize = 10_000;
/// LUTs of the shared infrastructure.
pub const SYSTEM_LUTS: usize = 64_600;

/// A resource-utilization report for a candidate configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceReport {
    /// Units in the configuration.
    pub units: usize,
    /// BRAM36 blocks used (units + arbiters + system).
    pub bram_blocks: usize,
    /// BRAM utilization fraction.
    pub bram_utilization: f64,
    /// LUTs used.
    pub luts: usize,
    /// CLB/LUT utilization fraction.
    pub lut_utilization: f64,
    /// Whether the design fits under the routability ceiling.
    pub fits: bool,
}

/// Computes the resource report for `units` IR units with `lanes` HDC
/// lanes, using the deployed hardware's 53-block unit buffers.
pub fn report(units: usize, lanes: usize) -> ResourceReport {
    report_with_unit_blocks(units, lanes, bram::unit_bram36_blocks())
}

/// [`report`] for a unit whose buffers consume `unit_blocks` BRAM36
/// primitives — the floorplan check behind the per-shape unit
/// configurations of [`crate::shape`]. The per-unit arbiter queue and the
/// shared system blocks are charged on top, exactly as for the hardware
/// geometry.
pub fn report_with_unit_blocks(units: usize, lanes: usize, unit_blocks: usize) -> ResourceReport {
    let per_unit = unit_blocks + ARB_QUEUE_BLOCKS_PER_UNIT;
    let bram_blocks = units * per_unit + SYSTEM_BRAM_BLOCKS;
    let unit_luts = if lanes > 1 {
        UNIT_LUTS_DATA_PARALLEL
    } else {
        UNIT_LUTS_SERIAL
    };
    let luts = units * unit_luts + SYSTEM_LUTS;
    let bram_utilization = bram_blocks as f64 / VU9P_BRAM36 as f64;
    let lut_utilization = luts as f64 / VU9P_LUTS as f64;
    ResourceReport {
        units,
        bram_blocks,
        bram_utilization,
        luts,
        lut_utilization,
        fits: bram_utilization <= ROUTABILITY_CEILING && lut_utilization <= ROUTABILITY_CEILING,
    }
}

/// Maximum units that fit under the routability ceiling.
pub fn max_units(lanes: usize) -> usize {
    max_units_with_unit_blocks(bram::unit_bram36_blocks(), lanes)
}

/// [`max_units`] for a unit whose buffers consume `unit_blocks` BRAM36
/// primitives. Returns 0 when even a single unit of that geometry blows
/// the routability ceiling — the signal [`crate::shape`] turns into a
/// [`FpgaError::ShapeUnsupported`] rejection.
pub fn max_units_with_unit_blocks(unit_blocks: usize, lanes: usize) -> usize {
    (1..=256)
        .take_while(|&u| report_with_unit_blocks(u, lanes, unit_blocks).fits)
        .last()
        .unwrap_or(0)
}

/// Critical-path estimate in nanoseconds for a design with `units` IR
/// units: a small fixed logic delay plus routing delay that grows with the
/// number of agents the AXI4 memory system must service.
///
/// At 32 units this puts > 90% of the path in routing, matching the
/// paper's timing report.
pub fn critical_path_ns(units: usize) -> f64 {
    let logic_ns = 0.4;
    let routing_ns = 0.22 * units as f64;
    logic_ns + routing_ns
}

/// Timing slack in nanoseconds for `clock` with `units` units
/// (negative = timing failure).
pub fn timing_slack_ns(clock: ClockRecipe, units: usize) -> f64 {
    clock.period_ns() - critical_path_ns(units)
}

/// Fraction of the critical path that is routing delay.
pub fn routing_fraction(units: usize) -> f64 {
    let total = critical_path_ns(units);
    (total - 0.4) / total
}

/// Validates that `params` both fits on the VU9P and closes timing.
///
/// # Errors
///
/// - [`FpgaError::DoesNotFit`] if the unit count exceeds the floorplan.
/// - [`FpgaError::TimingFailure`] if the clock recipe has negative slack,
///   reproducing the paper's rejected 250 MHz experiment.
pub fn validate(params: &FpgaParams) -> Result<ResourceReport, FpgaError> {
    if params.num_units == 0 {
        // A unitless system validates against no floorplan constraint but
        // can never schedule anything; reject it up front rather than
        // letting the dispatch loops panic.
        return Err(FpgaError::NotConfigured("any IR units (num_units is zero)"));
    }
    let rpt = report(params.num_units, params.lanes);
    if !rpt.fits {
        return Err(FpgaError::DoesNotFit {
            units: params.num_units,
            max_units: max_units(params.lanes),
        });
    }
    let slack = timing_slack_ns(params.clock, params.num_units);
    if slack < 0.0 {
        return Err(FpgaError::TimingFailure {
            clock_mhz: params.clock.mhz(),
            slack_ns: slack,
        });
    }
    Ok(rpt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_two_units_fit_at_paper_utilization() {
        let rpt = report(32, 32);
        assert!(rpt.fits);
        // Paper footnote 3: 87.62% BRAM at 32 units.
        assert!(
            (rpt.bram_utilization - 0.8762).abs() < 0.01,
            "BRAM utilization {:.4} should be ≈ 0.876",
            rpt.bram_utilization
        );
        // Paper footnote 3: 32.53% CLB logic.
        assert!(
            (rpt.lut_utilization - 0.3253).abs() < 0.01,
            "LUT utilization {:.4} should be ≈ 0.325",
            rpt.lut_utilization
        );
    }

    #[test]
    fn zero_units_is_rejected() {
        let params = crate::FpgaParams {
            num_units: 0,
            ..crate::FpgaParams::iracc()
        };
        assert!(matches!(
            validate(&params),
            Err(FpgaError::NotConfigured(_))
        ));
    }

    #[test]
    fn thirty_two_is_the_maximum() {
        assert_eq!(max_units(32), 32);
        assert!(!report(33, 32).fits);
    }

    #[test]
    fn deployed_clock_meets_timing() {
        assert!(timing_slack_ns(ClockRecipe::Mhz125, 32) > 0.0);
    }

    #[test]
    fn double_clock_fails_timing_at_32_units() {
        assert!(timing_slack_ns(ClockRecipe::Mhz250, 32) < 0.0);
    }

    #[test]
    fn routing_dominates_critical_path() {
        // Paper: "even at 125 MHz, the majority (over 90%) of the critical
        // path consists of routing delay".
        assert!(routing_fraction(32) > 0.90);
    }

    #[test]
    fn validate_accepts_deployed_config() {
        let rpt = validate(&FpgaParams::iracc()).unwrap();
        assert_eq!(rpt.units, 32);
    }

    #[test]
    fn validate_rejects_overfull_and_overclocked() {
        let too_many = FpgaParams {
            num_units: 64,
            ..FpgaParams::iracc()
        };
        assert!(matches!(
            validate(&too_many),
            Err(FpgaError::DoesNotFit { .. })
        ));

        let too_fast = FpgaParams {
            clock: ClockRecipe::Mhz250,
            ..FpgaParams::iracc()
        };
        assert!(matches!(
            validate(&too_fast),
            Err(FpgaError::TimingFailure { .. })
        ));
    }

    #[test]
    fn lut_budget_scales_with_lanes() {
        assert!(report(32, 32).luts > report(32, 1).luts);
    }
}
